//! `tfapprox-compile` — compile a textual gate-level multiplier netlist
//! into a characterized 256×256 LUT, from the command line.
//!
//! The input is the `docs/NETLIST_FORMAT.md` format (`.operands 8 8`,
//! `.gate` lines in definition order, `.outputs`). The compiler runs the
//! exhaustive 2¹⁶ operand sweep bit-parallel across a worker pool,
//! verifies the sharded result against a golden single-threaded sweep,
//! and prints the hardware-cost and error characterization a catalog
//! entry would carry. `--out` additionally writes the 128 KiB LUT in the
//! `MulLut` binary format, loadable with `axmult::MulLut::load`.
//!
//! Alternatively, `--import FILE` skips the netlist pipeline entirely
//! and registers a pre-baked 128 KiB LUT file (the `MulLut::save` /
//! EvoApprox8b binary layout) via `tfapprox::compile::import_lut_file`,
//! printing the same error characterization; truncated or oversized
//! files are a typed error, never a silently misread table.
//!
//! ```text
//! tfapprox-compile <netlist-file | -> [options]
//! tfapprox-compile --import <file.bin> [options]
//!   --name NAME    multiplier name (default: the input file stem)
//!   --signed       interpret operands as two's-complement i8 (default u8)
//!   --threads N    worker threads for the sweep (default 4)
//!   --shards N     sweep shards (default threads * 4)
//!   --out FILE     also write the (compiled or imported) LUT in MulLut
//!                  binary format
//! ```

use axmult::Signedness;
use std::process::ExitCode;
use tfapprox::compile::{CompileRequest, CompiledMultiplier};
use tfapprox::WorkerPool;

const USAGE: &str = "usage: tfapprox-compile <netlist-file | - | --import <file.bin>> \
                     [--name NAME] [--signed] [--threads N] [--shards N] [--out FILE]";

struct Options {
    input: Input,
    name: Option<String>,
    signedness: Signedness,
    threads: usize,
    shards: Option<usize>,
    out: Option<String>,
}

enum Input {
    /// A netlist file path, or `-` for stdin.
    Netlist(String),
    /// A pre-baked LUT binary to import.
    Lut(String),
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut input: Option<Input> = None;
    let mut name = None;
    let mut signedness = Signedness::Unsigned;
    let mut threads = 4usize;
    let mut shards = None;
    let mut out = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--name" => name = Some(value("--name")?),
            "--import" => {
                if input.is_some() {
                    return Err(format!("--import conflicts with a netlist input\n{USAGE}"));
                }
                input = Some(Input::Lut(value("--import")?));
            }
            "--signed" => signedness = Signedness::Signed,
            "--threads" => {
                threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--shards" => {
                shards = Some(
                    value("--shards")?
                        .parse()
                        .map_err(|e| format!("--shards: {e}"))?,
                );
            }
            "--out" => out = Some(value("--out")?),
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other if input.is_none() && !other.starts_with("--") => {
                input = Some(Input::Netlist(other.to_owned()));
            }
            other => return Err(format!("unexpected argument '{other}'\n{USAGE}")),
        }
    }
    Ok(Options {
        input: input.ok_or_else(|| format!("no netlist or --import file given\n{USAGE}"))?,
        name,
        signedness,
        threads,
        shards,
        out,
    })
}

fn derive_name(explicit: &Option<String>, input: &str) -> Result<String, String> {
    match explicit {
        Some(n) => Ok(n.clone()),
        None => std::path::Path::new(input)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .filter(|s| !s.is_empty() && s != "-")
            .ok_or_else(|| {
                "cannot derive a multiplier name from the input; pass --name".to_owned()
            }),
    }
}

/// The `--import` path: load + register a pre-baked LUT binary and print
/// its characterization (no netlist, so no cost columns).
fn run_import(opts: &Options, path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let name = derive_name(&opts.name, path)?;
    let mult = tfapprox::compile::import_lut_file(path, &name, opts.signedness)?;
    println!(
        "{name}: imported {} LUT from {path} ({} bytes), registered",
        mult.signedness(),
        axmult::lut::LUT_BYTES
    );
    let m = mult.metrics();
    println!(
        "error: MAE {:.4}  WCE {}  MRE {:.6}  error-rate {:.4}  MAE% {:.4}",
        m.mae, m.wce, m.mre, m.error_rate, m.mae_percent
    );
    println!("cost:  none (imported tables carry no netlist)");
    if let Some(out) = &opts.out {
        mult.lut().save(out)?;
        println!("wrote {out} ({} bytes)", axmult::lut::LUT_BYTES);
    }
    Ok(())
}

fn run(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let input = match &opts.input {
        Input::Lut(path) => return run_import(opts, path),
        Input::Netlist(input) => input,
    };
    let src = if input == "-" {
        std::io::read_to_string(std::io::stdin())?
    } else {
        std::fs::read_to_string(input).map_err(|e| format!("cannot read '{input}': {e}"))?
    };
    // Parse errors carry the 1-based source line, so a bad netlist fails
    // here with "line N: ..." rather than deep inside the sweep.
    let netlist = axcircuit::text::parse(&src)?;

    let name = derive_name(&opts.name, input)?;

    let pool = WorkerPool::new(opts.threads);
    let shards = opts.shards.unwrap_or(pool.threads() * 4);
    let compiled: CompiledMultiplier = CompileRequest::new(&netlist, &name, opts.signedness)
        .with_shards(shards)
        .run(&pool)?;

    let report = compiled.report();
    println!("{name}: {} gates, depth {}", report.gates, report.depth);
    println!(
        "sweep: {} bit-parallel passes in {} shards, golden-verified: {}",
        report.sweeps, report.shards, report.lut_verified
    );
    let m = compiled.metrics();
    println!(
        "error: MAE {:.4}  WCE {}  MRE {:.6}  error-rate {:.4}  MAE% {:.4}",
        m.mae, m.wce, m.mre, m.error_rate, m.mae_percent
    );
    if let Some(cost) = compiled.multiplier().cost() {
        println!(
            "cost:  area {:.1}  power {:.1}  delay {:.1}  PDP {:.1}",
            cost.area,
            cost.power,
            cost.delay,
            cost.pdp()
        );
    }
    if let Some(out) = &opts.out {
        compiled.multiplier().lut().save(out)?;
        println!("wrote {out} ({} bytes)", axmult::lut::LUT_BYTES);
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tfapprox-compile: {e}");
            ExitCode::FAILURE
        }
    }
}
