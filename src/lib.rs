//! Umbrella crate for the TFApprox reproduction workspace.
//!
//! This crate exists to host the runnable [examples](https://github.com/example/tfapprox-rs)
//! and cross-crate integration tests; all functionality lives in the member
//! crates, re-exported here for convenience:
//!
//! - [`axcircuit`] — gate-level circuit substrate (netlists, array multipliers).
//! - [`axmult`] — approximate multiplier models, 256×256 LUTs, error metrics.
//! - [`axtensor`] — NHWC 4D tensors, im2col, reference matmul.
//! - [`axquant`] — affine quantization (scale/zero-point) per Eq. 1 of the paper.
//! - [`gpusim`] — simulated CUDA-capable GPU with a texture-cache model.
//! - [`axnn`] — layers, graphs, the CIFAR-10 ResNet family, graph rewriting.
//! - [`tfapprox`] — the paper's contribution: the compiled-session API
//!   (`Session` / `SessionBuilder` / `Assignment` behind
//!   `tfapprox::prelude`), the `AxConv2D`/`AxDense` operators, the
//!   prepared-execution engine (`PreparedFilter` plans + the persistent
//!   `WorkerPool`), and the three emulation backends.

pub use axcircuit;
pub use axmult;
pub use axnn;
pub use axquant;
pub use axtensor;
pub use gpusim;
pub use tfapprox;
