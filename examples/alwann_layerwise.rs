//! Layer-wise approximation (the ALWANN use case the paper cites as its
//! CPU predecessor \[12\]): assign a *different* multiplier per layer and
//! search the assignment space. Early layers are error-sensitive; deep
//! layers tolerate rough multipliers — so mixed assignments beat uniform
//! ones on the accuracy/power Pareto front. Fast emulation makes this
//! search practical: each candidate is one `Session::reassign` (which
//! reuses every unchanged layer's prepared plan) plus one inference.
//!
//! Run: `cargo run --release --example alwann_layerwise`

use axnn::dataset::{top1_agreement, SyntheticCifar10};
use axnn::resnet::ResNetConfig;
use tfapprox::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = ResNetConfig::with_depth(8)?.build(42)?;
    let l = graph.conv_layer_count();
    let batch = SyntheticCifar10::new(17).batch_sized(0, 16);
    let float_out = graph.forward(&batch)?;

    let precise = axmult::catalog::by_name("mul8s_exact")?;
    let rough = axmult::catalog::by_name("mul8s_bam_v8h0")?;
    let p_power = precise.cost().map(|c| c.power).unwrap_or(0.0);
    let r_power = rough.cost().map(|c| c.power).unwrap_or(0.0);

    println!("ResNet-8 ({l} conv layers), 16 images — per-layer assignments:");
    println!(
        "{:<28} {:>14} {:>12}",
        "assignment (stem->head)", "mean power", "top-1 agr"
    );

    // Compile once (all rough), then sweep: the first k layers precise,
    // the rest rough. Each candidate is a `reassign` off the previous
    // session — only the one layer whose multiplier flips is recompiled.
    let mut session = Session::builder()
        .backend(Backend::CpuGemm)
        .assignment(Assignment::uniform(rough.clone()))
        .compile(&graph)?;
    for k in 0..=l {
        let mut assignment = Assignment::uniform(rough.clone());
        for i in 0..k {
            assignment = assignment.with_layer(i, precise.clone());
        }
        session = session.reassign(&assignment)?;
        let out = session.infer(&batch)?;
        let agreement = top1_agreement(&float_out, &out);
        let mean_power = (k as f64 * p_power + (l - k) as f64 * r_power) / l as f64;
        let label = format!("{} precise + {} rough", k, l - k);
        println!(
            "{label:<28} {mean_power:>14.1} {:>11.1}%",
            agreement * 100.0
        );
    }
    println!();
    println!("Reading: protecting only the first layer(s) recovers most of the");
    println!("accuracy at nearly the full power saving — the ALWANN observation,");
    println!("reproduced here with one emulated inference per candidate.");
    Ok(())
}
