//! Serving quickstart: many concurrent callers sharing one compiled
//! session through the batched `ServeEngine`.
//!
//! Compiles a ResNet-8 session once, wraps it in a `ServeEngine` with
//! two shard workers and a 8-image micro-batch budget, then lets four
//! client threads submit interleaved requests. Every response is
//! bit-identical to what a solo `Session::infer` of the same input
//! produces — batching and sharding change throughput, never bits.
//!
//! Run with: `cargo run --release --example serving`

use std::sync::Arc;
use tfapprox::prelude::*;
use tfapprox::serve::ServeEngine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Compile once: the engine serves this session for its whole life.
    let graph = axnn::resnet::ResNetConfig::with_depth(8)?.build(42)?;
    let mult = axmult::catalog::by_name("mul8s_bam_v8h0")?;
    let session = Arc::new(
        Session::builder()
            .backend(Backend::CpuGemm)
            .chunk_size(8)
            .multiplier(&mult)
            .compile(&graph)?,
    );
    println!(
        "compiled ResNet-8 ({} approximate layers, {})",
        session.replaced_layers(),
        mult.name()
    );

    let engine = Arc::new(ServeEngine::new(
        Arc::clone(&session),
        ServeConfig::new()
            .with_max_batch_images(8)
            .with_flush_ticks(2)
            .with_shards(2)
            .with_queue_depth(256),
    )?);

    // Four clients, eight requests each, mixed batch sizes.
    let clients = 4usize;
    let per_client = 8usize;
    std::thread::scope(|scope| {
        for c in 0..clients {
            let engine = Arc::clone(&engine);
            let session = Arc::clone(&session);
            scope.spawn(move || {
                for i in 0..per_client {
                    let images = 1 + (i % 2);
                    let seed = (c * per_client + i) as u64;
                    let input = axtensor::rng::uniform(
                        axnn::resnet::cifar_input_shape(images),
                        seed,
                        -1.0,
                        1.0,
                    );
                    let served = engine.infer(input.clone()).expect("served response");
                    let solo = session.infer(&input).expect("solo inference");
                    assert_eq!(served, solo, "served output must be bit-identical");
                }
            });
        }
    });

    let stats = engine.stats();
    println!(
        "served {} requests ({} images) in {} micro-batches",
        stats.requests, stats.images, stats.batches
    );
    println!(
        "mean occupancy {:.2} requests/batch, {:.1} images/s sustained, {} shed",
        stats.mean_occupancy, stats.images_per_second, stats.shed
    );
    println!("every response was bit-identical to solo Session::infer");
    Ok(())
}
