//! Serving quickstart: many tenants — one per approximate-multiplier
//! configuration — sharing one multi-tenant `ServeEngine`.
//!
//! Compiles a ResNet-8 anchor session once, installs it in a
//! `SessionRegistry`, then admits two more multiplier variants through
//! the `reassign` plan-transplant path (input-side work only). Four
//! client threads submit keyed requests against all three tenants; every
//! response is bit-identical to what a solo `Session::infer` on that
//! tenant's session produces — batching, sharding, and tenant mix change
//! throughput, never bits. The engine's streaming histogram reports the
//! p50/p95/p99 tail at the end.
//!
//! Run with: `cargo run --release --example serving`

use std::sync::Arc;
use tfapprox::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Compile the anchor once: every other tenant derives from it by
    // plan transplant, never a full recompile.
    let graph = axnn::resnet::ResNetConfig::with_depth(8)?.build(42)?;
    let anchor_mult = axmult::catalog::by_name("mul8s_exact")?;
    let anchor = Arc::new(
        Session::builder()
            .backend(Backend::CpuGemm)
            .chunk_size(8)
            .multiplier(&anchor_mult)
            .compile(&graph)?,
    );
    println!(
        "compiled ResNet-8 anchor ({} approximate layers, {})",
        anchor.replaced_layers(),
        anchor_mult.name()
    );

    // The registry holds up to 2 derived variants in its LRU; the anchor
    // is pinned and does not count.
    let registry = Arc::new(SessionRegistry::new(2)?);
    let key_exact = registry.install("resnet8", Arc::clone(&anchor))?;
    let mut keys = vec![key_exact.clone()];
    for name in ["mul8s_bam_v8h0", "mul8s_drum4"] {
        let mult = axmult::catalog::by_name(name)?;
        let key = registry.admit("resnet8", &Assignment::uniform(mult))?;
        println!("admitted tenant {key}");
        keys.push(key);
    }

    let engine = Arc::new(ServeEngine::with_registry(
        Arc::clone(&registry),
        key_exact,
        ServeConfig::new()
            .with_max_batch_images(8)
            .with_flush_ticks(2)
            .with_shards(2)
            .with_queue_depth(256),
    )?);

    // Solo golden sessions, resolved through the registry itself.
    let solos: Vec<Arc<Session>> = keys
        .iter()
        .map(|k| registry.session_for(k))
        .collect::<Result<_, _>>()?;

    // Four clients, eight requests each, round-robining the tenants.
    let clients = 4usize;
    let per_client = 8usize;
    std::thread::scope(|scope| {
        for c in 0..clients {
            let engine = Arc::clone(&engine);
            let keys = &keys;
            let solos = &solos;
            scope.spawn(move || {
                for i in 0..per_client {
                    let tenant = (c + i) % keys.len();
                    let images = 1 + (i % 2);
                    let seed = (c * per_client + i) as u64;
                    let input = axtensor::rng::uniform(
                        axnn::resnet::cifar_input_shape(images),
                        seed,
                        -1.0,
                        1.0,
                    );
                    let served = engine
                        .infer_to(&keys[tenant], input.clone())
                        .expect("served response");
                    let solo = solos[tenant].infer(&input).expect("solo inference");
                    assert_eq!(
                        served, solo,
                        "served output must be bit-identical per tenant"
                    );
                }
            });
        }
    });

    let stats = engine.stats();
    println!(
        "served {} requests ({} images) in {} micro-batches across {} tenants",
        stats.requests,
        stats.images,
        stats.batches,
        keys.len()
    );
    println!(
        "mean occupancy {:.2} requests/batch, {:.1} images/s sustained, {} shed, {} deadline-shed",
        stats.mean_occupancy, stats.images_per_second, stats.shed, stats.deadline_shed
    );
    println!(
        "latency p50 {:.1} ms · p95 {:.1} ms · p99 {:.1} ms",
        stats.p50_latency_s * 1e3,
        stats.p95_latency_s * 1e3,
        stats.p99_latency_s * 1e3
    );
    let rstats = registry.stats();
    println!(
        "registry: {} resident / capacity {} ({} hits, {} misses, {} evictions)",
        rstats.resident, rstats.capacity, rstats.hits, rstats.misses, rstats.evictions
    );
    println!("every response was bit-identical to its tenant's solo Session::infer");
    Ok(())
}
