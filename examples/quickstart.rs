//! Quickstart: emulate an approximate multiplier inside a ResNet.
//!
//! The three-step workflow of the paper's design flow:
//! 1. load/build a trained model,
//! 2. pick a candidate approximate multiplier (here from the catalog),
//! 3. transform the graph (Conv2D → AxConv2D with Min/Max observers,
//!    Fig. 1) and run inference to quantify the multiplier's impact.
//!
//! Run: `cargo run --release --example quickstart`

use axnn::dataset::{top1_agreement, SyntheticCifar10};
use axnn::resnet::ResNetConfig;
use std::sync::Arc;
use tfapprox::{flow, runtime, Backend, EmuContext};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A "trained" CIFAR-10 ResNet-8 (deterministic synthetic weights).
    let graph = ResNetConfig::with_depth(8)?.build(42)?;
    println!(
        "built ResNet-8: {} conv layers, {:.1}M MACs/image",
        graph.conv_layer_count(),
        graph.mac_count(axnn::resnet::cifar_input_shape(1))? as f64 / 1e6
    );

    // 2. A candidate approximate multiplier: a signed broken-array
    //    multiplier from the catalog (stand-in for EvoApprox8b entries).
    let mult = axmult::catalog::by_name("mul8s_bam_v8h0")?;
    let metrics = mult.metrics();
    println!(
        "multiplier {}: MAE {:.1}, worst-case error {}, error rate {:.1}%",
        mult.name(),
        metrics.mae,
        metrics.wce,
        metrics.error_rate * 100.0
    );

    // 3. Transform the graph and run on the simulated GPU.
    let ctx = Arc::new(EmuContext::new(Backend::GpuSim));
    let (ax_graph, replaced) = flow::approximate_graph(&graph, &mult, &ctx)?;
    println!("replaced {replaced} Conv2D layers with AxConv2D (+ Min/Max observers)");

    let data = SyntheticCifar10::new(7);
    let batch = data.batch_sized(0, 16);
    let (outputs, report) = runtime::run_approx(&ax_graph, std::slice::from_ref(&batch), &ctx)?;

    // Compare predictions against the accurate float network.
    let float_out = graph.forward(&batch)?;
    let agreement = top1_agreement(&float_out, &outputs[0]);
    println!(
        "top-1 agreement with the accurate network: {:.1}% over {} images",
        agreement * 100.0,
        report.images
    );
    println!(
        "(a broken-array multiplier with break level 8 is aggressive — low \
         agreement is the *finding*; try mul8s_drum4 for a near-lossless one)"
    );
    println!(
        "modeled device time: tinit {:.2}s + tcomp {:.4}s",
        report.tinit, report.tcomp
    );
    for phase in gpusim::Phase::all() {
        println!(
            "  {phase:<28} {:>6.2}%",
            report.profile.fraction(phase) * 100.0
        );
    }
    Ok(())
}
