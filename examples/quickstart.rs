//! Quickstart: emulate an approximate multiplier inside a ResNet.
//!
//! The three-step workflow of the paper's design flow:
//! 1. load/build a trained model,
//! 2. pick a candidate approximate multiplier (here from the catalog),
//! 3. compile a `Session` (Conv2D → AxConv2D with Min/Max observers,
//!    Fig. 1, every filter plan built eagerly) and run inference to
//!    quantify the multiplier's impact.
//!
//! Run: `cargo run --release --example quickstart`

use axnn::dataset::{top1_agreement, SyntheticCifar10};
use axnn::resnet::ResNetConfig;
use tfapprox::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A "trained" CIFAR-10 ResNet-8 (deterministic synthetic weights).
    let graph = ResNetConfig::with_depth(8)?.build(42)?;
    println!(
        "built ResNet-8: {} conv layers, {:.1}M MACs/image",
        graph.conv_layer_count(),
        graph.mac_count(axnn::resnet::cifar_input_shape(1))? as f64 / 1e6
    );

    // 2. A candidate approximate multiplier: a signed broken-array
    //    multiplier from the catalog (stand-in for EvoApprox8b entries).
    let mult = axmult::catalog::by_name("mul8s_bam_v8h0")?;
    let metrics = mult.metrics();
    println!(
        "multiplier {}: MAE {:.1}, worst-case error {}, error rate {:.1}%",
        mult.name(),
        metrics.mae,
        metrics.wce,
        metrics.error_rate * 100.0
    );

    // 3. Compile the session on the simulated GPU and run.
    let session = Session::builder()
        .backend(Backend::GpuSim)
        .multiplier(&mult)
        .compile(&graph)?;
    println!(
        "compiled session: replaced {} Conv2D layers with AxConv2D (+ Min/Max observers)",
        session.replaced_layers()
    );

    let data = SyntheticCifar10::new(7);
    let batch = data.batch_sized(0, 16);
    let (outputs, report) = session.infer_batches(std::slice::from_ref(&batch))?;

    // Compare predictions against the accurate float network.
    let float_out = graph.forward(&batch)?;
    let agreement = top1_agreement(&float_out, &outputs[0]);
    println!(
        "top-1 agreement with the accurate network: {:.1}% over {} images",
        agreement * 100.0,
        report.images
    );
    println!(
        "(a broken-array multiplier with break level 8 is aggressive — low \
         agreement is the *finding*; try mul8s_drum4 for a near-lossless one)"
    );
    println!(
        "modeled device time: tinit {:.2}s + tcomp {:.4}s ({:.0} images/s)",
        report.tinit,
        report.tcomp,
        report.images_per_second()
    );
    for phase in gpusim::Phase::all() {
        println!(
            "  {phase:<28} {:>6.2}%",
            report.profile.fraction(phase) * 100.0
        );
    }
    println!("report JSON: {}", report.to_json());
    Ok(())
}
