//! Explore the approximate-multiplier catalog: full-input-space error
//! metrics, unit-gate hardware cost, and the actual impact on a network's
//! predictions — the evaluation loop the paper accelerates ("many
//! candidate approximate operations" per design).
//!
//! Run: `cargo run --release --example multiplier_explorer`

use axnn::dataset::{top1_agreement, SyntheticCifar10};
use axnn::resnet::ResNetConfig;
use tfapprox::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = ResNetConfig::with_depth(8)?.build(42)?;
    let batch = SyntheticCifar10::new(3).batch_sized(0, 8);
    let float_out = graph.forward(&batch)?;

    println!(
        "{:<18} {:>8} {:>8} {:>9} {:>10} {:>10} {:>10}",
        "multiplier", "MAE", "WCE", "err rate", "area", "PDP", "top-1 agr"
    );
    for mult in axmult::catalog()? {
        let m = mult.metrics();
        let (area, pdp) = mult
            .cost()
            .map_or((f64::NAN, f64::NAN), |c| (c.area, c.pdp()));

        // Signed multipliers slot into the signed datapath directly; for
        // this demo we run all of them through the same ResNet (the
        // unsigned range shifts data via the zero-point).
        let session = Session::builder()
            .backend(Backend::CpuGemm)
            .multiplier(&mult)
            .compile(&graph)?;
        let ax_out = session.infer(&batch)?;
        let agreement = top1_agreement(&float_out, &ax_out);

        println!(
            "{:<18} {:>8.1} {:>8} {:>8.1}% {:>10.1} {:>10.1} {:>9.1}%",
            mult.name(),
            m.mae,
            m.wce,
            m.error_rate * 100.0,
            area,
            pdp,
            agreement * 100.0
        );
    }
    println!();
    println!("Reading: aggressive truncation/BAM variants save area but collapse");
    println!("agreement; DRUM-style operand reduction keeps relative error bounded");
    println!("and preserves predictions at a fraction of the exact multiplier's cost.");
    Ok(())
}
