//! Bring-your-own multiplier: from a gate-level netlist to a served
//! session, with no kernel changes anywhere.
//!
//! The paper evaluates *catalog* multipliers (EvoApprox-style entries
//! baked into `axmult::catalog`). This example walks the path for a
//! multiplier the catalog has never heard of:
//!
//! 1. describe the circuit — here built with `axcircuit::approx`, then
//!    round-tripped through the portable textual netlist format
//!    (`docs/NETLIST_FORMAT.md`) to show what an externally-authored
//!    circuit file looks like,
//! 2. compile it — the exhaustive 2¹⁶ operand sweep runs bit-parallel
//!    (64 pairs per pass), sharded over the same `WorkerPool` that runs
//!    inference, verified against a golden single-threaded sweep, and
//!    characterized with hardware cost + error metrics,
//! 3. register it — the name now resolves everywhere a built-in does:
//!    `SessionBuilder::multiplier_named`, `Assignment::uniform_named`,
//!    serving keys.
//!
//! Run with: `cargo run --release --example compile_multiplier`

use tfapprox::compile::compile_netlist;
use tfapprox::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The circuit: an 8×8 unsigned broken-array multiplier with a
    //    vertical break at column 9, horizontal break 1 — an operating
    //    point the built-in catalog does not carry.
    let circuit = axcircuit::approx::broken_array_unsigned(8, 9, 1)?;

    // The same circuit as a textual netlist — the format you would check
    // into a repo or emit from a synthesis flow — parsed back and
    // verified structurally identical.
    let text = axcircuit::text::format(&circuit, "bam_v9h1");
    let parsed = axcircuit::text::parse(&text)?;
    assert_eq!(parsed, circuit);
    println!(
        "netlist: {} gates, depth {}, {} lines of text",
        circuit.n_gates(),
        circuit.depth(),
        text.lines().count()
    );

    // 2. Compile: 2^16 products in 1024 bit-parallel sweeps, sharded
    //    across the pool, golden-verified before admission.
    let pool = WorkerPool::new(4);
    let compiled = compile_netlist(&parsed, "my_bam_v9h1", Signedness::Unsigned, &pool)?;
    let report = compiled.report();
    println!(
        "compiled: {} sweeps in {} shards, lut_verified={}",
        report.sweeps, report.shards, report.lut_verified
    );
    let m = compiled.metrics();
    println!(
        "error:    MAE {:.2}  WCE {}  MRE {:.4}  error-rate {:.3}",
        m.mae, m.wce, m.mre, m.error_rate
    );
    if let Some(cost) = compiled.multiplier().cost() {
        println!(
            "hardware: area {:.0}  delay {:.0}  PDP {:.0}",
            cost.area,
            cost.delay,
            cost.pdp()
        );
    }

    // 3. Register and use it by name, exactly like a catalog entry.
    compiled.register()?;
    let graph = axnn::resnet::ResNetConfig::with_depth(8)?.build(42)?;
    let session = Session::builder()
        .backend(Backend::CpuGemm)
        .multiplier_named("my_bam_v9h1")
        .compile(&graph)?;
    let input = axtensor::rng::uniform(axnn::resnet::cifar_input_shape(2), 7, -1.0, 1.0);
    let (outputs, emu) = session.infer_batches(std::slice::from_ref(&input))?;
    println!(
        "inference: {} images through {} approximate layers in {:.1} ms",
        emu.images,
        session.replaced_layers(),
        emu.total() * 1e3
    );

    // How rough is it? Same graph, exact unsigned multiplier, same bits
    // everywhere except the MAC datapath.
    let exact = Session::builder()
        .backend(Backend::CpuGemm)
        .multiplier_named("mul8u_exact")
        .compile(&graph)?;
    let (exact_out, _) = exact.infer_batches(std::slice::from_ref(&input))?;
    let diff = outputs[0].max_abs_diff(&exact_out[0])?;
    println!("max |logit drift| vs mul8u_exact: {diff:.4}");

    axmult::registry::unregister("my_bam_v9h1");
    Ok(())
}
