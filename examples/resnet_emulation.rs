//! A miniature Table I: one ResNet depth, all four configurations
//! (accurate/approximate × CPU/GPU) on a reduced workload, with the
//! phase breakdown of the simulated GPU run.
//!
//! Run: `cargo run --release --example resnet_emulation -- [depth] [images]`

use axnn::dataset::SyntheticCifar10;
use axnn::resnet::ResNetConfig;
use gpusim::DeviceConfig;
use tfapprox::perfmodel::{self, CpuModel};
use tfapprox::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let depth: usize = args.first().and_then(|v| v.parse().ok()).unwrap_or(20);
    let images: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(4);

    let cfg = ResNetConfig::with_depth(depth)?;
    let graph = cfg.build(42)?;
    let mult = axmult::catalog::by_name("mul8s_bam_v8h0")?;
    let data = SyntheticCifar10::new(42);
    let batch = data.batch_sized(0, images);

    println!("ResNet-{depth}, {images} images (reduced workload, measured on this host)");

    // Accurate f32 on the host.
    let (_, acc) = tfapprox::run_accurate_cpu(&graph, std::slice::from_ref(&batch))?;
    println!("accurate f32 (host):        tcomp {:.3}s", acc.tcomp);

    // Approximate on both CPU backends.
    for backend in [Backend::CpuDirect, Backend::CpuGemm] {
        let session = Session::builder()
            .backend(backend)
            .chunk_size(images)
            .multiplier(&mult)
            .compile(&graph)?;
        let (_, rep) = session.infer_batches(std::slice::from_ref(&batch))?;
        println!(
            "approximate {:<14} tcomp {:.3}s  ({:.1}x slower than f32)",
            format!("({backend}):"),
            rep.tcomp,
            rep.tcomp / acc.tcomp
        );
    }

    // Approximate on the simulated GPU (modeled seconds).
    let session = Session::builder()
        .backend(Backend::GpuSim)
        .chunk_size(images)
        .multiplier(&mult)
        .compile(&graph)?;
    let (_, rep) = session.infer_batches(&[batch])?;
    println!(
        "approximate (gpu-sim):      tinit {:.2}s + tcomp {:.4}s (modeled GTX-1080-class)",
        rep.tinit, rep.tcomp
    );
    for phase in gpusim::Phase::all() {
        println!(
            "  {phase:<28} {:>6.2}%",
            rep.profile.fraction(phase) * 100.0
        );
    }

    // And the full Table-I-scale projection for this depth.
    let row = perfmodel::table1_row(
        depth,
        &mult,
        &DeviceConfig::gtx1080(),
        &CpuModel::xeon_e5_2620(),
        10_000,
        1,
        42,
    )?;
    println!();
    println!("projected to 10,000 images (Table I scale):");
    println!(
        "  accurate   CPU {:.1}s | GPU {:.1}s   approximate   CPU {:.0}s | GPU {:.1}s",
        row.cpu_accurate.total(),
        row.gpu_accurate.total(),
        row.cpu_approx.total(),
        row.gpu_approx.total()
    );
    println!(
        "  GPU-vs-CPU speedup: accurate {:.1}x, approximate {:.1}x",
        row.speedup_accurate(),
        row.speedup_approx()
    );
    Ok(())
}
