//! Design-space exploration: the accuracy / hardware-cost trade-off the
//! paper's fast emulation exists to serve ("find the best tradeoff
//! between the error and power requirements prior a real hardware design
//! is started").
//!
//! Evaluates every catalog multiplier inside a ResNet and reports the
//! Pareto-optimal set under (maximize top-1 agreement, minimize power).
//!
//! Run: `cargo run --release --example design_space -- [depth] [images]`

use axnn::dataset::{top1_agreement, SyntheticCifar10};
use axnn::resnet::ResNetConfig;
use tfapprox::prelude::*;

struct Candidate {
    name: String,
    power: f64,
    agreement: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let depth: usize = args.first().and_then(|v| v.parse().ok()).unwrap_or(8);
    let images: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(16);

    let graph = ResNetConfig::with_depth(depth)?.build(42)?;
    let batch = SyntheticCifar10::new(9).batch_sized(0, images);
    let float_out = graph.forward(&batch)?;

    let mut candidates = Vec::new();
    for mult in axmult::catalog()? {
        let Some(cost) = mult.cost() else {
            continue; // no hardware estimate -> not comparable
        };
        let session = Session::builder()
            .backend(Backend::CpuGemm)
            .multiplier(&mult)
            .compile(&graph)?;
        let ax_out = session.infer(&batch)?;
        candidates.push(Candidate {
            name: mult.name().to_owned(),
            power: cost.power,
            agreement: top1_agreement(&float_out, &ax_out),
        });
    }

    // Pareto filter: keep candidates not dominated in (power ↓, agreement ↑).
    let mut pareto: Vec<&Candidate> = Vec::new();
    for c in &candidates {
        let dominated = candidates.iter().any(|o| {
            (o.power < c.power && o.agreement >= c.agreement)
                || (o.power <= c.power && o.agreement > c.agreement)
        });
        if !dominated {
            pareto.push(c);
        }
    }
    pareto.sort_by(|a, b| a.power.total_cmp(&b.power));

    println!("ResNet-{depth}, {images} images — multiplier design space:");
    println!(
        "{:<18} {:>10} {:>12} {:>8}",
        "multiplier", "power", "agreement", "Pareto"
    );
    for c in &candidates {
        let on_front = pareto.iter().any(|p| p.name == c.name);
        println!(
            "{:<18} {:>10.1} {:>11.1}% {:>8}",
            c.name,
            c.power,
            c.agreement * 100.0,
            if on_front { "*" } else { "" }
        );
    }
    println!();
    println!("Pareto front (power-ordered):");
    for p in pareto {
        println!(
            "  {:<18} power {:>8.1}  agreement {:>5.1}%",
            p.name,
            p.power,
            p.agreement * 100.0
        );
    }
    Ok(())
}
