#!/usr/bin/env python3
"""Check that relative markdown links in README.md and docs/*.md resolve.

External links (http/https/mailto) are skipped; anchors are stripped
before the path check. Exits non-zero listing every broken link.
"""

import pathlib
import re
import sys

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check(md: pathlib.Path) -> list[str]:
    broken = []
    for target in LINK.findall(md.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = (md.parent / target.split("#", 1)[0]).resolve()
        if not path.exists():
            broken.append(f"{md}: broken link -> {target}")
    return broken


def main() -> int:
    root = pathlib.Path(__file__).resolve().parent.parent
    files = [root / "README.md", *sorted((root / "docs").glob("*.md"))]
    broken = [b for f in files if f.exists() for b in check(f)]
    for line in broken:
        print(line, file=sys.stderr)
    print(f"checked {len(files)} files, {len(broken)} broken links")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
