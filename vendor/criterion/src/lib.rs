//! Offline stand-in for the real `criterion` crate.
//!
//! Implements the API surface the `bench` crate uses — `Criterion`,
//! benchmark groups, `Bencher::iter`, `black_box`, `BenchmarkId`,
//! `criterion_group!` / `criterion_main!` — as a small wall-clock harness.
//! It has none of criterion's statistics, but benchmarks compile, run under
//! `cargo bench`, and print per-benchmark mean times, which keeps the
//! paper-reproduction benches executable in the offline environment.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier, counterpart of `criterion::black_box`.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier, counterpart of `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build an id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", function.into()))
    }

    /// Build an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Measurement driver handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness, counterpart of `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.to_string(), 10, f);
        self
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), self.sample_size, f);
        self
    }

    /// Benchmark a closure that receives an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.to_string(), self.sample_size, |b| {
            f(b, input);
        });
        self
    }

    /// Close the group (printing is per-benchmark; this is a no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, samples: usize, mut f: F) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let mut total = Duration::ZERO;
    let mut iters_total: u64 = 0;
    for _ in 0..samples {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        iters_total += b.iters;
    }
    let mean = if iters_total == 0 {
        Duration::ZERO
    } else {
        total / u32::try_from(iters_total.max(1)).unwrap_or(u32::MAX)
    };
    println!("bench: {label:<40} mean {mean:>12.3?} ({iters_total} iters)");
}

/// Counterpart of `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Counterpart of `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0usize;
        group.sample_size(3).bench_function("f", |b| {
            b.iter(|| black_box(1 + 1));
            runs += 1;
        });
        group.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
    }
}
