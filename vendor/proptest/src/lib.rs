//! Offline stand-in for the real `proptest` crate.
//!
//! Supports the subset of proptest's surface used by this workspace's
//! property tests: the `proptest!` macro with a `proptest_config` inner
//! attribute, range strategies over the primitive numeric types,
//! `any::<bool>()`, `proptest::collection::vec`, and the `prop_assert*` /
//! `prop_assume!` macros. Sampling is exhaustive-effort random with a
//! deterministic per-test seed (derived from the test name), so failures
//! reproduce exactly across runs — the property this reproduction actually
//! relies on, in place of real proptest's shrinking machinery.

use std::marker::PhantomData;
use std::ops::Range;

pub mod collection;
pub mod prelude;
pub mod test_runner;

pub use test_runner::TestRng;

/// Runner configuration, counterpart of `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` sampled cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A source of sampled values, counterpart of `proptest::strategy::Strategy`.
pub trait Strategy {
    /// Type of the sampled values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = (self.start as f64
                    + (self.end as f64 - self.start as f64) * unit) as $t;
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (S0 / 0, S1 / 1),
    (S0 / 0, S1 / 1, S2 / 2),
    (S0 / 0, S1 / 1, S2 / 2, S3 / 3)
);

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`, counterpart of `proptest::prelude::any`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `proptest!` macro: sampled property tests with deterministic seeds.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $test_name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $test_name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($test_name));
                for _case in 0..config.cases {
                    $(let $parm = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    // Closure so `prop_assume!` can abandon the case early.
                    let mut case = || { $body };
                    case();
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $test_name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $test_name($($parm in $strategy),+) $body
            )*
        }
    };
}

/// Counterpart of `prop_assert!`: fails the current test on violation.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Counterpart of `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Counterpart of `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Counterpart of `prop_assume!`: silently abandons the current case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}
