//! Deterministic random source for property sampling.

/// xoshiro256++ generator seeded from the test name, so every property
/// test samples the same case sequence on every run and machine.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed deterministically from an arbitrary label (the test name).
    #[must_use]
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label, then SplitMix64 state expansion.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut x = h;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn same_label_same_stream() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn labels_decorrelate() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("y");
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
