//! Glob-import surface, counterpart of `proptest::prelude`.

pub use crate::{
    any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
    ProptestConfig, Strategy, TestRng,
};
