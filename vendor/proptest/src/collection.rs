//! Collection strategies, counterpart of `proptest::collection`.

use crate::{Strategy, TestRng};
use std::ops::Range;

/// Strategy producing `Vec`s with lengths drawn from a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// `Vec` strategy over `element` with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = Strategy::sample(&self.size, rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
