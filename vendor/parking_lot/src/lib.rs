//! Offline stand-in for the real `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free `lock()`
//! signature (poisoning is swallowed, matching parking_lot's semantics of
//! not poisoning at all).

use std::sync;

/// Counterpart of `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot never poisons).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Counterpart of `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
