//! Offline stand-in for the real `serde_derive` proc-macro crate.
//!
//! The workspace builds in an environment with no registry access, and the
//! member crates only use serde as *derive decoration* (no serializer is
//! ever driven), so the derives here accept the full attribute grammar
//! (`#[serde(...)]` helper attributes included) and emit nothing. The
//! `Serialize` / `Deserialize` traits in the sibling `serde` facade carry
//! blanket impls, so trait bounds keep working too.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
