//! Offline stand-in for the real `bytes` crate.
//!
//! Implements only the `Buf`/`BufMut` surface the workspace touches:
//! little-endian u16 reads from `&[u8]` and writes into `Vec<u8>`, which is
//! what `axmult`'s 128 kB LUT (de)serializer needs.

/// Read side, counterpart of `bytes::Buf`.
pub trait Buf {
    /// Bytes remaining in the buffer.
    fn remaining(&self) -> usize;

    /// Consume and return the next little-endian `u16`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two bytes remain.
    fn get_u16_le(&mut self) -> u16;

    /// Consume and return the next byte.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    fn get_u8(&mut self) -> u8;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u16_le(&mut self) -> u16 {
        assert!(self.len() >= 2, "buffer underflow reading u16");
        let v = u16::from_le_bytes([self[0], self[1]]);
        *self = &self[2..];
        v
    }

    fn get_u8(&mut self) -> u8 {
        assert!(!self.is_empty(), "buffer underflow reading u8");
        let v = self[0];
        *self = &self[1..];
        v
    }
}

/// Write side, counterpart of `bytes::BufMut`.
pub trait BufMut {
    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);

    /// Append a byte.
    fn put_u8(&mut self, v: u8);
}

impl BufMut for Vec<u8> {
    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut};

    #[test]
    fn u16_roundtrip() {
        let mut out = Vec::new();
        out.put_u16_le(0xBEEF);
        out.put_u16_le(7);
        out.put_u8(3);
        assert_eq!(out, [0xEF, 0xBE, 0x07, 0x00, 0x03]);
        let mut buf = out.as_slice();
        assert_eq!(buf.remaining(), 5);
        assert_eq!(buf.get_u16_le(), 0xBEEF);
        assert_eq!(buf.get_u16_le(), 7);
        assert_eq!(buf.get_u8(), 3);
        assert_eq!(buf.remaining(), 0);
    }
}
