//! Offline stand-in for the real `serde` crate.
//!
//! Mirrors the subset of serde's public surface this workspace touches:
//! the `Serialize` / `Deserialize` traits (as blanket-implemented markers,
//! since no serializer is ever invoked) and the derive macros re-exported
//! under the `derive` feature, exactly like the real crate.

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker counterpart of `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: ?Sized> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
