//! Offline stand-in for the real `rand` crate.
//!
//! Provides the subset of the rand 0.8 API this workspace uses —
//! `StdRng::seed_from_u64(..)` plus `Rng::gen_range(range)` over the
//! numeric types that appear in the tree — backed by xoshiro256++ seeded
//! through SplitMix64. Fully deterministic for a given seed, which is all
//! the reproduction needs (every experiment is seeded).

use std::ops::Range;

/// Counterpart of `rand::RngCore`, reduced to the 64-bit source.
pub trait RngCore {
    /// Next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;
}

/// Counterpart of `rand::SeedableRng`, reduced to `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Counterpart of `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Sample a value of type `T` uniformly (`bool` only, as used here).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable by [`Rng::gen`].
pub trait Standard {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, i8, i16, i32, i64);

/// Ranges that can drive [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the small spans used here
                // and irrelevant for reproducibility.
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = (self.start as f64 + (self.end as f64 - self.start as f64) * unit) as $t;
                // Guard the (rounding-only) case where v lands on `end`.
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' recommendation.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&v));
            let i = r.gen_range(0u8..10);
            assert!(i < 10);
            let s = r.gen_range(-16i64..16);
            assert!((-16..16).contains(&s));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u32> = (0..8).map(|_| a.gen_range(0u32..u32::MAX)).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen_range(0u32..u32::MAX)).collect();
        assert_ne!(va, vb);
    }
}
