//! Integration tests for the non-ResNet network families and the
//! extension features (AxDense, accumulator models, layer-wise flow).

use axnn::dataset::{top1_agreement, SyntheticCifar10};
use axnn::models::{lenet, VggConfig};
use axnn::resnet::cifar_input_shape;
use std::sync::Arc;
use tfapprox::prelude::*;
use tfapprox::{Accumulator, AxDense, EmuContext};

#[test]
fn vgg_transforms_and_tracks_float() {
    let graph = VggConfig::vgg8().build(1).expect("vgg");
    let mult = axmult::catalog::by_name("mul8s_exact").expect("catalog");
    let session = Session::builder()
        .backend(Backend::CpuGemm)
        .multiplier(&mult)
        .compile(&graph)
        .expect("compile");
    assert_eq!(session.replaced_layers(), 6);

    let batch = SyntheticCifar10::new(2).batch_sized(0, 4);
    let float_out = graph.forward(&batch).expect("float");
    let ax_out = session.infer(&batch).expect("approx");
    let agreement = top1_agreement(&float_out, &ax_out);
    assert!(agreement >= 0.75, "agreement {agreement}");
}

#[test]
fn lenet_transforms_and_runs_on_gpusim() {
    let graph = lenet(3).expect("lenet");
    let mult = axmult::catalog::by_name("mul8s_bam_v8h0").expect("catalog");
    let session = Session::builder()
        .backend(Backend::GpuSim)
        .multiplier(&mult)
        .compile(&graph)
        .expect("compile");
    assert_eq!(session.replaced_layers(), 2);
    let batch = SyntheticCifar10::new(4).batch_sized(0, 2);
    let out = session.infer(&batch).expect("infer");
    assert_eq!(out.shape().c, 10);
    assert!(
        session.context().profile().total() > 0.0,
        "modeled time recorded"
    );
}

#[test]
fn graph_summary_reports_whole_resnet() {
    let graph = axnn::resnet::ResNetConfig::with_depth(8)
        .expect("cfg")
        .build(1)
        .expect("graph");
    let summary = graph.summary(cifar_input_shape(1)).expect("summary");
    assert!(summary.contains("Conv2D"));
    assert!(summary.contains("TOTAL"));
    // Total MACs appear in the last line and match mac_count().
    let macs = graph.mac_count(cifar_input_shape(1)).expect("macs");
    assert!(summary.contains(&macs.to_string()));
}

#[test]
fn ax_dense_from_graph_dense_parts() {
    // Build an AxDense from an accurate Dense and check they track.
    let dense = axnn::layers::Dense::new(
        16,
        4,
        (0..64).map(|i| (i as f32 - 32.0) / 100.0).collect(),
        vec![0.1; 4],
    );
    let mult = axmult::catalog::by_name("mul8s_exact").expect("catalog");
    let ctx = Arc::new(EmuContext::new(Backend::CpuDirect));
    let ax = AxDense::from_dense(&dense, &mult, ctx);
    let input = axtensor::rng::uniform(axtensor::Shape4::new(2, 1, 1, 16), 5, -1.0, 1.0);
    use axnn::layer::Layer as _;
    let accurate = dense.forward(&[&input]).expect("dense");
    let approx = ax.compute(&input).expect("axdense");
    let diff = accurate.max_abs_diff(&approx).expect("shapes");
    assert!(diff < 0.1, "quantization noise only, got {diff}");
}

#[test]
fn accumulator_sweep_degrades_gracefully() {
    // Narrowing the accumulator monotonically (weakly) increases the
    // deviation from exact accumulation across a real layer.
    let graph = axnn::resnet::ResNetConfig::with_depth(8)
        .expect("cfg")
        .build(9)
        .expect("graph");
    let mult = axmult::catalog::by_name("mul8s_exact").expect("catalog");
    let batch = SyntheticCifar10::new(11).batch_sized(0, 2);

    let run = |acc: Accumulator| {
        let ctx = Arc::new(EmuContext::new(Backend::CpuGemm));
        let (ax, _) = graph
            .rewrite_convs(|conv| {
                Arc::new(
                    tfapprox::AxConv2D::from_conv2d(conv, &mult, Arc::clone(&ctx))
                        .with_accumulator(acc),
                )
            })
            .expect("rewrite");
        ax.forward(&batch).expect("forward")
    };
    let exact = run(Accumulator::Exact);
    let wide = run(Accumulator::Saturating(32));
    let narrow = run(Accumulator::Saturating(14));
    assert_eq!(exact, wide, "32-bit accumulator is exact at this scale");
    let narrow_diff = exact.max_abs_diff(&narrow).expect("shapes");
    assert!(narrow_diff > 0.0, "14-bit accumulator must deviate");
}
