//! Property-based tests over the core data structures and invariants.

use axmult::{MulLut, Signedness};
use axquant::{QuantParams, QuantRange, RoundMode};
use axtensor::{ops, rng, ConvGeometry, FilterShape, Padding, Shape4};
use proptest::prelude::*;
use std::sync::Arc;
use tfapprox::{AxConv2D, Backend, EmuContext};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Gate-level array multipliers are exact for arbitrary widths.
    #[test]
    fn netlist_multiplier_exact(wa in 2u32..7, wb in 2u32..7, a in 0u64..128, b in 0u64..128) {
        let a = a & ((1 << wa) - 1);
        let b = b & ((1 << wb) - 1);
        let nl = axcircuit::builder::MultiplierSpec::unsigned(wa, wb).build().unwrap();
        prop_assert_eq!(nl.eval_words(&[a, b]).unwrap(), a * b);
    }

    /// Signed netlist multipliers match two's-complement products.
    #[test]
    fn signed_netlist_multiplier_exact(a in -16i64..16, b in -16i64..16) {
        let nl = axcircuit::builder::MultiplierSpec::signed(5, 5).build().unwrap();
        let got = nl.eval_words(&[(a as u64) & 0x1F, (b as u64) & 0x1F]).unwrap();
        prop_assert_eq!(got, ((a * b) as u64) & 0x3FF);
    }

    /// Dropping more partial-product cells never increases gate count.
    #[test]
    fn truncation_monotone_in_gates(k1 in 0u32..8, k2 in 0u32..8) {
        let (lo, hi) = (k1.min(k2), k1.max(k2));
        let a = axcircuit::approx::truncated_unsigned(8, lo).unwrap();
        let b = axcircuit::approx::truncated_unsigned(8, hi).unwrap();
        prop_assert!(b.n_gates() <= a.n_gates());
    }

    /// LUT binary serialization round-trips for arbitrary tables.
    #[test]
    fn lut_bytes_roundtrip(mask in 0u32..0xFFFF, signed in any::<bool>()) {
        let s = if signed { Signedness::Signed } else { Signedness::Unsigned };
        let lut = MulLut::from_fn(s, |a, b| (a * b) ^ (mask as i32));
        let back = MulLut::from_bytes(&lut.to_bytes(), s).unwrap();
        prop_assert_eq!(back, lut);
    }

    /// Quantization: zero is exactly representable and the round-trip
    /// error is bounded by half a step, for arbitrary ranges.
    #[test]
    fn quantization_invariants(lo in -100.0f32..0.0, span in 0.01f32..200.0, x in -100.0f32..100.0) {
        let hi = lo + span;
        let p = QuantParams::from_range(lo, hi, QuantRange::i8(), RoundMode::NearestEven);
        prop_assert_eq!(p.dequantize(p.quantize(0.0)), 0.0);
        let clamped = x.clamp(lo.min(0.0), hi.max(0.0));
        let back = p.dequantize(p.quantize(clamped));
        prop_assert!((back - clamped).abs() <= 0.75 * p.scale() + 1e-5);
    }

    /// GEMM-formulated f32 convolution equals the direct definition for
    /// random geometries.
    #[test]
    fn conv_gemm_equals_direct(
        n in 1usize..3, hw in 4usize..9, c_in in 1usize..4, c_out in 1usize..4,
        k in 1usize..4, stride in 1usize..3, same in any::<bool>(), seed in 0u64..1000,
    ) {
        let padding = if same { Padding::Same } else { Padding::Valid };
        prop_assume!(hw >= k);
        let geom = ConvGeometry::default().with_stride(stride).with_padding(padding);
        let input = rng::uniform(Shape4::new(n, hw, hw, c_in), seed, -1.0, 1.0);
        let filter = rng::uniform_filter(FilterShape::new(k, k, c_in, c_out), seed + 1, -0.5, 0.5);
        let d = ops::conv2d_direct(&input, &filter, geom).unwrap();
        let g = ops::conv2d_gemm(&input, &filter, geom).unwrap();
        prop_assert!(d.max_abs_diff(&g).unwrap() < 1e-4);
    }

    /// The two CPU emulation backends agree bit-tightly on random
    /// convolutions with random catalog-style LUTs.
    #[test]
    fn cpu_backends_agree(seed in 0u64..500, trunc in 0u32..8, stride in 1usize..3) {
        let input = rng::uniform(Shape4::new(2, 6, 6, 2), seed, -1.0, 1.0);
        let filter = rng::uniform_filter(FilterShape::new(3, 3, 2, 3), seed + 9, -0.5, 0.5);
        let lut = MulLut::from_fn(Signedness::Signed, move |a, b| {
            let exact = a * b;
            (exact >> trunc) << trunc
        });
        let geom = ConvGeometry::default().with_stride(stride);
        let run = |backend: Backend| {
            let ctx = Arc::new(EmuContext::new(backend).with_chunk_size(1).unwrap());
            AxConv2D::new(filter.clone(), geom, lut.clone(), ctx)
                .convolve(&input)
                .unwrap()
        };
        let a = run(Backend::CpuDirect);
        let b = run(Backend::CpuGemm);
        prop_assert!(a.max_abs_diff(&b).unwrap() < 1e-4);
    }

    /// Eq. 4's correction is an identity: for an exact LUT the emulated
    /// output equals the plain quantized convolution regardless of the
    /// zero-points involved.
    #[test]
    fn eq4_identity_random_ranges(
        lo_i in -4.0f32..-0.1, hi_i in 0.1f32..4.0,
        lo_f in -2.0f32..-0.05, hi_f in 0.05f32..2.0,
        seed in 0u64..300,
    ) {
        let input = rng::uniform(Shape4::new(1, 5, 5, 2), seed, lo_i, hi_i);
        let filter = rng::uniform_filter(FilterShape::new(3, 3, 2, 2), seed + 3, lo_f, hi_f);
        let ctx = Arc::new(EmuContext::new(Backend::CpuDirect));
        let layer = AxConv2D::new(
            filter.clone(),
            ConvGeometry::default(),
            MulLut::exact(Signedness::Signed),
            ctx,
        );
        let out = layer.convolve(&input).unwrap();
        // Against the f32 convolution: only quantization noise remains.
        let float_ref = ops::conv2d_direct(&input, &filter, ConvGeometry::default()).unwrap();
        let in_scale = (hi_i.max(0.0) - lo_i.min(0.0)) / 255.0;
        let f_scale = (hi_f.max(0.0) - lo_f.min(0.0)) / 255.0;
        let bound = 18.0 * (in_scale * 2.0 + f_scale * 4.0) + 1e-3;
        prop_assert!(out.max_abs_diff(&float_ref).unwrap() < bound);
    }

    /// Batch chunking never changes the emulated output.
    #[test]
    fn chunking_invariant(seed in 0u64..200, chunk in 1usize..6) {
        let input = rng::uniform(Shape4::new(5, 5, 5, 2), seed, -1.0, 1.0);
        let filter = rng::uniform_filter(FilterShape::new(3, 3, 2, 2), seed + 7, -0.5, 0.5);
        let lut = MulLut::exact(Signedness::Signed);
        let run = |c: usize| {
            let ctx = Arc::new(EmuContext::new(Backend::CpuGemm).with_chunk_size(c).unwrap());
            AxConv2D::new(filter.clone(), ConvGeometry::default(), lut.clone(), ctx)
                .convolve(&input)
                .unwrap()
        };
        prop_assert!(run(chunk).max_abs_diff(&run(5)).unwrap() < 1e-6);
    }

    /// Texture-cache accesses preserve the hit+miss = total invariant and
    /// hit rate is within [0, 1] for arbitrary access streams.
    #[test]
    fn cache_stats_invariants(indices in proptest::collection::vec(0u32..65536, 1..400)) {
        let mut cache = gpusim::TextureCache::new(4096, 32, 4);
        for &i in &indices {
            cache.access(i);
        }
        let s = cache.stats();
        prop_assert_eq!(s.total(), indices.len() as u64);
        prop_assert!((0.0..=1.0).contains(&s.hit_rate()));
        // Re-touching the last index immediately must hit.
        let last = *indices.last().unwrap();
        prop_assert_eq!(cache.access(last), gpusim::texture::Access::Hit);
    }
}
