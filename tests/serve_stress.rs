//! Concurrency stress tests of the serving engine.
//!
//! N client threads hammer one `ServeEngine` with interleaved single- and
//! multi-image requests. Every test asserts the engine's three hard
//! contracts:
//!
//! 1. **No deadlock** — each test body runs under a watchdog thread and
//!    fails fast (instead of hanging the runner) if it exceeds its
//!    timeout.
//! 2. **Exactly one response per request** — every submitted request
//!    resolves exactly once; nothing is lost or duplicated.
//! 3. **Bit identity** — a served response equals serial
//!    `Session::infer` of the same input, regardless of batch
//!    composition, arrival order, flush window, or shard count.

use axnn::layers::{Conv2D, ReLU};
use axnn::Graph;
use axtensor::{rng, ConvGeometry, FilterShape, Shape4, Tensor};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::Duration;
use tfapprox::serve::{ServeConfig, ServeEngine, ServeError, SessionKey, SessionRegistry};
use tfapprox::{Assignment, Backend, Error, Session};

/// Hard watchdog: run `body` on its own thread and panic if it does not
/// finish within `timeout` — a deadlocked engine fails the suite instead
/// of hanging it.
fn with_watchdog<F: FnOnce() + Send + 'static>(timeout: Duration, body: F) {
    let (tx, rx) = mpsc::channel();
    let worker = thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    match rx.recv_timeout(timeout) {
        Ok(()) => worker.join().expect("stress body panicked"),
        Err(_) => panic!("watchdog: stress body exceeded {timeout:?} — deadlock?"),
    }
}

/// A small two-conv + ReLU graph: fast enough to hammer in debug mode,
/// deep enough to exercise the transform and the chunked backends.
fn tiny_graph() -> Graph {
    let mut g = Graph::new();
    let x = g.input();
    let f1 = rng::uniform_filter(FilterShape::new(3, 3, 2, 3), 7, -0.5, 0.5);
    let c1 = g
        .add(
            "conv1",
            Arc::new(Conv2D::new(f1, ConvGeometry::default())),
            &[x],
        )
        .unwrap();
    let r1 = g.add("relu1", Arc::new(ReLU::new()), &[c1]).unwrap();
    let f2 = rng::uniform_filter(FilterShape::new(3, 3, 3, 2), 8, -0.5, 0.5);
    let c2 = g
        .add(
            "conv2",
            Arc::new(Conv2D::new(f2, ConvGeometry::default())),
            &[r1],
        )
        .unwrap();
    g.set_output(c2).unwrap();
    g
}

/// One shared session for the whole suite (compilation is not what these
/// tests measure).
fn shared_session() -> Arc<Session> {
    static SESSION: OnceLock<Arc<Session>> = OnceLock::new();
    Arc::clone(SESSION.get_or_init(|| {
        let mult = axmult::catalog::by_name("mul8s_bam_v8h0").unwrap();
        Arc::new(
            Session::builder()
                .backend(Backend::CpuGemm)
                .chunk_size(4)
                .threads(2)
                .multiplier(&mult)
                .compile(&tiny_graph())
                .unwrap(),
        )
    }))
}

/// Deterministic request input: `seed` fixes the data, `images` the batch
/// size (0 is legal and exercises the shaped-empty path).
fn request(seed: u64, images: usize) -> Tensor<f32> {
    rng::uniform(Shape4::new(images, 5, 5, 2), seed, -1.0, 1.0)
}

/// Serial golden outputs for seeds `0..seeds`, one per (seed, size) used
/// by the stress clients.
fn serial_golden(session: &Session, seeds: u64) -> HashMap<(u64, usize), Tensor<f32>> {
    let mut golden = HashMap::new();
    for seed in 0..seeds {
        for images in 0..4 {
            golden.insert(
                (seed, images),
                session.infer(&request(seed, images)).unwrap(),
            );
        }
    }
    golden
}

/// The core stress body: `clients` threads × `per_client` requests of
/// interleaved sizes against one engine; every response checked for bit
/// identity and counted exactly once.
fn hammer(shards: usize, clients: usize, per_client: usize, config: ServeConfig) {
    let session = shared_session();
    let golden = serial_golden(&session, clients as u64);
    let engine = ServeEngine::new(Arc::clone(&session), config).unwrap();
    let responses: Vec<usize> = thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let engine = &engine;
                let golden = &golden;
                scope.spawn(move || {
                    let mut answered = 0usize;
                    for i in 0..per_client {
                        // Interleave single-image, multi-image, and the
                        // occasional zero-image request.
                        let images = [1, 2, 3, 1, 0][i % 5];
                        let seed = c as u64;
                        let out = engine
                            .infer(request(seed, images))
                            .unwrap_or_else(|e| panic!("client {c} request {i}: {e}"));
                        assert_eq!(
                            &out,
                            &golden[&(seed, images)],
                            "client {c} request {i} (images {images}) differs from serial \
                             Session::infer on {shards} shard(s)"
                        );
                        answered += 1;
                    }
                    answered
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let total: usize = responses.iter().sum();
    assert_eq!(
        total,
        clients * per_client,
        "every request must get exactly one response"
    );
    let stats = engine.stats();
    assert_eq!(stats.requests, (clients * per_client) as u64);
    assert_eq!(stats.shed, 0, "queue was deep enough — nothing may shed");
    assert!(stats.batches >= 1 && stats.batches <= stats.requests);
}

/// The multi-tenant stress body: a registry with three tenants (the
/// anchor plus two multiplier variants), `clients` threads round-robining
/// keyed requests of interleaved sizes. Every response must be
/// bit-identical to a solo `Session::infer` on **its own** tenant's
/// session — micro-batches never mix tenants, so neither do bits.
fn hammer_multi_tenant(shards: usize, clients: usize, per_client: usize, capacity: usize) {
    let anchor = shared_session(); // mul8s_bam_v8h0
    let registry = Arc::new(SessionRegistry::new(capacity).unwrap());
    let key_anchor = registry.install("tiny", Arc::clone(&anchor)).unwrap();
    let variant = |name: &str| {
        registry
            .admit(
                "tiny",
                &Assignment::uniform(axmult::catalog::by_name(name).unwrap()),
            )
            .unwrap()
    };
    let keys: Vec<SessionKey> = vec![
        key_anchor.clone(),
        variant("mul8s_exact"),
        variant("mul8s_drum4"),
    ];
    // Independent solo sessions as goldens (not resolved through the
    // registry, so a registry bug cannot hide behind shared state).
    let solo = |name: &str| {
        let mult = axmult::catalog::by_name(name).unwrap();
        Arc::new(
            Session::builder()
                .backend(Backend::CpuGemm)
                .chunk_size(4)
                .threads(2)
                .multiplier(&mult)
                .compile(&tiny_graph())
                .unwrap(),
        )
    };
    let solos: Vec<Arc<Session>> = vec![
        Arc::clone(&anchor),
        solo("mul8s_exact"),
        solo("mul8s_drum4"),
    ];
    let mut golden: HashMap<(usize, u64, usize), Tensor<f32>> = HashMap::new();
    for (t, s) in solos.iter().enumerate() {
        for seed in 0..clients as u64 {
            for images in 0..4 {
                golden.insert((t, seed, images), s.infer(&request(seed, images)).unwrap());
            }
        }
    }

    let engine = ServeEngine::with_registry(
        Arc::clone(&registry),
        key_anchor,
        ServeConfig::new()
            .with_shards(shards)
            .with_max_batch_images(4)
            .with_flush_ticks(1)
            .with_queue_depth(4096),
    )
    .unwrap();
    thread::scope(|scope| {
        for c in 0..clients {
            let engine = &engine;
            let keys = &keys;
            let golden = &golden;
            scope.spawn(move || {
                for i in 0..per_client {
                    let tenant = (c + i) % keys.len();
                    let images = [1, 2, 3, 1, 0][i % 5];
                    let seed = c as u64;
                    let out = engine
                        .infer_to(&keys[tenant], request(seed, images))
                        .unwrap_or_else(|e| panic!("client {c} request {i}: {e}"));
                    assert_eq!(
                        &out,
                        &golden[&(tenant, seed, images)],
                        "client {c} request {i} (tenant {tenant}, images {images}) differs \
                         from its tenant's serial Session::infer on {shards} shard(s)"
                    );
                }
            });
        }
    });
    let stats = engine.stats();
    assert_eq!(stats.requests, (clients * per_client) as u64);
    assert_eq!(stats.shed, 0, "queue was deep enough — nothing may shed");
    assert_eq!(stats.deadline_shed, 0, "no deadlines were set");
    assert!(stats.p50_latency_s > 0.0 && stats.p50_latency_s <= stats.p99_latency_s);
}

/// Starvation regression: a hot tenant saturating the submission queue
/// with already-expired requests must not make a cold tenant's requests
/// disappear. While the single shard is parked, the queue stays full —
/// the cold tenant's submissions come back as explicit
/// [`ServeError::Overloaded`] (never a silent drop), the hot tenant's
/// accepted-but-expired requests surface as deadline sheds charged to
/// *its* per-tenant row, and after the storm the cold tenant is served
/// bit-identically. Every counter is checked for exact equality with the
/// client-side tally.
#[test]
fn hot_tenant_cannot_silently_starve_cold_tenants() {
    with_watchdog(Duration::from_secs(120), || {
        const QUEUE_DEPTH: usize = 4;
        let anchor = shared_session();
        let registry = Arc::new(SessionRegistry::new(2).unwrap());
        let hot_key = registry.install("tiny", Arc::clone(&anchor)).unwrap();
        let cold_key = registry
            .admit(
                "tiny",
                &Assignment::uniform(axmult::catalog::by_name("mul8s_exact").unwrap()),
            )
            .unwrap();
        let cold_golden = {
            let mult = axmult::catalog::by_name("mul8s_exact").unwrap();
            let solo = Session::builder()
                .backend(Backend::CpuGemm)
                .chunk_size(4)
                .threads(2)
                .multiplier(&mult)
                .compile(&tiny_graph())
                .unwrap();
            solo.infer(&request(7, 2)).unwrap()
        };
        let engine = ServeEngine::with_registry(
            Arc::clone(&registry),
            hot_key.clone(),
            ServeConfig::new()
                .with_shards(1)
                .with_max_batch_images(1)
                .with_flush_ticks(0)
                .with_queue_depth(QUEUE_DEPTH),
        )
        .unwrap();

        // Park the single shard on a large batch: until it finishes, no
        // pops happen and the queue can only fill.
        let busy = engine.submit(request(99, 32)).unwrap();

        // The hot tenant floods with zero-budget requests — every
        // accepted one is doomed to a deadline shed at pop time. (The
        // shard may pop the parked request off the queue concurrently, so
        // occupancy at acceptance time is racy; the client-side tallies
        // below are what must reconcile exactly.)
        let mut hot_doomed = Vec::new();
        let mut hot_overloaded = 0u64;
        let mut hot_seed = 0u64;
        let mut flood = |hot_doomed: &mut Vec<_>, hot_overloaded: &mut u64| {
            // Submit until the queue rejects: on return the queue was full
            // a moment ago.
            for _ in 0..2 * QUEUE_DEPTH + 8 {
                hot_seed += 1;
                match engine.submit_within(&hot_key, request(hot_seed, 1), Duration::ZERO) {
                    Ok(t) => hot_doomed.push(t),
                    Err(Error::Serve(ServeError::Overloaded { depth })) => {
                        assert_eq!(depth, QUEUE_DEPTH);
                        *hot_overloaded += 1;
                        return true;
                    }
                    Err(e) => panic!("hot flood: unexpected error {e}"),
                }
            }
            false
        };
        assert!(
            flood(&mut hot_doomed, &mut hot_overloaded),
            "a zero-budget flood must hit the queue bound"
        );

        // The cold tenant knocks while the queue is saturated: the shed
        // must be an explicit, typed error — not a vanished request. A
        // pop can race between the flood and the knock, so top up and
        // retry (bounded); accepted knocks carry no deadline and must all
        // be answered later.
        let mut cold_overloaded = 0u64;
        let mut cold_pending = Vec::new();
        let mut cold_shed_observed = false;
        for _ in 0..100 {
            assert!(flood(&mut hot_doomed, &mut hot_overloaded));
            match engine.submit_to(&cold_key, request(7, 2)) {
                Err(Error::Serve(ServeError::Overloaded { depth })) => {
                    assert_eq!(depth, QUEUE_DEPTH);
                    cold_overloaded += 1;
                    cold_shed_observed = true;
                    break;
                }
                Ok(t) => cold_pending.push(t),
                Err(e) => panic!("cold tenant: unexpected error {e}"),
            }
        }
        assert!(
            cold_shed_observed,
            "a saturated queue must surface to the cold tenant as Overloaded"
        );

        // Drain the storm: the parked batch answers, every accepted hot
        // request resolves as DeadlineExceeded (exactly once each).
        assert!(busy.wait().is_ok());
        let hot_doomed_n = hot_doomed.len() as u64;
        for (i, t) in hot_doomed.into_iter().enumerate() {
            match t.wait() {
                Err(Error::Serve(ServeError::DeadlineExceeded { budget })) => {
                    assert_eq!(budget, Duration::ZERO)
                }
                other => panic!("doomed hot request {i} resolved as {other:?}"),
            }
        }
        let mut cold_answered = 0u64;
        for t in cold_pending {
            let out = t.wait().expect("accepted cold knock must be answered");
            assert_eq!(out, cold_golden, "cold tenant served wrong bits");
            cold_answered += 1;
        }

        // After the storm the cold tenant is served, bit-identical to its
        // own solo session.
        loop {
            match engine.infer_to(&cold_key, request(7, 2)) {
                Ok(out) => {
                    assert_eq!(out, cold_golden, "cold tenant served wrong bits");
                    cold_answered += 1;
                    break;
                }
                Err(Error::Serve(ServeError::Overloaded { .. })) => {
                    cold_overloaded += 1; // storm still draining — retry
                    thread::yield_now();
                }
                Err(e) => panic!("cold tenant retry: unexpected error {e}"),
            }
        }

        // Exact accounting under contention: every client-side outcome
        // reappears in exactly one engine counter.
        let stats = engine.stats();
        assert_eq!(stats.shed, hot_overloaded + cold_overloaded);
        assert_eq!(stats.deadline_shed, hot_doomed_n);
        assert_eq!(stats.requests, 1 + cold_answered);
        let row = |key: &SessionKey| {
            stats
                .per_tenant
                .iter()
                .find(|t| &t.key == key)
                .unwrap_or_else(|| panic!("missing per-tenant row for {key}"))
                .clone()
        };
        let hot = row(&hot_key);
        assert_eq!(
            hot.requests, 1,
            "only the parked batch answered for the hot tenant"
        );
        assert_eq!(hot.deadline_shed, hot_doomed_n);
        let cold = row(&cold_key);
        assert_eq!(cold.requests, cold_answered);
        assert_eq!(
            cold.deadline_shed, 0,
            "cold tenant never carried a deadline"
        );
        let per_tenant_sum: u64 = stats.per_tenant.iter().map(|t| t.deadline_shed).sum();
        assert_eq!(per_tenant_sum, stats.deadline_shed);
    });
}

#[test]
fn stress_multi_tenant_two_shards() {
    with_watchdog(Duration::from_secs(120), || {
        hammer_multi_tenant(2, 6, 15, 4);
    });
}

#[test]
fn stress_multi_tenant_four_shards_with_eviction_churn() {
    // Capacity 1 forces the two non-anchor tenants to evict each other
    // continuously while four shards serve all three.
    with_watchdog(Duration::from_secs(120), || {
        hammer_multi_tenant(4, 6, 12, 1);
    });
}

#[test]
fn stress_one_shard() {
    with_watchdog(Duration::from_secs(120), || {
        hammer(
            1,
            6,
            15,
            ServeConfig::new()
                .with_shards(1)
                .with_max_batch_images(4)
                .with_flush_ticks(1)
                .with_queue_depth(1024),
        );
    });
}

#[test]
fn stress_two_shards() {
    with_watchdog(Duration::from_secs(120), || {
        hammer(
            2,
            6,
            15,
            ServeConfig::new()
                .with_shards(2)
                .with_max_batch_images(4)
                .with_flush_ticks(1)
                .with_queue_depth(1024),
        );
    });
}

#[test]
fn stress_four_shards() {
    with_watchdog(Duration::from_secs(120), || {
        hammer(
            4,
            8,
            15,
            ServeConfig::new()
                .with_shards(4)
                .with_max_batch_images(6)
                .with_flush_ticks(2)
                .with_queue_depth(1024),
        );
    });
}

#[test]
fn async_submission_resolves_out_of_order_waits() {
    // Submit everything first, wait in reverse order: tickets are
    // independent oneshots, so wait order must not matter.
    with_watchdog(Duration::from_secs(120), || {
        let session = shared_session();
        let engine = ServeEngine::new(
            Arc::clone(&session),
            ServeConfig::new().with_shards(2).with_max_batch_images(4),
        )
        .unwrap();
        let tickets: Vec<_> = (0..20)
            .map(|i| {
                let images = (i % 3) + 1;
                (
                    i as u64,
                    images,
                    engine.submit(request(i as u64, images)).unwrap(),
                )
            })
            .collect();
        for (seed, images, ticket) in tickets.into_iter().rev() {
            let out = ticket.wait().unwrap();
            assert_eq!(out, session.infer(&request(seed, images)).unwrap());
        }
    });
}

#[test]
fn zero_image_request_through_engine_matches_serial() {
    with_watchdog(Duration::from_secs(60), || {
        let session = shared_session();
        let engine = ServeEngine::new(Arc::clone(&session), ServeConfig::new()).unwrap();
        let out = engine.infer(request(3, 0)).unwrap();
        let serial = session.infer(&request(3, 0)).unwrap();
        assert_eq!(out, serial);
        assert_eq!(out.shape().n, 0);
        assert_eq!(out.shape().c, 2, "shaped-empty output, not just empty");
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Randomized segment layouts through the fused path: any request
    /// composition (zero-image segments included) run through
    /// `Session::infer_fused` directly AND through the engine — fusion
    /// toggled on and off — stays bit-identical to serial inference.
    #[test]
    fn proptest_random_segment_layouts_fuse_bit_identically(
        sizes in proptest::collection::vec(0usize..4, 1..16),
        budget in 1usize..9,
        shards in 1usize..3,
        fuse in any::<bool>(),
    ) {
        let sizes_for_watchdog = sizes.clone();
        with_watchdog(Duration::from_secs(120), move || {
            let sizes = sizes_for_watchdog;
            let session = shared_session();
            let golden: Vec<Tensor<f32>> = sizes
                .iter()
                .enumerate()
                .map(|(i, &n)| session.infer(&request(i as u64, n)).unwrap())
                .collect();
            // Direct fused inference over the raw composition.
            let requests: Vec<Tensor<f32>> = sizes
                .iter()
                .enumerate()
                .map(|(i, &n)| request(i as u64, n))
                .collect();
            let fused = session.infer_fused(&requests).unwrap();
            assert_eq!(fused.len(), sizes.len());
            for (i, out) in fused.iter().enumerate() {
                assert_eq!(
                    out, &golden[i],
                    "direct infer_fused diverged on request {i} of layout {sizes:?}"
                );
            }
            // The engine path, with the composition shaped by coalescing.
            let engine = ServeEngine::new(
                Arc::clone(&session),
                ServeConfig::new()
                    .with_shards(shards)
                    .with_max_batch_images(budget)
                    .with_flush_ticks(1)
                    .with_queue_depth(4096)
                    .with_fuse_batches(fuse),
            )
            .unwrap();
            let tickets: Vec<_> = sizes
                .iter()
                .enumerate()
                .map(|(i, &n)| (i, engine.submit(request(i as u64, n)).unwrap()))
                .collect();
            for (i, ticket) in tickets {
                assert_eq!(
                    ticket.wait().unwrap(),
                    golden[i],
                    "engine (fuse={fuse}) diverged on request {i} of layout {sizes:?} \
                     under budget {budget}, {shards} shard(s)"
                );
            }
            if !fuse {
                assert_eq!(engine.stats().fused_batches, 0);
            }
        });
    }

    /// Randomized arrival orders, request sizes, batch budgets, flush
    /// windows, and shard counts: every response stays bit-identical to
    /// serial inference and every ticket resolves exactly once.
    #[test]
    fn proptest_random_arrivals_stay_bit_identical(
        sizes in proptest::collection::vec(0usize..4, 1..24),
        budget in 1usize..9,
        flush in 0usize..3,
        shards in 1usize..4,
    ) {
        let sizes_for_watchdog = sizes.clone();
        with_watchdog(Duration::from_secs(120), move || {
            let session = shared_session();
            let engine = ServeEngine::new(
                Arc::clone(&session),
                ServeConfig::new()
                    .with_shards(shards)
                    .with_max_batch_images(budget)
                    .with_flush_ticks(flush)
                    .with_queue_depth(4096),
            )
            .unwrap();
            // Arrival order is the vector order; submissions are
            // immediate so coalescing composition varies per case.
            let tickets: Vec<_> = sizes_for_watchdog
                .iter()
                .enumerate()
                .map(|(i, &images)| (i as u64, images, engine.submit(request(i as u64, images)).unwrap()))
                .collect();
            let mut resolved = 0usize;
            for (seed, images, ticket) in tickets {
                let out = ticket.wait().unwrap();
                let serial = session.infer(&request(seed, images)).unwrap();
                assert_eq!(
                    out, serial,
                    "request (seed {seed}, images {images}) differs under budget \
                     {budget}, flush {flush}, shards {shards}"
                );
                resolved += 1;
            }
            assert_eq!(resolved, sizes_for_watchdog.len());
        });
    }
}
