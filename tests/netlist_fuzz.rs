//! Seeded mutation fuzzer for the textual netlist parser.
//!
//! The committed corpus under `tests/corpus/netlist/` seeds a
//! deterministic byte/line-level mutator; every mutant is fed to
//! [`axcircuit::text::parse`] under `catch_unwind`. The contract:
//!
//! - `parse` never panics, on any input — malformed sources must come
//!   back as typed [`CircuitError`]s;
//! - whenever a mutant *does* parse, `format` → `parse` round-trips it to
//!   a structurally equal netlist (canonical renaming is lossless).
//!
//! Iterations are bounded so the suite stays CI-sized. When a mutant
//! trips either invariant the test fails with a line-minimized
//! reproducer; commit that reproducer into the corpus as a new
//! `crash_*.nl` seed so it is replayed verbatim forever after.

use axcircuit::text::{format, parse};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// Mutants per corpus seed. The whole run is a few thousand parses of
/// sub-kilobyte sources — well under a second.
const MUTANTS_PER_SEED: usize = 120;
/// Cap on mutant size, so insertion mutations cannot balloon the corpus.
const MAX_MUTANT_BYTES: usize = 4096;

/// Deterministic 64-bit LCG (MMIX constants) — the fuzzer must replay
/// byte-identically across runs and platforms.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 11
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/netlist")
}

/// Every committed seed, sorted by file name for a stable mutation
/// schedule.
fn corpus() -> Vec<(String, String)> {
    let mut seeds: Vec<(String, String)> = std::fs::read_dir(corpus_dir())
        .expect("corpus dir exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "nl"))
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let body = std::fs::read_to_string(&p).expect("corpus file reads");
            (name, body)
        })
        .collect();
    seeds.sort();
    assert!(
        seeds.len() >= 30,
        "corpus shrank to {} seeds — malformed cases must stay committed",
        seeds.len()
    );
    seeds
}

/// One mutation step: small, structure-aware edits that keep most mutants
/// near the grammar (where parser bugs live) while still exercising raw
/// byte noise.
fn mutate(src: &str, rng: &mut Lcg, splice_pool: &[(String, String)]) -> String {
    let mut bytes = src.as_bytes().to_vec();
    match rng.below(8) {
        // Flip one byte.
        0 if !bytes.is_empty() => {
            let i = rng.below(bytes.len());
            bytes[i] ^= 1 << rng.below(8);
        }
        // Delete a byte span.
        1 if !bytes.is_empty() => {
            let i = rng.below(bytes.len());
            let n = 1 + rng.below(8).min(bytes.len() - i - 1);
            bytes.drain(i..i + n);
        }
        // Insert grammar-ish tokens.
        2 => {
            const TOKENS: [&str; 10] = [
                ".gate",
                ".operands",
                ".outputs",
                ".end",
                ".model",
                " and ",
                " = ",
                "a0",
                "\n",
                " 99 ",
            ];
            let i = rng.below(bytes.len() + 1);
            let tok = TOKENS[rng.below(TOKENS.len())];
            bytes.splice(i..i, tok.bytes());
        }
        // Duplicate a line.
        3 => {
            let lines: Vec<&str> = src.lines().collect();
            if !lines.is_empty() {
                let mut lines = lines;
                let i = rng.below(lines.len());
                lines.insert(i, lines[i]);
                return lines.join("\n");
            }
        }
        // Drop a line.
        4 => {
            let lines: Vec<&str> = src.lines().collect();
            if lines.len() > 1 {
                let mut lines = lines;
                lines.remove(rng.below(lines.len()));
                return lines.join("\n");
            }
        }
        // Swap two lines (breaks definition order).
        5 => {
            let mut lines: Vec<&str> = src.lines().collect();
            if lines.len() > 1 {
                let (i, j) = (rng.below(lines.len()), rng.below(lines.len()));
                lines.swap(i, j);
                return lines.join("\n");
            }
        }
        // Splice the head of this seed onto the tail of another.
        6 => {
            let other = &splice_pool[rng.below(splice_pool.len())].1;
            let cut_a = rng.below(src.len() + 1);
            let cut_b = rng.below(other.len() + 1);
            let mut s = String::new();
            s.push_str(&src[..floor_char(src, cut_a)]);
            s.push_str(&other[floor_char(other, cut_b)..]);
            return s;
        }
        // Truncate mid-source.
        _ if !bytes.is_empty() => {
            bytes.truncate(rng.below(bytes.len()));
        }
        _ => {}
    }
    bytes.truncate(MAX_MUTANT_BYTES);
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Largest char boundary `<= i` (splice cuts must stay valid UTF-8).
fn floor_char(s: &str, mut i: usize) -> usize {
    i = i.min(s.len());
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

/// `Ok(())` when the parser upholds both invariants on `src`; the failure
/// message otherwise.
fn check(src: &str) -> Result<(), String> {
    let parsed =
        catch_unwind(AssertUnwindSafe(|| parse(src))).map_err(|_| "parse panicked".to_string())?;
    let Ok(nl) = parsed else {
        return Ok(()); // Typed rejection is exactly the contract.
    };
    let text = format(&nl, "fuzz");
    let reparsed = catch_unwind(AssertUnwindSafe(|| parse(&text)))
        .map_err(|_| "parse panicked on formatted output".to_string())?
        .map_err(|e| format_args!("format output failed to reparse: {e}").to_string())?;
    if reparsed != nl {
        return Err("format -> parse round-trip drifted".to_string());
    }
    Ok(())
}

/// Shrink a failing source by repeatedly dropping lines (then trailing
/// bytes) while it keeps failing — the reproducer to commit.
fn minimize(src: &str) -> String {
    let mut best = src.to_string();
    let mut shrunk = true;
    while shrunk {
        shrunk = false;
        let lines: Vec<&str> = best.lines().collect();
        for skip in 0..lines.len() {
            let candidate: String = lines
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, l)| format_args!("{l}\n").to_string())
                .collect();
            if check(&candidate).is_err() {
                best = candidate;
                shrunk = true;
                break;
            }
        }
    }
    while !best.is_empty() && check(&best[..floor_char(&best, best.len() - 1)]).is_err() {
        best.truncate(floor_char(&best, best.len() - 1));
    }
    best
}

/// Every committed seed must itself uphold the invariants — this replays
/// past crashers (`crash_*.nl`) verbatim before any mutation runs.
#[test]
fn corpus_seeds_never_panic_and_round_trip() {
    for (name, body) in corpus() {
        if let Err(why) = check(&body) {
            panic!("corpus seed {name} violates the parser contract: {why}");
        }
        // Malformed seeds must stay malformed: a parser change that starts
        // accepting them silently weakens the typed-error surface.
        if name.starts_with("malformed_") || name.starts_with("dangling_") {
            assert!(
                parse(&body).is_err(),
                "corpus seed {name} unexpectedly parses now"
            );
        }
        if name.starts_with("valid_") {
            assert!(parse(&body).is_ok(), "corpus seed {name} stopped parsing");
        }
    }
}

/// The bounded mutation campaign: deterministic, so a failure here is
/// reproducible by rerunning the same binary.
#[test]
fn mutated_corpus_never_panics_and_round_trips() {
    let seeds = corpus();
    let mut rng = Lcg(0x5EED_CAFE_F00D_D00D);
    let mut executed = 0u64;
    for (name, body) in &seeds {
        let mut current = body.clone();
        for step in 0..MUTANTS_PER_SEED {
            // Alternate fresh single-step mutants with stacked mutations
            // of the previous mutant (deeper corruption).
            let mutant = if step % 3 == 0 {
                mutate(body, &mut rng, &seeds)
            } else {
                current = mutate(&current, &mut rng, &seeds);
                current.clone()
            };
            executed += 1;
            if let Err(why) = check(&mutant) {
                let minimized = minimize(&mutant);
                panic!(
                    "parser contract violated ({why}) on a mutant of {name} at step {step}.\n\
                     Minimized reproducer (commit as tests/corpus/netlist/crash_*.nl):\n\
                     ---\n{minimized}\n---"
                );
            }
        }
    }
    assert_eq!(executed, seeds.len() as u64 * MUTANTS_PER_SEED as u64);
}

/// Valid generator output survives heavy token-level mutation without ever
/// panicking — the fuzzer's "near-valid" frontier, where most historical
/// parser bugs (token counts, duplicate nets, order violations) live.
#[test]
fn mutated_generator_netlists_never_panic() {
    let canon = [
        format(&axcircuit::approx::exact_unsigned(8).expect("gen"), "m8"),
        format(
            &axcircuit::approx::broken_array_unsigned(8, 5, 2).expect("gen"),
            "bam",
        ),
        format(&axcircuit::approx::exact_signed(6).expect("gen"), "s6"),
    ];
    let pool: Vec<(String, String)> = canon
        .iter()
        .enumerate()
        .map(|(i, s)| (format_args!("gen_{i}").to_string(), s.clone()))
        .collect();
    let mut rng = Lcg(0xF02_BA11);
    for (name, body) in &pool {
        for step in 0..MUTANTS_PER_SEED {
            let mutant = mutate(body, &mut rng, &pool);
            if let Err(why) = check(&mutant) {
                let minimized = minimize(&mutant);
                panic!(
                    "parser contract violated ({why}) on a mutant of {name} at step {step}.\n\
                     Minimized reproducer (commit as tests/corpus/netlist/crash_*.nl):\n\
                     ---\n{minimized}\n---"
                );
            }
        }
    }
}
