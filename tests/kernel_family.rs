//! Cross-kernel differential suite: every member of the LUT-GEMM kernel
//! family this host can execute must be **bit-identical** to the golden
//! untiled [`lut_gemm_reference`] — across matrix shapes (including `K`
//! not divisible by any vector width), tile configurations, worker-pool
//! sizes, segment layouts, every catalog multiplier (signed and
//! unsigned), and all three accumulator models. The forced-scalar escape
//! hatch is exercised by the same sweep: `KernelKind::ScalarTiled` is
//! always in [`available_kernels`].

use axmult::{AxMultiplier, Signedness};
use axquant::{QuantParams, QuantRange, RoundMode};
use axtensor::{rng, FilterShape, Matrix, SegmentTable};
use proptest::prelude::*;
use std::sync::OnceLock;
use tfapprox::kernel::dispatch::{lut_gemm_dispatch, lut_gemm_dispatch_seg};
use tfapprox::kernel::{lut_gemm_reference, lut_gemm_reference_seg, TileConfig};
use tfapprox::{available_kernels, Accumulator, KernelKind, PreparedFilter, WorkerPool};

/// The full multiplier catalog, built once for the whole suite (the
/// circuit-backed entries are expensive to regenerate per proptest case).
fn catalog() -> &'static [AxMultiplier] {
    static CATALOG: OnceLock<Vec<AxMultiplier>> = OnceLock::new();
    CATALOG.get_or_init(|| axmult::catalog().expect("catalog builds"))
}

/// Filter-bank shapes whose patch lengths probe the kernels' blocking
/// edges: `K ∈ {16, 27, 50, 63}` — one multiple of the 16-lane vector
/// width and three deliberate stragglers that force scalar tails.
fn filter_shape(ix: usize, c_out: usize) -> FilterShape {
    match ix {
        0 => FilterShape::new(1, 1, 16, c_out),
        1 => FilterShape::new(3, 3, 3, c_out),
        2 => FilterShape::new(5, 5, 2, c_out),
        _ => FilterShape::new(3, 3, 7, c_out),
    }
}

/// All three accumulator models. Only `Exact` may take a SIMD arm; the
/// order-sensitive models must downgrade to scalar inside dispatch and
/// still match the reference bit for bit.
fn accumulators() -> [Accumulator; 3] {
    [
        Accumulator::Exact,
        Accumulator::Saturating(16),
        Accumulator::Wrapping(12),
    ]
}

/// A deterministic patch matrix covering the full byte range, plus the
/// logical patch sums under the multiplier's signedness.
fn patches_for(rows: usize, k: usize, seed: u64, signedness: Signedness) -> (Matrix<u8>, Vec<i64>) {
    let bytes: Vec<u8> = (0..rows * k)
        .map(|i| ((i as u64 ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as u8)
        .collect();
    let patches = Matrix::from_vec(rows, k, bytes).expect("sized");
    let sums: Vec<i64> = (0..rows)
        .map(|r| {
            patches
                .row(r)
                .iter()
                .map(|&b| match signedness {
                    Signedness::Signed => i64::from(b as i8),
                    Signedness::Unsigned => i64::from(b),
                })
                .sum()
        })
        .collect();
    (patches, sums)
}

fn plan_for(fs: FilterShape, seed: u64) -> PreparedFilter {
    let filter = rng::uniform_filter(fs, seed ^ 5, -0.5, 0.5);
    let filter_q = QuantParams::from_range(-0.5, 0.5, QuantRange::i8(), RoundMode::NearestEven);
    PreparedFilter::from_filter(&filter, &filter_q.into())
}

fn input_q_for(segment: usize) -> QuantParams {
    // Distinct (α, β) per segment so a kernel that mixes up segment
    // epilogues cannot cancel out.
    let span = 1.0 + 0.25 * segment as f32;
    QuantParams::from_range(-span, span, QuantRange::i8(), RoundMode::NearestEven)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Single-segment entry point: every available kernel × every catalog
    /// multiplier × every accumulator model equals the reference.
    #[test]
    fn every_kernel_matches_the_reference(
        seed in 0u64..1000,
        rows in 0usize..48,
        shape_ix in 0usize..4,
        c_out in 1usize..6,
        small_tiles in any::<bool>(),
        threads in 1usize..5,
    ) {
        let fs = filter_shape(shape_ix, c_out);
        let plan = plan_for(fs, seed);
        let input_q = input_q_for(0);
        let tiles = if small_tiles {
            TileConfig::new(3, 7, 2).unwrap()
        } else {
            TileConfig::default()
        };
        let pool = WorkerPool::new(threads);
        for mult in catalog() {
            let (patches, sums) = patches_for(rows, fs.patch_len(), seed, mult.lut().signedness());
            for accumulator in accumulators() {
                let reference = lut_gemm_reference(
                    &patches, &sums, &plan, input_q, mult.lut(), accumulator,
                );
                for kernel in available_kernels() {
                    let out = lut_gemm_dispatch(
                        kernel, &patches, &sums, &plan, input_q, mult.lut(), accumulator,
                        tiles, &pool,
                    );
                    prop_assert_eq!(
                        &out, &reference,
                        "{} != reference ({}, {:?}, threads {})",
                        kernel, mult.name(), accumulator, threads
                    );
                }
            }
        }
    }

    /// Segmented entry point: random segment layouts (zero-length
    /// segments included) with per-segment quantization, every kernel ×
    /// every accumulator on a signed and an unsigned catalog multiplier.
    #[test]
    fn every_kernel_matches_the_segmented_reference(
        seed in 0u64..1000,
        counts in proptest::collection::vec(0usize..12, 1..5),
        shape_ix in 0usize..4,
        threads in 1usize..5,
        unsigned in any::<bool>(),
    ) {
        let name = if unsigned { "mul8u_bam_v8h0" } else { "mul8s_bam_v8h0" };
        let mult = catalog().iter().find(|m| m.name() == name).unwrap();
        let fs = filter_shape(shape_ix, 3);
        let plan = plan_for(fs, seed);
        let segments = SegmentTable::from_counts(&counts);
        let seg_q: Vec<QuantParams> = (0..segments.len()).map(input_q_for).collect();
        let (patches, sums) =
            patches_for(segments.total(), fs.patch_len(), seed, mult.lut().signedness());
        let pool = WorkerPool::new(threads);
        for accumulator in accumulators() {
            let reference = lut_gemm_reference_seg(
                &patches, &sums, &plan, &seg_q, &segments, mult.lut(), accumulator,
            );
            for kernel in available_kernels() {
                let out = lut_gemm_dispatch_seg(
                    kernel, &patches, &sums, &plan, &seg_q, &segments, mult.lut(),
                    accumulator, TileConfig::default(), &pool,
                );
                prop_assert_eq!(
                    &out, &reference,
                    "segmented {} != reference ({}, {:?})",
                    kernel, name, accumulator
                );
            }
        }
    }
}

/// The forced-scalar escape hatch is a first-class family member: it is
/// always supported, always listed, and the dispatcher honors it even
/// where a SIMD arm is available.
#[test]
fn forced_scalar_is_always_available() {
    assert!(KernelKind::ScalarTiled.is_supported());
    assert!(available_kernels().contains(&KernelKind::ScalarTiled));
    // Name round-trip, so `TFAPPROX_KERNEL=scalar` always parses.
    assert_eq!(
        KernelKind::from_name("scalar"),
        Some(KernelKind::ScalarTiled)
    );
    assert_eq!(
        KernelKind::from_name(KernelKind::ScalarTiled.name()),
        Some(KernelKind::ScalarTiled)
    );
}
