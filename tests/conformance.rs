//! The cross-backend conformance matrix.
//!
//! One table-driven suite pinning **every** `Backend` × **every** catalog
//! multiplier (signed and unsigned) × **every** accumulator model against
//! a single golden model — `tfapprox::kernel::lut_gemm_reference` chained
//! layer-by-layer over a fixed small graph. Each cell asserts **bit
//! identity**; a failure names the exact (backend, multiplier,
//! accumulator) cell.
//!
//! Two contracts are encoded:
//!
//! - CPU backends (`CpuDirect`, `CpuGemm`) implement the cell's
//!   accumulator model exactly as the reference kernel folds it.
//! - `GpuSim` accumulates in 32-bit float like the paper's kernel and
//!   ignores the accumulator knob, so its golden is always the
//!   `Accumulator::Exact` reference. The fixed graph is sized so every
//!   partial sum is an integer below 2²⁴ — exactly representable in f32 —
//!   which is what makes bit identity (not mere closeness) attainable.

use axmult::{AxMultiplier, Signedness};
use axnn::layers::Conv2D;
use axnn::Graph;
use axquant::{FilterQuantization, QuantParams, QuantRange, RoundMode};
use axtensor::{ops, rng, ConvGeometry, Filter, FilterShape, Shape4, Tensor};
use gpusim::kernels::im2col::{im2col_quant, PatchSumStrategy};
use std::sync::Arc;
use tfapprox::kernel::lut_gemm_reference;
use tfapprox::{Accumulator, Backend, PreparedFilter, Session};

const BACKENDS: [Backend; 3] = [Backend::CpuDirect, Backend::CpuGemm, Backend::GpuSim];

/// The accumulator models of the matrix: the exact reference, a
/// saturating width narrow enough that single products clip, and a
/// wrapping width that overflows on realistic sums.
const ACCUMULATORS: [Accumulator; 3] = [
    Accumulator::Exact,
    Accumulator::Saturating(12),
    Accumulator::Wrapping(16),
];

/// The fixed conformance workload: two stacked convolutions (same-padded
/// then strided) with per-channel biases, over a 2-image input.
struct Workload {
    input: Tensor<f32>,
    layers: [(Filter, Vec<f32>, ConvGeometry); 2],
}

fn workload() -> Workload {
    let input = rng::uniform(Shape4::new(2, 5, 5, 2), 42, -1.0, 1.0);
    let f1 = rng::uniform_filter(FilterShape::new(3, 3, 2, 3), 43, -0.5, 0.5);
    let b1 = vec![0.25f32, -0.5, 0.125];
    let f2 = rng::uniform_filter(FilterShape::new(3, 3, 3, 2), 44, -0.5, 0.5);
    let b2 = vec![-0.125f32, 0.0625];
    Workload {
        input,
        layers: [
            (f1, b1, ConvGeometry::default()),
            (f2, b2, ConvGeometry::default().with_stride(2)),
        ],
    }
}

fn graph_of(w: &Workload) -> Graph {
    let mut g = Graph::new();
    let x = g.input();
    let mut node = x;
    for (i, (filter, bias, geom)) in w.layers.iter().enumerate() {
        let conv = Conv2D::new(filter.clone(), *geom).with_bias(bias.clone());
        node = g.add(format!("conv{i}"), Arc::new(conv), &[node]).unwrap();
    }
    g.set_output(node).unwrap();
    g
}

/// One golden layer: quantize with the input's own min/max (exactly what
/// the transformed graph's `Min`/`Max` observers feed the layer), im2col,
/// fold through `lut_gemm_reference` under `accumulator`, add the bias.
fn golden_conv(
    input: &Tensor<f32>,
    filter: &Filter,
    bias: &[f32],
    geom: ConvGeometry,
    mult: &AxMultiplier,
    accumulator: Accumulator,
) -> Tensor<f32> {
    let range = match mult.signedness() {
        Signedness::Signed => QuantRange::i8(),
        Signedness::Unsigned => QuantRange::u8(),
    };
    let (lo, hi) = ops::min_max(input);
    let input_q = QuantParams::from_range(lo, hi, range, RoundMode::NearestEven);
    let (flo, fhi) = ops::min_max_slice(filter.as_slice());
    let filter_q: FilterQuantization =
        QuantParams::from_range(flo, fhi, range, RoundMode::NearestEven).into();
    let plan = PreparedFilter::from_filter(filter, &filter_q);
    let patches = im2col_quant(
        input,
        filter.shape(),
        geom,
        input_q,
        PatchSumStrategy::PrefixScan,
    )
    .unwrap()
    .output;
    let buf = lut_gemm_reference(
        &patches.matrix,
        &patches.patch_sums,
        &plan,
        input_q,
        mult.lut(),
        accumulator,
    );
    let mut out = Tensor::from_vec(patches.out_shape, buf).unwrap();
    let c = out.shape().c;
    for (i, v) in out.as_mut_slice().iter_mut().enumerate() {
        *v += bias[i % c];
    }
    out
}

/// The golden forward pass: the reference kernel chained over the fixed
/// graph's layers.
fn golden_forward(w: &Workload, mult: &AxMultiplier, accumulator: Accumulator) -> Tensor<f32> {
    let mut t = w.input.clone();
    for (filter, bias, geom) in &w.layers {
        t = golden_conv(&t, filter, bias, *geom, mult, accumulator);
    }
    t
}

#[test]
fn conformance_matrix_every_backend_multiplier_accumulator() {
    let catalog = axmult::catalog().expect("catalog builds");
    assert!(
        catalog.iter().any(|m| m.name().starts_with("mul8s"))
            && catalog.iter().any(|m| m.name().starts_with("mul8u")),
        "matrix must cover both signednesses"
    );
    let w = workload();
    let graph = graph_of(&w);
    let mut cells = 0usize;
    for mult in &catalog {
        // GpuSim's golden is accumulator-independent (it always f32
        // -accumulates exactly); compute it once per multiplier and reuse
        // it as the CPU golden of the Exact row.
        let golden_exact = golden_forward(&w, mult, Accumulator::Exact);
        for &accumulator in &ACCUMULATORS {
            let golden_cpu = if accumulator == Accumulator::Exact {
                golden_exact.clone()
            } else {
                golden_forward(&w, mult, accumulator)
            };
            let golden_gpu = &golden_exact;
            for &backend in &BACKENDS {
                let session = Session::builder()
                    .backend(backend)
                    .chunk_size(64)
                    .multiplier(mult)
                    .accumulator(accumulator)
                    .compile(&graph)
                    .unwrap_or_else(|e| {
                        panic!(
                            "conformance cell failed to compile: backend={backend:?} \
                             multiplier={} accumulator={accumulator:?}: {e}",
                            mult.name()
                        )
                    });
                let out = session.infer(&w.input).unwrap_or_else(|e| {
                    panic!(
                        "conformance cell failed to run: backend={backend:?} \
                         multiplier={} accumulator={accumulator:?}: {e}",
                        mult.name()
                    )
                });
                // GpuSim accumulates in f32 like the paper's kernel: its
                // golden is always the exact-accumulator reference.
                let expect = if backend == Backend::GpuSim {
                    golden_gpu
                } else {
                    &golden_cpu
                };
                assert_eq!(
                    &out,
                    expect,
                    "conformance cell mismatch: backend={backend:?} multiplier={} \
                     accumulator={accumulator:?} (max |diff| = {})",
                    mult.name(),
                    out.max_abs_diff(expect).unwrap_or(f32::NAN)
                );
                cells += 1;
            }
        }
    }
    assert_eq!(
        cells,
        catalog.len() * ACCUMULATORS.len() * BACKENDS.len(),
        "every cell of the matrix must have been asserted"
    );
}

/// The fused-batch column of the matrix: `Session::infer_fused` over
/// mixed-size request compositions (0-image and 1-image segments
/// included) must be bit-identical to solo `Session::infer` per request
/// — and, for non-empty requests, to the chained reference-kernel golden
/// — on every backend × accumulator. A small chunk size forces chunk
/// boundaries to intersect segment boundaries inside the fused GEMM.
#[test]
fn conformance_fused_batches_match_solo_and_reference() {
    // Both signednesses plus a rough signed LUT; the full catalog is
    // already pinned per backend by the solo matrix above.
    let mult_names = ["mul8s_exact", "mul8s_bam_v8h0", "mul8u_drum4"];
    let compositions: [&[usize]; 2] = [&[2, 0, 1, 3], &[1, 1]];
    let w = workload();
    let graph = graph_of(&w);
    let mut cells = 0usize;
    for name in mult_names {
        let mult = axmult::catalog::by_name(name).unwrap();
        for &accumulator in &ACCUMULATORS {
            for &backend in &BACKENDS {
                let session = Session::builder()
                    .backend(backend)
                    .chunk_size(3)
                    .multiplier(&mult)
                    .accumulator(accumulator)
                    .compile(&graph)
                    .unwrap();
                // GpuSim f32-accumulates exactly; its golden ignores the
                // accumulator knob (same contract as the solo matrix).
                let golden_acc = if backend == Backend::GpuSim {
                    Accumulator::Exact
                } else {
                    accumulator
                };
                for sizes in compositions {
                    let requests: Vec<Tensor<f32>> = sizes
                        .iter()
                        .enumerate()
                        .map(|(i, &n)| {
                            rng::uniform(Shape4::new(n, 5, 5, 2), 100 + i as u64, -1.0, 1.0)
                        })
                        .collect();
                    let fused = session.infer_fused(&requests).unwrap();
                    assert_eq!(fused.len(), requests.len());
                    for (i, (req, out)) in requests.iter().zip(&fused).enumerate() {
                        let cell = format!(
                            "backend={backend:?} multiplier={name} \
                             accumulator={accumulator:?} composition={sizes:?} request {i}"
                        );
                        let solo = session.infer(req).unwrap();
                        assert_eq!(out, &solo, "fused differs from solo: {cell}");
                        if req.shape().n > 0 {
                            let mut golden = req.clone();
                            for (filter, bias, geom) in &w.layers {
                                golden =
                                    golden_conv(&golden, filter, bias, *geom, &mult, golden_acc);
                            }
                            assert_eq!(out, &golden, "fused differs from reference: {cell}");
                        }
                        cells += 1;
                    }
                }
            }
        }
    }
    let per_session: usize = compositions.iter().map(|c| c.len()).sum();
    assert_eq!(
        cells,
        mult_names.len() * ACCUMULATORS.len() * BACKENDS.len() * per_session,
        "every fused cell must have been asserted"
    );
}

#[test]
fn narrow_accumulators_actually_deviate_on_this_workload() {
    // The matrix would be vacuous if the narrow models never bit: pin
    // that on the fixed workload both narrow models differ from Exact
    // for the exact multiplier (so the per-cell goldens are distinct).
    let w = workload();
    let mult = axmult::catalog::by_name("mul8s_exact").unwrap();
    let exact = golden_forward(&w, &mult, Accumulator::Exact);
    for accumulator in [Accumulator::Saturating(12), Accumulator::Wrapping(16)] {
        let narrow = golden_forward(&w, &mult, accumulator);
        assert!(
            exact.max_abs_diff(&narrow).unwrap() > 0.0,
            "{accumulator:?} never deviated — widen the matrix's coverage"
        );
    }
}

#[test]
fn matrix_workload_stays_f32_exact_for_the_gpu_golden() {
    // The GpuSim bit-identity argument requires every partial sum to be
    // an integer below 2^24. Bound it from the workload's shape: products
    // are at most 255² and the largest patch length is 3·3·3 taps.
    let w = workload();
    let max_k = w
        .layers
        .iter()
        .map(|(f, _, _)| f.shape().patch_len())
        .max()
        .unwrap();
    let bound = (max_k as i64) * 255 * 255;
    assert!(
        bound < (1i64 << 24),
        "workload too large for exact f32 accumulation: bound {bound}"
    );
}
