//! The cross-backend conformance matrix.
//!
//! One table-driven suite pinning **every** `Backend` × **every** catalog
//! multiplier (signed and unsigned) × **every** accumulator model against
//! a single golden model — `tfapprox::kernel::lut_gemm_reference` chained
//! layer-by-layer over a fixed small graph. Each cell asserts **bit
//! identity**; a failure names the exact (backend, multiplier,
//! accumulator) cell.
//!
//! Two contracts are encoded:
//!
//! - CPU backends (`CpuDirect`, `CpuGemm`) implement the cell's
//!   accumulator model exactly as the reference kernel folds it.
//! - `GpuSim` accumulates in 32-bit float like the paper's kernel and
//!   ignores the accumulator knob, so its golden is always the
//!   `Accumulator::Exact` reference. The fixed graph is sized so every
//!   partial sum is an integer below 2²⁴ — exactly representable in f32 —
//!   which is what makes bit identity (not mere closeness) attainable.

use axmult::{AxMultiplier, Signedness};
use axnn::layers::Conv2D;
use axnn::Graph;
use axquant::{FilterQuantization, QuantParams, QuantRange, RoundMode};
use axtensor::{ops, rng, ConvGeometry, Filter, FilterShape, Shape4, Tensor};
use gpusim::kernels::im2col::{im2col_quant, PatchSumStrategy};
use std::sync::Arc;
use tfapprox::kernel::lut_gemm_reference;
use tfapprox::{Accumulator, Backend, PreparedFilter, Session};

const BACKENDS: [Backend; 3] = [Backend::CpuDirect, Backend::CpuGemm, Backend::GpuSim];

/// The accumulator models of the matrix: the exact reference, a
/// saturating width narrow enough that single products clip, and a
/// wrapping width that overflows on realistic sums.
const ACCUMULATORS: [Accumulator; 3] = [
    Accumulator::Exact,
    Accumulator::Saturating(12),
    Accumulator::Wrapping(16),
];

/// The fixed conformance workload: two stacked convolutions (same-padded
/// then strided) with per-channel biases, over a 2-image input.
struct Workload {
    input: Tensor<f32>,
    layers: [(Filter, Vec<f32>, ConvGeometry); 2],
}

fn workload() -> Workload {
    let input = rng::uniform(Shape4::new(2, 5, 5, 2), 42, -1.0, 1.0);
    let f1 = rng::uniform_filter(FilterShape::new(3, 3, 2, 3), 43, -0.5, 0.5);
    let b1 = vec![0.25f32, -0.5, 0.125];
    let f2 = rng::uniform_filter(FilterShape::new(3, 3, 3, 2), 44, -0.5, 0.5);
    let b2 = vec![-0.125f32, 0.0625];
    Workload {
        input,
        layers: [
            (f1, b1, ConvGeometry::default()),
            (f2, b2, ConvGeometry::default().with_stride(2)),
        ],
    }
}

fn graph_of(w: &Workload) -> Graph {
    let mut g = Graph::new();
    let x = g.input();
    let mut node = x;
    for (i, (filter, bias, geom)) in w.layers.iter().enumerate() {
        let conv = Conv2D::new(filter.clone(), *geom).with_bias(bias.clone());
        node = g.add(format!("conv{i}"), Arc::new(conv), &[node]).unwrap();
    }
    g.set_output(node).unwrap();
    g
}

/// One golden layer: quantize with the input's own min/max (exactly what
/// the transformed graph's `Min`/`Max` observers feed the layer), im2col,
/// fold through `lut_gemm_reference` under `accumulator`, add the bias.
fn golden_conv(
    input: &Tensor<f32>,
    filter: &Filter,
    bias: &[f32],
    geom: ConvGeometry,
    mult: &AxMultiplier,
    accumulator: Accumulator,
) -> Tensor<f32> {
    let range = match mult.signedness() {
        Signedness::Signed => QuantRange::i8(),
        Signedness::Unsigned => QuantRange::u8(),
    };
    let (lo, hi) = ops::min_max(input);
    let input_q = QuantParams::from_range(lo, hi, range, RoundMode::NearestEven);
    let (flo, fhi) = ops::min_max_slice(filter.as_slice());
    let filter_q: FilterQuantization =
        QuantParams::from_range(flo, fhi, range, RoundMode::NearestEven).into();
    let plan = PreparedFilter::from_filter(filter, &filter_q);
    let patches = im2col_quant(
        input,
        filter.shape(),
        geom,
        input_q,
        PatchSumStrategy::PrefixScan,
    )
    .unwrap()
    .output;
    let buf = lut_gemm_reference(
        &patches.matrix,
        &patches.patch_sums,
        &plan,
        input_q,
        mult.lut(),
        accumulator,
    );
    let mut out = Tensor::from_vec(patches.out_shape, buf).unwrap();
    let c = out.shape().c;
    for (i, v) in out.as_mut_slice().iter_mut().enumerate() {
        *v += bias[i % c];
    }
    out
}

/// The golden forward pass: the reference kernel chained over the fixed
/// graph's layers.
fn golden_forward(w: &Workload, mult: &AxMultiplier, accumulator: Accumulator) -> Tensor<f32> {
    let mut t = w.input.clone();
    for (filter, bias, geom) in &w.layers {
        t = golden_conv(&t, filter, bias, *geom, mult, accumulator);
    }
    t
}

#[test]
fn conformance_matrix_every_backend_multiplier_accumulator() {
    let catalog = axmult::catalog().expect("catalog builds");
    assert!(
        catalog.iter().any(|m| m.name().starts_with("mul8s"))
            && catalog.iter().any(|m| m.name().starts_with("mul8u")),
        "matrix must cover both signednesses"
    );
    let w = workload();
    let graph = graph_of(&w);
    let mut cells = 0usize;
    for mult in &catalog {
        // GpuSim's golden is accumulator-independent (it always f32
        // -accumulates exactly); compute it once per multiplier and reuse
        // it as the CPU golden of the Exact row.
        let golden_exact = golden_forward(&w, mult, Accumulator::Exact);
        for &accumulator in &ACCUMULATORS {
            let golden_cpu = if accumulator == Accumulator::Exact {
                golden_exact.clone()
            } else {
                golden_forward(&w, mult, accumulator)
            };
            let golden_gpu = &golden_exact;
            for &backend in &BACKENDS {
                let session = Session::builder()
                    .backend(backend)
                    .chunk_size(64)
                    .multiplier(mult)
                    .accumulator(accumulator)
                    .compile(&graph)
                    .unwrap_or_else(|e| {
                        panic!(
                            "conformance cell failed to compile: backend={backend:?} \
                             multiplier={} accumulator={accumulator:?}: {e}",
                            mult.name()
                        )
                    });
                let out = session.infer(&w.input).unwrap_or_else(|e| {
                    panic!(
                        "conformance cell failed to run: backend={backend:?} \
                         multiplier={} accumulator={accumulator:?}: {e}",
                        mult.name()
                    )
                });
                // GpuSim accumulates in f32 like the paper's kernel: its
                // golden is always the exact-accumulator reference.
                let expect = if backend == Backend::GpuSim {
                    golden_gpu
                } else {
                    &golden_cpu
                };
                assert_eq!(
                    &out,
                    expect,
                    "conformance cell mismatch: backend={backend:?} multiplier={} \
                     accumulator={accumulator:?} (max |diff| = {})",
                    mult.name(),
                    out.max_abs_diff(expect).unwrap_or(f32::NAN)
                );
                cells += 1;
            }
        }
    }
    assert_eq!(
        cells,
        catalog.len() * ACCUMULATORS.len() * BACKENDS.len(),
        "every cell of the matrix must have been asserted"
    );
}

/// The fused-batch column of the matrix: `Session::infer_fused` over
/// mixed-size request compositions (0-image and 1-image segments
/// included) must be bit-identical to solo `Session::infer` per request
/// — and, for non-empty requests, to the chained reference-kernel golden
/// — on every backend × accumulator. A small chunk size forces chunk
/// boundaries to intersect segment boundaries inside the fused GEMM.
#[test]
fn conformance_fused_batches_match_solo_and_reference() {
    // Both signednesses plus a rough signed LUT; the full catalog is
    // already pinned per backend by the solo matrix above.
    let mult_names = ["mul8s_exact", "mul8s_bam_v8h0", "mul8u_drum4"];
    let compositions: [&[usize]; 2] = [&[2, 0, 1, 3], &[1, 1]];
    let w = workload();
    let graph = graph_of(&w);
    let mut cells = 0usize;
    for name in mult_names {
        let mult = axmult::catalog::by_name(name).unwrap();
        for &accumulator in &ACCUMULATORS {
            for &backend in &BACKENDS {
                let session = Session::builder()
                    .backend(backend)
                    .chunk_size(3)
                    .multiplier(&mult)
                    .accumulator(accumulator)
                    .compile(&graph)
                    .unwrap();
                // GpuSim f32-accumulates exactly; its golden ignores the
                // accumulator knob (same contract as the solo matrix).
                let golden_acc = if backend == Backend::GpuSim {
                    Accumulator::Exact
                } else {
                    accumulator
                };
                for sizes in compositions {
                    let requests: Vec<Tensor<f32>> = sizes
                        .iter()
                        .enumerate()
                        .map(|(i, &n)| {
                            rng::uniform(Shape4::new(n, 5, 5, 2), 100 + i as u64, -1.0, 1.0)
                        })
                        .collect();
                    let fused = session.infer_fused(&requests).unwrap();
                    assert_eq!(fused.len(), requests.len());
                    for (i, (req, out)) in requests.iter().zip(&fused).enumerate() {
                        let cell = format!(
                            "backend={backend:?} multiplier={name} \
                             accumulator={accumulator:?} composition={sizes:?} request {i}"
                        );
                        let solo = session.infer(req).unwrap();
                        assert_eq!(out, &solo, "fused differs from solo: {cell}");
                        if req.shape().n > 0 {
                            let mut golden = req.clone();
                            for (filter, bias, geom) in &w.layers {
                                golden =
                                    golden_conv(&golden, filter, bias, *geom, &mult, golden_acc);
                            }
                            assert_eq!(out, &golden, "fused differs from reference: {cell}");
                        }
                        cells += 1;
                    }
                }
            }
        }
    }
    let per_session: usize = compositions.iter().map(|c| c.len()).sum();
    assert_eq!(
        cells,
        mult_names.len() * ACCUMULATORS.len() * BACKENDS.len() * per_session,
        "every fused cell must have been asserted"
    );
}

/// The bring-your-own column, part 1: multipliers compiled from gate-level
/// netlists through the full `axcompile` pipeline (sharded over the
/// session `WorkerPool`) are **bit-identical** to the catalog entries
/// built from the same circuits — and the exhaustive 2¹⁶ sweep is cheap
/// enough to run inline in a test suite (the guard keeps it far inside
/// the conformance-stress per-step timeout).
#[test]
fn compiled_multipliers_match_builtin_luts() {
    use std::time::{Duration, Instant};
    use tfapprox::compile::compile_netlist;

    let pool = tfapprox::WorkerPool::new(4);

    let exact = compile_netlist(
        &axcircuit::approx::exact_unsigned(8).unwrap(),
        "conf_test_cmp_exact",
        Signedness::Unsigned,
        &pool,
    )
    .unwrap();
    let builtin = axmult::catalog::by_name("mul8u_exact").unwrap();
    assert_eq!(
        exact.multiplier().lut(),
        builtin.lut(),
        "compiled exact_unsigned(8) must equal the built-in mul8u_exact"
    );

    for k in [2u32, 4, 6] {
        let compiled = compile_netlist(
            &axcircuit::approx::truncated_unsigned(8, k).unwrap(),
            format!("conf_test_cmp_trunc{k}"),
            Signedness::Unsigned,
            &pool,
        )
        .unwrap();
        let builtin = axmult::catalog::by_name(&format!("mul8u_trunc{k}")).unwrap();
        assert_eq!(
            compiled.multiplier().lut(),
            builtin.lut(),
            "compiled truncated_unsigned(8, {k}) must equal mul8u_trunc{k}"
        );
    }

    // Timing guard: a full 2^16-entry compile of the 8×8 broken-array
    // multiplier must stay far below the conformance-stress step timeout
    // (10 minutes in CI) — the sweep is 1024 bit-parallel passes, not
    // 65536 scalar evaluations, and this pins that it stays that way.
    let start = Instant::now();
    let bam = compile_netlist(
        &axcircuit::approx::broken_array_unsigned(8, 8, 0).unwrap(),
        "conf_test_cmp_bam",
        Signedness::Unsigned,
        &pool,
    )
    .unwrap();
    let elapsed = start.elapsed();
    assert_eq!(
        bam.multiplier().lut(),
        axmult::catalog::by_name("mul8u_bam_v8h0").unwrap().lut(),
        "compiled broken_array_unsigned(8, 8, 0) must equal mul8u_bam_v8h0"
    );
    assert!(
        elapsed < Duration::from_secs(60),
        "full 2^16 compile took {elapsed:?} — too slow for the conformance-stress budget"
    );
}

/// The bring-your-own column, part 2: a multiplier that exists in **no**
/// catalog — `truncated_unsigned(8, 3)`, between the built-in trunc2 and
/// trunc4 — compiled, registered, and then driven by *name* through every
/// backend × accumulator cell against the chained reference-kernel
/// golden, through the fused-batch path, and end-to-end through the
/// serving tier (`SessionRegistry` admission + keyed
/// `ServeEngine::submit_to`). Custom multipliers get the exact same
/// conformance contract as built-ins, with zero kernel changes.
#[test]
fn conformance_compiled_multiplier_column() {
    use tfapprox::compile::compile_netlist;
    use tfapprox::{ServeConfig, ServeEngine, SessionRegistry};

    let netlist = axcircuit::approx::truncated_unsigned(8, 3).unwrap();
    let pool = tfapprox::WorkerPool::new(4);
    let compiled = compile_netlist(&netlist, "conf_test_trunc3", Signedness::Unsigned, &pool)
        .expect("trunc3 compiles");
    compiled.register().expect("name is free");
    let mult = axmult::catalog::by_name("conf_test_trunc3").unwrap();
    // The column must not be vacuous: trunc3 is a real approximation.
    assert_ne!(
        mult.lut(),
        axmult::catalog::by_name("mul8u_exact").unwrap().lut(),
        "trunc3 must differ from exact"
    );

    let w = workload();
    let graph = graph_of(&w);
    let fused_sizes: [usize; 3] = [2, 0, 1];
    let requests: Vec<Tensor<f32>> = fused_sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| rng::uniform(Shape4::new(n, 5, 5, 2), 200 + i as u64, -1.0, 1.0))
        .collect();

    let mut cells = 0usize;
    for &accumulator in &ACCUMULATORS {
        for &backend in &BACKENDS {
            let cell = format!("backend={backend:?} accumulator={accumulator:?}");
            // GpuSim f32-accumulates exactly (same contract as the
            // catalog matrix): its golden ignores the accumulator knob.
            let golden_acc = if backend == Backend::GpuSim {
                Accumulator::Exact
            } else {
                accumulator
            };
            let golden = golden_forward(&w, &mult, golden_acc);

            // Solo: the session resolves the multiplier by its
            // registered name, never by value.
            let session = Session::builder()
                .backend(backend)
                .chunk_size(3)
                .multiplier_named("conf_test_trunc3")
                .accumulator(accumulator)
                .compile(&graph)
                .unwrap_or_else(|e| panic!("compiled cell failed to compile: {cell}: {e}"));
            let out = session.infer(&w.input).unwrap();
            assert_eq!(out, golden, "compiled cell differs from reference: {cell}");

            // Fused: mixed-size micro-batch, bit-identical to solo.
            let fused = session.infer_fused(&requests).unwrap();
            for (i, (req, fused_out)) in requests.iter().zip(&fused).enumerate() {
                let solo = session.infer(req).unwrap();
                assert_eq!(
                    fused_out, &solo,
                    "compiled fused differs from solo: {cell} request {i}"
                );
            }

            // Served: the key installed from this session carries the
            // registered multiplier; the keyed submission path must
            // return the same bits as the golden.
            let registry = Arc::new(SessionRegistry::new(1).unwrap());
            let key = registry
                .install("conf_compiled", Arc::new(session))
                .unwrap();
            assert_eq!(key.multiplier_names(), vec!["conf_test_trunc3"; 2]);
            let engine =
                ServeEngine::with_registry(Arc::clone(&registry), key.clone(), ServeConfig::new())
                    .unwrap();
            let served = engine.infer_to(&key, w.input.clone()).unwrap();
            assert_eq!(served, golden, "served cell differs from reference: {cell}");

            cells += 1;
        }
    }
    assert_eq!(
        cells,
        ACCUMULATORS.len() * BACKENDS.len(),
        "every compiled-multiplier cell must have been asserted"
    );
    axmult::registry::unregister("conf_test_trunc3");
}

#[test]
fn narrow_accumulators_actually_deviate_on_this_workload() {
    // The matrix would be vacuous if the narrow models never bit: pin
    // that on the fixed workload both narrow models differ from Exact
    // for the exact multiplier (so the per-cell goldens are distinct).
    let w = workload();
    let mult = axmult::catalog::by_name("mul8s_exact").unwrap();
    let exact = golden_forward(&w, &mult, Accumulator::Exact);
    for accumulator in [Accumulator::Saturating(12), Accumulator::Wrapping(16)] {
        let narrow = golden_forward(&w, &mult, accumulator);
        assert!(
            exact.max_abs_diff(&narrow).unwrap() > 0.0,
            "{accumulator:?} never deviated — widen the matrix's coverage"
        );
    }
}

#[test]
fn matrix_workload_stays_f32_exact_for_the_gpu_golden() {
    // The GpuSim bit-identity argument requires every partial sum to be
    // an integer below 2^24. Bound it from the workload's shape: products
    // are at most 255² and the largest patch length is 3·3·3 taps.
    let w = workload();
    let max_k = w
        .layers
        .iter()
        .map(|(f, _, _)| f.shape().patch_len())
        .max()
        .unwrap();
    let bound = (max_k as i64) * 255 * 255;
    assert!(
        bound < (1i64 << 24),
        "workload too large for exact f32 accumulation: bound {bound}"
    );
}
