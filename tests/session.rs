//! The compiled-session equivalence suite.
//!
//! `Session` is a facade over the legacy free-function surface
//! (`flow::approximate_graph` + `runtime::run_approx`), so it must be
//! **bit-identical** to it — same transform, same plans, same arithmetic
//! — on every backend. These tests are the one sanctioned consumer of
//! the `#[doc(hidden)]` legacy modules outside tfapprox internals.

use axnn::resnet::{cifar_input_shape, ResNetConfig};
use axtensor::{rng, Tensor};
use proptest::prelude::*;
use std::sync::Arc;
use tfapprox::prelude::*;
use tfapprox::{flow, runtime};

fn exact() -> AxMultiplier {
    axmult::catalog::by_name("mul8s_exact").unwrap()
}

fn rough() -> AxMultiplier {
    axmult::catalog::by_name("mul8s_bam_v8h0").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `Session::infer_batches` produces bit-identical outputs to the
    /// legacy `flow::approximate_graph` + `runtime::run_approx` path on
    /// all three backends, across seeds, multipliers, chunk sizes and
    /// batch splits.
    #[test]
    fn session_bit_identical_to_legacy_path(
        seed in 0u64..500,
        use_rough in any::<bool>(),
        chunk in 1usize..4,
        two_batches in any::<bool>(),
    ) {
        let graph = ResNetConfig::with_depth(8).unwrap().build(seed).unwrap();
        let mult = if use_rough { rough() } else { exact() };
        let mut batches = vec![rng::uniform(cifar_input_shape(2), seed ^ 21, -1.0, 1.0)];
        if two_batches {
            batches.push(rng::uniform(cifar_input_shape(1), seed ^ 22, -1.0, 1.0));
        }

        for backend in [Backend::CpuDirect, Backend::CpuGemm, Backend::GpuSim] {
            // Legacy: transform, then run batch-wise.
            let ctx = Arc::new(EmuContext::new(backend).with_chunk_size(chunk).unwrap());
            let (ax, replaced) = flow::approximate_graph(&graph, &mult, &ctx).unwrap();
            let (legacy_out, legacy_rep) = runtime::run_approx(&ax, &batches, &ctx).unwrap();

            // Session: compile, then run the same batches.
            let session = Session::builder()
                .backend(backend)
                .chunk_size(chunk)
                .multiplier(&mult)
                .compile(&graph)
                .unwrap();
            let (out, rep) = session.infer_batches(&batches).unwrap();

            prop_assert_eq!(session.replaced_layers(), replaced);
            prop_assert_eq!(out.len(), legacy_out.len());
            for (a, b) in out.iter().zip(&legacy_out) {
                // Bit-identical: same shapes, same f32 bits.
                prop_assert_eq!(a, b, "session != legacy on {:?}", backend);
            }
            prop_assert_eq!(rep.images, legacy_rep.images);
            prop_assert_eq!(rep.backend, legacy_rep.backend);
        }
    }

    /// The builder rejects zero chunk sizes and thread counts as
    /// compile-time errors, and accepts every positive value.
    #[test]
    fn builder_validates_chunk_and_threads(chunk in 0usize..5, threads in 0usize..5) {
        let graph = ResNetConfig::with_depth(8).unwrap().build(1).unwrap();
        let result = Session::builder()
            .backend(Backend::CpuGemm)
            .chunk_size(chunk)
            .threads(threads)
            .multiplier(&exact())
            .compile(&graph);
        if chunk == 0 || threads == 0 {
            let err = result.err().map(|e| e.to_string()).unwrap_or_default();
            prop_assert!(
                err.contains("must be positive"),
                "zero accepted or wrong error: {}", err
            );
        } else {
            prop_assert!(result.is_ok());
        }
        // The raw context builders enforce the same contract.
        prop_assert_eq!(
            EmuContext::new(Backend::CpuGemm).with_chunk_size(chunk).is_ok(),
            chunk > 0
        );
        prop_assert_eq!(
            EmuContext::new(Backend::CpuGemm).with_threads(threads).is_ok(),
            threads > 0
        );
    }
}

/// The tiled LUT-GEMM shards output rows across the worker pool; the
/// partition must never leak into the numbers. A whole compiled model run
/// end-to-end at 1, 2 and 4 host threads — and with non-default tile
/// sizes — produces bit-identical outputs.
#[test]
fn cpu_gemm_sessions_are_thread_and_tile_invariant() {
    let graph = ResNetConfig::with_depth(8).unwrap().build(11).unwrap();
    let input: Tensor<f32> = rng::uniform(cifar_input_shape(3), 13, -1.0, 1.0);
    let infer = |threads: usize, tiles: Option<TileConfig>| {
        let mut builder = Session::builder()
            .backend(Backend::CpuGemm)
            .chunk_size(2)
            .threads(threads)
            .multiplier(&rough());
        if let Some(t) = tiles {
            builder = builder.tile_config(t);
        }
        builder.compile(&graph).unwrap().infer(&input).unwrap()
    };
    let reference = infer(1, None);
    for threads in [2, 4] {
        assert_eq!(reference, infer(threads, None), "threads {threads} drifted");
    }
    let odd_tiles = TileConfig::new(5, 17, 3).unwrap();
    for threads in [1, 4] {
        assert_eq!(
            reference,
            infer(threads, Some(odd_tiles)),
            "tile config drifted at threads {threads}"
        );
    }
}

/// `reassign` must not rebuild the plans of unchanged layers. On the
/// modeled GPU backend every plan build records deterministic
/// quantization events into the shared context, so the event counter is
/// an exact witness: compiling ResNet-8 charges 7 plan builds, a
/// reassign that changes one layer to a multiplier of a *different*
/// signedness charges exactly 1 more, and a same-signedness change or a
/// no-op reassign charges none (the plan transplants).
#[test]
fn reassign_keeps_cached_plans_of_unchanged_layers() {
    let graph = ResNetConfig::with_depth(8).unwrap().build(7).unwrap();
    let session = Session::builder()
        .backend(Backend::GpuSim)
        .multiplier(&rough()) // signed
        .compile(&graph)
        .unwrap();
    let after_compile = session.context().events().quant_ops;
    assert!(after_compile > 0, "compile must build 7 plans eagerly");

    // No-op reassign: all layers reused, no new plan builds.
    let same = session.reassign(&Assignment::uniform(rough())).unwrap();
    assert_eq!(same.context().events().quant_ops, after_compile);

    // Same signedness, different LUT: fresh layers but transplanted
    // plans — still no new filter-quantization events.
    let transplanted = session
        .reassign(&Assignment::uniform(rough()).with_layer(0, exact()))
        .unwrap();
    assert_eq!(transplanted.context().events().quant_ops, after_compile);

    // Different signedness (unsigned catalog entry) on one layer: that
    // single plan must rebuild, and only that one.
    let unsigned = axmult::catalog::by_name("mul8u_drum4").unwrap();
    let rebuilt = session
        .reassign(&Assignment::uniform(rough()).with_layer(0, unsigned))
        .unwrap();
    let after_rebuild = rebuilt.context().events().quant_ops;
    assert!(
        after_rebuild > after_compile,
        "changed-signedness layer must rebuild its plan"
    );
    let one_layer_charge = after_rebuild - after_compile;
    assert!(
        one_layer_charge < after_compile,
        "only one of 7 plans may rebuild: charge {one_layer_charge} vs compile {after_compile}"
    );
}

/// A reassigned session computes the same result as a freshly compiled
/// session with the same assignment — plan reuse is an optimization, not
/// a semantic change.
#[test]
fn reassign_bit_identical_to_fresh_compile() {
    let graph = ResNetConfig::with_depth(8).unwrap().build(9).unwrap();
    let assignment = Assignment::uniform(rough()).with_layer(0, exact());
    let input: Tensor<f32> = rng::uniform(cifar_input_shape(2), 33, -1.0, 1.0);

    for backend in [Backend::CpuDirect, Backend::CpuGemm, Backend::GpuSim] {
        let base = Session::builder()
            .backend(backend)
            .multiplier(&rough())
            .compile(&graph)
            .unwrap();
        let reassigned = base.reassign(&assignment).unwrap();
        let fresh = Session::builder()
            .backend(backend)
            .assignment(assignment.clone())
            .compile(&graph)
            .unwrap();
        let a = reassigned.infer(&input).unwrap();
        let b = fresh.infer(&input).unwrap();
        assert_eq!(a, b, "reassign != fresh compile on {backend:?}");
    }
}
