//! Cross-crate integration tests: the full circuit → LUT → graph →
//! emulation pipeline through the compiled-session API, and the paper's
//! headline claims at small scale.

use axnn::dataset::{top1_agreement, SyntheticCifar10};
use axnn::resnet::ResNetConfig;
use gpusim::{DeviceConfig, Phase};
use tfapprox::perfmodel::{self, CpuModel};
use tfapprox::prelude::*;

/// Circuit-to-emulation pipeline: build a broken-array multiplier at gate
/// level, extract its truth table, load it as a LUT, and run it inside a
/// network — every substrate in one chain.
#[test]
fn gate_level_multiplier_runs_inside_network() {
    let netlist = axcircuit::approx::broken_array_signed(8, 6, 0).expect("circuit");
    let tt = axcircuit::truth::TruthTable::from_netlist(&netlist).expect("truth table");
    let lut = axmult::MulLut::from_truth_table(&tt, axmult::Signedness::Signed).expect("lut");
    let cost = axcircuit::cost::evaluate(&netlist);
    let mult = AxMultiplier::new("test_bam", "integration test", lut, Some(cost));

    let graph = ResNetConfig::with_depth(8)
        .expect("cfg")
        .build(1)
        .expect("graph");
    let session = Session::builder()
        .backend(Backend::CpuGemm)
        .multiplier(&mult)
        .compile(&graph)
        .expect("compile");
    assert_eq!(session.replaced_layers(), 7);

    let batch = SyntheticCifar10::new(5).batch_sized(0, 4);
    let out = session.infer(&batch).expect("infer");
    assert_eq!(out.shape().c, 10);
    assert!(out.as_slice().iter().all(|v| v.is_finite()));
}

/// §IV accuracy claim: with the exact multiplier, the approximate layer is
/// "the same as ... the quantization followed by dequantization available
/// in TensorFlow" — so the compiled network must track the float network
/// up to quantization noise, on every backend.
#[test]
fn exact_lut_network_tracks_float_network_on_all_backends() {
    let graph = ResNetConfig::with_depth(8)
        .expect("cfg")
        .build(2)
        .expect("graph");
    let mult = axmult::catalog::by_name("mul8s_exact").expect("catalog");
    let batch = SyntheticCifar10::new(6).batch_sized(0, 4);
    let float_out = graph.forward(&batch).expect("float forward");

    for backend in [Backend::CpuDirect, Backend::CpuGemm, Backend::GpuSim] {
        let session = Session::builder()
            .backend(backend)
            .chunk_size(2)
            .multiplier(&mult)
            .compile(&graph)
            .expect("compile");
        let ax_out = session.infer(&batch).expect("infer");
        let agreement = top1_agreement(&float_out, &ax_out);
        assert!(agreement >= 0.75, "{backend}: top-1 agreement {agreement}");
    }
}

/// All three backends must produce numerically close outputs for an
/// *approximate* multiplier too — they emulate the same hardware.
#[test]
fn backends_agree_through_a_full_network() {
    let graph = ResNetConfig::with_depth(8)
        .expect("cfg")
        .build(3)
        .expect("graph");
    let mult = axmult::catalog::by_name("mul8s_bam_v8h0").expect("catalog");
    let batch = SyntheticCifar10::new(8).batch_sized(0, 2);

    let mut outputs = Vec::new();
    for backend in [Backend::CpuDirect, Backend::CpuGemm, Backend::GpuSim] {
        let session = Session::builder()
            .backend(backend)
            .chunk_size(1)
            .multiplier(&mult)
            .compile(&graph)
            .expect("compile");
        outputs.push(session.infer(&batch).expect("infer"));
    }
    // Softmax outputs in [0,1]: the GPU's f32 accumulator may deviate in
    // the last ulps, amplified through 7 layers; a small tolerance
    // suffices to show they emulate the same accelerator.
    let d01 = outputs[0].max_abs_diff(&outputs[1]).expect("shapes");
    let d02 = outputs[0].max_abs_diff(&outputs[2]).expect("shapes");
    assert!(d01 < 1e-4, "direct vs gemm: {d01}");
    assert!(d02 < 2e-2, "direct vs gpu: {d02}");
}

/// Table I shape at reduced scale: GPU wins in both modes, the
/// approximate overhead is far worse on CPU, and the approximate speedup
/// grows with network depth.
#[test]
fn table1_shape_holds() {
    let mult = axmult::catalog::by_name("mul8s_exact").expect("catalog");
    let dev = DeviceConfig::gtx1080();
    let cpu = CpuModel::xeon_e5_2620();
    let row8 = perfmodel::table1_row(8, &mult, &dev, &cpu, 10_000, 1, 42).expect("row 8");
    let row20 = perfmodel::table1_row(20, &mult, &dev, &cpu, 10_000, 1, 42).expect("row 20");

    // Who wins.
    assert!(row8.speedup_accurate() > 1.0);
    assert!(row8.speedup_approx() > 30.0);
    // Overheads: crippling on CPU, mild on GPU.
    assert!(row8.approx_overhead_cpu() > 100.0);
    assert!(row8.approx_overhead_gpu() < 20.0);
    // Growth with depth: deeper network -> larger approximate speedup
    // (tinit amortizes), like the paper's 106.8x -> 213.2x progression.
    assert!(
        row20.speedup_approx() > row8.speedup_approx(),
        "8: {:.1}, 20: {:.1}",
        row8.speedup_approx(),
        row20.speedup_approx()
    );
    // tcomp linear in MACs (within 25% after normalizing).
    let r8 = row8.gpu_approx.tcomp / row8.macs_per_image as f64;
    let r20 = row20.gpu_approx.tcomp / row20.macs_per_image as f64;
    assert!((r8 / r20 - 1.0).abs() < 0.25, "per-MAC rates {r8} vs {r20}");
}

/// Fig. 2 shape: on the GPU the computation phases dominate a deep
/// network's profile and the LUT share is substantial but not dominant;
/// on the CPU model the emulation ("other" + LUT) dwarfs everything.
#[test]
fn fig2_shape_holds() {
    let mult = axmult::catalog::by_name("mul8s_exact").expect("catalog");
    let dev = DeviceConfig::gtx1080();
    let cfg = ResNetConfig::with_depth(32).expect("cfg");
    let (_, gpu) =
        perfmodel::gpu_approx_times(cfg, &mult, &dev, 10_000, 1, 42).expect("gpu profile");
    let init = gpu.fraction(Phase::Init);
    let lut = gpu.fraction(Phase::LutLookup);
    let quant = gpu.fraction(Phase::Quantization);
    assert!(init < 0.45, "init fraction {init}");
    assert!((0.05..0.6).contains(&lut), "lut fraction {lut}");
    assert!(quant > 0.02, "quant fraction {quant}");

    let cpu = perfmodel::cpu_fig2_profile(
        &CpuModel::xeon_e5_2620(),
        cfg.mac_count().expect("macs") * 10_000,
    );
    assert!(cpu.fraction(Phase::Init) < 0.01);
    assert!(cpu.fraction(Phase::LutLookup) > 0.2);
}

/// The texture cache is the enabling mechanism: with a warm cache the
/// LUT hit rate through a real network must be near 1, and shrinking the
/// cache must increase modeled LUT time.
#[test]
fn texture_cache_mechanism() {
    let graph = ResNetConfig::with_depth(8)
        .expect("cfg")
        .build(4)
        .expect("graph");
    let mult = axmult::catalog::by_name("mul8s_exact").expect("catalog");
    let batch = SyntheticCifar10::new(11).batch_sized(0, 1);

    let run = |dev: DeviceConfig| {
        let session = Session::builder()
            .backend(Backend::GpuSim)
            .device(dev)
            .multiplier(&mult)
            .compile(&graph)
            .expect("compile");
        let _ = session.infer(&batch).expect("warm");
        session.context().reset_profile();
        let _ = session.infer(&batch).expect("measured");
        (session.context().events(), session.context().profile())
    };

    let (ev_big, prof_big) = run(DeviceConfig {
        tex_cache_bytes: 256 * 1024, // whole LUT resident
        ..DeviceConfig::gtx1080()
    });
    let hit_rate = ev_big.tex_hits as f64 / ev_big.tex_fetches() as f64;
    assert!(hit_rate > 0.99, "warm full-size cache hit rate {hit_rate}");

    let (ev_small, prof_small) = run(DeviceConfig::small_cache());
    let small_rate = ev_small.tex_hits as f64 / ev_small.tex_fetches() as f64;
    assert!(small_rate < hit_rate);
    assert!(
        prof_small.seconds(Phase::LutLookup) > prof_big.seconds(Phase::LutLookup),
        "smaller cache must cost more"
    );
}

/// Chunked execution (Algorithm 1's SplitData) must not change results.
#[test]
fn chunking_transparent_at_network_level() {
    let graph = ResNetConfig::with_depth(8)
        .expect("cfg")
        .build(5)
        .expect("graph");
    let mult = axmult::catalog::by_name("mul8s_bam_v8h0").expect("catalog");
    let batch = SyntheticCifar10::new(13).batch_sized(0, 5);

    let run = |chunk: usize| {
        let session = Session::builder()
            .backend(Backend::CpuGemm)
            .chunk_size(chunk)
            .multiplier(&mult)
            .compile(&graph)
            .expect("compile");
        session.infer(&batch).expect("infer")
    };
    let a = run(1);
    let b = run(5);
    assert!(a.max_abs_diff(&b).expect("shapes") < 1e-6);
}

/// The session runtime reports tinit + tcomp with coherent bookkeeping.
#[test]
fn runtime_report_coherent() {
    let graph = ResNetConfig::with_depth(8)
        .expect("cfg")
        .build(6)
        .expect("graph");
    let mult = axmult::catalog::by_name("mul8s_exact").expect("catalog");
    let session = Session::builder()
        .backend(Backend::GpuSim)
        .chunk_size(2)
        .multiplier(&mult)
        .compile(&graph)
        .expect("compile");
    let data = SyntheticCifar10::new(1);
    let batches = vec![data.batch_sized(0, 2), data.batch_sized(1, 2)];
    let (outputs, report) = session.infer_batches(&batches).expect("run");
    assert_eq!(outputs.len(), 2);
    assert_eq!(report.images, 4);
    assert!((report.total() - report.profile.total()).abs() < 1e-9);
    assert!(report.images_per_second() > 0.0);
}
