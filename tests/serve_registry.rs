//! Integration tests of the multi-tenant session registry: the
//! plan-transplant witness behind compile-on-miss, eviction safety under
//! live traffic, and the `ServeConfig` validation contract.

use axnn::layers::{Conv2D, ReLU};
use axnn::Graph;
use axtensor::{rng, ConvGeometry, FilterShape, Shape4, Tensor};
use proptest::prelude::*;
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::Duration;
use tfapprox::prelude::*;

/// Hard watchdog: run `body` on its own thread and panic if it does not
/// finish within `timeout`.
fn with_watchdog<F: FnOnce() + Send + 'static>(timeout: Duration, body: F) {
    let (tx, rx) = mpsc::channel();
    let worker = thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    match rx.recv_timeout(timeout) {
        Ok(()) => worker.join().expect("test body panicked"),
        Err(_) => panic!("watchdog: test body exceeded {timeout:?} — deadlock?"),
    }
}

/// A small two-conv + ReLU graph, shared with the stress suite's shape.
fn tiny_graph() -> Graph {
    let mut g = Graph::new();
    let x = g.input();
    let f1 = rng::uniform_filter(FilterShape::new(3, 3, 2, 3), 7, -0.5, 0.5);
    let c1 = g
        .add(
            "conv1",
            Arc::new(Conv2D::new(f1, ConvGeometry::default())),
            &[x],
        )
        .unwrap();
    let r1 = g.add("relu1", Arc::new(ReLU::new()), &[c1]).unwrap();
    let f2 = rng::uniform_filter(FilterShape::new(3, 3, 3, 2), 8, -0.5, 0.5);
    let c2 = g
        .add(
            "conv2",
            Arc::new(Conv2D::new(f2, ConvGeometry::default())),
            &[r1],
        )
        .unwrap();
    g.set_output(c2).unwrap();
    g
}

fn compile(backend: Backend, mult_name: &str) -> Arc<Session> {
    let mult = axmult::catalog::by_name(mult_name).unwrap();
    Arc::new(
        Session::builder()
            .backend(backend)
            .chunk_size(4)
            .threads(2)
            .multiplier(&mult)
            .compile(&tiny_graph())
            .unwrap(),
    )
}

fn request(seed: u64, images: usize) -> Tensor<f32> {
    rng::uniform(Shape4::new(images, 5, 5, 2), seed, -1.0, 1.0)
}

/// Compile-on-miss must route through the `reassign` plan-transplant
/// path, not a cold compile. On the modeled GPU backend every filter
/// plan build records deterministic quantization events, so the shared
/// context's `quant_ops` counter is an exact witness: admitting a
/// same-signedness variant charges **zero** new plan builds (both
/// layers' plans transplant from the anchor), while a changed-signedness
/// variant must rebuild and charges more.
#[test]
fn compile_on_miss_transplants_anchor_plans() {
    let anchor = compile(Backend::GpuSim, "mul8s_exact");
    let after_compile = anchor.context().events().quant_ops;
    assert!(after_compile > 0, "eager compile must build plans");

    let registry = SessionRegistry::new(4).unwrap();
    registry.install("tiny", Arc::clone(&anchor)).unwrap();

    // Same signedness, different LUT: the registry's reassign-based
    // admission transplants both cached plans — no new quantization
    // events on the shared context.
    let rough = axmult::catalog::by_name("mul8s_bam_v8h0").unwrap();
    let key = registry.admit("tiny", &Assignment::uniform(rough)).unwrap();
    assert_eq!(
        anchor.context().events().quant_ops,
        after_compile,
        "same-signedness admission must pay zero plan rebuilds"
    );
    assert_eq!(registry.stats().misses, 1, "it was still a compile-on-miss");
    let variant = registry.session_for(&key).unwrap();
    assert_eq!(variant.multipliers()[0].name(), "mul8s_bam_v8h0");

    // Different signedness: the plans cannot transplant and must
    // rebuild, which the event counter sees.
    let unsigned = axmult::catalog::by_name("mul8u_drum4").unwrap();
    registry
        .admit("tiny", &Assignment::uniform(unsigned))
        .unwrap();
    assert!(
        anchor.context().events().quant_ops > after_compile,
        "changed-signedness admission must rebuild its plans"
    );
}

/// Eviction under live traffic must never drop or corrupt an in-flight
/// request. Capacity 1 with two variant tenants means every admission
/// evicts the other tenant, so the registry churns constantly while
/// clients hammer both; every response must stay bit-identical to its
/// tenant's solo session, and the churn must actually have happened.
#[test]
fn eviction_under_load_never_drops_in_flight_requests() {
    with_watchdog(Duration::from_secs(120), || {
        let anchor = compile(Backend::CpuGemm, "mul8s_exact");
        let registry = Arc::new(SessionRegistry::new(1).unwrap());
        let key_anchor = registry.install("tiny", Arc::clone(&anchor)).unwrap();
        let key_a = registry
            .admit(
                "tiny",
                &Assignment::uniform(axmult::catalog::by_name("mul8s_bam_v8h0").unwrap()),
            )
            .unwrap();
        let key_b = registry
            .admit(
                "tiny",
                &Assignment::uniform(axmult::catalog::by_name("mul8s_drum4").unwrap()),
            )
            .unwrap();
        let solo_a = compile(Backend::CpuGemm, "mul8s_bam_v8h0");
        let solo_b = compile(Backend::CpuGemm, "mul8s_drum4");

        let engine = ServeEngine::with_registry(
            Arc::clone(&registry),
            key_anchor.clone(),
            ServeConfig::new()
                .with_shards(2)
                .with_max_batch_images(4)
                .with_flush_ticks(1)
                .with_queue_depth(1024),
        )
        .unwrap();

        let keys = [&key_anchor, &key_a, &key_b];
        let solos = [&anchor, &solo_a, &solo_b];
        let clients = 6usize;
        let per_client = 12usize;
        thread::scope(|scope| {
            for c in 0..clients {
                let engine = &engine;
                scope.spawn(move || {
                    for i in 0..per_client {
                        // Alternating variant keys through a capacity-1
                        // LRU: each submit_to of a non-resident variant
                        // recompiles it and evicts the other — while the
                        // evicted tenant still has requests in flight.
                        let tenant = (c + i) % keys.len();
                        let images = 1 + (i % 3);
                        let seed = (c * per_client + i) as u64;
                        let x = request(seed, images);
                        let out = engine
                            .infer_to(keys[tenant], x.clone())
                            .unwrap_or_else(|e| panic!("client {c} request {i}: {e}"));
                        assert_eq!(
                            out,
                            solos[tenant].infer(&x).unwrap(),
                            "client {c} request {i} (tenant {tenant}) diverged from solo"
                        );
                    }
                });
            }
        });

        let stats = engine.stats();
        assert_eq!(stats.requests, (clients * per_client) as u64);
        assert_eq!(stats.shed, 0);
        let rstats = registry.stats();
        assert!(
            rstats.evictions > 0,
            "capacity 1 with two variants must have churned (got {rstats:?})"
        );
        assert_eq!(rstats.resident, 1);
    });
}

/// An evicted tenant's ticket remains valid mid-flight: submit against a
/// variant, force its eviction before waiting, then wait — the response
/// must still arrive bit-identical (the request holds its own session
/// reference).
#[test]
fn ticket_survives_eviction_of_its_session() {
    with_watchdog(Duration::from_secs(60), || {
        let anchor = compile(Backend::CpuGemm, "mul8s_exact");
        let registry = Arc::new(SessionRegistry::new(1).unwrap());
        let key_anchor = registry.install("tiny", Arc::clone(&anchor)).unwrap();
        let key_a = registry
            .admit(
                "tiny",
                &Assignment::uniform(axmult::catalog::by_name("mul8s_bam_v8h0").unwrap()),
            )
            .unwrap();
        let solo_a = compile(Backend::CpuGemm, "mul8s_bam_v8h0");
        let engine = ServeEngine::with_registry(
            Arc::clone(&registry),
            key_anchor,
            // One shard, single-image batches: the big head request keeps
            // the shard busy while we evict behind it.
            ServeConfig::new().with_shards(1).with_max_batch_images(1),
        )
        .unwrap();

        let busy = engine.submit(request(50, 16)).unwrap();
        let x = request(51, 2);
        let pending = engine.submit_to(&key_a, x.clone()).unwrap();
        // Evict key_a by admitting another variant into the size-1 LRU.
        registry
            .admit(
                "tiny",
                &Assignment::uniform(axmult::catalog::by_name("mul8s_drum4").unwrap()),
            )
            .unwrap();
        assert!(!registry.is_resident(&key_a), "eviction must have happened");

        assert!(busy.wait().is_ok());
        assert_eq!(
            pending.wait().unwrap(),
            solo_a.infer(&x).unwrap(),
            "an in-flight request must survive eviction bit-identically"
        );
    });
}

/// Per-tenant stats must attribute answered requests and deadline sheds
/// to the key that incurred them — the split that makes a noisy
/// neighbour visible as *its* problem instead of a tier-wide smear.
#[test]
fn per_tenant_stats_attribute_requests_and_sheds_to_their_key() {
    with_watchdog(Duration::from_secs(60), || {
        let anchor = compile(Backend::CpuGemm, "mul8s_exact");
        let registry = Arc::new(SessionRegistry::new(4).unwrap());
        let key_a = registry.install("tiny", Arc::clone(&anchor)).unwrap();
        let key_b = registry
            .admit(
                "tiny",
                &Assignment::uniform(axmult::catalog::by_name("mul8s_bam_v8h0").unwrap()),
            )
            .unwrap();
        let engine = ServeEngine::with_registry(
            Arc::clone(&registry),
            key_a.clone(),
            ServeConfig::new()
                .with_shards(1)
                .with_max_batch_images(1)
                .with_queue_depth(64),
        )
        .unwrap();
        for seed in 0..3 {
            engine.infer_to(&key_a, request(seed, 1)).unwrap();
        }
        for seed in 0..2 {
            engine.infer_to(&key_b, request(seed, 1)).unwrap();
        }
        // One deadline shed charged to key_b only: a big request parks
        // the single shard while a zero-budget request expires behind it.
        let busy = engine.submit_to(&key_a, request(50, 24)).unwrap();
        let doomed = engine
            .submit_within(&key_b, request(51, 1), Duration::ZERO)
            .unwrap();
        assert!(doomed.wait().is_err(), "zero budget must shed");
        assert!(busy.wait().is_ok());

        let stats = engine.stats();
        assert_eq!(stats.deadline_shed, 1);
        assert_eq!(stats.per_tenant.len(), 2);
        let row = |key: &SessionKey| {
            stats
                .per_tenant
                .iter()
                .find(|t| &t.key == key)
                .unwrap_or_else(|| panic!("missing tenant row for {key}"))
        };
        assert_eq!(row(&key_a).requests, 4, "3 singles + the parked request");
        assert_eq!(row(&key_a).deadline_shed, 0);
        assert_eq!(row(&key_b).requests, 2, "sheds are not answered requests");
        assert_eq!(row(&key_b).deadline_shed, 1);
        // The per-tenant split partitions the engine-wide counters.
        let req_sum: u64 = stats.per_tenant.iter().map(|t| t.requests).sum();
        let shed_sum: u64 = stats.per_tenant.iter().map(|t| t.deadline_shed).sum();
        assert_eq!(req_sum, stats.requests);
        assert_eq!(shed_sum, stats.deadline_shed);
    });
}

fn validation_session() -> Arc<Session> {
    static SESSION: OnceLock<Arc<Session>> = OnceLock::new();
    Arc::clone(SESSION.get_or_init(|| compile(Backend::CpuGemm, "mul8s_exact")))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The `SessionBuilder` convention, proptested on `ServeConfig`: any
    /// zero among `max_batch_images`/`shards`/`queue_depth` surfaces as a
    /// typed `Error::Config` at the `ServeEngine::new` boundary — never a
    /// panic, never a silent clamp — and any all-positive configuration
    /// constructs (and tears down) an engine cleanly.
    #[test]
    fn proptest_config_zeros_are_typed_errors(
        max_batch_images in 0usize..4,
        shards in 0usize..3,
        queue_depth in 0usize..4,
        flush_ticks in 0usize..4,
    ) {
        let cfg = ServeConfig::new()
            .with_max_batch_images(max_batch_images)
            .with_flush_ticks(flush_ticks)
            .with_shards(shards)
            .with_queue_depth(queue_depth);
        let result = ServeEngine::new(validation_session(), cfg);
        if max_batch_images == 0 || shards == 0 || queue_depth == 0 {
            let err = result.map(drop).expect_err("zero field must be rejected");
            prop_assert!(matches!(err, Error::Config(_)), "unexpected error {err}");
            // The message names the offending field.
            let msg = err.to_string();
            prop_assert!(
                msg.contains("max_batch_images") || msg.contains("shards") || msg.contains("queue_depth"),
                "unhelpful message: {msg}"
            );
        } else {
            // flush_ticks 0 is legal: it means "flush when the queue
            // runs dry", not "never flush".
            let engine = result.expect("all-positive config must construct");
            drop(engine);
        }
    }
}
