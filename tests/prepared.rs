//! Property tests of the prepared-execution engine: a layer's cached plan
//! must be indistinguishable — bit for bit — from building a fresh plan
//! per call, across convolution geometries, signednesses, quantization
//! flavours, and all three backends.

use axmult::{AxMultiplier, MulLut, Signedness};
use axquant::{QuantParams, QuantRange, RoundMode};
use axtensor::{rng, ConvGeometry, FilterShape, Matrix, Padding, Shape4, Tensor};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use tfapprox::kernel::{lut_gemm_reference, lut_gemm_tiled, TileConfig};
use tfapprox::{Accumulator, AxConv2D, Backend, EmuContext, PreparedFilter, WorkerPool};

/// The full multiplier catalog, built once for the whole suite (the
/// circuit-backed entries are expensive to regenerate per proptest case).
fn catalog() -> &'static [AxMultiplier] {
    static CATALOG: OnceLock<Vec<AxMultiplier>> = OnceLock::new();
    CATALOG.get_or_init(|| axmult::catalog().expect("catalog builds"))
}

fn geometry(stride: usize, dilation: usize, valid: bool) -> ConvGeometry {
    let mut geom = ConvGeometry::default().with_stride(stride);
    // Dilation only combines with Valid padding in this suite (matching
    // the reference-op tests); Same padding is exercised undilated.
    if dilation > 1 || valid {
        geom = geom.with_dilation(dilation).with_padding(Padding::Valid);
    }
    geom
}

fn layer(
    filter: &axtensor::Filter,
    geom: ConvGeometry,
    lut: &MulLut,
    backend: Backend,
    per_channel: bool,
) -> AxConv2D {
    let ctx = Arc::new(EmuContext::new(backend).with_chunk_size(2).unwrap());
    let l = AxConv2D::new(filter.clone(), geom, lut.clone(), ctx);
    if per_channel {
        l.with_per_channel_filter_quant()
    } else {
        l
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cached-plan results are bit-identical to fresh-plan results and
    /// stable across repeated calls, for every backend.
    #[test]
    fn cached_plan_is_bit_identical_to_fresh_plan(
        seed in 0u64..1000,
        stride in 1usize..3,
        dilation in 1usize..3,
        valid in any::<bool>(),
        one_by_one in any::<bool>(),
        signed in any::<bool>(),
        per_channel in any::<bool>(),
    ) {
        let signedness = if signed { Signedness::Signed } else { Signedness::Unsigned };
        let lut = MulLut::exact(signedness);
        let ksize = if one_by_one { 1 } else { 3 };
        let filter = rng::uniform_filter(FilterShape::new(ksize, ksize, 2, 3), seed ^ 7, -0.5, 0.5);
        let input = rng::uniform(Shape4::new(3, 6, 6, 2), seed, -1.0, 1.0);
        let geom = geometry(stride, dilation, valid);

        for backend in [Backend::CpuDirect, Backend::CpuGemm, Backend::GpuSim] {
            // `cached` reuses one plan across calls; `fresh` is an
            // identically-built layer whose first (plan-building) call is
            // the reference.
            let cached = layer(&filter, geom, &lut, backend, per_channel);
            let fresh = layer(&filter, geom, &lut, backend, per_channel);
            let first = cached.convolve(&input).unwrap();
            let second = cached.convolve(&input).unwrap();
            let reference = fresh.convolve(&input).unwrap();
            prop_assert_eq!(&first, &second, "repeat drifted on {:?}", backend);
            prop_assert_eq!(&first, &reference, "cached != fresh on {:?}", backend);
        }
    }

    /// The tiled, thread-sharded LUT-GEMM is bit-identical to the untiled
    /// reference kernel on **every multiplier in the catalog** — signed
    /// and unsigned, circuit-backed and behavioral — across patch
    /// contents, tile shapes and pool sizes.
    #[test]
    fn tiled_kernel_bit_identical_to_untiled_on_whole_catalog(
        seed in 0u64..1000,
        rows in 1usize..40,
        small_tiles in any::<bool>(),
        threads in 1usize..5,
    ) {
        let fs = FilterShape::new(3, 3, 2, 3);
        let k = fs.patch_len();
        let bytes: Vec<u8> = (0..rows * k)
            .map(|i| ((i as u64 ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as u8)
            .collect();
        let patches = Matrix::from_vec(rows, k, bytes).unwrap();
        let sums: Vec<i64> = (0..rows)
            .map(|r| patches.row(r).iter().map(|&b| i64::from(b as i8)).sum())
            .collect();
        let input_q = QuantParams::from_range(-1.0, 1.0, QuantRange::i8(), RoundMode::NearestEven);
        let filter = rng::uniform_filter(fs, seed ^ 5, -0.5, 0.5);
        let plan = PreparedFilter::from_filter(
            &filter,
            &QuantParams::from_range(-0.5, 0.5, QuantRange::i8(), RoundMode::NearestEven).into(),
        );
        let tiles = if small_tiles {
            TileConfig::new(3, 7, 2).unwrap()
        } else {
            TileConfig::default()
        };
        let pool = WorkerPool::new(threads);
        for mult in catalog() {
            let reference = lut_gemm_reference(
                &patches, &sums, &plan, input_q, mult.lut(), Accumulator::Exact,
            );
            let tiled = lut_gemm_tiled(
                &patches, &sums, &plan, input_q, mult.lut(), Accumulator::Exact, tiles, &pool,
            );
            prop_assert_eq!(tiled, reference, "tiled != untiled on {}", mult.name());
        }
    }

    /// Multi-threaded determinism of the prepared CpuGemm path: for both
    /// a signed and an unsigned catalog multiplier, the convolution is
    /// bit-identical across `threads ∈ {1, 2, 4}` and across repeated
    /// runs of the same context (no accumulation-order drift).
    #[test]
    fn cpu_gemm_prepared_is_bit_identical_across_thread_counts(
        seed in 0u64..1000,
        unsigned in any::<bool>(),
        chunk in 1usize..4,
    ) {
        let name = if unsigned { "mul8u_bam_v8h0" } else { "mul8s_bam_v8h0" };
        let mult = catalog().iter().find(|m| m.name() == name).unwrap();
        let filter = rng::uniform_filter(FilterShape::new(3, 3, 2, 5), seed ^ 3, -0.5, 0.5);
        let input = rng::uniform(Shape4::new(3, 6, 6, 2), seed, -1.0, 1.0);
        let run = |threads: usize| -> (Tensor<f32>, Tensor<f32>) {
            let ctx = Arc::new(
                EmuContext::new(Backend::CpuGemm)
                    .with_chunk_size(chunk)
                    .unwrap()
                    .with_threads(threads)
                    .unwrap(),
            );
            let layer = AxConv2D::new(filter.clone(), ConvGeometry::default(), mult.lut().clone(), ctx);
            (layer.convolve(&input).unwrap(), layer.convolve(&input).unwrap())
        };
        let (reference, repeat) = run(1);
        prop_assert_eq!(&reference, &repeat, "repeated run drifted at threads=1");
        for threads in [2usize, 4] {
            let (out, again) = run(threads);
            prop_assert_eq!(&out, &again, "repeated run drifted at threads={}", threads);
            prop_assert_eq!(&out, &reference, "threads={} != threads=1 ({})", threads, name);
        }
    }

    /// The three backends stay in numerical agreement when driven through
    /// their prepared plans (exact LUT; direct is the golden model).
    #[test]
    fn prepared_backends_agree(seed in 0u64..1000, stride in 1usize..3) {
        let lut = MulLut::exact(Signedness::Signed);
        let filter = rng::uniform_filter(FilterShape::new(3, 3, 2, 3), seed ^ 13, -0.5, 0.5);
        let input = rng::uniform(Shape4::new(2, 6, 6, 2), seed, -1.0, 1.0);
        let geom = ConvGeometry::default().with_stride(stride);
        let run = |backend: Backend| -> Tensor<f32> {
            let l = layer(&filter, geom, &lut, backend, false);
            l.prepare().unwrap();
            l.convolve(&input).unwrap()
        };
        let direct = run(Backend::CpuDirect);
        let gemm = run(Backend::CpuGemm);
        let gpu = run(Backend::GpuSim);
        prop_assert!(direct.max_abs_diff(&gemm).unwrap() < 1e-4);
        prop_assert!(direct.max_abs_diff(&gpu).unwrap() < 1e-2);
    }
}

/// Zero-batch inputs flow through every backend as correctly-shaped empty
/// outputs (regression: `concat_batch(&[])` used to panic).
#[test]
fn zero_batch_graph_level_regression() {
    let lut = MulLut::exact(Signedness::Signed);
    let filter = rng::uniform_filter(FilterShape::new(3, 3, 2, 4), 5, -0.5, 0.5);
    let empty = Tensor::<f32>::zeros(Shape4::new(0, 6, 6, 2));
    for backend in [Backend::CpuDirect, Backend::CpuGemm, Backend::GpuSim] {
        let l = layer(&filter, ConvGeometry::default(), &lut, backend, false);
        let out = l.convolve(&empty).unwrap();
        assert_eq!(out.shape(), Shape4::new(0, 6, 6, 4), "{backend:?}");
        assert!(out.as_slice().is_empty(), "{backend:?}");
    }
}
