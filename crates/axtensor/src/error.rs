use crate::shape::{FilterShape, Shape4};
use std::fmt;

/// Errors from tensor construction and shape algebra.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// Buffer length does not match the shape's element count.
    LengthMismatch {
        /// Elements the shape requires.
        expected: usize,
        /// Elements supplied.
        got: usize,
    },
    /// Filter input channels differ from the tensor's channels.
    ChannelMismatch {
        /// Channels of the input tensor.
        input: usize,
        /// Input channels of the filter.
        filter: usize,
    },
    /// A convolution would produce an empty output (kernel larger than the
    /// padded input).
    EmptyOutput {
        /// The input shape.
        input: Shape4,
        /// The filter shape.
        filter: FilterShape,
    },
    /// A stride or dilation of zero was requested.
    ZeroStride,
    /// Two shapes that must match do not.
    ShapeMismatch {
        /// First shape.
        a: Shape4,
        /// Second shape.
        b: Shape4,
    },
    /// Matrix dimensions incompatible for multiplication.
    MatrixDims {
        /// Columns of the left matrix.
        left_cols: usize,
        /// Rows of the right matrix.
        right_rows: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, got } => {
                write!(f, "buffer holds {got} elements, shape needs {expected}")
            }
            TensorError::ChannelMismatch { input, filter } => {
                write!(f, "input has {input} channels but filter expects {filter}")
            }
            TensorError::EmptyOutput { input, filter } => write!(
                f,
                "convolution of {input} with {filter} yields an empty output"
            ),
            TensorError::ZeroStride => write!(f, "stride and dilation must be non-zero"),
            TensorError::ShapeMismatch { a, b } => write!(f, "shape mismatch: {a} vs {b}"),
            TensorError::MatrixDims {
                left_cols,
                right_rows,
            } => write!(
                f,
                "cannot multiply: left has {left_cols} columns, right has {right_rows} rows"
            ),
        }
    }
}

impl std::error::Error for TensorError {}
