//! Shape algebra for NHWC tensors and HWCF filter banks.

use crate::TensorError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Shape of a 4D tensor in NHWC layout (channels fastest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape4 {
    /// Batch size.
    pub n: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
    /// Channels.
    pub c: usize,
}

impl Shape4 {
    /// Construct a shape.
    #[must_use]
    pub fn new(n: usize, h: usize, w: usize, c: usize) -> Self {
        Shape4 { n, h, w, c }
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n * self.h * self.w * self.c
    }

    /// Whether the shape holds zero elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear index of `(n, h, w, c)` in NHWC order.
    ///
    /// # Panics
    ///
    /// Debug-asserts each coordinate is in range.
    #[inline]
    #[must_use]
    pub fn index(&self, n: usize, h: usize, w: usize, c: usize) -> usize {
        debug_assert!(n < self.n && h < self.h && w < self.w && c < self.c);
        ((n * self.h + h) * self.w + w) * self.c + c
    }
}

impl fmt::Display for Shape4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}, {}, {}]", self.n, self.h, self.w, self.c)
    }
}

/// Shape of a filter bank in HWCF layout (Height × Width × InChannels ×
/// OutChannels, the TensorFlow filter format the paper describes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FilterShape {
    /// Kernel height.
    pub h: usize,
    /// Kernel width.
    pub w: usize,
    /// Input channels.
    pub c_in: usize,
    /// Output channels (number of filters, "Count" in the paper).
    pub c_out: usize,
}

impl FilterShape {
    /// Construct a filter shape.
    #[must_use]
    pub fn new(h: usize, w: usize, c_in: usize, c_out: usize) -> Self {
        FilterShape { h, w, c_in, c_out }
    }

    /// Total number of weights.
    #[must_use]
    pub fn len(&self) -> usize {
        self.h * self.w * self.c_in * self.c_out
    }

    /// Whether the filter bank holds zero weights.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Elements of one flattened patch (`h * w * c_in`) — the GEMM
    /// reduction depth.
    #[must_use]
    pub fn patch_len(&self) -> usize {
        self.h * self.w * self.c_in
    }

    /// Linear index of `(h, w, c_in, c_out)` in HWCF order.
    ///
    /// # Panics
    ///
    /// Debug-asserts each coordinate is in range.
    #[inline]
    #[must_use]
    pub fn index(&self, h: usize, w: usize, ci: usize, co: usize) -> usize {
        debug_assert!(h < self.h && w < self.w && ci < self.c_in && co < self.c_out);
        ((h * self.w + w) * self.c_in + ci) * self.c_out + co
    }
}

impl fmt::Display for FilterShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}, {}, {}]", self.h, self.w, self.c_in, self.c_out)
    }
}

/// Spatial padding policy, following TensorFlow semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Padding {
    /// No padding; output shrinks by the effective kernel size.
    Valid,
    /// Zero-pad so the output is `ceil(input / stride)`.
    ///
    /// The paper notes zero padding is common and motivates the
    /// exact-zero-point requirement of the quantization scheme.
    #[default]
    Same,
}

/// Full geometry of a 2D convolution: strides, dilations and padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvGeometry {
    /// Stride `(height, width)`.
    pub stride: (usize, usize),
    /// Dilation `(height, width)`.
    pub dilation: (usize, usize),
    /// Padding policy.
    pub padding: Padding,
}

impl Default for ConvGeometry {
    fn default() -> Self {
        ConvGeometry {
            stride: (1, 1),
            dilation: (1, 1),
            padding: Padding::Same,
        }
    }
}

impl ConvGeometry {
    /// Unit geometry: stride 1, dilation 1, `SAME` padding.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the stride (same in both dimensions).
    #[must_use]
    pub fn with_stride(mut self, s: usize) -> Self {
        self.stride = (s, s);
        self
    }

    /// Set the dilation (same in both dimensions).
    #[must_use]
    pub fn with_dilation(mut self, d: usize) -> Self {
        self.dilation = (d, d);
        self
    }

    /// Set the padding policy.
    #[must_use]
    pub fn with_padding(mut self, p: Padding) -> Self {
        self.padding = p;
        self
    }

    /// Effective kernel extent after dilation: `(k - 1) * d + 1`.
    fn effective(k: usize, d: usize) -> usize {
        (k - 1) * d + 1
    }

    /// Padding at the leading edge `(top, left)` under this geometry.
    ///
    /// `SAME` splits the total padding evenly with the extra pixel at the
    /// trailing edge, matching TensorFlow.
    #[must_use]
    pub fn pad_before(&self, input: Shape4, filter: FilterShape) -> (usize, usize) {
        match self.padding {
            Padding::Valid => (0, 0),
            Padding::Same => {
                let pad = |i: usize, k: usize, s: usize, d: usize| {
                    let out = i.div_ceil(s);
                    let eff = Self::effective(k, d);
                    let total = ((out - 1) * s + eff).saturating_sub(i);
                    total / 2
                };
                (
                    pad(input.h, filter.h, self.stride.0, self.dilation.0),
                    pad(input.w, filter.w, self.stride.1, self.dilation.1),
                )
            }
        }
    }

    /// Output shape of convolving `input` with `filter`.
    ///
    /// # Errors
    ///
    /// - [`TensorError::ZeroStride`] for zero stride/dilation.
    /// - [`TensorError::ChannelMismatch`] if channel counts disagree.
    /// - [`TensorError::EmptyOutput`] if the kernel exceeds the padded
    ///   input extent.
    pub fn output_shape(&self, input: Shape4, filter: FilterShape) -> Result<Shape4, TensorError> {
        if self.stride.0 == 0 || self.stride.1 == 0 || self.dilation.0 == 0 || self.dilation.1 == 0
        {
            return Err(TensorError::ZeroStride);
        }
        if input.c != filter.c_in {
            return Err(TensorError::ChannelMismatch {
                input: input.c,
                filter: filter.c_in,
            });
        }
        let (oh, ow) = match self.padding {
            Padding::Same => (
                input.h.div_ceil(self.stride.0),
                input.w.div_ceil(self.stride.1),
            ),
            Padding::Valid => {
                let eh = Self::effective(filter.h, self.dilation.0);
                let ew = Self::effective(filter.w, self.dilation.1);
                if input.h < eh || input.w < ew {
                    return Err(TensorError::EmptyOutput { input, filter });
                }
                (
                    (input.h - eh) / self.stride.0 + 1,
                    (input.w - ew) / self.stride.1 + 1,
                )
            }
        };
        if oh == 0 || ow == 0 {
            return Err(TensorError::EmptyOutput { input, filter });
        }
        Ok(Shape4::new(input.n, oh, ow, filter.c_out))
    }

    /// Number of multiply-accumulate operations this convolution performs
    /// (one per filter tap per output element) — the paper's `# MACs`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ConvGeometry::output_shape`].
    pub fn mac_count(&self, input: Shape4, filter: FilterShape) -> Result<u64, TensorError> {
        let out = self.output_shape(input, filter)?;
        Ok(out.len() as u64 * filter.patch_len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nhwc_index_channels_fastest() {
        let s = Shape4::new(2, 4, 4, 3);
        assert_eq!(s.index(0, 0, 0, 0), 0);
        assert_eq!(s.index(0, 0, 0, 2), 2);
        assert_eq!(s.index(0, 0, 1, 0), 3);
        assert_eq!(s.index(0, 1, 0, 0), 12);
        assert_eq!(s.index(1, 0, 0, 0), 48);
        assert_eq!(s.len(), 96);
    }

    #[test]
    fn hwcf_index_filters_fastest() {
        let f = FilterShape::new(3, 3, 2, 4);
        assert_eq!(f.index(0, 0, 0, 0), 0);
        assert_eq!(f.index(0, 0, 0, 3), 3);
        assert_eq!(f.index(0, 0, 1, 0), 4);
        assert_eq!(f.index(0, 1, 0, 0), 8);
        assert_eq!(f.index(1, 0, 0, 0), 24);
        assert_eq!(f.patch_len(), 18);
    }

    #[test]
    fn same_padding_preserves_spatial_dims_at_stride_1() {
        let g = ConvGeometry::default();
        let out = g
            .output_shape(Shape4::new(1, 32, 32, 3), FilterShape::new(3, 3, 3, 16))
            .unwrap();
        assert_eq!(out, Shape4::new(1, 32, 32, 16));
    }

    #[test]
    fn same_padding_halves_at_stride_2() {
        let g = ConvGeometry::default().with_stride(2);
        let out = g
            .output_shape(Shape4::new(1, 32, 32, 16), FilterShape::new(3, 3, 16, 32))
            .unwrap();
        assert_eq!(out, Shape4::new(1, 16, 16, 32));
        // Odd input: ceil(33/2) = 17.
        let out = g
            .output_shape(Shape4::new(1, 33, 33, 16), FilterShape::new(3, 3, 16, 32))
            .unwrap();
        assert_eq!((out.h, out.w), (17, 17));
    }

    #[test]
    fn valid_padding_shrinks() {
        let g = ConvGeometry::default().with_padding(Padding::Valid);
        let out = g
            .output_shape(Shape4::new(1, 32, 32, 3), FilterShape::new(5, 5, 3, 8))
            .unwrap();
        assert_eq!(out, Shape4::new(1, 28, 28, 8));
    }

    #[test]
    fn dilation_expands_effective_kernel() {
        let g = ConvGeometry::default()
            .with_padding(Padding::Valid)
            .with_dilation(2);
        // Effective 3x3 kernel at dilation 2 spans 5 pixels.
        let out = g
            .output_shape(Shape4::new(1, 10, 10, 1), FilterShape::new(3, 3, 1, 1))
            .unwrap();
        assert_eq!((out.h, out.w), (6, 6));
    }

    #[test]
    fn channel_mismatch_rejected() {
        let g = ConvGeometry::default();
        let err = g
            .output_shape(Shape4::new(1, 8, 8, 3), FilterShape::new(3, 3, 4, 8))
            .unwrap_err();
        assert!(matches!(
            err,
            TensorError::ChannelMismatch {
                input: 3,
                filter: 4
            }
        ));
    }

    #[test]
    fn oversized_kernel_rejected_for_valid() {
        let g = ConvGeometry::default().with_padding(Padding::Valid);
        let err = g
            .output_shape(Shape4::new(1, 2, 2, 1), FilterShape::new(3, 3, 1, 1))
            .unwrap_err();
        assert!(matches!(err, TensorError::EmptyOutput { .. }));
    }

    #[test]
    fn zero_stride_rejected() {
        let g = ConvGeometry {
            stride: (0, 1),
            ..ConvGeometry::default()
        };
        let err = g
            .output_shape(Shape4::new(1, 8, 8, 1), FilterShape::new(3, 3, 1, 1))
            .unwrap_err();
        assert_eq!(err, TensorError::ZeroStride);
    }

    #[test]
    fn same_pad_before_tf_semantics() {
        let g = ConvGeometry::default();
        // 3x3 kernel, stride 1: pad 1 on each leading edge.
        assert_eq!(
            g.pad_before(Shape4::new(1, 32, 32, 3), FilterShape::new(3, 3, 3, 8)),
            (1, 1)
        );
        // Even kernel: TF puts the smaller half first.
        assert_eq!(
            g.pad_before(Shape4::new(1, 32, 32, 3), FilterShape::new(2, 2, 3, 8)),
            (0, 0)
        );
    }

    #[test]
    fn mac_count_matches_hand_computation() {
        let g = ConvGeometry::default();
        // 32x32x16 output, 3x3x16 patch: 32*32*16 * 144 MACs.
        let macs = g
            .mac_count(Shape4::new(1, 32, 32, 16), FilterShape::new(3, 3, 16, 16))
            .unwrap();
        assert_eq!(macs, 32 * 32 * 16 * 144);
    }
}
