//! Deterministic random tensor fills.
//!
//! All experiments in this workspace are seeded: the paper's timing results
//! are data-independent ("the content of the LUT table ... does not have
//! any impact on the execution time"), but accuracy comparisons need
//! reproducible inputs and weights.

use crate::ops::Filter;
use crate::{FilterShape, Shape4, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A tensor with elements drawn uniformly from `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
#[must_use]
pub fn uniform(shape: Shape4, seed: u64, lo: f32, hi: f32) -> Tensor<f32> {
    assert!(lo < hi, "empty range [{lo}, {hi})");
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::from_fn(shape, |_, _, _, _| rng.gen_range(lo..hi))
}

/// A filter bank with weights drawn uniformly from `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
#[must_use]
pub fn uniform_filter(shape: FilterShape, seed: u64, lo: f32, hi: f32) -> Filter {
    assert!(lo < hi, "empty range [{lo}, {hi})");
    let mut rng = StdRng::seed_from_u64(seed);
    Filter::from_fn(shape, |_, _, _, _| rng.gen_range(lo..hi))
}

/// He-style initialization for a conv filter: zero-mean uniform with
/// variance `2 / fan_in` — keeps activations in a realistic range through
/// deep synthetic networks.
#[must_use]
pub fn he_filter(shape: FilterShape, seed: u64) -> Filter {
    let fan_in = shape.patch_len() as f32;
    let bound = (6.0 / fan_in).sqrt();
    uniform_filter(shape, seed, -bound, bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_tensor() {
        let a = uniform(Shape4::new(1, 4, 4, 3), 11, -1.0, 1.0);
        let b = uniform(Shape4::new(1, 4, 4, 3), 11, -1.0, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_tensor() {
        let a = uniform(Shape4::new(1, 4, 4, 3), 11, -1.0, 1.0);
        let b = uniform(Shape4::new(1, 4, 4, 3), 12, -1.0, 1.0);
        assert_ne!(a, b);
    }

    #[test]
    fn range_respected() {
        let t = uniform(Shape4::new(2, 8, 8, 4), 5, 0.25, 0.75);
        assert!(t.as_slice().iter().all(|&v| (0.25..0.75).contains(&v)));
    }

    #[test]
    fn he_filter_bound_shrinks_with_fan_in() {
        let small = he_filter(FilterShape::new(1, 1, 1, 4), 1);
        let big = he_filter(FilterShape::new(3, 3, 64, 4), 1);
        let max_small = small.as_slice().iter().fold(0f32, |m, &v| m.max(v.abs()));
        let max_big = big.as_slice().iter().fold(0f32, |m, &v| m.max(v.abs()));
        assert!(max_big < max_small);
    }
}
