//! NHWC 4D tensor substrate for the TFApprox reproduction.
//!
//! The paper's `AxConv2D` operator consumes the same tensor contract as
//! TensorFlow's `Conv2D`: a batch of 3D images in **NHWC** layout
//! (Batch × Height × Width × Channels, channels fastest) and a filter bank
//! in **HWCF** layout (Height × Width × InChannels × OutChannels). This
//! crate provides those containers plus the geometry and reference
//! kernels every backend is tested against:
//!
//! - [`Shape4`] / [`FilterShape`] / [`ConvGeometry`]: shape algebra with
//!   stride, dilation, and `SAME`/`VALID` padding,
//! - [`Tensor`]: a dense generic 4D tensor,
//! - [`mod@im2col`]: the image-to-columns transform (phase (i) of the paper's
//!   GEMM-based convolution),
//! - [`ops`]: reference f32 matmul, direct convolution, element-wise ops
//!   and min/max reductions (the paper's inserted `Min`/`Max` nodes),
//! - [`rng`]: deterministic tensor fills for reproducible experiments.
//!
//! # Example
//!
//! ```
//! use axtensor::{ConvGeometry, FilterShape, Padding, Shape4, Tensor};
//!
//! # fn main() -> Result<(), axtensor::TensorError> {
//! let input = Tensor::<f32>::zeros(Shape4::new(1, 32, 32, 3));
//! let filter = FilterShape::new(3, 3, 3, 16);
//! let geom = ConvGeometry::default().with_padding(Padding::Same);
//! let out = geom.output_shape(input.shape(), filter)?;
//! assert_eq!(out, Shape4::new(1, 32, 32, 16));
//! # Ok(())
//! # }
//! ```

pub mod im2col;
pub mod ops;
pub mod rng;
pub mod segment;
pub mod shape;
pub mod tensor;

mod error;

pub use error::TensorError;
pub use im2col::{im2col, im2col_panels, PatchMatrix, PatchPanels};
pub use ops::{Filter, Matrix};
pub use segment::SegmentTable;
pub use shape::{ConvGeometry, FilterShape, Padding, Shape4};
pub use tensor::Tensor;
