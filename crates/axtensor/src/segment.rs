//! Request segments along the batch axis.
//!
//! The serving tier coalesces several requests into one fused batch
//! tensor. Each request occupies a contiguous *segment* of the batch
//! dimension, and every segment must be quantized with exactly the
//! `(α, β)` pair it would have received alone — that is what keeps a
//! fused forward pass bit-identical to solo inference. [`SegmentTable`]
//! is the boundary record that travels with the fused tensor: it maps a
//! batch (or, after [`SegmentTable::scaled`], an im2col row) index back
//! to the request it belongs to.

use serde::{Deserialize, Serialize};

/// Contiguous request boundaries along the batch/row axis of a fused
/// tensor.
///
/// A table of `S` segments partitions `[0, total)` into `S` consecutive
/// half-open spans, one per request, in submission order. Zero-length
/// segments are legal (a zero-image request still gets an answer) and
/// simply span nothing.
///
/// # Example
///
/// ```
/// use axtensor::SegmentTable;
///
/// let t = SegmentTable::from_counts(&[2, 0, 3]);
/// assert_eq!(t.len(), 3);
/// assert_eq!(t.total(), 5);
/// assert_eq!(t.bounds(1), (2, 2)); // empty segment
/// assert_eq!(t.bounds(2), (2, 5));
/// // Images -> im2col rows: 4 patch rows per image.
/// assert_eq!(t.scaled(4).bounds(2), (8, 20));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentTable {
    /// `offsets[i]..offsets[i + 1]` is segment `i`; `offsets[0] == 0`.
    offsets: Vec<usize>,
}

impl SegmentTable {
    /// Build a table from per-segment element counts.
    #[must_use]
    pub fn from_counts(counts: &[usize]) -> Self {
        let mut offsets = Vec::with_capacity(counts.len() + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &c in counts {
            acc += c;
            offsets.push(acc);
        }
        SegmentTable { offsets }
    }

    /// The trivial table: one segment spanning `[0, total)` — what a solo
    /// request is. Segment-aware code fed this table behaves exactly like
    /// its unsegmented predecessor.
    #[must_use]
    pub fn single(total: usize) -> Self {
        SegmentTable {
            offsets: vec![0, total],
        }
    }

    /// Number of segments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the table holds no segments at all (distinct from holding
    /// only empty segments).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total element count across all segments.
    #[must_use]
    pub fn total(&self) -> usize {
        *self.offsets.last().expect("offsets never empty")
    }

    /// Element count of segment `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn count(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Per-segment element counts.
    #[must_use]
    pub fn counts(&self) -> Vec<usize> {
        self.offsets.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Half-open span `(start, end)` of segment `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn bounds(&self, i: usize) -> (usize, usize) {
        (self.offsets[i], self.offsets[i + 1])
    }

    /// Iterate over `(start, end)` spans in order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.offsets.windows(2).map(|w| (w[0], w[1]))
    }

    /// Rescale every boundary by a constant factor — the image→row map:
    /// an image contributes `out_h × out_w` im2col patch rows, so the
    /// row-space table of a fused patch matrix is the image-space table
    /// scaled by that factor.
    #[must_use]
    pub fn scaled(&self, factor: usize) -> SegmentTable {
        SegmentTable {
            offsets: self.offsets.iter().map(|&o| o * factor).collect(),
        }
    }

    /// The segment a flat index belongs to (empty segments can never own
    /// an index). `None` if `index >= total()`.
    #[must_use]
    pub fn segment_of(&self, index: usize) -> Option<usize> {
        if index >= self.total() {
            return None;
        }
        // partition_point: first offset strictly greater than index, minus
        // one, skipping any run of empty segments sharing that offset.
        let p = self.offsets.partition_point(|&o| o <= index);
        Some(p - 1)
    }

    /// Flatten to a per-element segment-index vector (`total()` entries)
    /// — the O(1) row→segment lookup the GEMM epilogue wants.
    #[must_use]
    pub fn element_segments(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.total());
        for (i, (start, end)) in self.iter().enumerate() {
            let tag = u32::try_from(i).expect("segment count fits u32");
            out.extend(std::iter::repeat_n(tag, end - start));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_counts_builds_spans() {
        let t = SegmentTable::from_counts(&[2, 0, 3, 1]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.total(), 6);
        assert_eq!(t.counts(), vec![2, 0, 3, 1]);
        assert_eq!(t.bounds(0), (0, 2));
        assert_eq!(t.bounds(1), (2, 2));
        assert_eq!(t.bounds(2), (2, 5));
        assert_eq!(t.bounds(3), (5, 6));
        assert_eq!(t.count(2), 3);
    }

    #[test]
    fn single_is_one_full_span() {
        let t = SegmentTable::single(7);
        assert_eq!(t.len(), 1);
        assert_eq!(t.total(), 7);
        assert_eq!(t.bounds(0), (0, 7));
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_tables() {
        let none = SegmentTable::from_counts(&[]);
        assert!(none.is_empty());
        assert_eq!(none.total(), 0);
        let hollow = SegmentTable::from_counts(&[0, 0]);
        assert!(!hollow.is_empty());
        assert_eq!(hollow.len(), 2);
        assert_eq!(hollow.total(), 0);
        assert_eq!(hollow.element_segments(), Vec::<u32>::new());
    }

    #[test]
    fn scaled_multiplies_boundaries() {
        let t = SegmentTable::from_counts(&[1, 0, 2]).scaled(9);
        assert_eq!(t.counts(), vec![9, 0, 18]);
        assert_eq!(t.total(), 27);
    }

    #[test]
    fn segment_of_skips_empty_segments() {
        let t = SegmentTable::from_counts(&[2, 0, 0, 3]);
        assert_eq!(t.segment_of(0), Some(0));
        assert_eq!(t.segment_of(1), Some(0));
        assert_eq!(t.segment_of(2), Some(3));
        assert_eq!(t.segment_of(4), Some(3));
        assert_eq!(t.segment_of(5), None);
    }

    #[test]
    fn element_segments_matches_segment_of() {
        let t = SegmentTable::from_counts(&[1, 0, 3, 0, 2]);
        let flat = t.element_segments();
        assert_eq!(flat.len(), t.total());
        for (i, &s) in flat.iter().enumerate() {
            assert_eq!(t.segment_of(i), Some(s as usize));
        }
        assert_eq!(flat, vec![0, 2, 2, 2, 4, 4]);
    }

    #[test]
    fn iter_yields_every_span() {
        let t = SegmentTable::from_counts(&[2, 1]);
        let spans: Vec<_> = t.iter().collect();
        assert_eq!(spans, vec![(0, 2), (2, 3)]);
    }
}
