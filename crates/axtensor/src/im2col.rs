//! Image-to-columns: phase (i) of the paper's GEMM-based convolution.
//!
//! "The patch matrix in which each row corresponds to a single position of
//! the kernel is constructed (the image-to-columns phase)." Each row of the
//! produced matrix is one flattened receptive field; multiplying it with
//! the `patch_len × c_out` filter matrix yields the convolution output.

use crate::ops::Matrix;
use crate::{ConvGeometry, FilterShape, Shape4, Tensor, TensorError};

/// The patch matrix produced by [`im2col`], together with the output
/// spatial shape it corresponds to.
#[derive(Debug, Clone, PartialEq)]
pub struct PatchMatrix {
    /// `rows = n·out_h·out_w`, `cols = kh·kw·c_in`; row-major.
    pub matrix: Matrix<f32>,
    /// Shape of the convolution output this patch matrix produces
    /// (channels = `c_out` once multiplied with a filter matrix).
    pub out_shape: Shape4,
}

/// Extract the patch matrix of `input` for the given filter geometry.
///
/// Out-of-bounds taps (from `SAME` padding) read as zero, which the
/// quantization scheme's exact-zero-point requirement exists to keep
/// error-free.
///
/// # Errors
///
/// Propagates the shape errors of [`ConvGeometry::output_shape`].
pub fn im2col(
    input: &Tensor<f32>,
    filter: FilterShape,
    geom: ConvGeometry,
) -> Result<PatchMatrix, TensorError> {
    let out = geom.output_shape(input.shape(), filter)?;
    let (pad_h, pad_w) = geom.pad_before(input.shape(), filter);
    let rows = out.n * out.h * out.w;
    let cols = filter.patch_len();
    let mut data = vec![0f32; rows * cols];
    let shape = input.shape();
    let src = input.as_slice();
    let mut row = 0usize;
    for n in 0..out.n {
        for oy in 0..out.h {
            for ox in 0..out.w {
                let base = row * cols;
                let mut col = 0usize;
                for ky in 0..filter.h {
                    let iy = (oy * geom.stride.0 + ky * geom.dilation.0) as isize - pad_h as isize;
                    for kx in 0..filter.w {
                        let ix =
                            (ox * geom.stride.1 + kx * geom.dilation.1) as isize - pad_w as isize;
                        if iy >= 0 && (iy as usize) < shape.h && ix >= 0 && (ix as usize) < shape.w
                        {
                            let from = shape.index(n, iy as usize, ix as usize, 0);
                            data[base + col..base + col + shape.c]
                                .copy_from_slice(&src[from..from + shape.c]);
                        }
                        // else: leave zeros (padding)
                        col += shape.c;
                    }
                }
                row += 1;
            }
        }
    }
    Ok(PatchMatrix {
        matrix: Matrix::from_vec(rows, cols, data).expect("sized above"),
        out_shape: Shape4::new(out.n, out.h, out.w, filter.c_out),
    })
}

/// The panel-major patch matrix produced by [`im2col_panels`]: the
/// transpose of [`PatchMatrix`].
///
/// Row `k` of `panels` holds tap `k` of **every** patch contiguously
/// (`rows = kh·kw·c_in`, `cols = n·out_h·out_w`). This is the operand
/// layout of a cache-blocked GEMM microkernel that holds one filter tap —
/// and therefore one look-up-table row — fixed while streaming across
/// output positions; the row-major [`PatchMatrix`] would make that inner
/// loop stride by the patch length instead.
#[derive(Debug, Clone, PartialEq)]
pub struct PatchPanels {
    /// `patch_len × rows` tap-major matrix (`panels.row(k)[r]` is tap `k`
    /// of patch `r`).
    pub panels: Matrix<f32>,
    /// Shape of the convolution output these panels produce.
    pub out_shape: Shape4,
}

/// [`im2col`] in panel-major (tap-major) layout — the transpose of the
/// row-major patch matrix, produced with a cache-blocked transposition.
///
/// This is the reference form of the layout; note that the production
/// host LUT-GEMM (`tfapprox::kernel`) deliberately does **not**
/// materialize it — a measured transpose of one ResNet-stage-1 chunk
/// costs about as much as the GEMM itself, so that kernel streams the
/// row-major matrix through parallel register-tile row streams instead.
/// Use this variant when an algorithm genuinely consumes tap-major
/// panels (e.g. a kernel that amortizes the transpose across many passes
/// over the same patches).
///
/// # Errors
///
/// Propagates the shape errors of [`ConvGeometry::output_shape`].
pub fn im2col_panels(
    input: &Tensor<f32>,
    filter: FilterShape,
    geom: ConvGeometry,
) -> Result<PatchPanels, TensorError> {
    let pm = im2col(input, filter, geom)?;
    Ok(PatchPanels {
        panels: pm.matrix.transposed(),
        out_shape: pm.out_shape,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Padding;

    #[test]
    fn identity_kernel_patches_are_pixels() {
        let input = Tensor::from_fn(Shape4::new(1, 2, 2, 1), |_, h, w, _| (h * 2 + w) as f32);
        let pm = im2col(
            &input,
            FilterShape::new(1, 1, 1, 1),
            ConvGeometry::default(),
        )
        .unwrap();
        assert_eq!(pm.matrix.rows(), 4);
        assert_eq!(pm.matrix.cols(), 1);
        assert_eq!(pm.matrix.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn same_padding_reads_zeros_at_border() {
        let input = Tensor::<f32>::full(Shape4::new(1, 2, 2, 1), 1.0);
        let pm = im2col(
            &input,
            FilterShape::new(3, 3, 1, 1),
            ConvGeometry::default(),
        )
        .unwrap();
        // Top-left patch: 4 in-bounds ones, 5 padded zeros.
        let first: f32 = pm.matrix.as_slice()[..9].iter().sum();
        assert_eq!(first, 4.0);
    }

    #[test]
    fn valid_padding_no_zeros() {
        let input = Tensor::<f32>::full(Shape4::new(1, 4, 4, 2), 1.0);
        let pm = im2col(
            &input,
            FilterShape::new(3, 3, 2, 1),
            ConvGeometry::default().with_padding(Padding::Valid),
        )
        .unwrap();
        assert_eq!(pm.matrix.rows(), 4);
        assert!(pm.matrix.as_slice().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn stride_skips_positions() {
        let input = Tensor::from_fn(Shape4::new(1, 4, 4, 1), |_, h, w, _| (h * 4 + w) as f32);
        let pm = im2col(
            &input,
            FilterShape::new(1, 1, 1, 1),
            ConvGeometry::default().with_stride(2),
        )
        .unwrap();
        assert_eq!(pm.matrix.as_slice(), &[0.0, 2.0, 8.0, 10.0]);
    }

    #[test]
    fn channels_stay_contiguous_in_patch() {
        let input = Tensor::from_fn(Shape4::new(1, 1, 2, 3), |_, _, w, c| (w * 10 + c) as f32);
        let pm = im2col(
            &input,
            FilterShape::new(1, 2, 3, 1),
            ConvGeometry::default().with_padding(Padding::Valid),
        )
        .unwrap();
        assert_eq!(pm.matrix.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn panels_are_the_transposed_patches() {
        let input = Tensor::from_fn(Shape4::new(2, 5, 4, 3), |n, h, w, c| {
            (n * 1000 + h * 100 + w * 10 + c) as f32
        });
        let fs = FilterShape::new(3, 3, 3, 2);
        let geom = ConvGeometry::default().with_stride(2);
        let pm = im2col(&input, fs, geom).unwrap();
        let pp = im2col_panels(&input, fs, geom).unwrap();
        assert_eq!(pp.out_shape, pm.out_shape);
        assert_eq!(pp.panels.rows(), pm.matrix.cols());
        assert_eq!(pp.panels.cols(), pm.matrix.rows());
        for r in 0..pm.matrix.rows() {
            for k in 0..pm.matrix.cols() {
                assert_eq!(pp.panels.at(k, r), pm.matrix.at(r, k), "({r}, {k})");
            }
        }
    }

    #[test]
    fn out_shape_carries_filter_count() {
        let input = Tensor::<f32>::zeros(Shape4::new(2, 8, 8, 3));
        let pm = im2col(
            &input,
            FilterShape::new(3, 3, 3, 16),
            ConvGeometry::default(),
        )
        .unwrap();
        assert_eq!(pm.out_shape, Shape4::new(2, 8, 8, 16));
        assert_eq!(pm.matrix.rows(), 2 * 8 * 8);
        assert_eq!(pm.matrix.cols(), 27);
    }
}
