//! Reference operations: matrices, matmul, direct convolution, reductions.
//!
//! Everything here is the *golden model* the optimized backends (CPU GEMM,
//! simulated GPU) are validated against in tests.

use crate::{ConvGeometry, FilterShape, Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Matrix<T> {
    /// A zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }

    /// The transposed matrix, built with a cache-blocked sweep so neither
    /// the source rows nor the destination columns thrash: both sides of
    /// each `32×32` block stay resident while it is copied.
    ///
    /// This is the panel-major conversion of the tiled LUT-GEMM path: a
    /// row-major patch matrix (`rows = patches`, `cols = taps`) becomes a
    /// tap-major panel matrix whose row `k` holds tap `k` of every patch
    /// contiguously — the layout a microkernel streams while it holds one
    /// look-up-table row fixed.
    #[must_use]
    pub fn transposed(&self) -> Matrix<T> {
        const B: usize = 32;
        let mut data = vec![T::default(); self.data.len()];
        for rb in (0..self.rows).step_by(B) {
            let r_end = (rb + B).min(self.rows);
            for cb in (0..self.cols).step_by(B) {
                let c_end = (cb + B).min(self.cols);
                for r in rb..r_end {
                    let src = &self.data[r * self.cols..(r + 1) * self.cols];
                    for c in cb..c_end {
                        data[c * self.rows + r] = src[c];
                    }
                }
            }
        }
        Matrix {
            rows: self.cols,
            cols: self.rows,
            data,
        }
    }
}

impl<T> Matrix<T> {
    /// Wrap a row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::LengthMismatch {
                expected: rows * cols,
                got: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row-major flat view.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable row-major flat view.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn row(&self, r: usize) -> &[T] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Consume into the row-major buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }
}

impl<T: Copy> Matrix<T> {
    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    #[must_use]
    pub fn at(&self, r: usize, c: usize) -> T {
        self.data[r * self.cols + c]
    }

    /// Mutable element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut T {
        &mut self.data[r * self.cols + c]
    }
}

/// Reference f32 matrix product `a × b`.
///
/// # Errors
///
/// Returns [`TensorError::MatrixDims`] if `a.cols() != b.rows()`.
pub fn matmul(a: &Matrix<f32>, b: &Matrix<f32>) -> Result<Matrix<f32>, TensorError> {
    if a.cols() != b.rows() {
        return Err(TensorError::MatrixDims {
            left_cols: a.cols(),
            right_rows: b.rows(),
        });
    }
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let av = a.at(i, k);
            if av == 0.0 {
                continue;
            }
            let brow = b.row(k);
            let orow = &mut out.as_mut_slice()[i * brow.len()..(i + 1) * brow.len()];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    Ok(out)
}

/// A filter bank: HWCF-layout weights with their shape.
///
/// # Layout invariant
///
/// The flat buffer is HWCF-ordered: `c_out` (the filter index F) is the
/// **fastest-varying** dimension, then `c_in`, then kernel width, then
/// kernel height. Consequences downstream code relies on:
///
/// - flat index `i` belongs to output channel `i % c_out` (per-channel
///   range scans and the `Sf` column sums use this),
/// - the buffer reinterpreted as a row-major `patch_len() × c_out` matrix
///   ([`Filter::to_matrix`]) puts each filter in its own column with no
///   data movement.
///
/// [`Filter::from_vec`] enforces `data.len() == shape.len()` exactly, so
/// a buffer whose length is not a multiple of `c_out` can never be
/// wrapped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Filter {
    shape: FilterShape,
    data: Vec<f32>,
}

impl Filter {
    /// Wrap an HWCF-ordered weight buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] on a size mismatch.
    pub fn from_vec(shape: FilterShape, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.len(),
                got: data.len(),
            });
        }
        Ok(Filter { shape, data })
    }

    /// Build by evaluating `f(h, w, c_in, c_out)` at every tap.
    pub fn from_fn(
        shape: FilterShape,
        mut f: impl FnMut(usize, usize, usize, usize) -> f32,
    ) -> Self {
        let mut data = Vec::with_capacity(shape.len());
        for h in 0..shape.h {
            for w in 0..shape.w {
                for ci in 0..shape.c_in {
                    for co in 0..shape.c_out {
                        data.push(f(h, w, ci, co));
                    }
                }
            }
        }
        Filter { shape, data }
    }

    /// The filter bank's shape.
    #[must_use]
    pub fn shape(&self) -> FilterShape {
        self.shape
    }

    /// HWCF-ordered flat weights.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Weight at `(h, w, c_in, c_out)`.
    ///
    /// # Panics
    ///
    /// Panics if a coordinate is out of range.
    #[inline]
    #[must_use]
    pub fn at(&self, h: usize, w: usize, ci: usize, co: usize) -> f32 {
        self.data[self.shape.index(h, w, ci, co)]
    }

    /// View the bank as a `patch_len × c_out` matrix (each column one
    /// filter — "the filters matrix in which each column corresponds to a
    /// single filter").
    #[must_use]
    pub fn to_matrix(&self) -> Matrix<f32> {
        Matrix::from_vec(self.shape.patch_len(), self.shape.c_out, self.data.clone())
            .expect("HWCF layout is already (patch, c_out) row-major")
    }
}

/// Reference direct 2D convolution (nested loops over the definition).
///
/// # Errors
///
/// Propagates shape errors from [`ConvGeometry::output_shape`].
pub fn conv2d_direct(
    input: &Tensor<f32>,
    filter: &Filter,
    geom: ConvGeometry,
) -> Result<Tensor<f32>, TensorError> {
    let out_shape = geom.output_shape(input.shape(), filter.shape())?;
    let (pad_h, pad_w) = geom.pad_before(input.shape(), filter.shape());
    let fs = filter.shape();
    let shape = input.shape();
    let mut out = Tensor::<f32>::zeros(out_shape);
    for n in 0..out_shape.n {
        for oy in 0..out_shape.h {
            for ox in 0..out_shape.w {
                for co in 0..fs.c_out {
                    let mut acc = 0f32;
                    for ky in 0..fs.h {
                        let iy =
                            (oy * geom.stride.0 + ky * geom.dilation.0) as isize - pad_h as isize;
                        if iy < 0 || iy as usize >= shape.h {
                            continue;
                        }
                        for kx in 0..fs.w {
                            let ix = (ox * geom.stride.1 + kx * geom.dilation.1) as isize
                                - pad_w as isize;
                            if ix < 0 || ix as usize >= shape.w {
                                continue;
                            }
                            for ci in 0..fs.c_in {
                                acc += input.at(n, iy as usize, ix as usize, ci)
                                    * filter.at(ky, kx, ci, co);
                            }
                        }
                    }
                    *out.at_mut(n, oy, ox, co) = acc;
                }
            }
        }
    }
    Ok(out)
}

/// GEMM-formulated 2D convolution: im2col followed by a matrix product
/// (phase (i) + phase (ii) of the paper, in f32).
///
/// # Errors
///
/// Propagates shape errors.
pub fn conv2d_gemm(
    input: &Tensor<f32>,
    filter: &Filter,
    geom: ConvGeometry,
) -> Result<Tensor<f32>, TensorError> {
    let pm = crate::im2col(input, filter.shape(), geom)?;
    let prod = matmul(&pm.matrix, &filter.to_matrix())?;
    Tensor::from_vec(pm.out_shape, prod.into_vec())
}

/// Minimum and maximum over all elements — the paper's inserted `Min` /
/// `Max` graph nodes, computed "once per batch".
///
/// Returns `(0.0, 0.0)` for an empty tensor and `(NaN, NaN)` if any
/// element is NaN (a NaN range is undefined; propagating it lets the
/// quantization layer reject it instead of silently deriving garbage
/// coefficients — `f32::min`/`f32::max` alone would swallow the NaN).
#[must_use]
pub fn min_max(t: &Tensor<f32>) -> (f32, f32) {
    min_max_slice(t.as_slice())
}

/// Minimum and maximum over a plain slice.
///
/// Returns `(0.0, 0.0)` for an empty slice and `(NaN, NaN)` if any
/// element is NaN (see [`min_max`]).
#[must_use]
pub fn min_max_slice(s: &[f32]) -> (f32, f32) {
    let Some((&first, rest)) = s.split_first() else {
        return (0.0, 0.0);
    };
    let mut lo = first;
    let mut hi = first;
    let mut saw_nan = first.is_nan();
    for &v in rest {
        saw_nan |= v.is_nan();
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if saw_nan {
        (f32::NAN, f32::NAN)
    } else {
        (lo, hi)
    }
}

/// Element-wise sum of two tensors (residual connections).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if shapes differ.
pub fn add(a: &Tensor<f32>, b: &Tensor<f32>) -> Result<Tensor<f32>, TensorError> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            a: a.shape(),
            b: b.shape(),
        });
    }
    let data = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| x + y)
        .collect();
    Tensor::from_vec(a.shape(), data)
}

/// Element-wise ReLU.
#[must_use]
pub fn relu(t: &Tensor<f32>) -> Tensor<f32> {
    t.map(|&v| v.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;
    use crate::{Padding, Shape4};

    #[test]
    fn transposed_swaps_indices() {
        let m = Matrix::from_vec(2, 3, vec![1u8, 2, 3, 4, 5, 6]).unwrap();
        let t = m.transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        for r in 0..2 {
            for c in 0..3 {
                assert_eq!(t.at(c, r), m.at(r, c));
            }
        }
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn transposed_covers_partial_blocks() {
        // Dimensions straddling the 32-wide blocking so edge blocks run.
        let m = Matrix::from_vec(33, 65, (0..33 * 65).map(|i| i as u32).collect()).unwrap();
        let t = m.transposed();
        for r in [0, 31, 32] {
            for c in [0, 31, 32, 63, 64] {
                assert_eq!(t.at(c, r), m.at(r, c), "({r}, {c})");
            }
        }
    }

    #[test]
    fn transposed_empty_matrix() {
        let m = Matrix::<f32>::zeros(0, 5);
        let t = m.transposed();
        assert_eq!((t.rows(), t.cols()), (5, 0));
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let id = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        assert_eq!(matmul(&a, &id).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_dim_mismatch() {
        let a = Matrix::<f32>::zeros(2, 3);
        let b = Matrix::<f32>::zeros(2, 2);
        assert!(matches!(
            matmul(&a, &b).unwrap_err(),
            TensorError::MatrixDims {
                left_cols: 3,
                right_rows: 2
            }
        ));
    }

    #[test]
    fn direct_conv_identity_kernel() {
        let input = Tensor::from_fn(Shape4::new(1, 3, 3, 1), |_, h, w, _| (h * 3 + w) as f32);
        let filter = Filter::from_fn(FilterShape::new(1, 1, 1, 1), |_, _, _, _| 1.0);
        let out = conv2d_direct(&input, &filter, ConvGeometry::default()).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn direct_conv_box_filter_valid() {
        let input = Tensor::<f32>::full(Shape4::new(1, 3, 3, 1), 1.0);
        let filter = Filter::from_fn(FilterShape::new(3, 3, 1, 1), |_, _, _, _| 1.0);
        let out = conv2d_direct(
            &input,
            &filter,
            ConvGeometry::default().with_padding(Padding::Valid),
        )
        .unwrap();
        assert_eq!(out.as_slice(), &[9.0]);
    }

    #[test]
    fn gemm_conv_matches_direct_conv() {
        let input = rng::uniform(Shape4::new(2, 9, 7, 3), 42, -1.0, 1.0);
        for (stride, padding) in [
            (1, Padding::Same),
            (2, Padding::Same),
            (1, Padding::Valid),
            (2, Padding::Valid),
        ] {
            let geom = ConvGeometry::default()
                .with_stride(stride)
                .with_padding(padding);
            let filter = rng::uniform_filter(FilterShape::new(3, 3, 3, 5), 7, -0.5, 0.5);
            let d = conv2d_direct(&input, &filter, geom).unwrap();
            let g = conv2d_gemm(&input, &filter, geom).unwrap();
            assert!(
                d.max_abs_diff(&g).unwrap() < 1e-4,
                "stride={stride} padding={padding:?}"
            );
        }
    }

    #[test]
    fn gemm_conv_matches_direct_with_dilation() {
        let input = rng::uniform(Shape4::new(1, 10, 10, 2), 3, -1.0, 1.0);
        let geom = ConvGeometry::default()
            .with_dilation(2)
            .with_padding(Padding::Valid);
        let filter = rng::uniform_filter(FilterShape::new(3, 3, 2, 4), 8, -0.5, 0.5);
        let d = conv2d_direct(&input, &filter, geom).unwrap();
        let g = conv2d_gemm(&input, &filter, geom).unwrap();
        assert!(d.max_abs_diff(&g).unwrap() < 1e-4);
    }

    #[test]
    fn min_max_basic() {
        let t = Tensor::from_vec(Shape4::new(1, 1, 3, 1), vec![-2.0, 0.5, 7.0]).unwrap();
        assert_eq!(min_max(&t), (-2.0, 7.0));
        assert_eq!(min_max_slice(&[]), (0.0, 0.0));
    }

    #[test]
    fn min_max_propagates_nan() {
        // A NaN anywhere — first or later — must not be swallowed.
        let (lo, hi) = min_max_slice(&[1.0, f32::NAN, 3.0]);
        assert!(lo.is_nan() && hi.is_nan());
        let (lo, hi) = min_max_slice(&[f32::NAN, 1.0]);
        assert!(lo.is_nan() && hi.is_nan());
        // Infinities are legitimate extremes, not NaNs.
        assert_eq!(min_max_slice(&[f32::INFINITY, 0.0]), (0.0, f32::INFINITY));
    }

    #[test]
    fn relu_clamps_negatives() {
        let t = Tensor::from_vec(Shape4::new(1, 1, 3, 1), vec![-1.0, 0.0, 2.0]).unwrap();
        assert_eq!(relu(&t).as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn add_shape_checked() {
        let a = Tensor::<f32>::zeros(Shape4::new(1, 2, 2, 1));
        let b = Tensor::<f32>::zeros(Shape4::new(1, 2, 3, 1));
        assert!(add(&a, &b).is_err());
    }

    #[test]
    fn filter_flat_index_maps_channel_by_modulo() {
        // The HWCF invariant per-channel consumers rely on: flat index i
        // belongs to output channel i % c_out.
        let fs = FilterShape::new(2, 3, 4, 5);
        let f = Filter::from_fn(fs, |h, w, ci, co| {
            (h * 1000 + w * 100 + ci * 10 + co) as f32
        });
        for (i, &v) in f.as_slice().iter().enumerate() {
            let co = i % fs.c_out;
            assert_eq!(v as usize % 10, co, "flat index {i}");
        }
    }

    #[test]
    fn filter_rejects_buffers_not_matching_shape() {
        let fs = FilterShape::new(3, 3, 2, 4); // len 72
                                               // One short — in particular not a multiple of c_out.
        assert!(Filter::from_vec(fs, vec![0.0; 71]).is_err());
        assert!(Filter::from_vec(fs, vec![0.0; 70]).is_err());
        assert!(Filter::from_vec(fs, vec![0.0; 72]).is_ok());
    }

    #[test]
    fn filter_matrix_columns_are_filters() {
        let f = Filter::from_fn(FilterShape::new(1, 1, 2, 3), |_, _, ci, co| {
            (ci * 10 + co) as f32
        });
        let m = f.to_matrix();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.at(0, 2), 2.0); // ci=0, co=2
        assert_eq!(m.at(1, 0), 10.0); // ci=1, co=0
    }
}
