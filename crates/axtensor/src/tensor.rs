//! Dense 4D tensors.

use crate::{Shape4, TensorError};
use serde::{Deserialize, Serialize};

/// A dense 4D tensor in NHWC layout.
///
/// The element type is generic: `f32` for the floating-point interface the
/// paper's approximate layer exposes, `u8`/`i8` for quantized patch
/// matrices, `i32`/`f64` for accumulators.
///
/// # Example
///
/// ```
/// use axtensor::{Shape4, Tensor};
///
/// # fn main() -> Result<(), axtensor::TensorError> {
/// let mut t = Tensor::<f32>::zeros(Shape4::new(1, 2, 2, 1));
/// *t.at_mut(0, 1, 1, 0) = 3.5;
/// assert_eq!(t.at(0, 1, 1, 0), 3.5);
/// assert_eq!(t.as_slice().len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor<T> {
    shape: Shape4,
    data: Vec<T>,
}

impl<T: Copy + Default> Tensor<T> {
    /// A tensor filled with `T::default()` (zero for numeric types).
    #[must_use]
    pub fn zeros(shape: Shape4) -> Self {
        Tensor {
            shape,
            data: vec![T::default(); shape.len()],
        }
    }

    /// A tensor filled with a constant.
    #[must_use]
    pub fn full(shape: Shape4, value: T) -> Self {
        Tensor {
            shape,
            data: vec![value; shape.len()],
        }
    }
}

impl<T> Tensor<T> {
    /// Wrap an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the buffer length differs
    /// from `shape.len()`.
    pub fn from_vec(shape: Shape4, data: Vec<T>) -> Result<Self, TensorError> {
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.len(),
                got: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Build a tensor by evaluating `f` at every coordinate.
    pub fn from_fn(shape: Shape4, mut f: impl FnMut(usize, usize, usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(shape.len());
        for n in 0..shape.n {
            for h in 0..shape.h {
                for w in 0..shape.w {
                    for c in 0..shape.c {
                        data.push(f(n, h, w, c));
                    }
                }
            }
        }
        Tensor { shape, data }
    }

    /// The tensor's shape.
    #[must_use]
    pub fn shape(&self) -> Shape4 {
        self.shape
    }

    /// Flat view of the data in NHWC order.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the tensor, returning its buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Map every element into a new tensor.
    pub fn map<U>(&self, f: impl FnMut(&T) -> U) -> Tensor<U> {
        Tensor {
            shape: self.shape,
            data: self.data.iter().map(f).collect(),
        }
    }
}

impl<T: Copy> Tensor<T> {
    /// Element at `(n, h, w, c)`.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion + slice bound) if a coordinate is out of
    /// range.
    #[inline]
    #[must_use]
    pub fn at(&self, n: usize, h: usize, w: usize, c: usize) -> T {
        self.data[self.shape.index(n, h, w, c)]
    }

    /// Mutable element at `(n, h, w, c)`.
    ///
    /// # Panics
    ///
    /// Panics if a coordinate is out of range.
    #[inline]
    pub fn at_mut(&mut self, n: usize, h: usize, w: usize, c: usize) -> &mut T {
        let idx = self.shape.index(n, h, w, c);
        &mut self.data[idx]
    }

    /// Extract one image of the batch as a new `[1, H, W, C]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    #[must_use]
    pub fn image(&self, n: usize) -> Tensor<T> {
        assert!(n < self.shape.n, "batch index {n} out of range");
        let per = self.shape.h * self.shape.w * self.shape.c;
        Tensor {
            shape: Shape4::new(1, self.shape.h, self.shape.w, self.shape.c),
            data: self.data[n * per..(n + 1) * per].to_vec(),
        }
    }

    /// Slice a contiguous sub-batch `[start, start + count)` as a new
    /// tensor — the paper's batch *chunking* primitive (Algorithm 1's
    /// `SplitData`).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the batch dimension.
    #[must_use]
    pub fn batch_slice(&self, start: usize, count: usize) -> Tensor<T> {
        assert!(start + count <= self.shape.n, "batch slice out of range");
        let per = self.shape.h * self.shape.w * self.shape.c;
        Tensor {
            shape: Shape4::new(count, self.shape.h, self.shape.w, self.shape.c),
            data: self.data[start * per..(start + count) * per].to_vec(),
        }
    }
}

impl Tensor<f32> {
    /// Concatenate along the batch dimension (Algorithm 1's
    /// `AppendOutput`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless H, W and C agree.
    pub fn concat_batch(parts: &[Tensor<f32>]) -> Result<Tensor<f32>, TensorError> {
        assert!(!parts.is_empty(), "concat of zero tensors");
        let first = parts[0].shape();
        let mut n = 0;
        for p in parts {
            let s = p.shape();
            if (s.h, s.w, s.c) != (first.h, first.w, first.c) {
                return Err(TensorError::ShapeMismatch { a: first, b: s });
            }
            n += s.n;
        }
        let mut data = Vec::with_capacity(n * first.h * first.w * first.c);
        for p in parts {
            data.extend_from_slice(p.as_slice());
        }
        Ok(Tensor {
            shape: Shape4::new(n, first.h, first.w, first.c),
            data,
        })
    }

    /// Maximum absolute element-wise difference to another tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor<f32>) -> Result<f32, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                a: self.shape,
                b: other.shape,
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::<f32>::zeros(Shape4::new(1, 2, 2, 2));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let f = Tensor::<i32>::full(Shape4::new(1, 2, 2, 2), 7);
        assert!(f.as_slice().iter().all(|&v| v == 7));
    }

    #[test]
    fn from_vec_length_checked() {
        let err = Tensor::from_vec(Shape4::new(1, 2, 2, 1), vec![0f32; 3]).unwrap_err();
        assert!(matches!(
            err,
            TensorError::LengthMismatch {
                expected: 4,
                got: 3
            }
        ));
    }

    #[test]
    fn from_fn_coordinates() {
        let t = Tensor::from_fn(Shape4::new(2, 2, 2, 2), |n, h, w, c| {
            (n * 1000 + h * 100 + w * 10 + c) as i32
        });
        assert_eq!(t.at(1, 0, 1, 1), 1011);
        assert_eq!(t.at(0, 1, 0, 0), 100);
    }

    #[test]
    fn image_extracts_single_batch_entry() {
        let t = Tensor::from_fn(Shape4::new(3, 2, 2, 1), |n, _, _, _| n as f32);
        let img = t.image(2);
        assert_eq!(img.shape(), Shape4::new(1, 2, 2, 1));
        assert!(img.as_slice().iter().all(|&v| v == 2.0));
    }

    #[test]
    fn batch_slice_extracts_chunk() {
        let t = Tensor::from_fn(Shape4::new(5, 1, 1, 1), |n, _, _, _| n as f32);
        let chunk = t.batch_slice(1, 3);
        assert_eq!(chunk.shape().n, 3);
        assert_eq!(chunk.as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn concat_batch_roundtrips_chunking() {
        let t = Tensor::from_fn(Shape4::new(7, 2, 2, 3), |n, h, w, c| {
            (n * 999 + h * 37 + w * 11 + c) as f32
        });
        let parts: Vec<_> = [0usize, 3, 6]
            .iter()
            .zip([3usize, 3, 1])
            .map(|(&s, cnt)| t.batch_slice(s, cnt))
            .collect();
        let back = Tensor::concat_batch(&parts).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn concat_shape_mismatch_rejected() {
        let a = Tensor::<f32>::zeros(Shape4::new(1, 2, 2, 1));
        let b = Tensor::<f32>::zeros(Shape4::new(1, 2, 3, 1));
        assert!(Tensor::concat_batch(&[a, b]).is_err());
    }

    #[test]
    fn max_abs_diff_finds_peak() {
        let a = Tensor::from_vec(Shape4::new(1, 1, 2, 1), vec![1.0, 5.0]).unwrap();
        let b = Tensor::from_vec(Shape4::new(1, 1, 2, 1), vec![1.5, 3.0]).unwrap();
        assert_eq!(a.max_abs_diff(&b).unwrap(), 2.0);
    }

    #[test]
    fn map_changes_type() {
        let a = Tensor::from_vec(Shape4::new(1, 1, 2, 1), vec![1.4f32, 2.6]).unwrap();
        let b: Tensor<i32> = a.map(|&v| v.round() as i32);
        assert_eq!(b.as_slice(), &[1, 3]);
    }
}
