//! Calibrated performance model for Table-I-scale workloads.
//!
//! A simulator running on a CPU cannot be faster than that CPU, so the
//! 10⁴-image runs of Table I cannot be *measured* here. Instead:
//!
//! - **GPU columns** come from the [`gpusim`] cost model: a small sample
//!   of images is executed *functionally* (every kernel, every LUT fetch,
//!   the real texture-cache behaviour), its modeled `tcomp` is then scaled
//!   linearly to the full image count — the linearity the paper itself
//!   reports ("tcomp increases linearly with increasing the number of
//!   MACs").
//! - **CPU columns** come from [`CpuModel`], throughput constants
//!   calibrated against the paper's Xeon E5-2620 baseline. Accurate
//!   inference sustains a constant ≈ 4.8 × 10¹⁰ MAC/s across all ten rows
//!   of Table I; the approximate (LUT-emulated) path converges to
//!   ≈ 4 × 10⁸ MAC/s on the deeper models.
//!
//! The point of the reproduction is the **shape**: the GPU wins by 2–10×
//! when both are accurate, by >100–200× when both emulate the approximate
//! multiplier, the gap grows with depth, and the approximate overhead is
//! crippling on CPU but mild on GPU.

use crate::runtime::{self, EmulationReport};
use crate::{flow, Backend, EmuContext, EmuError};
use axmult::AxMultiplier;
use axnn::dataset::SyntheticCifar10;
use axnn::resnet::{cifar_input_shape, ResNetConfig};
use gpusim::{DeviceConfig, EventCounts, Phase, PhaseProfile};
use std::sync::Arc;

/// Throughput model of a Xeon-class CPU host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Constant initialization seconds.
    pub init_s: f64,
    /// Sustained MAC/s of native f32 inference (vectorized).
    pub accurate_mac_per_s: f64,
    /// Sustained MAC/s when every multiplication is a LUT emulation.
    pub approx_mac_per_s: f64,
    /// Share of approximate `tcomp` spent in LUT lookups (Fig. 2, CPU).
    pub lut_share: f64,
    /// Share of approximate `tcomp` spent in quantization (Fig. 2, CPU).
    pub quant_share: f64,
}

impl CpuModel {
    /// Calibration against the paper's Intel Xeon E5-2620 numbers.
    #[must_use]
    pub fn xeon_e5_2620() -> Self {
        CpuModel {
            init_s: runtime::CPU_INIT_S,
            accurate_mac_per_s: 4.77e10,
            approx_mac_per_s: 4.0e8,
            lut_share: 0.28,
            quant_share: 0.07,
        }
    }
}

impl Default for CpuModel {
    fn default() -> Self {
        Self::xeon_e5_2620()
    }
}

/// `tinit + tcomp` of one Table I configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ConfigTimes {
    /// Initialization seconds.
    pub tinit: f64,
    /// Computation seconds.
    pub tcomp: f64,
}

impl ConfigTimes {
    /// Total seconds.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.tinit + self.tcomp
    }
}

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Network depth (ResNet-`depth`).
    pub depth: usize,
    /// Number of 2D convolution layers (`L`).
    pub l: usize,
    /// MACs per image.
    pub macs_per_image: u64,
    /// Accurate Conv2D on the CPU model.
    pub cpu_accurate: ConfigTimes,
    /// Accurate Conv2D on the simulated GPU.
    pub gpu_accurate: ConfigTimes,
    /// Approximate AxConv2D on the CPU model.
    pub cpu_approx: ConfigTimes,
    /// Approximate AxConv2D on the simulated GPU.
    pub gpu_approx: ConfigTimes,
    /// GPU-side Fig. 2 phase profile (scaled to the full run).
    pub gpu_profile: PhaseProfile,
}

impl Table1Row {
    /// Approximation overhead on CPU: `approx.total − accurate.total`.
    #[must_use]
    pub fn approx_overhead_cpu(&self) -> f64 {
        self.cpu_approx.total() - self.cpu_accurate.total()
    }

    /// Approximation overhead on GPU.
    #[must_use]
    pub fn approx_overhead_gpu(&self) -> f64 {
        self.gpu_approx.total() - self.gpu_accurate.total()
    }

    /// GPU-vs-CPU speedup with accurate layers.
    #[must_use]
    pub fn speedup_accurate(&self) -> f64 {
        self.cpu_accurate.total() / self.gpu_accurate.total()
    }

    /// GPU-vs-CPU speedup with approximate layers — the paper's headline
    /// (~200× on the deep ResNets).
    #[must_use]
    pub fn speedup_approx(&self) -> f64 {
        self.cpu_approx.total() / self.gpu_approx.total()
    }
}

/// Bytes of the evaluation dataset on the wire (`images` CIFAR frames as
/// f32).
#[must_use]
pub fn dataset_bytes(images: usize) -> u64 {
    (images * 32 * 32 * 3 * 4) as u64
}

/// CPU-model times for a workload of `total_macs`.
#[must_use]
pub fn cpu_times(model: &CpuModel, total_macs: u64, accurate: bool) -> ConfigTimes {
    let rate = if accurate {
        model.accurate_mac_per_s
    } else {
        model.approx_mac_per_s
    };
    ConfigTimes {
        tinit: model.init_s,
        tcomp: total_macs as f64 / rate,
    }
}

/// Analytic accurate-GPU times: a dense-GEMM roofline over the total MACs
/// plus the PCIe transfer of the dataset.
#[must_use]
pub fn gpu_accurate_times(dev: &DeviceConfig, total_macs: u64, images: usize) -> ConfigTimes {
    let mut ev = EventCounts::new();
    ev.fma_ops = total_macs;
    // Activations stream through DRAM roughly twice per conv layer; the
    // FMA term dominates for 3×3 convolutions, so a coarse charge is fine.
    ev.global_read_bytes = dataset_bytes(images) * 4;
    ConfigTimes {
        tinit: dev.context_init_s + dev.transfer_seconds(dataset_bytes(images)),
        tcomp: dev.seconds(&ev),
    }
}

/// Fig. 2 CPU profile from the model shares.
#[must_use]
pub fn cpu_fig2_profile(model: &CpuModel, total_macs: u64) -> PhaseProfile {
    let t = cpu_times(model, total_macs, false);
    let mut p = PhaseProfile::new();
    p.add(Phase::Init, t.tinit);
    p.add(Phase::LutLookup, t.tcomp * model.lut_share);
    p.add(Phase::Quantization, t.tcomp * model.quant_share);
    p.add(
        Phase::Other,
        t.tcomp * (1.0 - model.lut_share - model.quant_share),
    );
    p
}

/// Functionally execute `sample_images` of the approximate network on the
/// simulated GPU and scale the modeled computation to `images`.
///
/// # Errors
///
/// Propagates build/execution failures.
pub fn gpu_approx_times(
    cfg: ResNetConfig,
    mult: &AxMultiplier,
    dev: &DeviceConfig,
    images: usize,
    sample_images: usize,
    seed: u64,
) -> Result<(ConfigTimes, PhaseProfile), EmuError> {
    let graph = cfg.build(seed)?;
    let ctx = Arc::new(
        EmuContext::with_device(Backend::GpuSim, dev.clone())
            .with_chunk_size(sample_images.max(1))?,
    );
    let (ax, _) = flow::approximate_graph(&graph, mult, &ctx)?;
    let data = SyntheticCifar10::new(seed);
    let batch = data.batch_sized(0, sample_images.max(1));
    let (_, report) = runtime::run_approx(&ax, &[batch], &ctx)?;

    let factor = images as f64 / sample_images.max(1) as f64;
    // Scale comp phases; recompute init for the full dataset.
    let mut profile = report.profile;
    // Remove the sample-sized init before scaling, then re-add full init.
    let mut comp_only = PhaseProfile::new();
    for phase in [Phase::Quantization, Phase::LutLookup, Phase::Other] {
        comp_only.add(phase, profile.seconds(phase));
    }
    profile = comp_only.scaled_comp(factor);
    let tinit = dev.context_init_s
        + dev.transfer_seconds(dataset_bytes(images) + axmult::lut::LUT_BYTES as u64);
    profile.add(Phase::Init, tinit);
    Ok((
        ConfigTimes {
            tinit,
            tcomp: profile.total() - tinit,
        },
        profile,
    ))
}

/// Produce one full Table I row.
///
/// # Errors
///
/// Propagates build/execution failures.
pub fn table1_row(
    depth: usize,
    mult: &AxMultiplier,
    dev: &DeviceConfig,
    cpu: &CpuModel,
    images: usize,
    sample_images: usize,
    seed: u64,
) -> Result<Table1Row, EmuError> {
    let cfg = ResNetConfig::with_depth(depth)?;
    let macs_per_image = cfg.build(seed)?.mac_count(cifar_input_shape(1))?;
    let total_macs = macs_per_image * images as u64;
    let (gpu_approx, gpu_profile) = gpu_approx_times(cfg, mult, dev, images, sample_images, seed)?;
    Ok(Table1Row {
        depth,
        l: cfg.conv_layers(),
        macs_per_image,
        cpu_accurate: cpu_times(cpu, total_macs, true),
        gpu_accurate: gpu_accurate_times(dev, total_macs, images),
        cpu_approx: cpu_times(cpu, total_macs, false),
        gpu_approx,
        gpu_profile,
    })
}

/// A measured (not modeled) comparison of the real Rust backends on this
/// host, scaled from `sample_images` to `images` — the supplementary
/// "measured shape" experiment.
#[derive(Debug, Clone)]
pub struct MeasuredRow {
    /// Network depth.
    pub depth: usize,
    /// MACs per image.
    pub macs_per_image: u64,
    /// Images the estimate is scaled to.
    pub images: usize,
    /// Measured-and-scaled seconds of the accurate f32 graph.
    pub accurate_cpu_s: f64,
    /// Measured-and-scaled seconds of the `CpuDirect` LUT emulation.
    pub cpu_direct_s: f64,
    /// Measured-and-scaled seconds of the `CpuGemm` LUT emulation.
    pub cpu_gemm_s: f64,
}

impl MeasuredRow {
    /// Real speedup of the GEMM formulation over the direct loops.
    #[must_use]
    pub fn gemm_speedup(&self) -> f64 {
        self.cpu_direct_s / self.cpu_gemm_s
    }

    /// Real emulation slowdown versus native f32 inference.
    #[must_use]
    pub fn emulation_slowdown(&self) -> f64 {
        self.cpu_direct_s / self.accurate_cpu_s
    }
}

/// Measure the real backends on `sample_images` and scale.
///
/// # Errors
///
/// Propagates build/execution failures.
pub fn measured_row(
    depth: usize,
    mult: &AxMultiplier,
    images: usize,
    sample_images: usize,
    seed: u64,
) -> Result<MeasuredRow, EmuError> {
    let cfg = ResNetConfig::with_depth(depth)?;
    let graph = cfg.build(seed)?;
    let macs_per_image = graph.mac_count(cifar_input_shape(1))?;
    let data = SyntheticCifar10::new(seed);
    let batch = data.batch_sized(0, sample_images);
    let factor = images as f64 / sample_images as f64;

    let (_, acc) = runtime::run_accurate_cpu(&graph, std::slice::from_ref(&batch))?;

    let run_backend = |backend: Backend| -> Result<EmulationReport, EmuError> {
        let ctx = Arc::new(EmuContext::new(backend).with_chunk_size(sample_images)?);
        let (ax, _) = flow::approximate_graph(&graph, mult, &ctx)?;
        let (_, report) = runtime::run_approx(&ax, std::slice::from_ref(&batch), &ctx)?;
        Ok(report)
    };
    let direct = run_backend(Backend::CpuDirect)?;
    let gemm = run_backend(Backend::CpuGemm)?;

    Ok(MeasuredRow {
        depth,
        macs_per_image,
        images,
        accurate_cpu_s: acc.tcomp * factor,
        cpu_direct_s: direct.tcomp * factor,
        cpu_gemm_s: gemm.tcomp * factor,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_model_reproduces_paper_accurate_column() {
        let cpu = CpuModel::xeon_e5_2620();
        // Paper ResNet-8: 21e6 MACs/image, 1e4 images -> 4.4 s.
        let t = cpu_times(&cpu, 21_000_000 * 10_000, true);
        assert!((t.tcomp - 4.4).abs() < 0.5, "tcomp = {}", t.tcomp);
        // Paper ResNet-62: 148e6 -> 31.1 s.
        let t = cpu_times(&cpu, 148_000_000 * 10_000, true);
        assert!((t.tcomp - 31.1).abs() < 2.0, "tcomp = {}", t.tcomp);
    }

    #[test]
    fn cpu_model_approx_column_in_regime() {
        let cpu = CpuModel::xeon_e5_2620();
        // Paper ResNet-62 approximate: 3796 s.
        let t = cpu_times(&cpu, 148_000_000 * 10_000, false);
        assert!((3000.0..4800.0).contains(&t.tcomp), "tcomp = {}", t.tcomp);
    }

    #[test]
    fn gpu_accurate_in_regime() {
        let dev = DeviceConfig::gtx1080();
        // Paper ResNet-8 accurate GPU: 1.8 + 0.2 s.
        let t = gpu_accurate_times(&dev, 21_000_000 * 10_000, 10_000);
        assert!((0.1..0.5).contains(&t.tcomp), "tcomp = {}", t.tcomp);
        assert!((1.5..2.5).contains(&t.tinit), "tinit = {}", t.tinit);
    }

    #[test]
    fn fig2_cpu_profile_fractions() {
        let cpu = CpuModel::xeon_e5_2620();
        let p = cpu_fig2_profile(&cpu, 148_000_000 * 10_000);
        // Deep network: init below 1%, LUT near 28%.
        assert!(p.fraction(Phase::Init) < 0.01);
        let lut = p.fraction(Phase::LutLookup);
        assert!((0.2..0.35).contains(&lut), "lut share {lut}");
    }

    #[test]
    fn table1_row_shape_for_resnet8() {
        let mult = axmult::catalog::by_name("mul8s_exact").unwrap();
        let dev = DeviceConfig::gtx1080();
        let cpu = CpuModel::xeon_e5_2620();
        let row = table1_row(8, &mult, &dev, &cpu, 10_000, 1, 42).unwrap();
        assert_eq!(row.l, 7);
        // Who wins: GPU beats CPU in both modes; approximate overhead is
        // crippling on CPU, mild on GPU.
        assert!(row.speedup_accurate() > 1.0);
        assert!(row.speedup_approx() > 30.0, "{}", row.speedup_approx());
        assert!(row.approx_overhead_cpu() > 10.0 * row.approx_overhead_gpu());
    }

    #[test]
    fn measured_row_orders_backends() {
        let mult = axmult::catalog::by_name("mul8s_exact").unwrap();
        let row = measured_row(8, &mult, 100, 1, 3).unwrap();
        // The direct nested-loop emulation is the slowest path.
        assert!(row.cpu_direct_s > 0.0);
        assert!(row.gemm_speedup() > 0.5, "gemm not catastrophically slow");
        assert!(row.emulation_slowdown() > 1.0, "emulation costs something");
    }
}
