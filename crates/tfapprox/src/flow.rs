//! The design flow: transform an accurate graph into its approximate twin.
//!
//! "Firstly, a DNN model is created or loaded in TF. Then, all
//! convolutional layers are identified and replaced by corresponding
//! approximate variants. During this process, the minimum and maximum
//! operators are inserted into the computational path and connected to the
//! approximate layers. At the end, we obtain a transformed graph which is
//! suitable for the inference as well as training because the minimum and
//! maximum values of the input tensors are determined once per a batch."

use crate::{AxConv2D, EmuContext, EmuError};
use axmult::AxMultiplier;
use axnn::Graph;
use std::sync::Arc;

/// Replace every `Conv2D` in `graph` by an [`AxConv2D`] emulating `mult`,
/// inserting the `Min`/`Max` observers of Fig. 1. All inserted layers
/// share `ctx` (backend, profiling, texture cache, worker pool).
///
/// Each inserted layer builds its prepared-execution plan (quantized
/// filter bytes, `Sf` sums, per-channel parameters) lazily on its first
/// forward and reuses it afterwards, so running the transformed graph
/// over many batches quantizes every filter bank exactly once.
///
/// Returns the transformed graph and the number of replaced layers.
///
/// # Errors
///
/// Propagates graph-construction failures.
///
/// # Example
///
/// ```
/// use axnn::resnet::ResNetConfig;
/// use std::sync::Arc;
/// use tfapprox::{flow, Backend, EmuContext};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = ResNetConfig::with_depth(8)?.build(1)?;
/// let mult = axmult::catalog::by_name("mul8s_exact")?;
/// let ctx = Arc::new(EmuContext::new(Backend::CpuGemm));
/// let (ax, replaced) = flow::approximate_graph(&graph, &mult, &ctx)?;
/// assert_eq!(replaced, graph.conv_layer_count());
/// assert_eq!(ax.conv_layer_count(), replaced); // now all AxConv2D
/// # Ok(())
/// # }
/// ```
pub fn approximate_graph(
    graph: &Graph,
    mult: &AxMultiplier,
    ctx: &Arc<EmuContext>,
) -> Result<(Graph, usize), EmuError> {
    let (rewritten, replaced) =
        graph.rewrite_convs(|conv| Arc::new(AxConv2D::from_conv2d(conv, mult, Arc::clone(ctx))))?;
    Ok((rewritten, replaced))
}

/// Layer-wise approximation (the ALWANN \[12\] use case): assign a
/// *different* multiplier to each convolution layer, in topological
/// order. Early layers are typically more error-sensitive than deep ones,
/// so mixing multipliers of different aggressiveness dominates uniform
/// assignments on the accuracy/energy Pareto front — evaluating such
/// per-layer assignments quickly is exactly what TFApprox was built for.
///
/// # Errors
///
/// Returns [`EmuError::Config`] unless exactly one multiplier per
/// convolution layer is supplied.
pub fn approximate_graph_layerwise(
    graph: &Graph,
    assignments: &[AxMultiplier],
    ctx: &Arc<EmuContext>,
) -> Result<(Graph, usize), EmuError> {
    let expected = graph.conv_layer_count();
    if assignments.len() != expected {
        return Err(EmuError::Config(format!(
            "{} multipliers supplied for {expected} convolution layers",
            assignments.len()
        )));
    }
    let mut next = 0usize;
    let (rewritten, replaced) = graph.rewrite_convs(|conv| {
        let mult = &assignments[next];
        next += 1;
        Arc::new(AxConv2D::from_conv2d(conv, mult, Arc::clone(ctx)))
    })?;
    Ok((rewritten, replaced))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Backend;
    use axnn::resnet::{cifar_input_shape, ResNetConfig};
    use axtensor::rng;

    #[test]
    fn resnet8_transform_replaces_all_seven_convs() {
        let graph = ResNetConfig::with_depth(8).unwrap().build(3).unwrap();
        let mult = axmult::catalog::by_name("mul8s_exact").unwrap();
        let ctx = Arc::new(EmuContext::new(Backend::CpuGemm));
        let (ax, replaced) = approximate_graph(&graph, &mult, &ctx).unwrap();
        assert_eq!(replaced, 7);
        // Min/Max nodes inserted: 2 per conv.
        let mins = ax.ops().filter(|(_, op)| *op == "Min").count();
        let maxs = ax.ops().filter(|(_, op)| *op == "Max").count();
        assert_eq!(mins, 7);
        assert_eq!(maxs, 7);
        assert!(ax.ops().all(|(_, op)| op != "Conv2D"));
    }

    #[test]
    fn exact_multiplier_preserves_predictions() {
        // The accuracy claim of §IV at graph level: with the exact LUT,
        // the transformed graph's predictions match the float graph's on
        // almost every input (differences only from 8-bit quantization).
        let graph = ResNetConfig::with_depth(8).unwrap().build(5).unwrap();
        let mult = axmult::catalog::by_name("mul8s_exact").unwrap();
        let ctx = Arc::new(EmuContext::new(Backend::CpuGemm));
        let (ax, _) = approximate_graph(&graph, &mult, &ctx).unwrap();
        let input = rng::uniform(cifar_input_shape(8), 11, -1.0, 1.0);
        let float_out = graph.forward(&input).unwrap();
        let ax_out = ax.forward(&input).unwrap();
        let agreement = axnn::dataset::top1_agreement(&float_out, &ax_out);
        assert!(agreement >= 0.75, "top-1 agreement {agreement}");
    }

    #[test]
    fn layerwise_assignment_counts_checked() {
        let graph = ResNetConfig::with_depth(8).unwrap().build(4).unwrap();
        let exact = axmult::catalog::by_name("mul8s_exact").unwrap();
        let ctx = Arc::new(EmuContext::new(Backend::CpuGemm));
        // Wrong count rejected.
        let err =
            approximate_graph_layerwise(&graph, std::slice::from_ref(&exact), &ctx).unwrap_err();
        assert!(matches!(err, crate::EmuError::Config(_)));
        // Correct count accepted.
        let assignments = vec![exact; 7];
        let (ax, replaced) = approximate_graph_layerwise(&graph, &assignments, &ctx).unwrap();
        assert_eq!(replaced, 7);
        assert_eq!(ax.conv_layer_count(), 7);
    }

    #[test]
    fn layerwise_mixing_differs_from_uniform() {
        let graph = ResNetConfig::with_depth(8).unwrap().build(4).unwrap();
        let exact = axmult::catalog::by_name("mul8s_exact").unwrap();
        let rough = axmult::catalog::by_name("mul8s_bam_v8h0").unwrap();
        let ctx = Arc::new(EmuContext::new(Backend::CpuGemm));
        let input = rng::uniform(cifar_input_shape(2), 15, -1.0, 1.0);

        // Exact stem, rough everywhere else.
        let mut mixed = vec![exact.clone()];
        mixed.extend(std::iter::repeat_n(rough.clone(), 6));
        let (ax_mixed, _) = approximate_graph_layerwise(&graph, &mixed, &ctx).unwrap();
        let (ax_rough, _) = approximate_graph(&graph, &rough, &ctx).unwrap();
        let (ax_exact, _) = approximate_graph(&graph, &exact, &ctx).unwrap();

        let out_mixed = ax_mixed.forward(&input).unwrap();
        let out_rough = ax_rough.forward(&input).unwrap();
        let out_exact = ax_exact.forward(&input).unwrap();
        // The mixed network sits strictly between the two uniform ones.
        let d_rough = out_mixed.max_abs_diff(&out_rough).unwrap();
        let d_exact = out_mixed.max_abs_diff(&out_exact).unwrap();
        assert!(d_rough > 0.0);
        assert!(d_exact > 0.0);
    }

    #[test]
    fn repeated_graph_runs_quantize_filters_once() {
        // On the modeled (deterministic) GPU backend, the first pass pays
        // each layer's one-off filter-quantization charge; every later
        // pass is input-side only, so its Quantization share is strictly
        // smaller — and a third pass costs exactly what the second did.
        let graph = ResNetConfig::with_depth(8).unwrap().build(9).unwrap();
        let mult = axmult::catalog::by_name("mul8s_exact").unwrap();
        let ctx = Arc::new(EmuContext::new(Backend::GpuSim));
        let (ax, _) = approximate_graph(&graph, &mult, &ctx).unwrap();
        let input = rng::uniform(cifar_input_shape(2), 31, -1.0, 1.0);

        use gpusim::Phase;
        let quant_of_run = |ctx: &EmuContext| {
            let q = ctx.profile().seconds(Phase::Quantization);
            ctx.reset_profile();
            q
        };
        ctx.reset_profile();
        let _ = ax.forward(&input).unwrap();
        let first = quant_of_run(&ctx);
        let _ = ax.forward(&input).unwrap();
        let second = quant_of_run(&ctx);
        let _ = ax.forward(&input).unwrap();
        let third = quant_of_run(&ctx);
        assert!(second < first, "second {second} !< first {first}");
        assert!(
            (second - third).abs() < 1e-12,
            "steady state: {second} vs {third}"
        );
    }

    #[test]
    fn mac_count_preserved_by_transform() {
        let graph = ResNetConfig::with_depth(14).unwrap().build(7).unwrap();
        let mult = axmult::catalog::by_name("mul8s_exact").unwrap();
        let ctx = Arc::new(EmuContext::new(Backend::CpuDirect));
        let (ax, _) = approximate_graph(&graph, &mult, &ctx).unwrap();
        let shape = cifar_input_shape(1);
        assert_eq!(
            graph.mac_count(shape).unwrap(),
            ax.mac_count(shape).unwrap()
        );
    }
}
