//! The LUT-GEMM kernel family — tiled scalar and SIMD arms behind one
//! dispatch, all pinned bit-for-bit to an untiled golden model.
//!
//! `BENCH_conv.json` shows the emulated-multiply inner loop (the
//! `lutlookup` phase) dominating steady-state time on every backend. The
//! paper attacks exactly this loop by keeping the 128 kB multiplier table
//! in a fast read-only memory and batching lookups; this module is the
//! CPU realization of that idea, structured as a small family:
//!
//! - [`lut_gemm_reference`] / [`lut_gemm_reference_seg`] — the untiled
//!   per-row golden model every other arm is pinned against.
//! - `scalar` (private) — the tiled, register-micro-tile walker
//!   ([`lut_gemm_tiled`] / [`lut_gemm_tiled_seg`]): LUT-row hoisting,
//!   `MC×KC×NC` cache blocking, [`MR`]-row register micro-tiles, and
//!   contiguous-row-span thread sharding whose per-row fold order is
//!   partition-independent (bit-identical across thread counts, even
//!   under order-sensitive [`Accumulator`] models).
//! - `simd` (private, x86-64 only) — AVX2 panels that resolve 16–32
//!   products per instruction from the [`axmult::SimdTables`] derived
//!   layouts: a `vpgatherdd` row-gather arm and a `pshufb` nibble
//!   sub-table arm. Exact accumulation only; the module's source
//!   carries the bit-identity argument.
//! - [`dispatch`] — the [`dispatch::KernelKind`] selector: explicit
//!   override > `TFAPPROX_KERNEL` env > one-shot runtime calibration,
//!   with every non-scalar arm silently falling back to the scalar
//!   walker when the accumulator model or the CPU rules it out.
//!
//! Both entry-point flavours come *segmented*
//! ([`lut_gemm_reference_seg`], [`lut_gemm_tiled_seg`],
//! [`dispatch::lut_gemm_dispatch_seg`]) threading a [`SegmentTable`]
//! over the output rows: each row dequantizes under its own segment's
//! input parameters via a precomputed [`SegmentEpilogue`](crate::prepared::SegmentEpilogue), so a fused
//! multi-request batch runs as **one** blocked GEMM while staying
//! bit-identical to per-request solo runs. The unsegmented names are
//! thin single-segment wrappers.

pub mod dispatch;
mod scalar;
#[cfg(target_arch = "x86_64")]
mod simd;

pub use dispatch::{auto_kernel, available_kernels, KernelKind};

use crate::accumulator::Accumulator;
use crate::pool::WorkerPool;
use crate::prepared::PreparedFilter;
use crate::EmuError;
use axmult::{MulLut, Signedness};
use axquant::QuantParams;
use axtensor::{Matrix, SegmentTable};
use serde::{Deserialize, Serialize};

/// Output positions per register micro-tile: the scalar microkernel
/// streams this many patch rows in parallel while holding one LUT row
/// hoisted.
pub const MR: usize = 8;

/// Cache-blocking panel sizes of the tiled LUT GEMM.
///
/// `mc` rows (output positions) × `nc` columns (output channels) form the
/// accumulator tile; the shared `K` dimension (taps) is consumed in `kc`
/// slices. The defaults size the accumulator tile at 8 kB
/// (`64 × 16 × 8 B`) so it shares L1 with the active LUT rows and the
/// `MR×KC` patch micro-panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileConfig {
    mc: usize,
    kc: usize,
    nc: usize,
}

impl TileConfig {
    /// A tile configuration with explicit panel sizes.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::Config`] if any dimension is zero — a
    /// zero-sized panel would make the blocked loops process nothing.
    pub fn new(mc: usize, kc: usize, nc: usize) -> Result<Self, EmuError> {
        if mc == 0 || kc == 0 || nc == 0 {
            return Err(EmuError::Config(format!(
                "tile sizes must be positive (got mc={mc}, kc={kc}, nc={nc})"
            )));
        }
        Ok(TileConfig { mc, kc, nc })
    }

    /// Rows (output positions) per accumulator tile.
    #[must_use]
    pub fn mc(&self) -> usize {
        self.mc
    }

    /// Taps per `K` panel.
    #[must_use]
    pub fn kc(&self) -> usize {
        self.kc
    }

    /// Output channels per accumulator tile.
    #[must_use]
    pub fn nc(&self) -> usize {
        self.nc
    }
}

impl Default for TileConfig {
    fn default() -> Self {
        TileConfig {
            mc: 64,
            kc: 512,
            nc: 16,
        }
    }
}

/// The LUT-emulated dot product of one patch row with one filter column
/// (both as 8-bit byte patterns). The exact-accumulator cases take a
/// branch-free path; narrower accumulator models fold per tap.
#[inline]
pub(crate) fn lut_dot(
    patch: &[u8],
    fcol: &[u8],
    lut: &MulLut,
    signedness: Signedness,
    accumulator: Accumulator,
) -> i64 {
    match (accumulator, signedness) {
        (Accumulator::Exact, Signedness::Signed) => patch
            .iter()
            .zip(fcol)
            .map(|(&a, &b)| i64::from(lut.fetch(a, b) as i16))
            .sum(),
        (Accumulator::Exact, Signedness::Unsigned) => patch
            .iter()
            .zip(fcol)
            .map(|(&a, &b)| i64::from(lut.fetch(a, b)))
            .sum(),
        _ => fold_taps(0, patch, fcol, lut, signedness, accumulator),
    }
}

/// Check the shared operand invariants of the segmented GEMM entry
/// points.
fn check_seg_operands(
    patches: &Matrix<u8>,
    patch_sums: &[i64],
    plan: &PreparedFilter,
    seg_q: &[QuantParams],
    segments: &SegmentTable,
) {
    assert_eq!(patches.cols(), plan.k(), "patch length != plan K");
    assert_eq!(patch_sums.len(), patches.rows(), "patch-sum count");
    assert_eq!(
        segments.total(),
        patches.rows(),
        "segment table must cover every patch row"
    );
    assert_eq!(
        seg_q.len(),
        segments.len(),
        "one input-quantization param set per segment"
    );
}

/// The untiled LUT GEMM — one per-tap `lut_dot` fold per output element,
/// walking the row-major patch matrix. Single-threaded; this is the
/// golden model the tiled path is pinned against.
///
/// A single-segment wrapper over [`lut_gemm_reference_seg`].
///
/// Returns the `rows × c_out` output, row-major (channel-contiguous).
///
/// # Panics
///
/// Panics if `patches.cols() != plan.k()` or
/// `patch_sums.len() != patches.rows()`.
#[must_use]
pub fn lut_gemm_reference(
    patches: &Matrix<u8>,
    patch_sums: &[i64],
    plan: &PreparedFilter,
    input_q: QuantParams,
    lut: &MulLut,
    accumulator: Accumulator,
) -> Vec<f32> {
    lut_gemm_reference_seg(
        patches,
        patch_sums,
        plan,
        std::slice::from_ref(&input_q),
        &SegmentTable::single(patches.rows()),
        lut,
        accumulator,
    )
}

/// The untiled *segmented* LUT GEMM: row `r` dequantizes under the input
/// parameters of the segment `segments` assigns it to. The fold over `K`
/// is unchanged — segmentation only selects the Eq. 4 epilogue constants
/// — so each row's bits equal a solo [`lut_gemm_reference`] run over its
/// segment with `seg_q[s]`.
///
/// Returns the `rows × c_out` output, row-major (channel-contiguous).
///
/// # Panics
///
/// Panics if `patches.cols() != plan.k()`,
/// `patch_sums.len() != patches.rows()`,
/// `segments.total() != patches.rows()`, or
/// `seg_q.len() != segments.len()`.
#[must_use]
pub fn lut_gemm_reference_seg(
    patches: &Matrix<u8>,
    patch_sums: &[i64],
    plan: &PreparedFilter,
    seg_q: &[QuantParams],
    segments: &SegmentTable,
    lut: &MulLut,
    accumulator: Accumulator,
) -> Vec<f32> {
    check_seg_operands(patches, patch_sums, plan, seg_q, segments);
    let c_out = plan.c_out();
    let signedness = lut.signedness();
    let epi = plan.segment_epilogue(seg_q);
    let row_seg = segments.element_segments();
    let mut out = vec![0f32; patches.rows() * c_out];
    for (r, out_row) in out.chunks_mut(c_out.max(1)).enumerate() {
        let patch = patches.row(r);
        let sp = patch_sums[r];
        let s = row_seg[r] as usize;
        for (c, out_v) in out_row.iter_mut().enumerate() {
            let acc = lut_dot(patch, plan.channel_bytes(c), lut, signedness, accumulator);
            *out_v = epi.dequantize(s, c, acc, sp);
        }
    }
    out
}

/// The tiled, thread-sharded LUT GEMM over the row-major patch matrix
/// (the same operand [`lut_gemm_reference`] consumes).
///
/// A single-segment wrapper over [`lut_gemm_tiled_seg`].
///
/// Output rows are sharded across `pool`; each span is walked in
/// [`TileConfig`] blocks by the register micro-tile kernel with the
/// active LUT row hoisted out of the inner loop. For every output element
/// the taps fold in ascending-`k` order exactly like the reference, so
/// the result is bit-identical to [`lut_gemm_reference`] for **any**
/// accumulator model and any thread count.
///
/// Returns the `rows × c_out` output, row-major (channel-contiguous).
///
/// # Panics
///
/// Panics if `patches.cols() != plan.k()` or
/// `patch_sums.len() != patches.rows()`.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn lut_gemm_tiled(
    patches: &Matrix<u8>,
    patch_sums: &[i64],
    plan: &PreparedFilter,
    input_q: QuantParams,
    lut: &MulLut,
    accumulator: Accumulator,
    tiles: TileConfig,
    pool: &WorkerPool,
) -> Vec<f32> {
    lut_gemm_tiled_seg(
        patches,
        patch_sums,
        plan,
        std::slice::from_ref(&input_q),
        &SegmentTable::single(patches.rows()),
        lut,
        accumulator,
        tiles,
        pool,
    )
}

/// The tiled, thread-sharded *segmented* LUT GEMM — one fused blocked
/// sweep over a multi-request patch matrix, with each output row
/// dequantized under its own segment's input parameters.
///
/// The fold over `K` and the contiguous-row-span sharding are exactly
/// those of [`lut_gemm_tiled`]; the segment table only drives the Eq. 4
/// epilogue, via a [`SegmentEpilogue`](crate::prepared::SegmentEpilogue)
/// lookup. The result is bit-identical to [`lut_gemm_reference_seg`] for
/// any accumulator model, tile shape, and thread count — and therefore to
/// running each segment alone and concatenating.
///
/// Returns the `rows × c_out` output, row-major (channel-contiguous).
///
/// # Panics
///
/// As [`lut_gemm_reference_seg`].
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn lut_gemm_tiled_seg(
    patches: &Matrix<u8>,
    patch_sums: &[i64],
    plan: &PreparedFilter,
    seg_q: &[QuantParams],
    segments: &SegmentTable,
    lut: &MulLut,
    accumulator: Accumulator,
    tiles: TileConfig,
    pool: &WorkerPool,
) -> Vec<f32> {
    check_seg_operands(patches, patch_sums, plan, seg_q, segments);
    let rows = patches.rows();
    let c_out = plan.c_out();
    let mut out = vec![0f32; rows * c_out];
    if rows == 0 || c_out == 0 {
        return out;
    }
    let epi = plan.segment_epilogue(seg_q);
    let row_seg = segments.element_segments();
    let epi_ref = &epi;
    let row_seg_ref: &[u32] = &row_seg;

    // Contiguous row spans, one job each. The per-row fold order does not
    // depend on the partition, so any `threads` gives identical bits.
    let rows_per = rows.div_ceil(pool.threads()).max(1);
    let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(rows.div_ceil(rows_per));
    for (t, span) in out.chunks_mut(rows_per * c_out).enumerate() {
        let r0 = t * rows_per;
        jobs.push(Box::new(move || {
            scalar::tile_span(
                r0,
                span,
                patches,
                patch_sums,
                plan,
                row_seg_ref,
                epi_ref,
                lut,
                accumulator,
                tiles,
            );
        }));
    }
    pool.run(jobs);
    out
}

/// Continue an order-sensitive fold from `acc` across one tap panel.
#[inline]
fn fold_taps(
    mut acc: i64,
    prow: &[u8],
    fcol: &[u8],
    lut: &MulLut,
    signedness: Signedness,
    accumulator: Accumulator,
) -> i64 {
    for (&a, &b) in prow.iter().zip(fcol) {
        let raw = lut.fetch(a, b);
        let prod = match signedness {
            Signedness::Signed => i64::from(raw as i16),
            Signedness::Unsigned => i64::from(raw),
        };
        acc = accumulator.add(acc, prod);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use axquant::{FilterQuantization, QuantRange, RoundMode};
    use axtensor::{rng, FilterShape};

    fn setup(
        rows: usize,
        fs: FilterShape,
        seed: u64,
    ) -> (Matrix<u8>, Vec<i64>, PreparedFilter, QuantParams) {
        let input_q = QuantParams::from_range(-1.0, 1.0, QuantRange::i8(), RoundMode::NearestEven);
        let k = fs.patch_len();
        let bytes: Vec<u8> = (0..rows * k)
            .map(|i| ((i as u64).wrapping_mul(seed ^ 0x9E37_79B9) >> 3) as u8)
            .collect();
        let patches = Matrix::from_vec(rows, k, bytes).unwrap();
        // Patch sums are logical sums of the byte patterns (signed decode).
        let sums: Vec<i64> = (0..rows)
            .map(|r| {
                patches
                    .row(r)
                    .iter()
                    .map(|&b| i64::from(b as i8))
                    .sum::<i64>()
            })
            .collect();
        let filter = rng::uniform_filter(fs, seed, -0.5, 0.5);
        let fq: FilterQuantization =
            QuantParams::from_range(-0.5, 0.5, QuantRange::i8(), RoundMode::NearestEven).into();
        let plan = PreparedFilter::from_filter(&filter, &fq);
        (patches, sums, plan, input_q)
    }

    /// Shared operand builder for the per-arm unit tests (the SIMD
    /// module reuses it): an *approximate* multiplier, so a broken
    /// plane/row derivation cannot hide behind exact-product symmetry.
    pub(crate) fn setup_operands(
        rows: usize,
        fs: FilterShape,
        seed: u64,
        signedness: Signedness,
    ) -> (Matrix<u8>, Vec<i64>, PreparedFilter, QuantParams, MulLut) {
        let (patches, sums, plan, input_q) = setup(rows, fs, seed);
        let lut = MulLut::from_fn(signedness, |a, b| (a * b) & !0x3);
        (patches, sums, plan, input_q, lut)
    }

    #[test]
    fn tiled_matches_reference_across_tile_shapes() {
        let fs = FilterShape::new(3, 3, 5, 7);
        let (patches, sums, plan, input_q) = setup(53, fs, 11);
        let lut = MulLut::exact(Signedness::Signed);
        let reference =
            lut_gemm_reference(&patches, &sums, &plan, input_q, &lut, Accumulator::Exact);
        let pool = WorkerPool::new(2);
        for (mc, kc, nc) in [(1, 1, 1), (8, 16, 4), (64, 512, 16), (100, 100, 100)] {
            let tiles = TileConfig::new(mc, kc, nc).unwrap();
            let tiled = lut_gemm_tiled(
                &patches,
                &sums,
                &plan,
                input_q,
                &lut,
                Accumulator::Exact,
                tiles,
                &pool,
            );
            assert_eq!(tiled, reference, "tiles ({mc}, {kc}, {nc})");
        }
    }

    #[test]
    fn tiled_matches_reference_under_order_sensitive_accumulators() {
        // Saturating/wrapping folds are order-sensitive: the tiled path
        // must replay the exact ascending-k fold sequence, micro-tile and
        // panel boundaries notwithstanding.
        let fs = FilterShape::new(3, 3, 4, 6);
        let (patches, sums, plan, input_q) = setup(29, fs, 3);
        let lut = MulLut::exact(Signedness::Signed);
        for accumulator in [Accumulator::Saturating(12), Accumulator::Wrapping(10)] {
            let reference = lut_gemm_reference(&patches, &sums, &plan, input_q, &lut, accumulator);
            for threads in [1, 3] {
                let pool = WorkerPool::new(threads);
                let tiled = lut_gemm_tiled(
                    &patches,
                    &sums,
                    &plan,
                    input_q,
                    &lut,
                    accumulator,
                    TileConfig::new(7, 5, 3).unwrap(),
                    &pool,
                );
                assert_eq!(tiled, reference, "{accumulator:?} x{threads}");
            }
        }
    }

    #[test]
    fn tiled_is_thread_count_invariant() {
        let fs = FilterShape::new(1, 1, 32, 8);
        let (patches, sums, plan, input_q) = setup(64, fs, 21);
        let lut = MulLut::exact(Signedness::Unsigned);
        let run = |threads: usize| {
            let pool = WorkerPool::new(threads);
            lut_gemm_tiled(
                &patches,
                &sums,
                &plan,
                input_q,
                &lut,
                Accumulator::Exact,
                TileConfig::default(),
                &pool,
            )
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(4));
    }

    /// Distinct per-segment input params so a wrong epilogue pick is
    /// guaranteed to change bits.
    fn seg_params() -> Vec<QuantParams> {
        [(-1.0, 1.0), (-2.0, 0.5), (0.0, 3.0), (-0.25, 0.25)]
            .iter()
            .map(|&(lo, hi)| {
                QuantParams::from_range(lo, hi, QuantRange::i8(), RoundMode::NearestEven)
            })
            .collect()
    }

    fn sub_matrix(patches: &Matrix<u8>, start: usize, end: usize, k: usize) -> Matrix<u8> {
        let bytes: Vec<u8> = (start..end).flat_map(|r| patches.row(r).to_vec()).collect();
        Matrix::from_vec(end - start, k, bytes).unwrap()
    }

    #[test]
    fn segmented_reference_is_per_segment_reference_chained() {
        // The fused golden must equal solo goldens over each segment's
        // rows with that segment's params, concatenated — including an
        // empty segment in the middle.
        let fs = FilterShape::new(3, 3, 4, 5);
        let (patches, sums, plan, _) = setup(14, fs, 17);
        let segments = SegmentTable::from_counts(&[5, 0, 8, 1]);
        let seg_q = seg_params();
        let lut = MulLut::exact(Signedness::Signed);
        for accumulator in [Accumulator::Exact, Accumulator::Saturating(12)] {
            let fused = lut_gemm_reference_seg(
                &patches,
                &sums,
                &plan,
                &seg_q,
                &segments,
                &lut,
                accumulator,
            );
            let mut chained = Vec::new();
            for (s, (start, end)) in segments.iter().enumerate() {
                let sub = sub_matrix(&patches, start, end, fs.patch_len());
                chained.extend(lut_gemm_reference(
                    &sub,
                    &sums[start..end],
                    &plan,
                    seg_q[s],
                    &lut,
                    accumulator,
                ));
            }
            assert_eq!(fused, chained, "{accumulator:?}");
        }
    }

    #[test]
    fn segmented_tiled_matches_segmented_reference() {
        let fs = FilterShape::new(3, 3, 5, 7);
        let (patches, sums, plan, input_q) = setup(23, fs, 9);
        let mut seg_q = seg_params();
        seg_q.push(input_q);
        let segments = SegmentTable::from_counts(&[4, 0, 9, 2, 8]);
        let lut = MulLut::exact(Signedness::Signed);
        for accumulator in [
            Accumulator::Exact,
            Accumulator::Saturating(12),
            Accumulator::Wrapping(10),
        ] {
            let reference = lut_gemm_reference_seg(
                &patches,
                &sums,
                &plan,
                &seg_q,
                &segments,
                &lut,
                accumulator,
            );
            for threads in [1, 3] {
                let pool = WorkerPool::new(threads);
                let tiled = lut_gemm_tiled_seg(
                    &patches,
                    &sums,
                    &plan,
                    &seg_q,
                    &segments,
                    &lut,
                    accumulator,
                    TileConfig::new(7, 5, 3).unwrap(),
                    &pool,
                );
                assert_eq!(tiled, reference, "{accumulator:?} x{threads}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "segment table must cover every patch row")]
    fn segmented_gemm_rejects_short_segment_table() {
        let fs = FilterShape::new(1, 1, 2, 2);
        let (patches, sums, plan, input_q) = setup(4, fs, 2);
        let lut = MulLut::exact(Signedness::Signed);
        let _ = lut_gemm_reference_seg(
            &patches,
            &sums,
            &plan,
            &[input_q],
            &SegmentTable::from_counts(&[3]),
            &lut,
            Accumulator::Exact,
        );
    }

    #[test]
    fn empty_inputs_produce_empty_outputs() {
        let fs = FilterShape::new(3, 3, 2, 4);
        let (_, _, plan, input_q) = setup(1, fs, 5);
        let lut = MulLut::exact(Signedness::Signed);
        let pool = WorkerPool::new(2);
        let patches = Matrix::<u8>::zeros(0, fs.patch_len());
        let out = lut_gemm_tiled(
            &patches,
            &[],
            &plan,
            input_q,
            &lut,
            Accumulator::Exact,
            TileConfig::default(),
            &pool,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn zero_tile_dimensions_rejected() {
        for (mc, kc, nc) in [(0, 1, 1), (1, 0, 1), (1, 1, 0)] {
            let err = TileConfig::new(mc, kc, nc).unwrap_err();
            assert!(matches!(err, EmuError::Config(_)), "{err}");
            assert!(err.to_string().contains("tile sizes"), "{err}");
        }
    }

    #[test]
    fn default_tiles_are_valid_and_l1_sized() {
        let t = TileConfig::default();
        assert!(TileConfig::new(t.mc(), t.kc(), t.nc()).is_ok());
        // Accumulator tile stays within an 8 kB L1 budget.
        assert!(t.mc() * t.nc() * 8 <= 8 * 1024);
    }
}
