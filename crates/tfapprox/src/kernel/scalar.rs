//! The scalar tiled span walker — the portable arm of the kernel family.
//!
//! This is PR 4's register micro-tile kernel, unchanged: [`tile_span`]
//! walks one contiguous output-row span in [`TileConfig`] blocks with the
//! active LUT row hoisted, and is the only arm that supports the
//! order-sensitive [`Accumulator`] models (their folds must replay the
//! exact ascending-`k` tap sequence, which vector reassociation cannot).

use super::{fold_taps, lut_dot, TileConfig, MR};
use crate::accumulator::Accumulator;
use crate::prepared::{PreparedFilter, SegmentEpilogue};
use axmult::{MulLut, Signedness};
use axtensor::Matrix;

/// Run the blocked microkernel over output rows `r0 .. r0 + span/c_out`.
#[allow(clippy::too_many_arguments)]
pub(super) fn tile_span(
    r0: usize,
    out_span: &mut [f32],
    patches: &Matrix<u8>,
    patch_sums: &[i64],
    plan: &PreparedFilter,
    row_seg: &[u32],
    epi: &SegmentEpilogue,
    lut: &MulLut,
    accumulator: Accumulator,
    tiles: TileConfig,
) {
    let c_out = plan.c_out();
    let k_total = plan.k();
    let span_rows = out_span.len() / c_out;
    let signedness = lut.signedness();
    // Accumulator tile, channel-major: acc[co * mw + i] is output
    // position `mb + i`, channel `nb + co`.
    let mut acc = vec![0i64; tiles.mc() * tiles.nc()];
    for mb in (0..span_rows).step_by(tiles.mc()) {
        let mw = tiles.mc().min(span_rows - mb);
        for nb in (0..c_out).step_by(tiles.nc()) {
            let nw = tiles.nc().min(c_out - nb);
            acc[..nw * mw].fill(0);
            for kb in (0..k_total).step_by(tiles.kc()) {
                let kw = tiles.kc().min(k_total - kb);
                // Register micro-tiles: MR patch-row streams at a time,
                // reused across the whole channel tile while their
                // MR×kw bytes stay L1-resident.
                let mut rs = 0usize;
                while rs + MR <= mw {
                    let base = r0 + mb + rs;
                    let prows: [&[u8]; MR] =
                        std::array::from_fn(|i| &patches.row(base + i)[kb..kb + kw]);
                    for co in 0..nw {
                        let fcol = &plan.channel_bytes(nb + co)[kb..kb + kw];
                        let acc_mr = &mut acc[co * mw + rs..][..MR];
                        match signedness {
                            Signedness::Signed => micro_mr(
                                acc_mr,
                                &prows,
                                fcol,
                                lut,
                                |raw| i64::from(raw as i16),
                                accumulator,
                            ),
                            Signedness::Unsigned => {
                                micro_mr(acc_mr, &prows, fcol, lut, i64::from, accumulator);
                            }
                        }
                    }
                    rs += MR;
                }
                // Scalar tail for the last partial micro-tile.
                for r in rs..mw {
                    let prow = &patches.row(r0 + mb + r)[kb..kb + kw];
                    for co in 0..nw {
                        let fcol = &plan.channel_bytes(nb + co)[kb..kb + kw];
                        let slot = &mut acc[co * mw + r];
                        *slot = match accumulator {
                            Accumulator::Exact => {
                                *slot + lut_dot(prow, fcol, lut, signedness, accumulator)
                            }
                            // Order-sensitive models cannot fold a
                            // pre-reduced partial; replay the taps.
                            _ => fold_taps(*slot, prow, fcol, lut, signedness, accumulator),
                        };
                    }
                }
            }
            // Epilogue: Eq. 4 correction + dequantization under the
            // owning segment's constants, written to the
            // channel-contiguous output tile.
            for (co, acc_col) in acc[..nw * mw].chunks(mw).enumerate() {
                let c = nb + co;
                for (i, &a) in acc_col.iter().enumerate() {
                    let r = r0 + mb + i;
                    let sp = patch_sums[r];
                    out_span[(mb + i) * c_out + c] = epi.dequantize(row_seg[r] as usize, c, a, sp);
                }
            }
        }
    }
}

/// The register micro-tile: fold one `kw`-tap filter column into `MR`
/// accumulators at once, all held in registers, with each tap's 512-byte
/// LUT row hoisted out of the `MR` sweep.
#[inline]
fn micro_mr<D: Fn(u16) -> i64 + Copy>(
    acc_mr: &mut [i64],
    prows: &[&[u8]; MR],
    fcol: &[u8],
    lut: &MulLut,
    decode: D,
    accumulator: Accumulator,
) {
    let mut a = [0i64; MR];
    a.copy_from_slice(&acc_mr[..MR]);
    match accumulator {
        Accumulator::Exact => {
            for (k, &fb) in fcol.iter().enumerate() {
                let row = lut.row(fb);
                for i in 0..MR {
                    a[i] += decode(row[prows[i][k] as usize]);
                }
            }
        }
        _ => {
            for (k, &fb) in fcol.iter().enumerate() {
                let row = lut.row(fb);
                for i in 0..MR {
                    a[i] = accumulator.add(a[i], decode(row[prows[i][k] as usize]));
                }
            }
        }
    }
    acc_mr[..MR].copy_from_slice(&a);
}
