//! Kernel-family selection: one [`KernelKind`] chosen at compile time of
//! a session (or forced explicitly), then threaded through every GEMM
//! call site.
//!
//! Selection precedence, resolved once per process for the automatic
//! path:
//!
//! 1. An explicit override ([`crate::SessionBuilder::kernel`] /
//!    [`crate::EmuContext::with_kernel`]) — always wins, rejected up
//!    front if the CPU cannot run it.
//! 2. The `TFAPPROX_KERNEL` environment variable (a [`KernelKind`] name;
//!    `auto`, unknown names, and unsupported kernels fall through).
//! 3. Runtime calibration: on an AVX2-capable x86-64 host the two SIMD
//!    arms race on a synthetic panel and the faster one wins; elsewhere
//!    the scalar walker is the only arm.
//!
//! Every arm is bit-identical for the models it handles, so whichever
//! kernel the machinery lands on **cannot change results** — only time.
//! Order-sensitive accumulator models ([`Accumulator::Saturating`] /
//! [`Accumulator::Wrapping`]) always run the scalar walker, whose fold
//! order is the specified one; SIMD reassociation is reserved for the
//! exact model, where i64 addition is associative.

use super::{lut_gemm_tiled_seg, TileConfig};
use crate::accumulator::Accumulator;
use crate::pool::WorkerPool;
use crate::prepared::PreparedFilter;
use axmult::MulLut;
use axquant::QuantParams;
use axtensor::{Matrix, SegmentTable};
use std::fmt;
use std::sync::OnceLock;

/// One arm of the LUT-GEMM kernel family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// The portable tiled scalar walker (PR 4) — always available, and
    /// the only arm for order-sensitive accumulator models.
    ScalarTiled,
    /// AVX2 `pshufb` nibble sub-table kernel: 32 byte-plane products per
    /// shuffle, reassembled from the [`axmult::SimdTables`] lo/hi planes.
    Avx2Nibble,
    /// AVX2 `vpgatherdd` row-gather kernel: 16 products per step fetched
    /// straight from the hoisted 512-byte LUT row — the CPU analogue of
    /// the paper's `tex1Dfetch<ushort>` texture path.
    Avx2Gather,
}

impl KernelKind {
    /// The kernel's stable name, as reported in
    /// [`crate::EmulationReport`] / `ServeStats` and accepted by
    /// [`KernelKind::from_name`] and `TFAPPROX_KERNEL`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::ScalarTiled => "scalar-tiled",
            KernelKind::Avx2Nibble => "avx2-nibble",
            KernelKind::Avx2Gather => "avx2-gather",
        }
    }

    /// Parse a kernel name (the [`KernelKind::name`] form, plus short
    /// aliases `scalar`, `nibble`, `gather`). Returns `None` for unknown
    /// names — including `auto`, which callers treat as "calibrate".
    #[must_use]
    pub fn from_name(name: &str) -> Option<KernelKind> {
        match name {
            "scalar-tiled" | "scalar" => Some(KernelKind::ScalarTiled),
            "avx2-nibble" | "nibble" => Some(KernelKind::Avx2Nibble),
            "avx2-gather" | "gather" => Some(KernelKind::Avx2Gather),
            _ => None,
        }
    }

    /// Whether this process can execute the arm (compile target + runtime
    /// CPUID). [`KernelKind::ScalarTiled`] is always supported.
    #[must_use]
    pub fn is_supported(self) -> bool {
        match self {
            KernelKind::ScalarTiled => true,
            KernelKind::Avx2Nibble | KernelKind::Avx2Gather => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx2")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
        }
    }
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Every kernel arm this process can execute, scalar first.
#[must_use]
pub fn available_kernels() -> Vec<KernelKind> {
    [
        KernelKind::ScalarTiled,
        KernelKind::Avx2Nibble,
        KernelKind::Avx2Gather,
    ]
    .into_iter()
    .filter(|k| k.is_supported())
    .collect()
}

/// The process-wide automatic kernel choice: `TFAPPROX_KERNEL` if it
/// names a supported arm, else a one-shot calibration race (see the
/// module docs). Resolved once and cached.
///
/// A `TFAPPROX_KERNEL` value that does *not* resolve keeps the
/// documented fall-through-to-auto semantics, but is no longer silent: a
/// one-time warning naming the valid kernels goes to stderr, so a typo
/// like `TFAPPROX_KERNEL=sclar` cannot quietly lose the forced-scalar
/// escape hatch.
#[must_use]
pub fn auto_kernel() -> KernelKind {
    static AUTO: OnceLock<KernelKind> = OnceLock::new();
    *AUTO.get_or_init(|| {
        if let Ok(v) = std::env::var("TFAPPROX_KERNEL") {
            let (choice, warning) = env_kernel_choice(&v);
            if let Some(msg) = warning {
                eprintln!("{msg}");
            }
            if let Some(k) = choice {
                return k;
            }
        }
        calibrate()
    })
}

/// Resolve one `TFAPPROX_KERNEL` value: the forced arm if the value
/// names a supported kernel, otherwise `None` (fall through to
/// calibration) plus the warning to print when the fall-through was not
/// asked for. `auto` and an empty value are the documented spellings of
/// "calibrate" and stay silent; an unknown name or an arm this host
/// cannot run warns, naming every kernel the process accepts.
fn env_kernel_choice(value: &str) -> (Option<KernelKind>, Option<String>) {
    let v = value.trim();
    if v.is_empty() || v == "auto" {
        return (None, None);
    }
    let valid = || {
        available_kernels()
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", ")
    };
    match KernelKind::from_name(v) {
        Some(k) if k.is_supported() => (Some(k), None),
        Some(k) => (
            None,
            Some(format!(
                "tfapprox: TFAPPROX_KERNEL={v} names kernel '{}' which this host cannot \
                 execute; falling through to automatic selection (valid here: {}, auto)",
                k.name(),
                valid()
            )),
        ),
        None => (
            None,
            Some(format!(
                "tfapprox: TFAPPROX_KERNEL={v} does not name a kernel; falling through to \
                 automatic selection (valid: {}, auto)",
                valid()
            )),
        ),
    }
}

/// The calibration arm of [`auto_kernel`]: race the SIMD kernels where
/// they exist, otherwise scalar.
fn calibrate() -> KernelKind {
    #[cfg(target_arch = "x86_64")]
    if KernelKind::Avx2Gather.is_supported() {
        return super::simd::pick_simd_kernel();
    }
    KernelKind::ScalarTiled
}

/// The arm that will actually run for a request: SIMD kernels handle only
/// the exact accumulator model (their reassociated folds are bit-exact
/// there and only there) and require runtime CPU support; everything else
/// downgrades to the scalar walker.
fn effective(kernel: KernelKind, accumulator: Accumulator) -> KernelKind {
    if matches!(accumulator, Accumulator::Exact) && kernel.is_supported() {
        kernel
    } else {
        KernelKind::ScalarTiled
    }
}

/// Dispatch the single-segment LUT GEMM to `kernel` (see
/// [`lut_gemm_dispatch_seg`]); bit-identical to
/// [`super::lut_gemm_reference`] whichever arm runs.
///
/// # Panics
///
/// As [`super::lut_gemm_tiled`].
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn lut_gemm_dispatch(
    kernel: KernelKind,
    patches: &Matrix<u8>,
    patch_sums: &[i64],
    plan: &PreparedFilter,
    input_q: QuantParams,
    lut: &MulLut,
    accumulator: Accumulator,
    tiles: TileConfig,
    pool: &WorkerPool,
) -> Vec<f32> {
    lut_gemm_dispatch_seg(
        kernel,
        patches,
        patch_sums,
        plan,
        std::slice::from_ref(&input_q),
        &SegmentTable::single(patches.rows()),
        lut,
        accumulator,
        tiles,
        pool,
    )
}

/// Dispatch the segmented LUT GEMM to `kernel`, downgrading to the
/// scalar walker whenever the arm cannot handle the request (see
/// [`KernelKind`] and the module docs). All arms produce bits identical
/// to [`super::lut_gemm_reference_seg`], so fused serving, sharding and
/// conformance guarantees are kernel-independent.
///
/// # Panics
///
/// As [`super::lut_gemm_tiled_seg`].
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn lut_gemm_dispatch_seg(
    kernel: KernelKind,
    patches: &Matrix<u8>,
    patch_sums: &[i64],
    plan: &PreparedFilter,
    seg_q: &[QuantParams],
    segments: &SegmentTable,
    lut: &MulLut,
    accumulator: Accumulator,
    tiles: TileConfig,
    pool: &WorkerPool,
) -> Vec<f32> {
    match effective(kernel, accumulator) {
        #[cfg(target_arch = "x86_64")]
        k @ (KernelKind::Avx2Nibble | KernelKind::Avx2Gather) => {
            super::simd::lut_gemm_simd_seg(k, patches, patch_sums, plan, seg_q, segments, lut, pool)
        }
        _ => lut_gemm_tiled_seg(
            patches,
            patch_sums,
            plan,
            seg_q,
            segments,
            lut,
            accumulator,
            tiles,
            pool,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for k in [
            KernelKind::ScalarTiled,
            KernelKind::Avx2Nibble,
            KernelKind::Avx2Gather,
        ] {
            assert_eq!(KernelKind::from_name(k.name()), Some(k));
            assert_eq!(k.to_string(), k.name());
        }
        assert_eq!(
            KernelKind::from_name("scalar"),
            Some(KernelKind::ScalarTiled)
        );
        assert_eq!(KernelKind::from_name("auto"), None);
        assert_eq!(KernelKind::from_name("neon-tbl"), None);
    }

    #[test]
    fn scalar_is_always_supported_and_listed() {
        assert!(KernelKind::ScalarTiled.is_supported());
        let avail = available_kernels();
        assert_eq!(avail[0], KernelKind::ScalarTiled);
        assert!(avail.iter().all(|k| k.is_supported()));
    }

    #[test]
    fn auto_kernel_is_stable_and_supported() {
        let k = auto_kernel();
        assert!(k.is_supported());
        assert_eq!(k, auto_kernel(), "cached choice must not flap");
    }

    #[test]
    fn env_typos_warn_but_fall_through() {
        // The documented "calibrate" spellings stay silent.
        for quiet in ["auto", "", "  auto  "] {
            assert_eq!(env_kernel_choice(quiet), (None, None), "{quiet:?}");
        }
        // A valid, supported name forces that arm with no warning.
        assert_eq!(
            env_kernel_choice("scalar-tiled"),
            (Some(KernelKind::ScalarTiled), None)
        );
        assert_eq!(
            env_kernel_choice(" scalar "),
            (Some(KernelKind::ScalarTiled), None)
        );
        // A typo falls through to auto (documented semantics kept) but
        // now carries a warning naming the valid kernels.
        let (choice, warning) = env_kernel_choice("sclar");
        assert_eq!(choice, None);
        let msg = warning.expect("typo must warn");
        assert!(msg.contains("sclar"), "{msg}");
        assert!(msg.contains("scalar-tiled"), "{msg}");
        assert!(msg.contains("auto"), "{msg}");
        // An unsupported-but-real arm gets the distinct "cannot execute"
        // message (constructible only on non-AVX2 hosts; both branches
        // keep the fall-through contract).
        if !KernelKind::Avx2Gather.is_supported() {
            let (choice, warning) = env_kernel_choice("avx2-gather");
            assert_eq!(choice, None);
            assert!(warning.unwrap().contains("cannot execute"));
        }
    }

    #[test]
    fn order_sensitive_models_downgrade_to_scalar() {
        for k in [KernelKind::Avx2Nibble, KernelKind::Avx2Gather] {
            assert_eq!(
                effective(k, Accumulator::Saturating(12)),
                KernelKind::ScalarTiled
            );
            assert_eq!(
                effective(k, Accumulator::Wrapping(10)),
                KernelKind::ScalarTiled
            );
        }
        assert_eq!(
            effective(KernelKind::ScalarTiled, Accumulator::Exact),
            KernelKind::ScalarTiled
        );
    }
}
