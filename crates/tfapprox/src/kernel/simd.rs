//! AVX2 LUT-GEMM panels — the vector arms of the kernel family.
//!
//! Both arms consume the [`SimdTables`] layouts derived once per
//! [`MulLut`] and resolve 16–32 products per instruction where the
//! scalar walker resolves one per load:
//!
//! - **`avx2-gather`** ([`gather_panel`]): with the filter byte fixed,
//!   every product of a tap lives in one 512-byte LUT row — the same
//!   hoisting the scalar kernel exploits, and the CPU analogue of the
//!   paper's `tex1Dfetch<ushort>` reads from texture-cached table rows.
//!   A `vpgatherdd` fetches 8 two-byte entries of that L1-resident row
//!   per instruction, keyed directly by the activation bytes.
//! - **`avx2-nibble`** ([`nibble_panel`]): the row is viewed as 16
//!   sub-tables of 16 bytes per byte plane ([`SimdTables::lo_plane`] /
//!   [`SimdTables::hi_plane`]); a `pshufb` per sub-table selects 32
//!   lanes at once, with non-matching high nibbles saturated to a
//!   poisoned index (bit 7 set ⇒ `pshufb` writes zero) and the 16
//!   partial selections OR-merged.
//!
//! Both run over a **K-major packed panel** (`pbuf[k*mp + i]` = patch
//! row `i`, tap `kb+k`) produced by [`pack_panel`], whose 16×16 SSE
//! byte-transpose keeps packing ≈2% of kernel time.
//!
//! # Bit-identity
//!
//! These arms serve only [`Accumulator::Exact`] (the dispatch layer
//! guarantees it). Every 16-bit product is decoded exactly — sign- or
//! zero-extended per table signedness — and summed in integers wide
//! enough to never wrap: per ≤256-tap block the nibble arm's i16/u16
//! register partials are exact (256·|min i16 product| = 32768 fits;
//! 256·255 = 65 280 fits u16), per ≤4096-tap panel the i32 memory
//! accumulator is exact (4096·65 535 < 2³¹), and the cross-panel i64
//! accumulator is the model's own width. Exact integer addition is
//! associative, so any blocking/vectorization order produces the same
//! i64 as the golden per-row fold — hence the same dequantized f32 bits.
//! Padded lanes (`mh..mp`) compute garbage that is never read, and the
//! gather's 4-byte read at row offset 255 lands on [`SimdTables::padded`]'s
//! trailing zero entry, never out of bounds.

use super::check_seg_operands;
use super::dispatch::KernelKind;
use crate::pool::WorkerPool;
use crate::prepared::{PreparedFilter, SegmentEpilogue};
use axmult::{MulLut, Signedness, SimdTables, LUT_ENTRIES};
use axquant::QuantParams;
use axtensor::{Matrix, SegmentTable};
use std::arch::x86_64::*;

/// The segmented LUT GEMM on an AVX2 arm, sharded over `pool` exactly
/// like the scalar walker (contiguous row spans, partition-independent
/// bits).
///
/// Callers (the dispatch layer) must have verified
/// `kernel.is_supported()`; the accumulator model is implicitly
/// [`Accumulator::Exact`](crate::accumulator::Accumulator::Exact).
///
/// # Panics
///
/// As [`super::lut_gemm_tiled_seg`].
#[allow(clippy::too_many_arguments)]
pub(super) fn lut_gemm_simd_seg(
    kernel: KernelKind,
    patches: &Matrix<u8>,
    patch_sums: &[i64],
    plan: &PreparedFilter,
    seg_q: &[QuantParams],
    segments: &SegmentTable,
    lut: &MulLut,
    pool: &WorkerPool,
) -> Vec<f32> {
    check_seg_operands(patches, patch_sums, plan, seg_q, segments);
    let rows = patches.rows();
    let c_out = plan.c_out();
    let mut out = vec![0f32; rows * c_out];
    if rows == 0 || c_out == 0 {
        return out;
    }
    let epi = plan.segment_epilogue(seg_q);
    let row_seg = segments.element_segments();
    let epi_ref = &epi;
    let row_seg_ref: &[u32] = &row_seg;
    // Derive (or fetch) the SIMD layouts once, outside the parallel region.
    let simd = lut.simd_tables();
    let signedness = lut.signedness();

    let rows_per = rows.div_ceil(pool.threads()).max(1);
    let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(rows.div_ceil(rows_per));
    for (t, span) in out.chunks_mut(rows_per * c_out).enumerate() {
        let r0 = t * rows_per;
        jobs.push(Box::new(move || {
            simd_span(
                kernel,
                r0,
                span,
                patches,
                patch_sums,
                plan,
                row_seg_ref,
                epi_ref,
                simd,
                signedness,
            );
        }));
    }
    pool.run(jobs);
    out
}

/// Run the blocked SIMD panels over output rows `r0 .. r0 + span/c_out`.
///
/// Blocking: `mb_step` output rows at a time (acc64 tile ≈ 2 MB max),
/// rounded-up working width `mp` a multiple of 32 so both arms sweep
/// whole vectors; the tap dimension in `kc ≤ 4096` panels so the packed
/// panel stays ≈1 MB and the per-channel i32 accumulator cannot wrap.
#[allow(clippy::too_many_arguments)]
fn simd_span(
    kernel: KernelKind,
    r0: usize,
    out_span: &mut [f32],
    patches: &Matrix<u8>,
    patch_sums: &[i64],
    plan: &PreparedFilter,
    row_seg: &[u32],
    epi: &SegmentEpilogue,
    simd: &SimdTables,
    signedness: Signedness,
) {
    let c_out = plan.c_out();
    let k_total = plan.k();
    let span_rows = out_span.len() / c_out;
    if span_rows == 0 {
        return;
    }
    let mb_step = ((2usize << 20) / (8 * c_out)).clamp(32, 4096) & !31;
    let mut pbuf: Vec<u8> = Vec::new();
    let mut acc32: Vec<i32> = Vec::new();
    let mut acc64: Vec<i64> = Vec::new();
    for mb in (0..span_rows).step_by(mb_step) {
        let mh = mb_step.min(span_rows - mb);
        let mp = mh.next_multiple_of(32);
        let kc = k_total.min(4096).min(((1usize << 20) / mp).max(64)).max(1);
        if acc32.len() < mp {
            acc32.resize(mp, 0);
        }
        if acc64.len() < mp * c_out {
            acc64.resize(mp * c_out, 0);
        }
        acc64[..mp * c_out].fill(0);
        for kb in (0..k_total).step_by(kc) {
            let kw = kc.min(k_total - kb);
            pack_panel(patches, r0 + mb, mh, mp, kb, kw, &mut pbuf);
            for c in 0..c_out {
                acc32[..mp].fill(0);
                let fcol = &plan.channel_bytes(c)[kb..kb + kw];
                // SAFETY: AVX2 support is a precondition of this arm
                // (checked by the dispatch layer); `pbuf` holds `kw*mp`
                // packed bytes with `mp % 32 == 0`, `acc32` has `mp`
                // lanes, and the tables come from `SimdTables` (gather
                // row reads stay inside the padded table — module docs).
                unsafe {
                    match (kernel, signedness) {
                        (KernelKind::Avx2Gather, Signedness::Signed) => {
                            gather_panel::<true>(&pbuf, fcol, simd.padded(), &mut acc32, mp);
                        }
                        (KernelKind::Avx2Gather, Signedness::Unsigned) => {
                            gather_panel::<false>(&pbuf, fcol, simd.padded(), &mut acc32, mp);
                        }
                        (_, Signedness::Signed) => {
                            nibble_panel::<true>(
                                &pbuf,
                                fcol,
                                simd.lo_plane(),
                                simd.hi_plane(),
                                &mut acc32,
                                mp,
                            );
                        }
                        (_, Signedness::Unsigned) => {
                            nibble_panel::<false>(
                                &pbuf,
                                fcol,
                                simd.lo_plane(),
                                simd.hi_plane(),
                                &mut acc32,
                                mp,
                            );
                        }
                    }
                }
                let a64 = &mut acc64[c * mp..c * mp + mh];
                for (a, &v) in a64.iter_mut().zip(&acc32[..mh]) {
                    *a += i64::from(v);
                }
            }
        }
        // Epilogue: Eq. 4 correction + dequantization under the owning
        // segment's constants — live rows only, padded lanes dropped.
        for i in 0..mh {
            let r = r0 + mb + i;
            let sp = patch_sums[r];
            let s = row_seg[r] as usize;
            for c in 0..c_out {
                out_span[(mb + i) * c_out + c] = epi.dequantize(s, c, acc64[c * mp + i], sp);
            }
        }
    }
}

/// Pack patch rows `row0 .. row0+mh`, taps `kb .. kb+kw`, into a K-major
/// panel: `pbuf[k*mp + i]` = patch row `row0+i`, tap `kb+k`; lanes
/// `mh..mp` of every tap column are zeroed so vector sweeps can run to
/// `mp` without reading live data.
fn pack_panel(
    patches: &Matrix<u8>,
    row0: usize,
    mh: usize,
    mp: usize,
    kb: usize,
    kw: usize,
    pbuf: &mut Vec<u8>,
) {
    if pbuf.len() < kw * mp {
        pbuf.resize(kw * mp, 0);
    }
    let mfull = mh & !15;
    let kfull = kw & !15;
    for ib in (0..mfull).step_by(16) {
        for jb in (0..kfull).step_by(16) {
            // SAFETY: the 16 source rows each have `kb+jb+16 ≤ cols`
            // bytes; the 16 destination columns end at
            // `(jb+15)*mp + ib + 16 ≤ kw*mp`; AVX2 (⊃ SSE2) is a
            // precondition of this module's arms.
            unsafe {
                transpose16(
                    patches,
                    row0 + ib,
                    kb + jb,
                    pbuf.as_mut_ptr().add(jb * mp + ib),
                    mp,
                );
            }
        }
        for j in kfull..kw {
            for i in 0..16 {
                pbuf[j * mp + ib + i] = patches.row(row0 + ib + i)[kb + j];
            }
        }
    }
    for i in mfull..mh {
        let row = &patches.row(row0 + i)[kb..kb + kw];
        for (j, &v) in row.iter().enumerate() {
            pbuf[j * mp + i] = v;
        }
    }
    for j in 0..kw {
        pbuf[j * mp + mh..j * mp + mp].fill(0);
    }
}

/// 16×16 byte transpose: read 16 consecutive patch rows × 16 taps,
/// write 16 tap columns of the packed panel (stride `mp`), via a 4-level
/// `punpck` tree.
///
/// # Safety
///
/// Requires AVX2; `col0+16` must not exceed the matrix width, rows
/// `row0..row0+16` must exist, and `dst` must have room for 16 stores of
/// 16 bytes at stride `mp`.
#[target_feature(enable = "avx2")]
unsafe fn transpose16(patches: &Matrix<u8>, row0: usize, col0: usize, dst: *mut u8, mp: usize) {
    let mut r = [_mm_setzero_si128(); 16];
    for (i, slot) in r.iter_mut().enumerate() {
        *slot = _mm_loadu_si128(patches.row(row0 + i).as_ptr().add(col0) as *const __m128i);
    }
    let mut t = [_mm_setzero_si128(); 16];
    for i in 0..8 {
        t[2 * i] = _mm_unpacklo_epi8(r[2 * i], r[2 * i + 1]);
        t[2 * i + 1] = _mm_unpackhi_epi8(r[2 * i], r[2 * i + 1]);
    }
    for i in 0..4 {
        r[4 * i] = _mm_unpacklo_epi16(t[4 * i], t[4 * i + 2]);
        r[4 * i + 1] = _mm_unpackhi_epi16(t[4 * i], t[4 * i + 2]);
        r[4 * i + 2] = _mm_unpacklo_epi16(t[4 * i + 1], t[4 * i + 3]);
        r[4 * i + 3] = _mm_unpackhi_epi16(t[4 * i + 1], t[4 * i + 3]);
    }
    for i in 0..2 {
        t[8 * i] = _mm_unpacklo_epi32(r[8 * i], r[8 * i + 4]);
        t[8 * i + 1] = _mm_unpackhi_epi32(r[8 * i], r[8 * i + 4]);
        t[8 * i + 2] = _mm_unpacklo_epi32(r[8 * i + 1], r[8 * i + 5]);
        t[8 * i + 3] = _mm_unpackhi_epi32(r[8 * i + 1], r[8 * i + 5]);
        t[8 * i + 4] = _mm_unpacklo_epi32(r[8 * i + 2], r[8 * i + 6]);
        t[8 * i + 5] = _mm_unpackhi_epi32(r[8 * i + 2], r[8 * i + 6]);
        t[8 * i + 6] = _mm_unpacklo_epi32(r[8 * i + 3], r[8 * i + 7]);
        t[8 * i + 7] = _mm_unpackhi_epi32(r[8 * i + 3], r[8 * i + 7]);
    }
    for i in 0..8 {
        r[2 * i] = _mm_unpacklo_epi64(t[i], t[i + 8]);
        r[2 * i + 1] = _mm_unpackhi_epi64(t[i], t[i + 8]);
    }
    for (j, v) in r.iter().enumerate() {
        _mm_storeu_si128(dst.add(j * mp) as *mut __m128i, *v);
    }
}

/// The `vpgatherdd` arm: tap-outer sweep, so each tap's 512-byte LUT row
/// stays L1-hot across the whole `mp` lane sweep; 16 lanes per step as
/// two 8-lane gathers of 32-bit words, keeping the low 16 bits of each
/// (sign- or zero-extended per `SIGNED`).
///
/// # Safety
///
/// Requires AVX2. `pbuf` must hold `fcol.len()*mp` bytes, `mp % 16 == 0`,
/// `acc32.len() >= mp`, and `padded` must be a [`SimdTables::padded`]
/// table (`LUT_ENTRIES+1` entries) so the dword read at row offset 255
/// stays in bounds.
#[target_feature(enable = "avx2")]
unsafe fn gather_panel<const SIGNED: bool>(
    pbuf: &[u8],
    fcol: &[u8],
    padded: &[u16],
    acc32: &mut [i32],
    mp: usize,
) {
    for (k, &fb) in fcol.iter().enumerate() {
        let row = padded.as_ptr().add((fb as usize) << 8) as *const i32;
        let col = pbuf.as_ptr().add(k * mp);
        let mut mb = 0;
        while mb < mp {
            let idx16 = _mm_loadu_si128(col.add(mb) as *const __m128i);
            let idx0 = _mm256_cvtepu8_epi32(idx16);
            let idx1 = _mm256_cvtepu8_epi32(_mm_srli_si128(idx16, 8));
            let g0 = _mm256_i32gather_epi32::<2>(row, idx0);
            let g1 = _mm256_i32gather_epi32::<2>(row, idx1);
            let (v0, v1) = if SIGNED {
                (
                    _mm256_srai_epi32(_mm256_slli_epi32(g0, 16), 16),
                    _mm256_srai_epi32(_mm256_slli_epi32(g1, 16), 16),
                )
            } else {
                (
                    _mm256_srli_epi32(_mm256_slli_epi32(g0, 16), 16),
                    _mm256_srli_epi32(_mm256_slli_epi32(g1, 16), 16),
                )
            };
            let a0 = _mm256_loadu_si256(acc32.as_ptr().add(mb) as *const __m256i);
            let a1 = _mm256_loadu_si256(acc32.as_ptr().add(mb + 8) as *const __m256i);
            _mm256_storeu_si256(
                acc32.as_mut_ptr().add(mb) as *mut __m256i,
                _mm256_add_epi32(a0, v0),
            );
            _mm256_storeu_si256(
                acc32.as_mut_ptr().add(mb + 8) as *mut __m256i,
                _mm256_add_epi32(a1, v1),
            );
            mb += 16;
        }
    }
}

/// The `pshufb` arm: per tap, sweep the 16 sub-tables of the active row
/// in both byte planes, selecting 32 lanes per shuffle. Lane selection:
/// XOR the activation byte with `h << 4` and saturating-add `0x70` — a
/// matching high nibble yields an index `< 0x80` (its low nibble), any
/// other saturates with bit 7 set, which `pshufb` maps to zero; the 16
/// partial selections OR together. Byte partials accumulate in 16-bit
/// registers per ≤256-tap block (exact — see module docs) and flush to
/// `acc32`.
///
/// # Safety
///
/// Requires AVX2. `pbuf` must hold `fcol.len()*mp` bytes with
/// `mp % 32 == 0`, and `acc32.len() >= mp`.
#[target_feature(enable = "avx2")]
unsafe fn nibble_panel<const SIGNED: bool>(
    pbuf: &[u8],
    fcol: &[u8],
    lo: &[u8; LUT_ENTRIES],
    hi: &[u8; LUT_ENTRIES],
    acc32: &mut [i32],
    mp: usize,
) {
    let kw = fcol.len();
    let seventy = _mm256_set1_epi8(0x70u8 as i8);
    let zero = _mm256_setzero_si256();
    for kb in (0..kw).step_by(256) {
        let kh = 256.min(kw - kb);
        let mut mb = 0;
        while mb < mp {
            let mut alo0 = zero; // u16 partials, unpack lane order
            let mut alo1 = zero;
            let mut ahi0 = zero; // i16 (signed) / u16 (unsigned) partials
            let mut ahi1 = zero;
            for k in kb..kb + kh {
                let fb = *fcol.get_unchecked(k) as usize;
                let idx = _mm256_loadu_si256(pbuf.as_ptr().add(k * mp + mb) as *const __m256i);
                let lrow = lo.as_ptr().add(fb << 8);
                let hrow = hi.as_ptr().add(fb << 8);
                let mut plo = zero;
                let mut phi = zero;
                for h in 0..16 {
                    let tl = _mm256_broadcastsi128_si256(_mm_loadu_si128(
                        lrow.add(h * 16) as *const __m128i
                    ));
                    let th = _mm256_broadcastsi128_si256(_mm_loadu_si128(
                        hrow.add(h * 16) as *const __m128i
                    ));
                    let x = _mm256_xor_si256(idx, _mm256_set1_epi8((h << 4) as u8 as i8));
                    let sel = _mm256_adds_epu8(x, seventy);
                    plo = _mm256_or_si256(plo, _mm256_shuffle_epi8(tl, sel));
                    phi = _mm256_or_si256(phi, _mm256_shuffle_epi8(th, sel));
                }
                alo0 = _mm256_add_epi16(alo0, _mm256_unpacklo_epi8(plo, zero));
                alo1 = _mm256_add_epi16(alo1, _mm256_unpackhi_epi8(plo, zero));
                let sign = if SIGNED {
                    _mm256_cmpgt_epi8(zero, phi)
                } else {
                    zero
                };
                ahi0 = _mm256_add_epi16(ahi0, _mm256_unpacklo_epi8(phi, sign));
                ahi1 = _mm256_add_epi16(ahi1, _mm256_unpackhi_epi8(phi, sign));
            }
            flush::<SIGNED>(acc32.as_mut_ptr().add(mb), alo0, alo1, ahi0, ahi1);
            mb += 32;
        }
    }
}

/// Flush one 32-lane block of 16-bit partials into the i32 accumulators:
/// `acc[m] += lo_sum + (hi_sum << 8)`, undoing the `punpck` interleave
/// (`alo0` holds bytes `[0..8, 16..24]` of the block, `alo1` the rest).
///
/// # Safety
///
/// Requires AVX2; `acc` must point at 32 writable `i32`s.
#[target_feature(enable = "avx2")]
unsafe fn flush<const SIGNED: bool>(
    acc: *mut i32,
    alo0: __m256i,
    alo1: __m256i,
    ahi0: __m256i,
    ahi1: __m256i,
) {
    let mut lo = [0u16; 32];
    let mut hi = [0u16; 32];
    _mm256_storeu_si256(lo.as_mut_ptr() as *mut __m256i, alo0);
    _mm256_storeu_si256(lo.as_mut_ptr().add(16) as *mut __m256i, alo1);
    _mm256_storeu_si256(hi.as_mut_ptr() as *mut __m256i, ahi0);
    _mm256_storeu_si256(hi.as_mut_ptr().add(16) as *mut __m256i, ahi1);
    const MAP: [usize; 32] = [
        0, 1, 2, 3, 4, 5, 6, 7, 16, 17, 18, 19, 20, 21, 22, 23, 8, 9, 10, 11, 12, 13, 14, 15, 24,
        25, 26, 27, 28, 29, 30, 31,
    ];
    for (slot, &m) in MAP.iter().enumerate() {
        let h = if SIGNED {
            i32::from(hi[slot] as i16)
        } else {
            i32::from(hi[slot])
        };
        *acc.add(m) += i32::from(lo[slot]) + (h << 8);
    }
}

/// Calibrate the automatic choice between the two AVX2 arms: race them
/// on a synthetic packed panel and keep the winner. Both arms are exact,
/// so the (machine-dependent) outcome can never change results — gather
/// tends to win on cores with fast `vpgatherdd` (Intel), nibble on
/// cores where shuffle throughput dominates (AMD).
///
/// Only called once per process, from behind `auto_kernel`'s cache.
pub(super) fn pick_simd_kernel() -> KernelKind {
    const MP: usize = 1024;
    const KW: usize = 256;
    let lut = MulLut::exact(Signedness::Signed);
    let simd = lut.simd_tables();
    let pbuf: Vec<u8> = (0..KW * MP)
        .map(|i| (i.wrapping_mul(2_654_435_761)) as u8)
        .collect();
    let fcol: Vec<u8> = (0..KW).map(|i| (i * 97 + 13) as u8).collect();
    let mut acc32 = vec![0i32; MP];

    // SAFETY: AVX2 verified by the caller (`calibrate`); buffer shapes
    // satisfy the panel contracts (MP % 32 == 0, pbuf = KW*MP bytes).
    let t_gather = {
        let mut best = std::time::Duration::MAX;
        for _ in 0..4 {
            let t = std::time::Instant::now();
            unsafe { gather_panel::<true>(&pbuf, &fcol, simd.padded(), &mut acc32, MP) };
            best = best.min(t.elapsed());
            std::hint::black_box(&acc32);
        }
        best
    };
    let t_nibble = {
        let mut best = std::time::Duration::MAX;
        for _ in 0..4 {
            let t = std::time::Instant::now();
            unsafe {
                nibble_panel::<true>(
                    &pbuf,
                    &fcol,
                    simd.lo_plane(),
                    simd.hi_plane(),
                    &mut acc32,
                    MP,
                )
            };
            best = best.min(t.elapsed());
            std::hint::black_box(&acc32);
        }
        best
    };
    if t_nibble < t_gather {
        KernelKind::Avx2Nibble
    } else {
        KernelKind::Avx2Gather
    }
}

#[cfg(test)]
mod tests {
    use super::super::{lut_gemm_reference_seg, tests::setup_operands};
    use super::*;
    use crate::accumulator::Accumulator;
    use axtensor::FilterShape;

    fn avx2() -> bool {
        std::arch::is_x86_feature_detected!("avx2")
    }

    #[test]
    fn pack_panel_transposes_with_tails_and_zero_padding() {
        if !avx2() {
            return;
        }
        // 37 rows (16-block + scalar tail), 21 taps (16-block + k tail),
        // mp 64 > mh 37 exercises the zero padding.
        let rows = 40;
        let cols = 30;
        let bytes: Vec<u8> = (0..rows * cols).map(|i| (i * 37 + 11) as u8).collect();
        let m = Matrix::from_vec(rows, cols, bytes).unwrap();
        let (row0, mh, mp, kb, kw) = (2, 37, 64, 5, 21);
        let mut pbuf = Vec::new();
        pack_panel(&m, row0, mh, mp, kb, kw, &mut pbuf);
        for k in 0..kw {
            for i in 0..mp {
                let want = if i < mh { m.row(row0 + i)[kb + k] } else { 0 };
                assert_eq!(pbuf[k * mp + i], want, "k={k} i={i}");
            }
        }
    }

    #[test]
    fn simd_arms_match_reference_both_signednesses() {
        if !avx2() {
            return;
        }
        // K = 45 is not a multiple of any vector width in play.
        let fs = FilterShape::new(3, 3, 5, 7);
        for signedness in [Signedness::Signed, Signedness::Unsigned] {
            let (patches, sums, plan, input_q, lut) = setup_operands(53, fs, 11, signedness);
            let seg_q = [input_q];
            let segments = SegmentTable::single(patches.rows());
            let reference = lut_gemm_reference_seg(
                &patches,
                &sums,
                &plan,
                &seg_q,
                &segments,
                &lut,
                Accumulator::Exact,
            );
            for kernel in [KernelKind::Avx2Gather, KernelKind::Avx2Nibble] {
                for threads in [1, 3] {
                    let pool = WorkerPool::new(threads);
                    let got = lut_gemm_simd_seg(
                        kernel, &patches, &sums, &plan, &seg_q, &segments, &lut, &pool,
                    );
                    assert_eq!(got, reference, "{kernel:?} {signedness:?} x{threads}");
                }
            }
        }
    }

    #[test]
    fn pick_simd_kernel_returns_an_avx2_arm() {
        if !avx2() {
            return;
        }
        let k = pick_simd_kernel();
        assert!(matches!(k, KernelKind::Avx2Gather | KernelKind::Avx2Nibble));
    }
}
