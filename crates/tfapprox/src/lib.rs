//! **tfapprox** — fast emulation of DNN approximate hardware accelerators.
//!
//! A Rust reproduction of Vaverka, Mrazek, Vasicek, Sekanina: *TFApprox:
//! Towards a Fast Emulation of DNN Approximate Hardware Accelerators on
//! GPU* (DATE 2020). The paper's problem: evaluating a candidate
//! approximate multiplier inside a DNN accelerator requires emulating it in
//! software, which is 2–3 orders of magnitude slower than native float
//! inference. Its solution: express the quantized convolution through the
//! affine-quantization algebra (Eq. 1–4), emulate the 8×8 multiplier as a
//! 256×256 look-up table, and run a GEMM-formulated convolution on a GPU
//! with the LUT in texture memory.
//!
//! The crate's entry point is the **compiled-session API**:
//!
//! - [`SessionBuilder`]: owns every emulation knob — [`Backend`], device,
//!   chunk size, threads, and the multiplier [`Assignment`] (uniform, or
//!   per-layer in the ALWANN style),
//! - [`Session`]: the compiled model — the Fig. 1 graph transform applied
//!   once, every layer's [`PreparedFilter`] plan built **eagerly** (so
//!   configuration mistakes fail at compile time, not on the first
//!   forward), with [`Session::infer`], [`Session::infer_batches`]
//!   (returning the `tinit + tcomp` [`EmulationReport`]), and
//!   [`Session::reassign`] — the design-space hot path that recompiles
//!   while reusing the cached plans of unchanged layers,
//! - [`Error`]: the one error type every session operation returns,
//! - [`compile`]: bring-your-own multipliers — the [`axcompile`]
//!   circuit-to-LUT pipeline sharded over the session [`WorkerPool`], so a
//!   gate-level netlist compiles into a registered multiplier addressable
//!   by name everywhere a built-in is,
//! - [`serve`]: the multi-tenant serving tier — a [`SessionRegistry`]
//!   holds many compiled sessions behind an LRU (compile-on-miss via
//!   [`Session::reassign`] plan transplant), and a [`ServeEngine`]
//!   coalesces keyed submissions into per-tenant micro-batches with
//!   event-driven shard wakeup, SLO deadline shedding, explicit
//!   backpressure, p50/p95/p99 latency stats, and
//!   bit-identical-to-solo responses,
//! - [`prelude`]: one `use tfapprox::prelude::*` for all of the above.
//!
//! Underneath sit the operator and engine layers:
//!
//! - [`AxConv2D`] / [`AxDense`]: the approximate operators — quantize per
//!   Eq. 1, multiply through the LUT, accumulate, dequantize with the
//!   Eq. 4 correction,
//! - [`Backend`]: `CpuDirect` (the nested-loop approach of ALWANN
//!   \[12\]), `CpuGemm` (im2col + GEMM on host threads), or `GpuSim`
//!   (Algorithm 1 on the simulated CUDA-capable device from [`gpusim`]),
//! - [`PreparedFilter`] and [`WorkerPool`]: the prepared-execution engine,
//! - [`kernel`]: the tiled, thread-sharded LUT-GEMM microkernel behind
//!   `CpuGemm` — cache-blocked per [`TileConfig`], with LUT rows hoisted
//!   out of the inner loop,
//! - [`perfmodel`]: the calibrated extrapolation that regenerates Table I
//!   and Fig. 2 at the paper's full 10⁴-image scale.
//!
//! # Quickstart
//!
//! ```
//! use tfapprox::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A trained model and a candidate approximate multiplier.
//! let graph = axnn::resnet::ResNetConfig::with_depth(8)?.build(42)?;
//! let mult = axmult::catalog::by_name("mul8s_bam_v8h0")?;
//!
//! // Compile once: Conv2D -> AxConv2D (Fig. 1), every filter plan built
//! // eagerly, on the simulated GPU.
//! let session = Session::builder()
//!     .backend(Backend::GpuSim)
//!     .multiplier(&mult)
//!     .compile(&graph)?;
//! assert_eq!(session.replaced_layers(), 7);
//!
//! // Run many cheap inferences against the compiled model.
//! let input = axtensor::rng::uniform(axnn::resnet::cifar_input_shape(2), 1, -1.0, 1.0);
//! let (outputs, report) = session.infer_batches(std::slice::from_ref(&input))?;
//! assert_eq!(outputs[0].shape().c, 10);
//! assert_eq!(report.images, 2);
//!
//! // Move to the next design-space candidate: unchanged layers keep
//! // their prepared plans.
//! let precise = axmult::catalog::by_name("mul8s_exact")?;
//! let next = session.reassign(&Assignment::uniform(mult).with_layer(0, precise))?;
//! assert_eq!(next.multipliers()[0].name(), "mul8s_exact");
//! # Ok(())
//! # }
//! ```

pub mod accumulator;
pub mod assignment;
pub mod axconv2d;
pub mod axdense;
pub mod backend;
pub mod compile;
pub mod context;
pub mod kernel;
pub mod perfmodel;
pub mod pool;
pub mod prepared;
pub mod serve;
pub mod session;
pub mod sweep;

// The pre-session free-function surface. Kept public so the equivalence
// tests can pin `Session` bit-identical to the legacy path, but hidden
// from the documented API: new code should compile a `Session`.
#[doc(hidden)]
pub mod flow;
#[doc(hidden)]
pub mod runtime;

mod error;

pub use accumulator::Accumulator;
pub use assignment::Assignment;
pub use axconv2d::AxConv2D;
pub use axdense::AxDense;
pub use context::{Backend, EmuContext};
pub use error::{EmuError, Error};
pub use kernel::{auto_kernel, available_kernels, KernelKind, TileConfig};
pub use pool::WorkerPool;
pub use prepared::PreparedFilter;
pub use runtime::{run_accurate_cpu, EmulationReport};
pub use serve::{
    LatencyHistogram, RegistryStats, ServeConfig, ServeEngine, ServeError, ServeStats, SessionKey,
    SessionRegistry, TenantServeStats, Ticket,
};
pub use session::{Session, SessionBuilder};
pub use sweep::sweep_uniform;

/// Everything a session-driven caller needs, in one import.
///
/// ```
/// use tfapprox::prelude::*;
/// let _ = Session::builder().backend(Backend::CpuGemm);
/// ```
pub mod prelude {
    pub use crate::accumulator::Accumulator;
    pub use crate::assignment::Assignment;
    pub use crate::compile::{compile_netlist, CompileRequest, CompiledMultiplier};
    pub use crate::context::{Backend, EmuContext};
    pub use crate::error::Error;
    pub use crate::kernel::{available_kernels, KernelKind, TileConfig};
    pub use crate::pool::WorkerPool;
    pub use crate::runtime::EmulationReport;
    pub use crate::serve::{
        ServeConfig, ServeEngine, ServeError, ServeStats, SessionKey, SessionRegistry,
        TenantServeStats, Ticket,
    };
    pub use crate::session::{Session, SessionBuilder};
    pub use crate::sweep::sweep_uniform;
    pub use axmult::{AxMultiplier, Signedness};
}
