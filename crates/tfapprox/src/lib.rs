//! **tfapprox** — fast emulation of DNN approximate hardware accelerators.
//!
//! A Rust reproduction of Vaverka, Mrazek, Vasicek, Sekanina: *TFApprox:
//! Towards a Fast Emulation of DNN Approximate Hardware Accelerators on
//! GPU* (DATE 2020). The paper's problem: evaluating a candidate
//! approximate multiplier inside a DNN accelerator requires emulating it in
//! software, which is 2–3 orders of magnitude slower than native float
//! inference. Its solution: express the quantized convolution through the
//! affine-quantization algebra (Eq. 1–4), emulate the 8×8 multiplier as a
//! 256×256 look-up table, and run a GEMM-formulated convolution on a GPU
//! with the LUT in texture memory.
//!
//! This crate is the paper's contribution layer:
//!
//! - [`AxConv2D`]: the approximate 2D convolution operator — reads
//!   floating-point tensors, quantizes per Eq. 1, multiplies through the
//!   LUT, accumulates, and dequantizes with the Eq. 4 correction so its
//!   output range matches the accurate layer,
//! - [`Backend`]: where the emulation runs — `CpuDirect` (the nested-loop
//!   approach of ALWANN \[12\]), `CpuGemm` (optimized im2col + GEMM on
//!   host threads), or `GpuSim` (Algorithm 1 on the simulated
//!   CUDA-capable device from [`gpusim`]),
//! - [`PreparedFilter`]: the prepared-execution plan — every
//!   layer-invariant artifact (quantized filter bytes in both GEMM
//!   layouts, logical integer taps, per-channel parameters, `Sf` sums)
//!   built once per layer and reused by all backends, so repeated
//!   inference quantizes each filter bank exactly once,
//! - [`WorkerPool`]: the persistent host worker pool the GEMM backend
//!   runs on (no per-chunk thread spawning),
//! - [`flow`]: the design flow — take a trained graph, replace every
//!   `Conv2D` by `AxConv2D`, inserting `Min`/`Max` observers (Fig. 1),
//! - [`runtime`]: batch-wise inference with `tinit + tcomp` accounting,
//! - [`perfmodel`]: the calibrated extrapolation that regenerates Table I
//!   and Fig. 2 at the paper's full 10⁴-image scale.
//!
//! # Quickstart
//!
//! ```
//! use axmult::catalog;
//! use axnn::resnet::ResNetConfig;
//! use tfapprox::{flow, Backend, EmuContext};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A trained model and a candidate approximate multiplier.
//! let graph = ResNetConfig::with_depth(8)?.build(42)?;
//! let mult = catalog::by_name("mul8s_bam_v8h0")?;
//!
//! // Replace Conv2D -> AxConv2D (Fig. 1) and run on the simulated GPU.
//! let ctx = Arc::new(EmuContext::new(Backend::GpuSim));
//! let (ax_graph, replaced) = flow::approximate_graph(&graph, &mult, &ctx)?;
//! assert_eq!(replaced, 7);
//!
//! let input = axtensor::rng::uniform(axnn::resnet::cifar_input_shape(2), 1, -1.0, 1.0);
//! let probs = ax_graph.forward(&input)?;
//! assert_eq!(probs.shape().c, 10);
//! # Ok(())
//! # }
//! ```

pub mod accumulator;
pub mod axconv2d;
pub mod axdense;
pub mod backend;
pub mod context;
pub mod flow;
pub mod perfmodel;
pub mod pool;
pub mod prepared;
pub mod runtime;

mod error;

pub use accumulator::Accumulator;
pub use axconv2d::AxConv2D;
pub use axdense::AxDense;
pub use context::{Backend, EmuContext};
pub use error::EmuError;
pub use pool::WorkerPool;
pub use prepared::PreparedFilter;
pub use runtime::EmulationReport;
