//! The serving layer: a batched throughput engine over a compiled
//! [`Session`].
//!
//! PRs 2–4 made one `Session::infer` call fast; this module lets many
//! concurrent callers share that speed. A [`ServeEngine`] wraps an
//! `Arc<Session>` behind a bounded submission queue: requests arriving
//! within a configurable window/size budget are coalesced into one
//! micro-batch, executed through **one** [`Session::infer_batches`] call
//! by a shard worker, and split back into per-request responses delivered
//! over oneshot channels. The queue is bounded with an explicit
//! backpressure error ([`ServeError::Overloaded`]) — a request is never
//! silently dropped.
//!
//! # Determinism
//!
//! A request's output is **bit-identical** whether it ran solo, in any
//! batch composition, or on any shard. This is by construction: a
//! micro-batch keeps one tensor per request and `infer_batches` runs the
//! graph once per tensor, so each request sees exactly the forward pass
//! `Session::infer` would have given it. Requests are deliberately *not*
//! fused into one batch tensor: the transformed graph's `Min`/`Max`
//! observers reduce over the whole input tensor ("determined once per a
//! batch"), so fusing two callers' data would cross-contaminate their
//! quantization ranges and change their bits.

#![deny(missing_docs)]

use crate::pool::WorkerPool;
use crate::{Error, Session};
use axtensor::Tensor;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One queue-poll tick: how long a shard worker holding a partial batch
/// waits for further arrivals before re-checking the queue.
/// [`ServeConfig::flush_ticks`] is expressed in multiples of this.
pub const QUEUE_POLL_TICK: Duration = Duration::from_micros(200);

/// A serving-engine rejection. Every request outcome is explicit: a
/// request is either answered with its output tensor or with one of these
/// errors — never silently dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The bounded submission queue was full — the request was shed at
    /// submission time (explicit backpressure). Carries the configured
    /// queue depth the caller collided with.
    Overloaded {
        /// The configured [`ServeConfig::queue_depth`] that was full.
        depth: usize,
    },
    /// The engine is shutting down and no longer accepts submissions.
    ShuttingDown,
    /// The batch this request was part of failed to execute, or the
    /// response channel was severed; the message carries the underlying
    /// failure.
    Failed(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth } => {
                write!(f, "request shed: submission queue full ({depth} requests)")
            }
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
            ServeError::Failed(msg) => write!(f, "batch execution failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Configuration of a [`ServeEngine`].
///
/// # Example
///
/// ```
/// use tfapprox::serve::ServeConfig;
/// let cfg = ServeConfig::new()
///     .with_max_batch_images(16)
///     .with_flush_ticks(2)
///     .with_shards(2)
///     .with_queue_depth(512);
/// assert_eq!(cfg.max_batch_images(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    max_batch_images: usize,
    flush_ticks: usize,
    shards: usize,
    queue_depth: usize,
}

impl ServeConfig {
    /// The default configuration: up to 32 images per micro-batch, a
    /// 2-tick flush window, one shard, and a 256-request queue.
    #[must_use]
    pub fn new() -> Self {
        ServeConfig {
            max_batch_images: 32,
            flush_ticks: 2,
            shards: 1,
            queue_depth: 256,
        }
    }

    /// Image budget of one micro-batch: a shard stops coalescing once the
    /// batch holds at least this many images. A single request larger
    /// than the budget still runs (as a batch of its own).
    #[must_use]
    pub fn with_max_batch_images(mut self, max_batch_images: usize) -> Self {
        self.max_batch_images = max_batch_images;
        self
    }

    /// Flush window, in queue-poll ticks of [`QUEUE_POLL_TICK`]: how many
    /// ticks a shard holding a partial batch waits for further arrivals
    /// before flushing it. `0` flushes as soon as the queue runs dry.
    #[must_use]
    pub fn with_flush_ticks(mut self, flush_ticks: usize) -> Self {
        self.flush_ticks = flush_ticks;
        self
    }

    /// Number of shard workers forming and executing micro-batches
    /// concurrently (each holds the shared session; outputs are
    /// shard-invariant).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Bound of the submission queue, in requests. Submissions beyond it
    /// are shed with [`ServeError::Overloaded`].
    #[must_use]
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// The micro-batch image budget.
    #[must_use]
    pub fn max_batch_images(&self) -> usize {
        self.max_batch_images
    }

    /// The flush window in queue-poll ticks.
    #[must_use]
    pub fn flush_ticks(&self) -> usize {
        self.flush_ticks
    }

    /// The shard-worker count.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The submission-queue bound in requests.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// Reject configurations that would deadlock or process nothing.
    fn validate(&self) -> Result<(), Error> {
        if self.max_batch_images == 0 {
            return Err(Error::Config(
                "serve max_batch_images must be positive (got 0)".to_owned(),
            ));
        }
        if self.shards == 0 {
            return Err(Error::Config(
                "serve shards must be positive (got 0)".to_owned(),
            ));
        }
        if self.queue_depth == 0 {
            return Err(Error::Config(
                "serve queue_depth must be positive (got 0)".to_owned(),
            ));
        }
        Ok(())
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time snapshot of the engine's counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeStats {
    /// Micro-batches formed and executed.
    pub batches: u64,
    /// Requests answered (successfully or with a batch failure).
    pub requests: u64,
    /// Images answered across all requests.
    pub images: u64,
    /// Requests shed at submission time (queue full).
    pub shed: u64,
    /// Mean requests per micro-batch (`requests / batches`; 0.0 before
    /// the first batch). Occupancy above 1 means coalescing is happening.
    pub mean_occupancy: f64,
    /// Sustained serving throughput: images answered per second of shard
    /// busy time (time spent inside `infer_batches`, summed over shards).
    /// Idle gaps between batches do not dilute it.
    pub images_per_second: f64,
}

/// One queued request: the input tensor and the oneshot responder.
struct Request {
    input: Tensor<f32>,
    responder: mpsc::SyncSender<Result<Tensor<f32>, Error>>,
}

struct ServeQueue {
    requests: VecDeque<Request>,
    shutdown: bool,
}

/// State shared between the engine handle and its shard workers.
struct Shared {
    session: Arc<Session>,
    config: ServeConfig,
    queue: Mutex<ServeQueue>,
    arrival: Condvar,
    batches: AtomicU64,
    requests: AtomicU64,
    images: AtomicU64,
    shed: AtomicU64,
    busy_nanos: AtomicU64,
}

impl Shared {
    /// Form the next micro-batch: pop a first request, then coalesce
    /// further arrivals until the image budget is met or the flush window
    /// expires. Returns `None` when the engine is shut down *and* the
    /// queue is drained — pending requests are always served first.
    fn next_batch(&self) -> Option<Vec<Request>> {
        let mut q = self.queue.lock().expect("serve queue");
        loop {
            if let Some(first) = q.requests.pop_front() {
                let mut images = first.input.shape().n;
                let mut batch = vec![first];
                let mut ticks_left = self.config.flush_ticks;
                while images < self.config.max_batch_images {
                    if let Some(next) = q.requests.pop_front() {
                        images += next.input.shape().n;
                        batch.push(next);
                        continue;
                    }
                    if ticks_left == 0 || q.shutdown {
                        break;
                    }
                    let (guard, timeout) = self
                        .arrival
                        .wait_timeout(q, QUEUE_POLL_TICK)
                        .expect("serve wait");
                    q = guard;
                    if timeout.timed_out() {
                        ticks_left -= 1;
                    }
                }
                return Some(batch);
            }
            if q.shutdown {
                return None;
            }
            q = self.arrival.wait(q).expect("serve wait");
        }
    }

    /// Run one micro-batch through the session and deliver per-request
    /// responses. A failed — or even panicking — batch answers every
    /// member with [`ServeError::Failed`] and leaves the shard alive for
    /// the next batch: never a silent drop, never a dead engine.
    fn execute(&self, batch: Vec<Request>) {
        let (inputs, responders): (Vec<Tensor<f32>>, Vec<_>) =
            batch.into_iter().map(|r| (r.input, r.responder)).unzip();
        let images: usize = inputs.iter().map(|t| t.shape().n).sum();
        let t0 = Instant::now();
        // A panic escaping here would unwind the whole shard loop: the
        // pool's catch would keep the *thread* alive but the loop job
        // would be gone, and with one shard every later accepted request
        // would hang forever. Contain it at the batch boundary instead.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.session.infer_batches(&inputs)
        }));
        self.busy_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.requests
            .fetch_add(responders.len() as u64, Ordering::Relaxed);
        self.images.fetch_add(images as u64, Ordering::Relaxed);
        match result {
            Ok(Ok((outputs, _report))) => {
                debug_assert_eq!(outputs.len(), responders.len());
                for (out, tx) in outputs.into_iter().zip(responders) {
                    // A dropped Ticket is the receiver's choice, not a
                    // lost response; ignore the send error.
                    let _ = tx.send(Ok(out));
                }
            }
            Ok(Err(e)) => {
                let msg = e.to_string();
                for tx in responders {
                    let _ = tx.send(Err(ServeError::Failed(msg.clone()).into()));
                }
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "batch execution panicked".to_owned());
                let msg = format!("panic: {msg}");
                for tx in responders {
                    let _ = tx.send(Err(ServeError::Failed(msg.clone()).into()));
                }
            }
        }
    }

    fn shard_loop(&self) {
        while let Some(batch) = self.next_batch() {
            self.execute(batch);
        }
    }
}

/// A pending response: wait on it to receive the request's output.
///
/// Each submitted request gets exactly one ticket and each ticket
/// resolves exactly once — to the output tensor or to an explicit
/// [`ServeError`].
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Tensor<f32>, Error>>,
}

impl Ticket {
    /// Block until the response arrives.
    ///
    /// # Errors
    ///
    /// Returns the engine's explicit per-request error — a failed batch,
    /// or a severed response channel (a shard panicked mid-batch).
    pub fn wait(self) -> Result<Tensor<f32>, Error> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(ServeError::Failed("response channel severed".into()).into()))
    }

    /// Block until the response arrives or `timeout` elapses (useful for
    /// watchdogs around the engine).
    ///
    /// # Errors
    ///
    /// As [`Ticket::wait`], or [`ServeError::Failed`] on timeout.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Tensor<f32>, Error> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                Err(ServeError::Failed(format!("no response within {timeout:?}")).into())
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Err(ServeError::Failed("response channel severed".into()).into())
            }
        }
    }
}

/// A multi-threaded serving engine over a compiled [`Session`].
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use tfapprox::prelude::*;
/// use tfapprox::serve::{ServeConfig, ServeEngine};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = axnn::resnet::ResNetConfig::with_depth(8)?.build(42)?;
/// let mult = axmult::catalog::by_name("mul8s_exact")?;
/// let session = Arc::new(
///     Session::builder()
///         .backend(Backend::CpuGemm)
///         .multiplier(&mult)
///         .compile(&graph)?,
/// );
/// let engine = ServeEngine::new(Arc::clone(&session), ServeConfig::new())?;
///
/// let input = axtensor::rng::uniform(axnn::resnet::cifar_input_shape(1), 7, -1.0, 1.0);
/// let served = engine.infer(input.clone())?;
/// assert_eq!(served, session.infer(&input)?); // bit-identical to solo
/// # Ok(())
/// # }
/// ```
pub struct ServeEngine {
    shared: Arc<Shared>,
    /// The shard workers live on a dedicated pool; `Drop` shuts the queue
    /// down first, so the pool's own shutdown can join them.
    pool: WorkerPool,
}

impl fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeEngine")
            .field("config", &self.shared.config)
            .field("shards", &self.pool.threads())
            .finish_non_exhaustive()
    }
}

impl ServeEngine {
    /// Start the engine: validate `config` and launch its shard workers.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] for a zero batch budget, shard count, or
    /// queue depth.
    pub fn new(session: Arc<Session>, config: ServeConfig) -> Result<Self, Error> {
        config.validate()?;
        let shared = Arc::new(Shared {
            session,
            config,
            queue: Mutex::new(ServeQueue {
                requests: VecDeque::new(),
                shutdown: false,
            }),
            arrival: Condvar::new(),
            batches: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            images: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
        });
        let pool = WorkerPool::new(config.shards);
        for _ in 0..config.shards {
            let shard = Arc::clone(&shared);
            pool.submit(Box::new(move || shard.shard_loop()));
        }
        Ok(ServeEngine { shared, pool })
    }

    /// The configuration the engine runs with.
    #[must_use]
    pub fn config(&self) -> ServeConfig {
        self.shared.config
    }

    /// The compiled session the engine serves.
    #[must_use]
    pub fn session(&self) -> &Arc<Session> {
        &self.shared.session
    }

    /// Submit one request (a batch tensor of zero or more images) and get
    /// a [`Ticket`] for its response.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Overloaded`] (wrapped in [`Error::Serve`])
    /// if the bounded queue is full — explicit backpressure at submission
    /// time — or [`ServeError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, input: Tensor<f32>) -> Result<Ticket, Error> {
        let (tx, rx) = mpsc::sync_channel(1);
        {
            let mut q = self.shared.queue.lock().expect("serve queue");
            if q.shutdown {
                return Err(ServeError::ShuttingDown.into());
            }
            if q.requests.len() >= self.shared.config.queue_depth {
                self.shared.shed.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded {
                    depth: self.shared.config.queue_depth,
                }
                .into());
            }
            q.requests.push_back(Request {
                input,
                responder: tx,
            });
        }
        self.shared.arrival.notify_all();
        Ok(Ticket { rx })
    }

    /// Submit one request and block for its response — the synchronous
    /// convenience over [`ServeEngine::submit`] + [`Ticket::wait`].
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::submit`] and [`Ticket::wait`].
    pub fn infer(&self, input: Tensor<f32>) -> Result<Tensor<f32>, Error> {
        self.submit(input)?.wait()
    }

    /// Snapshot the engine's counters.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        let batches = self.shared.batches.load(Ordering::Relaxed);
        let requests = self.shared.requests.load(Ordering::Relaxed);
        let images = self.shared.images.load(Ordering::Relaxed);
        let busy_s = self.shared.busy_nanos.load(Ordering::Relaxed) as f64 / 1e9;
        ServeStats {
            batches,
            requests,
            images,
            shed: self.shared.shed.load(Ordering::Relaxed),
            mean_occupancy: if batches == 0 {
                0.0
            } else {
                requests as f64 / batches as f64
            },
            images_per_second: if busy_s > 0.0 {
                images as f64 / busy_s
            } else {
                0.0
            },
        }
    }
}

impl Drop for ServeEngine {
    /// Graceful shutdown: refuse new submissions, let the shard workers
    /// drain and answer every pending request, then join them (via the
    /// pool's own shutdown, which runs after this body).
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("serve queue");
            q.shutdown = true;
        }
        self.shared.arrival.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, Session};
    use axnn::layers::{Conv2D, ReLU};
    use axnn::Graph;
    use axtensor::{rng, ConvGeometry, FilterShape, Shape4};

    /// A tiny two-conv graph: fast enough for debug-mode tests while
    /// still exercising the transform (two AxConv2D + observers).
    fn tiny_session() -> Arc<Session> {
        let mut g = Graph::new();
        let x = g.input();
        let f1 = rng::uniform_filter(FilterShape::new(3, 3, 2, 3), 11, -0.5, 0.5);
        let c1 = g
            .add(
                "conv1",
                Arc::new(Conv2D::new(f1, ConvGeometry::default())),
                &[x],
            )
            .unwrap();
        let r1 = g.add("relu1", Arc::new(ReLU::new()), &[c1]).unwrap();
        let f2 = rng::uniform_filter(FilterShape::new(3, 3, 3, 2), 12, -0.5, 0.5);
        let c2 = g
            .add(
                "conv2",
                Arc::new(Conv2D::new(f2, ConvGeometry::default())),
                &[r1],
            )
            .unwrap();
        g.set_output(c2).unwrap();
        let mult = axmult::catalog::by_name("mul8s_exact").unwrap();
        Arc::new(
            Session::builder()
                .backend(Backend::CpuGemm)
                .chunk_size(4)
                .threads(2)
                .multiplier(&mult)
                .compile(&g)
                .unwrap(),
        )
    }

    fn input(seed: u64, n: usize) -> Tensor<f32> {
        rng::uniform(Shape4::new(n, 5, 5, 2), seed, -1.0, 1.0)
    }

    #[test]
    fn config_validation_rejects_zeros() {
        let session = tiny_session();
        for cfg in [
            ServeConfig::new().with_max_batch_images(0),
            ServeConfig::new().with_shards(0),
            ServeConfig::new().with_queue_depth(0),
        ] {
            let err = ServeEngine::new(Arc::clone(&session), cfg).unwrap_err();
            assert!(matches!(err, Error::Config(_)), "{err}");
        }
    }

    #[test]
    fn served_response_is_bit_identical_to_solo_infer() {
        let session = tiny_session();
        let engine = ServeEngine::new(Arc::clone(&session), ServeConfig::new()).unwrap();
        for seed in 0..4 {
            let x = input(seed, 2);
            let served = engine.infer(x.clone()).unwrap();
            assert_eq!(served, session.infer(&x).unwrap(), "seed {seed}");
        }
        let stats = engine.stats();
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.images, 8);
        assert_eq!(stats.shed, 0);
        assert!(stats.batches >= 1);
        assert!(stats.images_per_second > 0.0);
    }

    #[test]
    fn coalescing_batches_queued_requests() {
        let session = tiny_session();
        // One shard and a generous flush window: requests submitted
        // before the first wait elapses coalesce into few batches.
        let engine = ServeEngine::new(
            Arc::clone(&session),
            ServeConfig::new()
                .with_max_batch_images(8)
                .with_flush_ticks(50),
        )
        .unwrap();
        let tickets: Vec<Ticket> = (0..8)
            .map(|s| engine.submit(input(s, 1)).unwrap())
            .collect();
        for (s, t) in tickets.into_iter().enumerate() {
            let out = t.wait().unwrap();
            assert_eq!(out, session.infer(&input(s as u64, 1)).unwrap());
        }
        let stats = engine.stats();
        assert_eq!(stats.requests, 8);
        assert!(
            stats.batches < 8,
            "expected coalescing, got {} batches for 8 requests",
            stats.batches
        );
        assert!(stats.mean_occupancy > 1.0);
    }

    #[test]
    fn full_queue_sheds_with_explicit_error() {
        let session = tiny_session();
        let engine = ServeEngine::new(
            Arc::clone(&session),
            ServeConfig::new()
                .with_queue_depth(2)
                .with_max_batch_images(1)
                .with_shards(1),
        )
        .unwrap();
        // A large first request keeps the single shard busy while the
        // queue fills behind it.
        let busy = engine.submit(input(99, 32)).unwrap();
        let mut held = Vec::new();
        let mut shed = 0usize;
        for s in 0..12 {
            match engine.submit(input(s, 1)) {
                Ok(t) => held.push((s, t)),
                Err(Error::Serve(ServeError::Overloaded { depth })) => {
                    assert_eq!(depth, 2);
                    shed += 1;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(shed > 0, "queue depth 2 must shed under a burst of 12");
        assert!(engine.stats().shed >= shed as u64);
        // Every accepted request still resolves, bit-identically.
        assert!(busy.wait().is_ok());
        for (s, t) in held {
            assert_eq!(t.wait().unwrap(), session.infer(&input(s, 1)).unwrap());
        }
    }

    #[test]
    fn drop_drains_pending_requests() {
        let session = tiny_session();
        let engine = ServeEngine::new(
            Arc::clone(&session),
            ServeConfig::new().with_max_batch_images(4),
        )
        .unwrap();
        let tickets: Vec<(u64, Ticket)> = (0..6)
            .map(|s| (s, engine.submit(input(s, 1)).unwrap()))
            .collect();
        drop(engine); // graceful: answers everything before joining
        for (s, t) in tickets {
            assert_eq!(t.wait().unwrap(), session.infer(&input(s, 1)).unwrap());
        }
    }

    #[test]
    fn zero_image_request_resolves_with_shaped_empty_output() {
        let session = tiny_session();
        let engine = ServeEngine::new(Arc::clone(&session), ServeConfig::new()).unwrap();
        let out = engine.infer(input(1, 0)).unwrap();
        assert_eq!(out.shape().n, 0);
        assert_eq!(out, session.infer(&input(1, 0)).unwrap());
        let stats = engine.stats();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.images, 0);
    }

    #[test]
    fn oversized_request_still_runs_as_its_own_batch() {
        let session = tiny_session();
        let engine = ServeEngine::new(
            Arc::clone(&session),
            ServeConfig::new().with_max_batch_images(2),
        )
        .unwrap();
        let x = input(5, 7); // far over the 2-image budget
        assert_eq!(engine.infer(x.clone()).unwrap(), session.infer(&x).unwrap());
    }

    #[test]
    fn failed_batch_answers_every_member_and_engine_survives() {
        let session = tiny_session();
        let engine = ServeEngine::new(
            Arc::clone(&session),
            ServeConfig::new()
                .with_shards(1)
                .with_max_batch_images(8)
                .with_flush_ticks(20),
        )
        .unwrap();
        // A request whose channel count mismatches the graph: the whole
        // micro-batch it lands in fails, and every member must hear so.
        let bad = Tensor::<f32>::zeros(Shape4::new(1, 5, 5, 7));
        let t_bad = engine.submit(bad).unwrap();
        let err = t_bad.wait().unwrap_err();
        assert!(matches!(err, Error::Serve(ServeError::Failed(_))), "{err}");
        // The single shard is still alive and serving correctly.
        let x = input(21, 2);
        assert_eq!(engine.infer(x.clone()).unwrap(), session.infer(&x).unwrap());
    }

    #[test]
    fn panicking_batch_answers_failed_and_engine_survives() {
        use axnn::layer::Layer;
        use axnn::NnError;

        /// A layer that panics when any forwarded tensor holds a negative
        /// value — a stand-in for an internal invariant violation.
        #[derive(Debug)]
        struct PanicOnNegative;
        impl Layer for PanicOnNegative {
            fn op_name(&self) -> &str {
                "PanicOnNegative"
            }
            fn output_shape(&self, inputs: &[Shape4]) -> Result<Shape4, NnError> {
                Ok(inputs[0])
            }
            fn forward(&self, inputs: &[&Tensor<f32>]) -> Result<Tensor<f32>, NnError> {
                assert!(
                    inputs[0].as_slice().iter().all(|&v| v >= 0.0),
                    "negative activation"
                );
                Ok(inputs[0].clone())
            }
        }

        let mut g = Graph::new();
        let x = g.input();
        let trap = g.add("trap", Arc::new(PanicOnNegative), &[x]).unwrap();
        let f = rng::uniform_filter(FilterShape::new(3, 3, 2, 2), 5, -0.5, 0.5);
        let c = g
            .add(
                "conv",
                Arc::new(Conv2D::new(f, ConvGeometry::default())),
                &[trap],
            )
            .unwrap();
        g.set_output(c).unwrap();
        let mult = axmult::catalog::by_name("mul8s_exact").unwrap();
        let session = Arc::new(
            Session::builder()
                .backend(Backend::CpuGemm)
                .multiplier(&mult)
                .compile(&g)
                .unwrap(),
        );
        let engine =
            ServeEngine::new(Arc::clone(&session), ServeConfig::new().with_shards(1)).unwrap();

        // A panicking batch must answer with an explicit Failed error…
        let poison = Tensor::<f32>::full(Shape4::new(1, 5, 5, 2), -1.0);
        let err = engine.infer(poison).unwrap_err();
        match &err {
            Error::Serve(ServeError::Failed(msg)) => {
                assert!(msg.contains("panic"), "{msg}")
            }
            other => panic!("expected Failed, got {other}"),
        }
        // …and the single shard must keep serving afterwards.
        let ok = Tensor::<f32>::full(Shape4::new(1, 5, 5, 2), 0.5);
        assert_eq!(
            engine.infer(ok.clone()).unwrap(),
            session.infer(&ok).unwrap()
        );
    }

    #[test]
    fn serve_error_display_names_the_cause() {
        assert!(ServeError::Overloaded { depth: 8 }
            .to_string()
            .contains("queue full (8"));
        assert!(ServeError::ShuttingDown.to_string().contains("shutting"));
        let e: Error = ServeError::Failed("boom".into()).into();
        assert!(e.to_string().contains("boom"), "{e}");
    }
}
