//! Accumulator models for the emulated MAC datapath.
//!
//! The paper's accelerator uses "a MAC unit consisting of an 8-bit
//! multiplier and 32-bit accumulator"; its GPU kernel accumulates in
//! 32-bit float. A 32-bit integer accumulator never overflows for the
//! layer sizes here (|product| ≤ 2¹⁴, patch lengths ≤ a few thousand), but
//! *narrower* accumulators — a standard further approximation knob in
//! accelerator design — clip or wrap. This module models that choice so
//! the emulator can also explore accumulator-width reduction.

use serde::{Deserialize, Serialize};

/// How partial products are accumulated in the emulated MAC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Accumulator {
    /// Exact wide accumulation (`i64`) — the reference, and equivalent to
    /// the paper's 32-bit accumulator for all workloads in this repo.
    #[default]
    Exact,
    /// Saturating two's-complement accumulator of the given bit width:
    /// sums clamp at `±(2^(bits−1) − 1)`.
    Saturating(u32),
    /// Wrapping two's-complement accumulator of the given bit width.
    Wrapping(u32),
}

impl Accumulator {
    /// Fold one addend into the running sum under this model.
    #[inline]
    #[must_use]
    pub fn add(self, acc: i64, addend: i64) -> i64 {
        match self {
            Accumulator::Exact => acc + addend,
            Accumulator::Saturating(bits) => {
                let hi = (1i64 << (bits - 1)) - 1;
                let lo = -(1i64 << (bits - 1));
                (acc + addend).clamp(lo, hi)
            }
            Accumulator::Wrapping(bits) => {
                let m = 1i64 << bits;
                let v = (acc + addend).rem_euclid(m);
                if v >= m / 2 {
                    v - m
                } else {
                    v
                }
            }
        }
    }

    /// Whether this model can deviate from exact accumulation for sums
    /// bounded by `max_abs`.
    #[must_use]
    pub fn can_deviate(self, max_abs: i64) -> bool {
        match self {
            Accumulator::Exact => false,
            Accumulator::Saturating(bits) | Accumulator::Wrapping(bits) => {
                max_abs >= (1i64 << (bits - 1))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_is_plain_addition() {
        let a = Accumulator::Exact;
        assert_eq!(a.add(10, -3), 7);
        assert_eq!(a.add(i64::from(i32::MAX), 1), i64::from(i32::MAX) + 1);
    }

    #[test]
    fn saturating_clamps_both_ends() {
        let a = Accumulator::Saturating(8); // [-128, 127]
        assert_eq!(a.add(120, 50), 127);
        assert_eq!(a.add(-120, -50), -128);
        assert_eq!(a.add(10, 5), 15);
    }

    #[test]
    fn wrapping_wraps_two_complement() {
        let a = Accumulator::Wrapping(8);
        assert_eq!(a.add(120, 10), -126); // 130 - 256
        assert_eq!(a.add(-120, -10), 126); // -130 + 256
        assert_eq!(a.add(1, 1), 2);
    }

    #[test]
    fn wide_accumulators_never_deviate_for_conv_sums() {
        // Largest possible |sum| here: 4096 taps x 16384 < 2^26.
        let max = 4096i64 * 16384;
        assert!(!Accumulator::Saturating(32).can_deviate(max));
        assert!(!Accumulator::Wrapping(32).can_deviate(max));
        assert!(Accumulator::Saturating(20).can_deviate(max));
    }

    #[test]
    fn running_saturation_is_order_dependent_but_bounded() {
        let a = Accumulator::Saturating(8);
        let mut acc = 0i64;
        for v in [100, 100, -150] {
            acc = a.add(acc, v);
        }
        // 100 -> 127 (clamp) -> -23: differs from the exact 50, but stays
        // in range — the hardware behaviour.
        assert_eq!(acc, -23);
        assert!((-128..=127).contains(&acc));
    }
}
