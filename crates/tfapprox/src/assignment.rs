//! Per-layer multiplier assignments for compiled sessions.

#![deny(missing_docs)]

use crate::Error;
use axmult::AxMultiplier;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Kind {
    /// One multiplier for every convolution layer.
    Uniform(AxMultiplier),
    /// Exactly one multiplier per convolution layer, in topological order.
    PerLayer(Vec<AxMultiplier>),
}

/// Which approximate multiplier each convolution layer emulates.
///
/// The ALWANN use case the paper cites as its CPU predecessor \[12\]
/// assigns a *different* multiplier to each layer: early layers are
/// error-sensitive, deep layers tolerate rough multipliers, so mixed
/// assignments dominate uniform ones on the accuracy/power Pareto front.
/// An `Assignment` expresses both styles — a uniform base, optionally
/// overridden per layer, or a full per-layer vector — and is resolved
/// against a graph's convolution-layer list (in topological order, the
/// order of [`axnn::Graph::conv_layers`]) when a session compiles.
///
/// # Example
///
/// ```
/// use tfapprox::Assignment;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let precise = axmult::catalog::by_name("mul8s_exact")?;
/// let rough = axmult::catalog::by_name("mul8s_bam_v8h0")?;
///
/// // Rough everywhere except the error-sensitive stem (layer 0).
/// let assignment = Assignment::uniform(rough).with_layer(0, precise);
/// let per_layer = assignment.resolve(7)?;
/// assert_eq!(per_layer[0].name(), "mul8s_exact");
/// assert_eq!(per_layer[6].name(), "mul8s_bam_v8h0");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Assignment {
    kind: Kind,
    overrides: BTreeMap<usize, AxMultiplier>,
}

impl Assignment {
    /// The same multiplier for every convolution layer — the paper's
    /// Fig. 1 design flow.
    #[must_use]
    pub fn uniform(mult: AxMultiplier) -> Self {
        Assignment {
            kind: Kind::Uniform(mult),
            overrides: BTreeMap::new(),
        }
    }

    /// Exactly one multiplier per convolution layer, in topological
    /// order. [`Assignment::resolve`] rejects the assignment unless the
    /// length matches the graph's convolution-layer count.
    #[must_use]
    pub fn per_layer(mults: Vec<AxMultiplier>) -> Self {
        Assignment {
            kind: Kind::PerLayer(mults),
            overrides: BTreeMap::new(),
        }
    }

    /// [`Assignment::uniform`] by multiplier name, resolved through
    /// [`axmult::catalog::by_name`] — built-in catalog entries first, then
    /// the process-wide registry of compiled multipliers.
    ///
    /// # Errors
    ///
    /// Returns the lookup error (with its "did you mean" suggestion) for
    /// an unknown name.
    pub fn uniform_named(name: &str) -> Result<Self, Error> {
        Ok(Assignment::uniform(axmult::catalog::by_name(name)?))
    }

    /// [`Assignment::per_layer`] by multiplier names, in topological
    /// order, each resolved through [`axmult::catalog::by_name`].
    ///
    /// # Errors
    ///
    /// Returns the lookup error of the first unknown name.
    pub fn per_layer_named<S: AsRef<str>>(names: &[S]) -> Result<Self, Error> {
        let mults = names
            .iter()
            .map(|n| axmult::catalog::by_name(n.as_ref()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Assignment::per_layer(mults))
    }

    /// [`Assignment::with_layer`] by multiplier name, resolved through
    /// [`axmult::catalog::by_name`].
    ///
    /// # Errors
    ///
    /// Returns the lookup error for an unknown name (the assignment built
    /// so far is dropped).
    pub fn with_layer_named(self, layer: usize, name: &str) -> Result<Self, Error> {
        Ok(self.with_layer(layer, axmult::catalog::by_name(name)?))
    }

    /// Override the multiplier of one layer (0-based index into the
    /// graph's convolution layers in topological order). Later calls for
    /// the same layer replace earlier ones.
    #[must_use]
    pub fn with_layer(mut self, layer: usize, mult: AxMultiplier) -> Self {
        self.overrides.insert(layer, mult);
        self
    }

    /// Resolve to one multiplier per convolution layer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] if a per-layer assignment's length
    /// differs from `conv_layers`, or an override index is out of range.
    pub fn resolve(&self, conv_layers: usize) -> Result<Vec<AxMultiplier>, Error> {
        let mut resolved = match &self.kind {
            Kind::Uniform(m) => vec![m.clone(); conv_layers],
            Kind::PerLayer(mults) => {
                if mults.len() != conv_layers {
                    return Err(Error::Config(format!(
                        "{} multipliers supplied for {conv_layers} convolution layers",
                        mults.len()
                    )));
                }
                mults.clone()
            }
        };
        for (&layer, mult) in &self.overrides {
            let Some(slot) = resolved.get_mut(layer) else {
                return Err(Error::Config(format!(
                    "layer override {layer} out of range: the graph has {conv_layers} \
                     convolution layers"
                )));
            };
            *slot = mult.clone();
        }
        Ok(resolved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact() -> AxMultiplier {
        axmult::catalog::by_name("mul8s_exact").unwrap()
    }

    fn rough() -> AxMultiplier {
        axmult::catalog::by_name("mul8s_bam_v8h0").unwrap()
    }

    #[test]
    fn uniform_resolves_to_count() {
        let a = Assignment::uniform(exact());
        let r = a.resolve(4).unwrap();
        assert_eq!(r.len(), 4);
        assert!(r.iter().all(|m| m.name() == "mul8s_exact"));
    }

    #[test]
    fn per_layer_count_checked() {
        let a = Assignment::per_layer(vec![exact(), rough()]);
        assert_eq!(a.resolve(2).unwrap().len(), 2);
        let err = a.resolve(3).unwrap_err();
        assert!(matches!(err, Error::Config(_)), "{err}");
    }

    #[test]
    fn overrides_apply_and_range_check() {
        let a = Assignment::uniform(rough()).with_layer(1, exact());
        let r = a.resolve(3).unwrap();
        assert_eq!(r[0].name(), "mul8s_bam_v8h0");
        assert_eq!(r[1].name(), "mul8s_exact");
        assert_eq!(r[2].name(), "mul8s_bam_v8h0");

        let bad = Assignment::uniform(rough()).with_layer(3, exact());
        let err = bad.resolve(3).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn named_constructors_resolve_catalog_and_registry() {
        let a = Assignment::uniform_named("mul8s_bam_v8h0")
            .unwrap()
            .with_layer_named(0, "mul8s_exact")
            .unwrap();
        let r = a.resolve(2).unwrap();
        assert_eq!(r[0].name(), "mul8s_exact");
        assert_eq!(r[1].name(), "mul8s_bam_v8h0");

        let b = Assignment::per_layer_named(&["mul8s_exact", "mul8s_drum4"]).unwrap();
        let r = b.resolve(2).unwrap();
        assert_eq!(r[1].name(), "mul8s_drum4");

        // A registered multiplier is addressable the same way.
        axmult::registry::register(AxMultiplier::new(
            "asn_test_registered",
            "registry entry for assignment test",
            axmult::MulLut::exact(axmult::Signedness::Signed),
            None,
        ))
        .unwrap();
        let c = Assignment::uniform_named("asn_test_registered").unwrap();
        assert_eq!(c.resolve(1).unwrap()[0].name(), "asn_test_registered");
        axmult::registry::unregister("asn_test_registered");

        // Unknown names keep the did-you-mean treatment.
        let err = Assignment::uniform_named("mul8s_exakt").unwrap_err();
        assert!(err.to_string().contains("did you mean"), "{err}");
    }

    #[test]
    fn later_override_wins() {
        let a = Assignment::uniform(rough())
            .with_layer(0, exact())
            .with_layer(0, rough());
        let r = a.resolve(1).unwrap();
        assert_eq!(r[0].name(), "mul8s_bam_v8h0");
    }
}
