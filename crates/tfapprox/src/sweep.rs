//! Design-space sweep driver over [`Session::reassign`].
//!
//! The paper's evaluation loop (Table 1) walks an entire multiplier
//! catalog through one trained model. Compiling a fresh [`Session`] per
//! candidate would re-pay graph transformation and filter planning at
//! every point; [`Session::reassign`] already avoids that by transplanting
//! the cached plans of unchanged layers. This module packages the
//! remaining boilerplate: chain each sweep point off the previous one so
//! every step is a reassign (never a cold compile), and hand the caller a
//! ready session per candidate.
//!
//! ```
//! use tfapprox::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = axnn::resnet::ResNetConfig::with_depth(8)?.build(7)?;
//! let base = Session::builder()
//!     .backend(Backend::CpuGemm)
//!     .multiplier_named("mul8s_exact")
//!     .compile(&graph)?;
//! let points = [
//!     axmult::catalog::by_name("mul8s_exact")?,
//!     axmult::catalog::by_name("mul8s_bam_v8h0")?,
//! ];
//! let names = tfapprox::sweep::sweep_uniform(&base, &points, |mult, session| {
//!     assert_eq!(session.multipliers()[0].name(), mult.name());
//!     Ok(mult.name().to_owned())
//! })?;
//! assert_eq!(names, ["mul8s_exact", "mul8s_bam_v8h0"]);
//! # Ok(())
//! # }
//! ```

use crate::{Assignment, Error, Session};
use axmult::AxMultiplier;

/// Visit every multiplier in `mults` as a uniform assignment over `base`,
/// reassigning from the previously visited session so each point pays
/// only the plans its multiplier actually invalidates.
///
/// `visit` receives the candidate and its compiled session; its results
/// are collected in sweep order. The first visitor error aborts the sweep
/// and is returned as-is, so a caller can distinguish a broken candidate
/// from a broken harness.
///
/// The `base` session is never mutated — it stays valid (and keeps its
/// own multiplier) after the sweep, so interleaved sweeps over one
/// compiled model are cheap.
///
/// # Errors
///
/// Any [`Session::reassign`] failure (e.g. a signedness/quantization
/// mismatch for a candidate) or the first error returned by `visit`.
pub fn sweep_uniform<T>(
    base: &Session,
    mults: &[AxMultiplier],
    mut visit: impl FnMut(&AxMultiplier, &Session) -> Result<T, Error>,
) -> Result<Vec<T>, Error> {
    let mut out = Vec::with_capacity(mults.len());
    // Chain off the previous point: consecutive same-signedness candidates
    // transplant every layer plan instead of rebuilding from `base`.
    let mut prev: Option<Session> = None;
    for mult in mults {
        let session = prev
            .as_ref()
            .unwrap_or(base)
            .reassign(&Assignment::uniform(mult.clone()))?;
        out.push(visit(mult, &session)?);
        prev = Some(session);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, Session};
    use axnn::resnet::{cifar_input_shape, ResNetConfig};
    use axtensor::rng;

    fn base_session() -> Session {
        let graph = ResNetConfig::with_depth(8).unwrap().build(11).unwrap();
        Session::builder()
            .backend(Backend::CpuGemm)
            .multiplier_named("mul8s_exact")
            .compile(&graph)
            .unwrap()
    }

    #[test]
    fn sweep_visits_every_candidate_in_order() {
        let base = base_session();
        let mults = [
            axmult::catalog::by_name("mul8s_bam_v8h0").unwrap(),
            axmult::catalog::by_name("mul8s_exact").unwrap(),
            // Cross-signedness points force a rebuild instead of a
            // transplant; the driver must survive the mix.
            axmult::catalog::by_name("mul8u_trunc4").unwrap(),
        ];
        let seen = sweep_uniform(&base, &mults, |mult, session| {
            assert!(session
                .multipliers()
                .iter()
                .all(|m| m.name() == mult.name()));
            Ok(mult.name().to_owned())
        })
        .unwrap();
        assert_eq!(seen, ["mul8s_bam_v8h0", "mul8s_exact", "mul8u_trunc4"]);
        // The base session is untouched.
        assert_eq!(base.multipliers()[0].name(), "mul8s_exact");
    }

    #[test]
    fn swept_exact_point_matches_base_outputs() {
        let base = base_session();
        let input = rng::uniform(cifar_input_shape(2), 3, -1.0, 1.0);
        let (want, _) = base.infer_batches(std::slice::from_ref(&input)).unwrap();
        let mults = [
            axmult::catalog::by_name("mul8s_bam_v8h0").unwrap(),
            axmult::catalog::by_name("mul8s_exact").unwrap(),
        ];
        let outs = sweep_uniform(&base, &mults, |_, session| {
            let (got, _) = session.infer_batches(std::slice::from_ref(&input))?;
            Ok(got)
        })
        .unwrap();
        // Reaching exact *via* an approximate point is bit-identical to
        // the directly compiled exact session: transplant leaks nothing.
        assert_eq!(outs[1][0].as_slice(), want[0].as_slice());
        // And the approximate point genuinely differs.
        assert_ne!(outs[0][0].as_slice(), want[0].as_slice());
    }

    #[test]
    fn visitor_error_aborts_the_sweep() {
        let base = base_session();
        let mults = [
            axmult::catalog::by_name("mul8s_exact").unwrap(),
            axmult::catalog::by_name("mul8s_bam_v8h0").unwrap(),
        ];
        let mut visited = 0usize;
        let err = sweep_uniform(&base, &mults, |_, _| -> Result<(), Error> {
            visited += 1;
            Err(Error::Config("visitor bailed".into()))
        })
        .unwrap_err();
        assert!(err.to_string().contains("visitor bailed"), "{err}");
        assert_eq!(visited, 1, "sweep must stop at the first visitor error");
    }
}
