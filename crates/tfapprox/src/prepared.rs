//! The prepared-execution plan: layer-invariant quantization done once.
//!
//! Every backend needs the same filter-side artifacts on every forward
//! call — the per-channel `(α₂, β₂)` parameters, the quantized filter
//! bank (as logical integers for the direct path and as byte patterns for
//! the LUT-indexed GEMMs), and the per-channel column sums `Sf` of the
//! Eq. 4 correction. None of it depends on the input batch, yet the
//! pre-refactor backends recomputed all of it per call (and `run_gpusim`
//! even re-quantized per *chunk*). [`PreparedFilter`] hoists that work
//! into a plan built once per layer: [`crate::AxConv2D`] and
//! [`crate::AxDense`] build it lazily on first forward and reuse it for
//! every subsequent call, so repeated inference performs filter
//! quantization exactly once.

use axquant::{FilterQuantization, QuantParams};
use axtensor::{Filter, Matrix};
use gpusim::EventCounts;

/// Everything about a filter bank that is invariant across forward calls.
///
/// Layout invariant: all flat buffers are `K × c_out` row-major (`K` the
/// patch length), matching both the HWCF flat order of [`Filter`] and the
/// `[in, out]` row-major weights of a dense layer — column `c` is output
/// channel `c`, i.e. flat index `i` belongs to channel `i % c_out`.
#[derive(Debug, Clone)]
pub struct PreparedFilter {
    k: usize,
    c_out: usize,
    /// Per-output-channel quantization parameters (per-tensor sets are
    /// broadcast so backends never branch on the quantization flavour).
    col_q: Vec<QuantParams>,
    /// Logical quantized values, `K × c_out` row-major — the operand
    /// format of the nested-loop (ALWANN-style) backends.
    q_logical: Vec<i32>,
    /// 8-bit byte patterns (two's complement for signed LUTs), `K × c_out`
    /// row-major — the operand format of the simulated-GPU GEMM.
    f_bytes: Vec<u8>,
    /// The same bytes transposed to `c_out × K` (one contiguous run per
    /// output channel) — the operand format of the host GEMM's inner loop,
    /// where a per-channel dot product walks the whole patch.
    f_bytes_by_channel: Vec<u8>,
    /// Per-output-channel logical sums `Sf` of the Eq. 4 correction.
    sf: Vec<i64>,
    /// The quantization this plan was resolved from, kept so per-call
    /// spec construction can borrow it instead of re-deriving (and, for
    /// per-channel layers, re-scanning the filter bank).
    filter_q: FilterQuantization,
}

impl PreparedFilter {
    /// Prepare a convolution filter bank under the given quantization.
    #[must_use]
    pub fn from_filter(filter: &Filter, quant: &FilterQuantization) -> Self {
        Self::from_matrix(filter.to_matrix(), quant)
    }

    /// Prepare a `K × c_out` weight matrix (the dense-layer and raw-GEMM
    /// entry point).
    ///
    /// # Panics
    ///
    /// Panics if a per-channel quantization set does not cover exactly
    /// `fmat.cols()` channels.
    #[must_use]
    pub fn from_matrix(fmat: Matrix<f32>, quant: &FilterQuantization) -> Self {
        let k = fmat.rows();
        let c_out = fmat.cols();
        let col_q = quant.resolve(c_out);
        let mut q_logical = vec![0i32; k * c_out];
        let mut f_bytes = vec![0u8; k * c_out];
        let mut f_bytes_by_channel = vec![0u8; k * c_out];
        let mut sf = vec![0i64; c_out];
        for r in 0..k {
            for c in 0..c_out {
                let q = col_q[c].quantize(fmat.at(r, c));
                q_logical[r * c_out + c] = q;
                let byte = (q & 0xFF) as u8;
                f_bytes[r * c_out + c] = byte;
                f_bytes_by_channel[c * k + r] = byte;
                sf[c] += i64::from(q);
            }
        }
        // The f32 matrix itself is deliberately not retained: every
        // backend consumes the quantized forms above, so storing it would
        // only duplicate the layer's weights.
        PreparedFilter {
            k,
            c_out,
            col_q,
            q_logical,
            f_bytes,
            f_bytes_by_channel,
            sf,
            filter_q: quant.clone(),
        }
    }

    /// Patch length `K` (rows of the filter matrix).
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output channel count (columns of the filter matrix).
    #[must_use]
    pub fn c_out(&self) -> usize {
        self.c_out
    }

    /// Per-output-channel quantization parameters.
    #[must_use]
    pub fn col_q(&self) -> &[QuantParams] {
        &self.col_q
    }

    /// Logical quantized filter values, `K × c_out` row-major (HWCF flat
    /// order: index with [`axtensor::FilterShape::index`]).
    #[must_use]
    pub fn q_logical(&self) -> &[i32] {
        &self.q_logical
    }

    /// Quantized byte patterns, `K × c_out` row-major.
    #[must_use]
    pub fn f_bytes(&self) -> &[u8] {
        &self.f_bytes
    }

    /// The contiguous quantized bytes of one output channel's filter.
    ///
    /// # Panics
    ///
    /// Panics if `c >= c_out`.
    #[inline]
    #[must_use]
    pub fn channel_bytes(&self, c: usize) -> &[u8] {
        &self.f_bytes_by_channel[c * self.k..(c + 1) * self.k]
    }

    /// Per-output-channel logical sums `Sf`.
    #[must_use]
    pub fn sf(&self) -> &[i64] {
        &self.sf
    }

    /// The filter quantization this plan was resolved from.
    #[must_use]
    pub fn filter_quantization(&self) -> &FilterQuantization {
        &self.filter_q
    }

    /// The modeled device work of quantizing this filter bank once — what
    /// the simulated-GPU backend charges at preparation time instead of
    /// per chunk (one quantize chain and one 4-byte weight read per tap).
    #[must_use]
    pub fn quant_events(&self) -> EventCounts {
        let taps = (self.k * self.c_out) as u64;
        let mut ev = EventCounts::new();
        ev.quant_ops = taps;
        ev.global_read_bytes = taps * 4;
        ev
    }

    /// Precompute the Eq. 4 epilogue constants for a *segmented* GEMM:
    /// one set per `(segment, channel)` pair, resolved once so the fused
    /// kernel's per-element epilogue is a table lookup rather than a
    /// per-element re-derivation.
    ///
    /// For segment `s` (input params `(α₁ₛ, β₁ₛ)`) and channel `c`
    /// (filter params `(α₂_c, β₂_c)`, correction sum `Sf_c`), this holds
    /// the input-side correction `K·β₁ₛ·β₂_c − β₁ₛ·Sf_c` and the
    /// dequantization scale `α₁ₛ·α₂_c`. The correction is an exact
    /// regrouping of the reference epilogue's `i64` terms and the scale
    /// is the same `f64` product in the same order, so
    /// [`SegmentEpilogue::dequantize`] is bit-identical to the
    /// unsegmented epilogue fed that segment's params alone.
    #[must_use]
    pub fn segment_epilogue(&self, seg_q: &[QuantParams]) -> SegmentEpilogue {
        let c_out = self.c_out;
        let k = self.k as i64;
        let b2: Vec<i64> = self
            .col_q
            .iter()
            .map(|q| i64::from(q.zero_point()))
            .collect();
        let mut corr = Vec::with_capacity(seg_q.len() * c_out);
        let mut scale = Vec::with_capacity(seg_q.len() * c_out);
        for q1 in seg_q {
            let b1 = i64::from(q1.zero_point());
            let a1 = f64::from(q1.scale());
            for (&b2_c, (&sf_c, col)) in b2.iter().zip(self.sf.iter().zip(&self.col_q)) {
                corr.push(k * b1 * b2_c - b1 * sf_c);
                scale.push(a1 * f64::from(col.scale()));
            }
        }
        SegmentEpilogue {
            c_out,
            b2,
            corr,
            scale,
        }
    }
}

/// Precomputed per-`(segment, channel)` Eq. 4 constants — the fused
/// kernel's dequantization epilogue (see
/// [`PreparedFilter::segment_epilogue`]).
#[derive(Debug, Clone)]
pub struct SegmentEpilogue {
    c_out: usize,
    /// Per-channel filter zero-point `β₂` (segment-invariant).
    b2: Vec<i64>,
    /// Per `(segment, channel)`: `K·β₁ₛ·β₂_c − β₁ₛ·Sf_c`, row-major by
    /// segment.
    corr: Vec<i64>,
    /// Per `(segment, channel)`: `α₁ₛ·α₂_c`.
    scale: Vec<f64>,
}

impl SegmentEpilogue {
    /// Segments covered.
    #[must_use]
    pub fn segments(&self) -> usize {
        self.corr.len().checked_div(self.c_out).unwrap_or(0)
    }

    /// Apply the Eq. 4 correction and dequantize one raw accumulator of
    /// segment `s`, channel `c`, with per-row patch sum `sp`:
    /// `α₁ₛα₂_c · (acc − β₂_c·sp + corr[s][c])`. Bit-identical to the
    /// unsegmented epilogue under that segment's input params (`i64`
    /// additions regroup exactly; the `f64` multiply order is preserved).
    ///
    /// # Panics
    ///
    /// Panics (slice bounds) if `s` or `c` is out of range.
    #[inline]
    #[must_use]
    pub fn dequantize(&self, s: usize, c: usize, acc: i64, sp: i64) -> f32 {
        let idx = s * self.c_out + c;
        let corrected = acc - self.b2[c] * sp + self.corr[idx];
        (self.scale[idx] * corrected as f64) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axquant::{QuantRange, RoundMode};
    use axtensor::{rng, FilterShape};

    fn per_tensor() -> FilterQuantization {
        QuantParams::from_range(-0.5, 0.5, QuantRange::i8(), RoundMode::NearestEven).into()
    }

    #[test]
    fn matches_direct_quantization() {
        let filter = rng::uniform_filter(FilterShape::new(3, 3, 2, 4), 3, -0.5, 0.5);
        let fq = per_tensor();
        let plan = PreparedFilter::from_filter(&filter, &fq);
        assert_eq!(plan.k(), 18);
        assert_eq!(plan.c_out(), 4);
        let q = fq.for_channel(0);
        for (i, &w) in filter.as_slice().iter().enumerate() {
            assert_eq!(plan.q_logical()[i], q.quantize(w), "tap {i}");
            assert_eq!(plan.f_bytes()[i], (q.quantize(w) & 0xFF) as u8);
        }
    }

    #[test]
    fn channel_bytes_are_transposed_columns() {
        let filter = rng::uniform_filter(FilterShape::new(2, 2, 3, 5), 7, -0.5, 0.5);
        let plan = PreparedFilter::from_filter(&filter, &per_tensor());
        for c in 0..plan.c_out() {
            let col = plan.channel_bytes(c);
            assert_eq!(col.len(), plan.k());
            for (r, &b) in col.iter().enumerate() {
                assert_eq!(b, plan.f_bytes()[r * plan.c_out() + c]);
            }
        }
    }

    #[test]
    fn sf_sums_columns() {
        let filter = rng::uniform_filter(FilterShape::new(3, 3, 1, 2), 9, -0.5, 0.5);
        let plan = PreparedFilter::from_filter(&filter, &per_tensor());
        for c in 0..2 {
            let expect: i64 = (0..plan.k())
                .map(|r| i64::from(plan.q_logical()[r * 2 + c]))
                .sum();
            assert_eq!(plan.sf()[c], expect);
        }
    }

    #[test]
    fn quant_events_cover_every_tap() {
        let filter = rng::uniform_filter(FilterShape::new(3, 3, 2, 4), 11, -0.5, 0.5);
        let plan = PreparedFilter::from_filter(&filter, &per_tensor());
        let ev = plan.quant_events();
        assert_eq!(ev.quant_ops, 18 * 4);
        assert_eq!(ev.global_read_bytes, 18 * 4 * 4);
    }
}
