//! The tiled, thread-sharded LUT-GEMM microkernel — the host hot path.
//!
//! `BENCH_conv.json` shows the emulated-multiply inner loop (the
//! `lutlookup` phase) dominating steady-state time on every backend. The
//! paper attacks exactly this loop by keeping the 128 kB multiplier table
//! in a fast read-only memory and batching lookups; this module is the
//! CPU realization of that idea:
//!
//! - **LUT row hoisting.** With the filter byte fixed, every lookup of
//!   the inner loop lands in one 512-byte table row ([`MulLut::row`]) —
//!   L1-resident — and the `(b << 8) | a` index stitching is paid once
//!   per tap instead of once per lookup.
//! - **Register micro-tiles.** Each microkernel invocation walks one
//!   filter channel against [`MR`] output positions at once, holding all
//!   [`MR`] accumulators in registers — the in-memory accumulator tile is
//!   only read and written at `KC`-panel boundaries. The [`MR`] patch
//!   rows are read as parallel sequential streams straight from the
//!   row-major patch matrix; a materialized panel-major transpose (see
//!   [`axtensor::im2col::im2col_panels`]) was measured at ~2 ms for one
//!   ResNet-stage-1 chunk — comparable to the whole GEMM — so the kernel
//!   deliberately streams the untransposed matrix instead.
//! - **Cache blocking.** The output is walked in `MC×NC` tiles with the
//!   `K` dimension split into `KC` panels ([`TileConfig`]), so the `i64`
//!   accumulator tile (`MC·NC·8` bytes), the active filter panel
//!   (`KC·NC` bytes), the `MR×KC` patch micro-panel and the active LUT
//!   rows stay cache-resident across the whole panel sweep.
//! - **Thread sharding.** The `N` dimension (batch × output pixels) is
//!   split into contiguous row spans executed on the context's persistent
//!   [`WorkerPool`]. Every row's fold order over `K` is fixed and
//!   independent of the partition, so results are **bit-identical across
//!   thread counts** — including under saturating/wrapping
//!   [`Accumulator`] models, whose folds are order-sensitive.
//!
//! [`lut_gemm_reference`] keeps the untiled per-row loop as the golden
//! model; the equivalence proptests pin [`lut_gemm_tiled`] against it
//! bit-for-bit on every multiplier in the catalog.
//!
//! Both entry points come in a *segmented* flavour
//! ([`lut_gemm_reference_seg`], [`lut_gemm_tiled_seg`]) that threads a
//! [`SegmentTable`] over the output rows: each row dequantizes under its
//! own segment's input parameters via a precomputed
//! [`SegmentEpilogue`], so a fused
//! multi-request batch runs as **one** blocked GEMM while staying
//! bit-identical to per-request solo runs. The unsegmented names are thin
//! single-segment wrappers.

use crate::accumulator::Accumulator;
use crate::pool::WorkerPool;
use crate::prepared::{PreparedFilter, SegmentEpilogue};
use crate::EmuError;
use axmult::{MulLut, Signedness};
use axquant::QuantParams;
use axtensor::{Matrix, SegmentTable};
use serde::{Deserialize, Serialize};

/// Output positions per register micro-tile: the microkernel streams this
/// many patch rows in parallel while holding one LUT row hoisted.
pub const MR: usize = 8;

/// Cache-blocking panel sizes of the tiled LUT GEMM.
///
/// `mc` rows (output positions) × `nc` columns (output channels) form the
/// accumulator tile; the shared `K` dimension (taps) is consumed in `kc`
/// slices. The defaults size the accumulator tile at 8 kB
/// (`64 × 16 × 8 B`) so it shares L1 with the active LUT rows and the
/// `MR×KC` patch micro-panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileConfig {
    mc: usize,
    kc: usize,
    nc: usize,
}

impl TileConfig {
    /// A tile configuration with explicit panel sizes.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::Config`] if any dimension is zero — a
    /// zero-sized panel would make the blocked loops process nothing.
    pub fn new(mc: usize, kc: usize, nc: usize) -> Result<Self, EmuError> {
        if mc == 0 || kc == 0 || nc == 0 {
            return Err(EmuError::Config(format!(
                "tile sizes must be positive (got mc={mc}, kc={kc}, nc={nc})"
            )));
        }
        Ok(TileConfig { mc, kc, nc })
    }

    /// Rows (output positions) per accumulator tile.
    #[must_use]
    pub fn mc(&self) -> usize {
        self.mc
    }

    /// Taps per `K` panel.
    #[must_use]
    pub fn kc(&self) -> usize {
        self.kc
    }

    /// Output channels per accumulator tile.
    #[must_use]
    pub fn nc(&self) -> usize {
        self.nc
    }
}

impl Default for TileConfig {
    fn default() -> Self {
        TileConfig {
            mc: 64,
            kc: 512,
            nc: 16,
        }
    }
}

/// The LUT-emulated dot product of one patch row with one filter column
/// (both as 8-bit byte patterns). The exact-accumulator cases take a
/// branch-free path; narrower accumulator models fold per tap.
#[inline]
pub(crate) fn lut_dot(
    patch: &[u8],
    fcol: &[u8],
    lut: &MulLut,
    signedness: Signedness,
    accumulator: Accumulator,
) -> i64 {
    match (accumulator, signedness) {
        (Accumulator::Exact, Signedness::Signed) => patch
            .iter()
            .zip(fcol)
            .map(|(&a, &b)| i64::from(lut.fetch(a, b) as i16))
            .sum(),
        (Accumulator::Exact, Signedness::Unsigned) => patch
            .iter()
            .zip(fcol)
            .map(|(&a, &b)| i64::from(lut.fetch(a, b)))
            .sum(),
        _ => fold_taps(0, patch, fcol, lut, signedness, accumulator),
    }
}

/// Check the shared operand invariants of the segmented GEMM entry
/// points.
fn check_seg_operands(
    patches: &Matrix<u8>,
    patch_sums: &[i64],
    plan: &PreparedFilter,
    seg_q: &[QuantParams],
    segments: &SegmentTable,
) {
    assert_eq!(patches.cols(), plan.k(), "patch length != plan K");
    assert_eq!(patch_sums.len(), patches.rows(), "patch-sum count");
    assert_eq!(
        segments.total(),
        patches.rows(),
        "segment table must cover every patch row"
    );
    assert_eq!(
        seg_q.len(),
        segments.len(),
        "one input-quantization param set per segment"
    );
}

/// The untiled LUT GEMM — one per-tap `lut_dot` fold per output element,
/// walking the row-major patch matrix. Single-threaded; this is the
/// golden model the tiled path is pinned against.
///
/// A single-segment wrapper over [`lut_gemm_reference_seg`].
///
/// Returns the `rows × c_out` output, row-major (channel-contiguous).
///
/// # Panics
///
/// Panics if `patches.cols() != plan.k()` or
/// `patch_sums.len() != patches.rows()`.
#[must_use]
pub fn lut_gemm_reference(
    patches: &Matrix<u8>,
    patch_sums: &[i64],
    plan: &PreparedFilter,
    input_q: QuantParams,
    lut: &MulLut,
    accumulator: Accumulator,
) -> Vec<f32> {
    lut_gemm_reference_seg(
        patches,
        patch_sums,
        plan,
        std::slice::from_ref(&input_q),
        &SegmentTable::single(patches.rows()),
        lut,
        accumulator,
    )
}

/// The untiled *segmented* LUT GEMM: row `r` dequantizes under the input
/// parameters of the segment `segments` assigns it to. The fold over `K`
/// is unchanged — segmentation only selects the Eq. 4 epilogue constants
/// — so each row's bits equal a solo [`lut_gemm_reference`] run over its
/// segment with `seg_q[s]`.
///
/// Returns the `rows × c_out` output, row-major (channel-contiguous).
///
/// # Panics
///
/// Panics if `patches.cols() != plan.k()`,
/// `patch_sums.len() != patches.rows()`,
/// `segments.total() != patches.rows()`, or
/// `seg_q.len() != segments.len()`.
#[must_use]
pub fn lut_gemm_reference_seg(
    patches: &Matrix<u8>,
    patch_sums: &[i64],
    plan: &PreparedFilter,
    seg_q: &[QuantParams],
    segments: &SegmentTable,
    lut: &MulLut,
    accumulator: Accumulator,
) -> Vec<f32> {
    check_seg_operands(patches, patch_sums, plan, seg_q, segments);
    let c_out = plan.c_out();
    let signedness = lut.signedness();
    let epi = plan.segment_epilogue(seg_q);
    let row_seg = segments.element_segments();
    let mut out = vec![0f32; patches.rows() * c_out];
    for (r, out_row) in out.chunks_mut(c_out.max(1)).enumerate() {
        let patch = patches.row(r);
        let sp = patch_sums[r];
        let s = row_seg[r] as usize;
        for (c, out_v) in out_row.iter_mut().enumerate() {
            let acc = lut_dot(patch, plan.channel_bytes(c), lut, signedness, accumulator);
            *out_v = epi.dequantize(s, c, acc, sp);
        }
    }
    out
}

/// The tiled, thread-sharded LUT GEMM over the row-major patch matrix
/// (the same operand [`lut_gemm_reference`] consumes).
///
/// A single-segment wrapper over [`lut_gemm_tiled_seg`].
///
/// Output rows are sharded across `pool`; each span is walked in
/// [`TileConfig`] blocks by the register micro-tile kernel with the
/// active LUT row hoisted out of the inner loop. For every output element
/// the taps fold in ascending-`k` order exactly like the reference, so
/// the result is bit-identical to [`lut_gemm_reference`] for **any**
/// accumulator model and any thread count.
///
/// Returns the `rows × c_out` output, row-major (channel-contiguous).
///
/// # Panics
///
/// Panics if `patches.cols() != plan.k()` or
/// `patch_sums.len() != patches.rows()`.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn lut_gemm_tiled(
    patches: &Matrix<u8>,
    patch_sums: &[i64],
    plan: &PreparedFilter,
    input_q: QuantParams,
    lut: &MulLut,
    accumulator: Accumulator,
    tiles: TileConfig,
    pool: &WorkerPool,
) -> Vec<f32> {
    lut_gemm_tiled_seg(
        patches,
        patch_sums,
        plan,
        std::slice::from_ref(&input_q),
        &SegmentTable::single(patches.rows()),
        lut,
        accumulator,
        tiles,
        pool,
    )
}

/// The tiled, thread-sharded *segmented* LUT GEMM — one fused blocked
/// sweep over a multi-request patch matrix, with each output row
/// dequantized under its own segment's input parameters.
///
/// The fold over `K` and the contiguous-row-span sharding are exactly
/// those of [`lut_gemm_tiled`]; the segment table only drives the Eq. 4
/// epilogue, via a [`SegmentEpilogue`]
/// lookup. The result is bit-identical to [`lut_gemm_reference_seg`] for
/// any accumulator model, tile shape, and thread count — and therefore to
/// running each segment alone and concatenating.
///
/// Returns the `rows × c_out` output, row-major (channel-contiguous).
///
/// # Panics
///
/// As [`lut_gemm_reference_seg`].
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn lut_gemm_tiled_seg(
    patches: &Matrix<u8>,
    patch_sums: &[i64],
    plan: &PreparedFilter,
    seg_q: &[QuantParams],
    segments: &SegmentTable,
    lut: &MulLut,
    accumulator: Accumulator,
    tiles: TileConfig,
    pool: &WorkerPool,
) -> Vec<f32> {
    check_seg_operands(patches, patch_sums, plan, seg_q, segments);
    let rows = patches.rows();
    let c_out = plan.c_out();
    let mut out = vec![0f32; rows * c_out];
    if rows == 0 || c_out == 0 {
        return out;
    }
    let epi = plan.segment_epilogue(seg_q);
    let row_seg = segments.element_segments();
    let epi_ref = &epi;
    let row_seg_ref: &[u32] = &row_seg;

    // Contiguous row spans, one job each. The per-row fold order does not
    // depend on the partition, so any `threads` gives identical bits.
    let rows_per = rows.div_ceil(pool.threads()).max(1);
    let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(rows.div_ceil(rows_per));
    for (t, span) in out.chunks_mut(rows_per * c_out).enumerate() {
        let r0 = t * rows_per;
        jobs.push(Box::new(move || {
            tile_span(
                r0,
                span,
                patches,
                patch_sums,
                plan,
                row_seg_ref,
                epi_ref,
                lut,
                accumulator,
                tiles,
            );
        }));
    }
    pool.run(jobs);
    out
}

/// Run the blocked microkernel over output rows `r0 .. r0 + span/c_out`.
#[allow(clippy::too_many_arguments)]
fn tile_span(
    r0: usize,
    out_span: &mut [f32],
    patches: &Matrix<u8>,
    patch_sums: &[i64],
    plan: &PreparedFilter,
    row_seg: &[u32],
    epi: &SegmentEpilogue,
    lut: &MulLut,
    accumulator: Accumulator,
    tiles: TileConfig,
) {
    let c_out = plan.c_out();
    let k_total = plan.k();
    let span_rows = out_span.len() / c_out;
    let signedness = lut.signedness();
    // Accumulator tile, channel-major: acc[co * mw + i] is output
    // position `mb + i`, channel `nb + co`.
    let mut acc = vec![0i64; tiles.mc * tiles.nc];
    for mb in (0..span_rows).step_by(tiles.mc) {
        let mw = tiles.mc.min(span_rows - mb);
        for nb in (0..c_out).step_by(tiles.nc) {
            let nw = tiles.nc.min(c_out - nb);
            acc[..nw * mw].fill(0);
            for kb in (0..k_total).step_by(tiles.kc) {
                let kw = tiles.kc.min(k_total - kb);
                // Register micro-tiles: MR patch-row streams at a time,
                // reused across the whole channel tile while their
                // MR×kw bytes stay L1-resident.
                let mut rs = 0usize;
                while rs + MR <= mw {
                    let base = r0 + mb + rs;
                    let prows: [&[u8]; MR] =
                        std::array::from_fn(|i| &patches.row(base + i)[kb..kb + kw]);
                    for co in 0..nw {
                        let fcol = &plan.channel_bytes(nb + co)[kb..kb + kw];
                        let acc_mr = &mut acc[co * mw + rs..][..MR];
                        match signedness {
                            Signedness::Signed => micro_mr(
                                acc_mr,
                                &prows,
                                fcol,
                                lut,
                                |raw| i64::from(raw as i16),
                                accumulator,
                            ),
                            Signedness::Unsigned => {
                                micro_mr(acc_mr, &prows, fcol, lut, i64::from, accumulator);
                            }
                        }
                    }
                    rs += MR;
                }
                // Scalar tail for the last partial micro-tile.
                for r in rs..mw {
                    let prow = &patches.row(r0 + mb + r)[kb..kb + kw];
                    for co in 0..nw {
                        let fcol = &plan.channel_bytes(nb + co)[kb..kb + kw];
                        let slot = &mut acc[co * mw + r];
                        *slot = match accumulator {
                            Accumulator::Exact => {
                                *slot + lut_dot(prow, fcol, lut, signedness, accumulator)
                            }
                            // Order-sensitive models cannot fold a
                            // pre-reduced partial; replay the taps.
                            _ => fold_taps(*slot, prow, fcol, lut, signedness, accumulator),
                        };
                    }
                }
            }
            // Epilogue: Eq. 4 correction + dequantization under the
            // owning segment's constants, written to the
            // channel-contiguous output tile.
            for (co, acc_col) in acc[..nw * mw].chunks(mw).enumerate() {
                let c = nb + co;
                for (i, &a) in acc_col.iter().enumerate() {
                    let r = r0 + mb + i;
                    let sp = patch_sums[r];
                    out_span[(mb + i) * c_out + c] = epi.dequantize(row_seg[r] as usize, c, a, sp);
                }
            }
        }
    }
}

/// Continue an order-sensitive fold from `acc` across one tap panel.
#[inline]
fn fold_taps(
    mut acc: i64,
    prow: &[u8],
    fcol: &[u8],
    lut: &MulLut,
    signedness: Signedness,
    accumulator: Accumulator,
) -> i64 {
    for (&a, &b) in prow.iter().zip(fcol) {
        let raw = lut.fetch(a, b);
        let prod = match signedness {
            Signedness::Signed => i64::from(raw as i16),
            Signedness::Unsigned => i64::from(raw),
        };
        acc = accumulator.add(acc, prod);
    }
    acc
}

/// The register micro-tile: fold one `kw`-tap filter column into `MR`
/// accumulators at once, all held in registers, with each tap's 512-byte
/// LUT row hoisted out of the `MR` sweep.
#[inline]
fn micro_mr<D: Fn(u16) -> i64 + Copy>(
    acc_mr: &mut [i64],
    prows: &[&[u8]; MR],
    fcol: &[u8],
    lut: &MulLut,
    decode: D,
    accumulator: Accumulator,
) {
    let mut a = [0i64; MR];
    a.copy_from_slice(&acc_mr[..MR]);
    match accumulator {
        Accumulator::Exact => {
            for (k, &fb) in fcol.iter().enumerate() {
                let row = lut.row(fb);
                for i in 0..MR {
                    a[i] += decode(row[prows[i][k] as usize]);
                }
            }
        }
        _ => {
            for (k, &fb) in fcol.iter().enumerate() {
                let row = lut.row(fb);
                for i in 0..MR {
                    a[i] = accumulator.add(a[i], decode(row[prows[i][k] as usize]));
                }
            }
        }
    }
    acc_mr[..MR].copy_from_slice(&a);
}

#[cfg(test)]
mod tests {
    use super::*;
    use axquant::{FilterQuantization, QuantRange, RoundMode};
    use axtensor::{rng, FilterShape};

    fn setup(
        rows: usize,
        fs: FilterShape,
        seed: u64,
    ) -> (Matrix<u8>, Vec<i64>, PreparedFilter, QuantParams) {
        let input_q = QuantParams::from_range(-1.0, 1.0, QuantRange::i8(), RoundMode::NearestEven);
        let k = fs.patch_len();
        let bytes: Vec<u8> = (0..rows * k)
            .map(|i| ((i as u64).wrapping_mul(seed ^ 0x9E37_79B9) >> 3) as u8)
            .collect();
        let patches = Matrix::from_vec(rows, k, bytes).unwrap();
        // Patch sums are logical sums of the byte patterns (signed decode).
        let sums: Vec<i64> = (0..rows)
            .map(|r| {
                patches
                    .row(r)
                    .iter()
                    .map(|&b| i64::from(b as i8))
                    .sum::<i64>()
            })
            .collect();
        let filter = rng::uniform_filter(fs, seed, -0.5, 0.5);
        let fq: FilterQuantization =
            QuantParams::from_range(-0.5, 0.5, QuantRange::i8(), RoundMode::NearestEven).into();
        let plan = PreparedFilter::from_filter(&filter, &fq);
        (patches, sums, plan, input_q)
    }

    #[test]
    fn tiled_matches_reference_across_tile_shapes() {
        let fs = FilterShape::new(3, 3, 5, 7);
        let (patches, sums, plan, input_q) = setup(53, fs, 11);
        let lut = MulLut::exact(Signedness::Signed);
        let reference =
            lut_gemm_reference(&patches, &sums, &plan, input_q, &lut, Accumulator::Exact);
        let pool = WorkerPool::new(2);
        for (mc, kc, nc) in [(1, 1, 1), (8, 16, 4), (64, 512, 16), (100, 100, 100)] {
            let tiles = TileConfig::new(mc, kc, nc).unwrap();
            let tiled = lut_gemm_tiled(
                &patches,
                &sums,
                &plan,
                input_q,
                &lut,
                Accumulator::Exact,
                tiles,
                &pool,
            );
            assert_eq!(tiled, reference, "tiles ({mc}, {kc}, {nc})");
        }
    }

    #[test]
    fn tiled_matches_reference_under_order_sensitive_accumulators() {
        // Saturating/wrapping folds are order-sensitive: the tiled path
        // must replay the exact ascending-k fold sequence, micro-tile and
        // panel boundaries notwithstanding.
        let fs = FilterShape::new(3, 3, 4, 6);
        let (patches, sums, plan, input_q) = setup(29, fs, 3);
        let lut = MulLut::exact(Signedness::Signed);
        for accumulator in [Accumulator::Saturating(12), Accumulator::Wrapping(10)] {
            let reference = lut_gemm_reference(&patches, &sums, &plan, input_q, &lut, accumulator);
            for threads in [1, 3] {
                let pool = WorkerPool::new(threads);
                let tiled = lut_gemm_tiled(
                    &patches,
                    &sums,
                    &plan,
                    input_q,
                    &lut,
                    accumulator,
                    TileConfig::new(7, 5, 3).unwrap(),
                    &pool,
                );
                assert_eq!(tiled, reference, "{accumulator:?} x{threads}");
            }
        }
    }

    #[test]
    fn tiled_is_thread_count_invariant() {
        let fs = FilterShape::new(1, 1, 32, 8);
        let (patches, sums, plan, input_q) = setup(64, fs, 21);
        let lut = MulLut::exact(Signedness::Unsigned);
        let run = |threads: usize| {
            let pool = WorkerPool::new(threads);
            lut_gemm_tiled(
                &patches,
                &sums,
                &plan,
                input_q,
                &lut,
                Accumulator::Exact,
                TileConfig::default(),
                &pool,
            )
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(4));
    }

    /// Distinct per-segment input params so a wrong epilogue pick is
    /// guaranteed to change bits.
    fn seg_params() -> Vec<QuantParams> {
        [(-1.0, 1.0), (-2.0, 0.5), (0.0, 3.0), (-0.25, 0.25)]
            .iter()
            .map(|&(lo, hi)| {
                QuantParams::from_range(lo, hi, QuantRange::i8(), RoundMode::NearestEven)
            })
            .collect()
    }

    fn sub_matrix(patches: &Matrix<u8>, start: usize, end: usize, k: usize) -> Matrix<u8> {
        let bytes: Vec<u8> = (start..end).flat_map(|r| patches.row(r).to_vec()).collect();
        Matrix::from_vec(end - start, k, bytes).unwrap()
    }

    #[test]
    fn segmented_reference_is_per_segment_reference_chained() {
        // The fused golden must equal solo goldens over each segment's
        // rows with that segment's params, concatenated — including an
        // empty segment in the middle.
        let fs = FilterShape::new(3, 3, 4, 5);
        let (patches, sums, plan, _) = setup(14, fs, 17);
        let segments = SegmentTable::from_counts(&[5, 0, 8, 1]);
        let seg_q = seg_params();
        let lut = MulLut::exact(Signedness::Signed);
        for accumulator in [Accumulator::Exact, Accumulator::Saturating(12)] {
            let fused = lut_gemm_reference_seg(
                &patches,
                &sums,
                &plan,
                &seg_q,
                &segments,
                &lut,
                accumulator,
            );
            let mut chained = Vec::new();
            for (s, (start, end)) in segments.iter().enumerate() {
                let sub = sub_matrix(&patches, start, end, fs.patch_len());
                chained.extend(lut_gemm_reference(
                    &sub,
                    &sums[start..end],
                    &plan,
                    seg_q[s],
                    &lut,
                    accumulator,
                ));
            }
            assert_eq!(fused, chained, "{accumulator:?}");
        }
    }

    #[test]
    fn segmented_tiled_matches_segmented_reference() {
        let fs = FilterShape::new(3, 3, 5, 7);
        let (patches, sums, plan, input_q) = setup(23, fs, 9);
        let mut seg_q = seg_params();
        seg_q.push(input_q);
        let segments = SegmentTable::from_counts(&[4, 0, 9, 2, 8]);
        let lut = MulLut::exact(Signedness::Signed);
        for accumulator in [
            Accumulator::Exact,
            Accumulator::Saturating(12),
            Accumulator::Wrapping(10),
        ] {
            let reference = lut_gemm_reference_seg(
                &patches,
                &sums,
                &plan,
                &seg_q,
                &segments,
                &lut,
                accumulator,
            );
            for threads in [1, 3] {
                let pool = WorkerPool::new(threads);
                let tiled = lut_gemm_tiled_seg(
                    &patches,
                    &sums,
                    &plan,
                    &seg_q,
                    &segments,
                    &lut,
                    accumulator,
                    TileConfig::new(7, 5, 3).unwrap(),
                    &pool,
                );
                assert_eq!(tiled, reference, "{accumulator:?} x{threads}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "segment table must cover every patch row")]
    fn segmented_gemm_rejects_short_segment_table() {
        let fs = FilterShape::new(1, 1, 2, 2);
        let (patches, sums, plan, input_q) = setup(4, fs, 2);
        let lut = MulLut::exact(Signedness::Signed);
        let _ = lut_gemm_reference_seg(
            &patches,
            &sums,
            &plan,
            &[input_q],
            &SegmentTable::from_counts(&[3]),
            &lut,
            Accumulator::Exact,
        );
    }

    #[test]
    fn empty_inputs_produce_empty_outputs() {
        let fs = FilterShape::new(3, 3, 2, 4);
        let (_, _, plan, input_q) = setup(1, fs, 5);
        let lut = MulLut::exact(Signedness::Signed);
        let pool = WorkerPool::new(2);
        let patches = Matrix::<u8>::zeros(0, fs.patch_len());
        let out = lut_gemm_tiled(
            &patches,
            &[],
            &plan,
            input_q,
            &lut,
            Accumulator::Exact,
            TileConfig::default(),
            &pool,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn zero_tile_dimensions_rejected() {
        for (mc, kc, nc) in [(0, 1, 1), (1, 0, 1), (1, 1, 0)] {
            let err = TileConfig::new(mc, kc, nc).unwrap_err();
            assert!(matches!(err, EmuError::Config(_)), "{err}");
            assert!(err.to_string().contains("tile sizes"), "{err}");
        }
    }

    #[test]
    fn default_tiles_are_valid_and_l1_sized() {
        let t = TileConfig::default();
        assert!(TileConfig::new(t.mc(), t.kc(), t.nc()).is_ok());
        // Accumulator tile stays within an 8 kB L1 budget.
        assert!(t.mc() * t.nc() * 8 <= 8 * 1024);
    }
}
