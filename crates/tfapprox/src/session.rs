//! The compiled-model entry point: build once, infer many times.

#![deny(missing_docs)]

use crate::kernel::KernelKind;
use crate::{
    runtime, Accumulator, Assignment, AxConv2D, Backend, EmuContext, EmulationReport, Error,
    TileConfig,
};
use axmult::AxMultiplier;
use axnn::Graph;
use axtensor::{SegmentTable, Tensor};
use gpusim::DeviceConfig;
use std::sync::Arc;

/// Configures and compiles a [`Session`].
///
/// The builder owns every emulation knob — backend, simulated device,
/// Algorithm-1 chunk size, host worker threads, and the multiplier
/// [`Assignment`] — so a compiled session is fully determined by one
/// `compile` call and the graph it transformed.
///
/// # Example
///
/// ```
/// use tfapprox::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = axnn::resnet::ResNetConfig::with_depth(8)?.build(42)?;
/// let mult = axmult::catalog::by_name("mul8s_exact")?;
/// let session = Session::builder()
///     .backend(Backend::CpuGemm)
///     .chunk_size(4)
///     .multiplier(&mult)
///     .compile(&graph)?;
/// assert_eq!(session.replaced_layers(), 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    backend: Backend,
    device: Option<DeviceConfig>,
    chunk_size: Option<usize>,
    threads: Option<usize>,
    tiles: Option<TileConfig>,
    kernel: Option<KernelKind>,
    assignment: Option<Assignment>,
    /// A multiplier name to resolve at compile time (catalog, then the
    /// process-wide registry). Mutually exclusive with `assignment`;
    /// whichever was set last wins.
    named_multiplier: Option<String>,
    accumulator: Accumulator,
}

impl SessionBuilder {
    /// A builder with the default backend ([`Backend::GpuSim`]) and
    /// device, and no multiplier assigned yet.
    #[must_use]
    pub fn new() -> Self {
        SessionBuilder {
            backend: Backend::default(),
            device: None,
            chunk_size: None,
            threads: None,
            tiles: None,
            kernel: None,
            assignment: None,
            named_multiplier: None,
            accumulator: Accumulator::default(),
        }
    }

    /// Select where the emulation runs.
    #[must_use]
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Use an explicit simulated-device configuration (default:
    /// GTX-1080-class).
    #[must_use]
    pub fn device(mut self, device: DeviceConfig) -> Self {
        self.device = Some(device);
        self
    }

    /// Override the Algorithm-1 chunk size (images per chunk). Validated
    /// at [`SessionBuilder::compile`]: zero is a compile error, not a
    /// runtime misbehaviour.
    #[must_use]
    pub fn chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = Some(chunk_size);
        self
    }

    /// Override the host worker-thread count (default: available
    /// parallelism). Validated at [`SessionBuilder::compile`].
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Override the cache-blocking panel sizes of the tiled host LUT-GEMM
    /// (the [`Backend::CpuGemm`] hot path); zero-sized panels are already
    /// rejected by [`TileConfig::new`].
    #[must_use]
    pub fn tile_config(mut self, tiles: TileConfig) -> Self {
        self.tiles = Some(tiles);
        self
    }

    /// Force a specific LUT-GEMM kernel arm for the host GEMM backend
    /// instead of the process-wide automatic choice
    /// ([`crate::kernel::auto_kernel`]). [`KernelKind::ScalarTiled`] is
    /// the always-available forced-scalar escape hatch; every arm is
    /// bit-identical, so this knob can only change speed, never results.
    /// Validated at [`SessionBuilder::compile`]: an arm this host cannot
    /// execute is a compile error, not a silent downgrade.
    #[must_use]
    pub fn kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = Some(kernel);
        self
    }

    /// Set the MAC accumulator model of every emulated convolution (CPU
    /// backends; the simulated GPU accumulates in 32-bit float like the
    /// paper's kernel and ignores this knob). Default:
    /// [`Accumulator::Exact`].
    #[must_use]
    pub fn accumulator(mut self, accumulator: Accumulator) -> Self {
        self.accumulator = accumulator;
        self
    }

    /// Emulate one multiplier in every convolution layer — shorthand for
    /// [`SessionBuilder::assignment`] with [`Assignment::uniform`].
    #[must_use]
    pub fn multiplier(self, mult: &AxMultiplier) -> Self {
        self.assignment(Assignment::uniform(mult.clone()))
    }

    /// Emulate one multiplier in every convolution layer, resolved *by
    /// name* at [`SessionBuilder::compile`] — built-in catalog entries
    /// first, then the process-wide [`axmult::registry`], so multipliers
    /// compiled at runtime (see [`crate::compile`]) work exactly like
    /// built-ins. An unknown name is a compile-time [`Error`] carrying the
    /// usual "did you mean" suggestion.
    #[must_use]
    pub fn multiplier_named(mut self, name: impl Into<String>) -> Self {
        self.assignment = None;
        self.named_multiplier = Some(name.into());
        self
    }

    /// Use a per-layer multiplier [`Assignment`] (the ALWANN use case).
    #[must_use]
    pub fn assignment(mut self, assignment: Assignment) -> Self {
        self.assignment = Some(assignment);
        self.named_multiplier = None;
        self
    }

    /// Validate the configuration and build the shared emulation context.
    fn build_context(&self) -> Result<Arc<EmuContext>, Error> {
        let mut ctx = match &self.device {
            Some(dev) => EmuContext::with_device(self.backend, dev.clone()),
            None => EmuContext::new(self.backend),
        };
        if let Some(chunk) = self.chunk_size {
            ctx = ctx.with_chunk_size(chunk)?;
        }
        if let Some(threads) = self.threads {
            ctx = ctx.with_threads(threads)?;
        }
        if let Some(tiles) = self.tiles {
            ctx = ctx.with_tile_config(tiles);
        }
        if let Some(kernel) = self.kernel {
            ctx = ctx.with_kernel(kernel)?;
        }
        Ok(Arc::new(ctx))
    }

    /// Transform `graph` (Conv2D → `AxConv2D` with `Min`/`Max` observers,
    /// Fig. 1) and **eagerly** build every layer's prepared-execution
    /// plan, so anything that would previously fail lazily on the first
    /// forward — non-finite weights, a bad configuration — fails here.
    ///
    /// # Errors
    ///
    /// - [`Error::Config`] if no multiplier/assignment was set, the chunk
    ///   size or thread count is zero, or the assignment does not match
    ///   the graph's convolution-layer count.
    /// - Propagates graph-transform and plan-build failures.
    pub fn compile(&self, graph: &Graph) -> Result<Session, Error> {
        let assignment = match (&self.assignment, &self.named_multiplier) {
            (Some(a), _) => a.clone(),
            (None, Some(name)) => Assignment::uniform_named(name)?,
            (None, None) => {
                return Err(Error::Config(
                    "no multiplier assigned: call .multiplier(..), .multiplier_named(..) or \
                     .assignment(..) before compile"
                        .to_owned(),
                ))
            }
        };
        let ctx = self.build_context()?;
        let mults = assignment.resolve(graph.conv_layer_count())?;
        let accumulator = self.accumulator;
        let (transformed, layers, replaced) = rewrite_with_mults(graph, &mults, |conv, mult| {
            Arc::new(
                AxConv2D::from_conv2d(conv, mult, Arc::clone(&ctx)).with_accumulator(accumulator),
            )
        })?;
        let session = Session {
            source: graph.clone(),
            graph: transformed,
            layers,
            mults,
            ctx,
            accumulator,
            replaced,
        };
        session.prepare_all()?;
        Ok(session)
    }
}

impl Default for SessionBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Rewrite `graph`'s convolutions, producing one layer per resolved
/// multiplier via `make`, and collect the concrete `AxConv2D` handles so
/// the session can prepare and later reuse their plans.
fn rewrite_with_mults(
    graph: &Graph,
    mults: &[AxMultiplier],
    mut make: impl FnMut(&axnn::layers::Conv2D, &AxMultiplier) -> Arc<AxConv2D>,
) -> Result<(Graph, Vec<Arc<AxConv2D>>, usize), Error> {
    let mut layers: Vec<Arc<AxConv2D>> = Vec::with_capacity(mults.len());
    let (transformed, replaced) = graph.rewrite_convs(|conv| {
        let mult = &mults[layers.len()];
        let ax = make(conv, mult);
        layers.push(Arc::clone(&ax));
        ax
    })?;
    // `conv_layer_count` counts every `*Conv2D` op (the paper's `L`),
    // but only accurate `Conv2D` nodes are rewritable — compiling an
    // already-transformed graph would silently keep its old multipliers.
    if replaced != mults.len() {
        return Err(Error::Config(format!(
            "graph has {} convolution layers but only {replaced} are rewritable Conv2D \
             nodes — was it already transformed (e.g. a Session's own graph)?",
            mults.len()
        )));
    }
    Ok((transformed, layers, replaced))
}

/// A compiled approximate model: the transformed graph, the shared
/// emulation context, and every layer's eagerly-built prepared-execution
/// plan.
///
/// A session is the unit of the design-space loop: compile once, call
/// [`Session::infer`] / [`Session::infer_batches`] many times, and move
/// to the next candidate with [`Session::reassign`] — which recompiles
/// while reusing the cached plans of every layer whose multiplier did not
/// change.
///
/// # Example
///
/// ```
/// use tfapprox::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = axnn::resnet::ResNetConfig::with_depth(8)?.build(42)?;
/// let mult = axmult::catalog::by_name("mul8s_bam_v8h0")?;
/// let session = Session::builder().multiplier(&mult).compile(&graph)?;
///
/// let input = axtensor::rng::uniform(axnn::resnet::cifar_input_shape(2), 1, -1.0, 1.0);
/// let probs = session.infer(&input)?;
/// assert_eq!(probs.shape().c, 10);
///
/// let (outputs, report) = session.infer_batches(std::slice::from_ref(&input))?;
/// assert_eq!(outputs.len(), 1);
/// assert_eq!(report.images, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Session {
    /// The untransformed source graph, kept so `reassign` can rewrite it
    /// again without the caller holding on to it.
    source: Graph,
    /// The transformed (approximate) graph.
    graph: Graph,
    /// The `AxConv2D` nodes of `graph`, in topological order.
    layers: Vec<Arc<AxConv2D>>,
    /// The resolved multiplier of each layer, same order as `layers`.
    mults: Vec<AxMultiplier>,
    ctx: Arc<EmuContext>,
    /// The MAC accumulator model every layer was compiled with.
    accumulator: Accumulator,
    replaced: usize,
}

impl Session {
    /// Start configuring a session.
    #[must_use]
    pub fn builder() -> SessionBuilder {
        SessionBuilder::new()
    }

    /// Eagerly build every layer's prepared plan (idempotent per layer).
    fn prepare_all(&self) -> Result<(), Error> {
        for layer in &self.layers {
            layer.prepare()?;
        }
        Ok(())
    }

    /// Run one inference batch through the compiled graph.
    ///
    /// # Errors
    ///
    /// Propagates graph execution failures.
    pub fn infer(&self, input: &Tensor<f32>) -> Result<Tensor<f32>, Error> {
        Ok(self.graph.forward(input)?)
    }

    /// Run several independent requests through the compiled graph as
    /// **one fused batch** — one graph sweep, one segmented LUT-GEMM per
    /// layer chunk — and split the outputs back per request.
    ///
    /// The requests are concatenated along the batch axis with a
    /// [`SegmentTable`] marking their spans; every range-observing node
    /// resolves its quantization *per segment*, so the result is
    /// **bit-identical** to calling [`Session::infer`] on each request
    /// alone, for every backend, accumulator model, and batch
    /// composition (zero-image requests included). This is what makes
    /// serve-tier micro-batching profitable: the per-layer dispatch,
    /// worker-pool synchronization, and GEMM setup are paid once per
    /// fused batch instead of once per request.
    ///
    /// An empty request list produces an empty output list.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the requests disagree on `h`/`w`/`c`;
    /// propagates graph execution failures.
    pub fn infer_fused(&self, requests: &[Tensor<f32>]) -> Result<Vec<Tensor<f32>>, Error> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let counts: Vec<usize> = requests.iter().map(|t| t.shape().n).collect();
        let segments = SegmentTable::from_counts(&counts);
        let fused = Tensor::concat_batch(requests)?;
        let out = self.graph.forward_segmented(&fused, &segments)?;
        Ok(segments
            .iter()
            .map(|(start, end)| out.batch_slice(start, end - start))
            .collect())
    }

    /// Run the compiled graph over evaluation batches, producing the
    /// per-batch outputs and the `tinit + tcomp` [`EmulationReport`]
    /// (Table I's decomposition; the profile carries the Fig. 2 phase
    /// split).
    ///
    /// Exactly one output tensor is produced per input batch. Zero-image
    /// runs are legal in both shapes — an empty `batches` list and
    /// zero-image batch tensors (which yield shaped-empty outputs) — and
    /// report identically: `images == 0`, an explicit 0.0 throughput,
    /// `tinit` still charged.
    ///
    /// # Errors
    ///
    /// Propagates graph execution failures.
    pub fn infer_batches(
        &self,
        batches: &[Tensor<f32>],
    ) -> Result<(Vec<Tensor<f32>>, EmulationReport), Error> {
        Ok(runtime::run_approx(&self.graph, batches, &self.ctx)?)
    }

    /// Recompile with a new multiplier [`Assignment`], **reusing the
    /// cached prepared plan** of every layer whose multiplier is
    /// unchanged — and, for changed layers of the same signedness,
    /// transplanting the plan outright (the plan depends on the filter
    /// and the quantized range, not on the LUT contents). This makes the
    /// ALWANN design-space loop's per-candidate cost input-side only.
    ///
    /// The new session shares this session's emulation context (backend,
    /// device, texture cache, worker pool); this session stays usable.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] if the assignment does not resolve
    /// against the graph's convolution-layer count; propagates
    /// graph-transform and plan-build failures.
    pub fn reassign(&self, assignment: &Assignment) -> Result<Session, Error> {
        let mults = assignment.resolve(self.mults.len())?;
        let mut index = 0usize;
        let (transformed, layers, replaced) =
            rewrite_with_mults(&self.source, &mults, |conv, mult| {
                let i = index;
                index += 1;
                let old_layer = &self.layers[i];
                let old_mult = &self.mults[i];
                if mult.lut() == old_mult.lut() {
                    // Unchanged multiplier: the whole layer (and its
                    // cached plan) is reusable as-is.
                    return Arc::clone(old_layer);
                }
                let fresh = AxConv2D::from_conv2d(conv, mult, Arc::clone(&self.ctx))
                    .with_accumulator(self.accumulator);
                if mult.signedness() == old_mult.signedness() {
                    if let Some(plan) = old_layer.cached_plan() {
                        fresh.seed_plan(plan);
                    }
                }
                Arc::new(fresh)
            })?;
        let session = Session {
            source: self.source.clone(),
            graph: transformed,
            layers,
            mults,
            ctx: Arc::clone(&self.ctx),
            accumulator: self.accumulator,
            replaced,
        };
        session.prepare_all()?;
        Ok(session)
    }

    /// The backend this session emulates on.
    #[must_use]
    pub fn backend(&self) -> Backend {
        self.ctx.backend()
    }

    /// The MAC accumulator model every convolution layer was compiled
    /// with.
    #[must_use]
    pub fn accumulator(&self) -> Accumulator {
        self.accumulator
    }

    /// The shared emulation context (profiles, events, texture cache).
    #[must_use]
    pub fn context(&self) -> &Arc<EmuContext> {
        &self.ctx
    }

    /// The LUT-GEMM kernel arm this session's host GEMM dispatches to
    /// (selected at compile; see [`SessionBuilder::kernel`]).
    #[must_use]
    pub fn kernel(&self) -> KernelKind {
        self.ctx.kernel()
    }

    /// The transformed (approximate) graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// How many `Conv2D` layers were replaced by `AxConv2D` — the
    /// paper's `L`.
    #[must_use]
    pub fn replaced_layers(&self) -> usize {
        self.replaced
    }

    /// The resolved multiplier of each convolution layer, in topological
    /// order.
    #[must_use]
    pub fn multipliers(&self) -> &[AxMultiplier] {
        &self.mults
    }

    /// Names of the convolution layers, in topological order — the
    /// indices an [`Assignment`] addresses.
    #[must_use]
    pub fn conv_layer_names(&self) -> Vec<&str> {
        self.source.conv_layers().map(|(_, name)| name).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axnn::resnet::{cifar_input_shape, ResNetConfig};
    use axtensor::rng;

    fn exact() -> AxMultiplier {
        axmult::catalog::by_name("mul8s_exact").unwrap()
    }

    fn rough() -> AxMultiplier {
        axmult::catalog::by_name("mul8s_bam_v8h0").unwrap()
    }

    #[test]
    fn compile_requires_a_multiplier() {
        let graph = ResNetConfig::with_depth(8).unwrap().build(1).unwrap();
        let err = Session::builder().compile(&graph).unwrap_err();
        assert!(err.to_string().contains("no multiplier"), "{err}");
    }

    #[test]
    fn compile_resolves_named_multipliers() {
        let graph = ResNetConfig::with_depth(8).unwrap().build(1).unwrap();

        // A catalog name resolves identically to passing the multiplier.
        let named = Session::builder()
            .backend(Backend::CpuGemm)
            .multiplier_named("mul8s_exact")
            .compile(&graph)
            .unwrap();
        assert!(named
            .multipliers()
            .iter()
            .all(|m| m.name() == "mul8s_exact"));

        // A registered (bring-your-own) name resolves the same way.
        axmult::registry::register(AxMultiplier::new(
            "ses_test_registered",
            "registry entry for session test",
            axmult::MulLut::exact(axmult::Signedness::Signed),
            None,
        ))
        .unwrap();
        let custom = Session::builder()
            .backend(Backend::CpuGemm)
            .multiplier_named("ses_test_registered")
            .compile(&graph)
            .unwrap();
        assert!(custom
            .multipliers()
            .iter()
            .all(|m| m.name() == "ses_test_registered"));
        axmult::registry::unregister("ses_test_registered");

        // Typos fail at compile time with the did-you-mean treatment.
        let err = Session::builder()
            .multiplier_named("mul8s_exakt")
            .compile(&graph)
            .unwrap_err();
        assert!(err.to_string().contains("did you mean"), "{err}");

        // Whichever of name/assignment was set last wins.
        let last_wins = Session::builder()
            .multiplier(&rough())
            .multiplier_named("mul8s_exact")
            .compile(&graph)
            .unwrap();
        assert!(last_wins
            .multipliers()
            .iter()
            .all(|m| m.name() == "mul8s_exact"));
    }

    #[test]
    fn compile_rejects_zero_chunk_and_threads() {
        let graph = ResNetConfig::with_depth(8).unwrap().build(1).unwrap();
        let err = Session::builder()
            .multiplier(&exact())
            .chunk_size(0)
            .compile(&graph)
            .unwrap_err();
        assert!(err.to_string().contains("chunk size"), "{err}");
        let err = Session::builder()
            .multiplier(&exact())
            .threads(0)
            .compile(&graph)
            .unwrap_err();
        assert!(err.to_string().contains("thread count"), "{err}");
    }

    #[test]
    fn kernel_override_is_honored_and_defaults_to_auto() {
        let graph = ResNetConfig::with_depth(8).unwrap().build(1).unwrap();
        let auto = Session::builder()
            .backend(Backend::CpuGemm)
            .multiplier(&exact())
            .compile(&graph)
            .unwrap();
        assert_eq!(auto.kernel(), crate::kernel::auto_kernel());
        let forced = Session::builder()
            .backend(Backend::CpuGemm)
            .multiplier(&exact())
            .kernel(KernelKind::ScalarTiled)
            .compile(&graph)
            .unwrap();
        assert_eq!(forced.kernel(), KernelKind::ScalarTiled);
    }

    #[test]
    fn compile_is_eager_lazy_failures_surface_at_compile_time() {
        // A graph whose conv weights are non-finite used to fail on the
        // first forward; with the session API it cannot even compile.
        use axnn::layers::Conv2D;
        use axtensor::{ConvGeometry, Filter, FilterShape};
        let mut g = Graph::new();
        let x = g.input();
        let mut w = vec![0.1f32; 9];
        w[4] = f32::NAN;
        let conv = Conv2D::new(
            Filter::from_vec(FilterShape::new(3, 3, 1, 1), w).unwrap(),
            ConvGeometry::default(),
        );
        let c = g.add("bad", Arc::new(conv), &[x]).unwrap();
        g.set_output(c).unwrap();
        let err = Session::builder()
            .backend(Backend::CpuGemm)
            .multiplier(&exact())
            .compile(&g)
            .unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn compile_rejects_an_already_transformed_graph() {
        let graph = ResNetConfig::with_depth(8).unwrap().build(1).unwrap();
        let session = Session::builder()
            .backend(Backend::CpuGemm)
            .multiplier(&exact())
            .compile(&graph)
            .unwrap();
        // The transformed graph's AxConv2D nodes are not rewritable:
        // recompiling it must fail loudly, not keep the old multipliers.
        let err = Session::builder()
            .backend(Backend::CpuGemm)
            .multiplier(&rough())
            .compile(session.graph())
            .unwrap_err();
        assert!(err.to_string().contains("already transformed"), "{err}");
    }

    #[test]
    fn compile_prepares_every_layer() {
        let graph = ResNetConfig::with_depth(8).unwrap().build(2).unwrap();
        let session = Session::builder()
            .backend(Backend::CpuGemm)
            .multiplier(&exact())
            .compile(&graph)
            .unwrap();
        assert_eq!(session.replaced_layers(), 7);
        assert_eq!(session.conv_layer_names().len(), 7);
        assert!(session.layers.iter().all(|l| l.is_prepared()));
    }

    #[test]
    fn infer_matches_direct_graph_forward() {
        let graph = ResNetConfig::with_depth(8).unwrap().build(3).unwrap();
        let session = Session::builder()
            .backend(Backend::CpuGemm)
            .chunk_size(2)
            .multiplier(&rough())
            .compile(&graph)
            .unwrap();
        let input = rng::uniform(cifar_input_shape(2), 7, -1.0, 1.0);
        let a = session.infer(&input).unwrap();
        let b = session.graph().forward(&input).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn infer_batches_reports_images() {
        let graph = ResNetConfig::with_depth(8).unwrap().build(4).unwrap();
        let session = Session::builder()
            .backend(Backend::GpuSim)
            .chunk_size(2)
            .multiplier(&exact())
            .compile(&graph)
            .unwrap();
        let batches = vec![
            rng::uniform(cifar_input_shape(2), 1, -1.0, 1.0),
            rng::uniform(cifar_input_shape(2), 2, -1.0, 1.0),
        ];
        let (outputs, report) = session.infer_batches(&batches).unwrap();
        assert_eq!(outputs.len(), 2);
        assert_eq!(report.images, 4);
        assert!(report.total() > 0.0);
    }

    #[test]
    fn infer_batches_empty_shapes_agree() {
        // Regression (PR 5): both zero-image shapes flow through the
        // session API with one output per input batch and a zero-image,
        // zero-throughput report.
        let graph = ResNetConfig::with_depth(8).unwrap().build(4).unwrap();
        let session = Session::builder()
            .backend(Backend::CpuGemm)
            .multiplier(&exact())
            .compile(&graph)
            .unwrap();
        let (outputs, report) = session.infer_batches(&[]).unwrap();
        assert!(outputs.is_empty());
        assert_eq!(report.images, 0);
        assert_eq!(report.images_per_second(), 0.0);

        let zero = rng::uniform(cifar_input_shape(0), 1, -1.0, 1.0);
        let (outputs, report) = session.infer_batches(std::slice::from_ref(&zero)).unwrap();
        assert_eq!(outputs.len(), 1);
        assert_eq!(outputs[0].shape().n, 0);
        assert_eq!(outputs[0].shape().c, 10, "shaped-empty, not just empty");
        assert_eq!(report.images, 0);
        assert_eq!(report.images_per_second(), 0.0);
    }

    #[test]
    fn infer_fused_is_bit_identical_to_solo_infer() {
        let graph = ResNetConfig::with_depth(8).unwrap().build(9).unwrap();
        for backend in [Backend::CpuDirect, Backend::CpuGemm, Backend::GpuSim] {
            let session = Session::builder()
                .backend(backend)
                .chunk_size(3)
                .multiplier(&rough())
                .compile(&graph)
                .unwrap();
            let requests = vec![
                rng::uniform(cifar_input_shape(2), 31, -1.0, 1.0),
                rng::uniform(cifar_input_shape(0), 32, -1.0, 1.0),
                rng::uniform(cifar_input_shape(1), 33, -1.0, 1.0),
                rng::uniform(cifar_input_shape(4), 34, -1.0, 1.0),
            ];
            let fused = session.infer_fused(&requests).unwrap();
            assert_eq!(fused.len(), requests.len());
            for (request, out) in requests.iter().zip(&fused) {
                assert_eq!(out, &session.infer(request).unwrap(), "{backend:?}");
            }
        }
    }

    #[test]
    fn infer_fused_edge_shapes() {
        let graph = ResNetConfig::with_depth(8).unwrap().build(10).unwrap();
        let session = Session::builder()
            .backend(Backend::CpuGemm)
            .multiplier(&exact())
            .compile(&graph)
            .unwrap();
        assert!(session.infer_fused(&[]).unwrap().is_empty());
        // A single request degenerates to solo inference.
        let one = rng::uniform(cifar_input_shape(2), 41, -1.0, 1.0);
        let fused = session.infer_fused(std::slice::from_ref(&one)).unwrap();
        assert_eq!(fused[0], session.infer(&one).unwrap());
        // Mismatched spatial shapes are a typed error, not a panic.
        let odd = rng::uniform(axtensor::Shape4::new(1, 8, 8, 3), 42, -1.0, 1.0);
        assert!(session.infer_fused(&[one, odd]).is_err());
    }

    #[test]
    fn accumulator_knob_applies_to_every_layer() {
        let graph = ResNetConfig::with_depth(8).unwrap().build(7).unwrap();
        let input = rng::uniform(cifar_input_shape(2), 13, -1.0, 1.0);
        let wide = Session::builder()
            .backend(Backend::CpuGemm)
            .multiplier(&exact())
            .compile(&graph)
            .unwrap();
        assert_eq!(wide.accumulator(), Accumulator::Exact);
        // A narrow saturating accumulator must change the network output
        // (ResNet conv sums overflow 10 bits easily)…
        let narrow = Session::builder()
            .backend(Backend::CpuGemm)
            .multiplier(&exact())
            .accumulator(Accumulator::Saturating(10))
            .compile(&graph)
            .unwrap();
        assert_eq!(narrow.accumulator(), Accumulator::Saturating(10));
        let a = wide.infer(&input).unwrap();
        let b = narrow.infer(&input).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() > 0.0, "10-bit sat must bite");
        // …and survive a reassign: the new session keeps the model.
        let renarrow = narrow.reassign(&Assignment::uniform(rough())).unwrap();
        assert_eq!(renarrow.accumulator(), Accumulator::Saturating(10));
    }

    #[test]
    fn reassign_reuses_unchanged_layers() {
        let graph = ResNetConfig::with_depth(8).unwrap().build(5).unwrap();
        let session = Session::builder()
            .backend(Backend::CpuGemm)
            .multiplier(&rough())
            .compile(&graph)
            .unwrap();
        // Protect the stem, keep everything else.
        let next = session
            .reassign(&Assignment::uniform(rough()).with_layer(0, exact()))
            .unwrap();
        assert!(Arc::ptr_eq(&session.layers[1], &next.layers[1]));
        assert!(!Arc::ptr_eq(&session.layers[0], &next.layers[0]));
        assert_eq!(next.multipliers()[0].name(), "mul8s_exact");
        assert_eq!(next.multipliers()[1].name(), "mul8s_bam_v8h0");
        // Both sessions still run.
        let input = rng::uniform(cifar_input_shape(1), 9, -1.0, 1.0);
        let a = session.infer(&input).unwrap();
        let b = next.infer(&input).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() > 0.0, "stem change must show");
    }

    #[test]
    fn reassign_identical_assignment_is_all_reuse() {
        let graph = ResNetConfig::with_depth(8).unwrap().build(6).unwrap();
        let session = Session::builder()
            .backend(Backend::CpuGemm)
            .multiplier(&exact())
            .compile(&graph)
            .unwrap();
        let next = session.reassign(&Assignment::uniform(exact())).unwrap();
        for (a, b) in session.layers.iter().zip(&next.layers) {
            assert!(Arc::ptr_eq(a, b));
        }
    }
}
