//! The three emulation backends of the approximate convolution.
//!
//! All backends compute the same function — the quantized convolution of
//! Eq. 4 with products taken from the multiplier LUT — and are
//! cross-validated in tests. They differ in *how*:
//!
//! - [`run_cpu_direct`]: nested loops (ALWANN \[12\]), `i64` accumulation,
//!   no intermediate patch matrix;
//! - [`run_cpu_gemm`]: Algorithm 1 on host threads — chunked quantizing
//!   im2col, LUT GEMM on the context's persistent worker pool, Eq. 4
//!   correction;
//! - [`run_gpusim`]: Algorithm 1 on the simulated device — the paper's
//!   kernels with texture-cache LUT fetches and analytic cycle accounting.
//!
//! Each backend comes in two flavours: a `*_prepared` variant that
//! consumes a [`PreparedFilter`] plan (all layer-invariant quantization
//! hoisted out — what [`crate::AxConv2D`] calls with its cached plan), and
//! a standalone wrapper of the same name as before that builds a
//! throwaway plan per call and charges its cost to the Quantization phase.

use crate::accumulator::Accumulator;
use crate::kernel;
use crate::prepared::PreparedFilter;
use crate::{EmuContext, EmuError};
use axmult::MulLut;
use axquant::{FilterQuantization, QuantParams};
use axtensor::{ops::Filter, ConvGeometry, Matrix, SegmentTable, Shape4, Tensor};
use gpusim::kernels::gemm::approx_gemm_prepared;
use gpusim::kernels::im2col::{im2col_quant, PatchSumStrategy};
use gpusim::kernels::minmax::reduction_events;
use gpusim::{Phase, PhaseProfile};
use std::borrow::Cow;
use std::time::Instant;

/// Everything a backend needs to run one approximate convolution.
#[derive(Debug, Clone)]
pub struct ConvSpec<'a> {
    /// The filter bank (f32; quantized inside the backend).
    pub filter: &'a Filter,
    /// Stride/dilation/padding.
    pub geometry: ConvGeometry,
    /// Optional per-output-channel bias, added after dequantization.
    pub bias: Option<&'a [f32]>,
    /// The approximate multiplier's truth table.
    pub lut: &'a MulLut,
    /// Input quantization (`α₁`, `β₁`), from the batch's min/max.
    pub input_q: QuantParams,
    /// Filter quantization (`α₂`, `β₂`), per-tensor or per-channel, from
    /// the weight range(s). A `Cow` so the prepared call path can borrow
    /// the plan's resolved quantization instead of cloning per call
    /// (only the standalone wrappers, which build a throwaway plan, read
    /// it).
    pub filter_q: Cow<'a, FilterQuantization>,
    /// Accumulator model of the emulated MAC (CPU backends; the GPU
    /// kernel accumulates in f32 like the paper's).
    pub accumulator: Accumulator,
}

/// Validate an input range before it feeds `ComputeCoeffs`: both ends
/// finite and not inverted. NaNs (from e.g. a poisoned activation tensor)
/// and `lo > hi` would otherwise flow silently into [`QuantParams`] and
/// produce garbage scales.
///
/// # Errors
///
/// Returns [`EmuError::Config`] for non-finite or inverted ranges.
pub fn validate_range(lo: f32, hi: f32) -> Result<(), EmuError> {
    if !lo.is_finite() || !hi.is_finite() || lo > hi {
        return Err(EmuError::Config(format!(
            "invalid input range [{lo}, {hi}]: bounds must be finite with lo <= hi"
        )));
    }
    Ok(())
}

fn apply_bias(mut out: Tensor<f32>, bias: Option<&[f32]>) -> Tensor<f32> {
    if let Some(b) = bias {
        let c = out.shape().c;
        // NHWC invariant: the channel is the fastest-varying dimension, so
        // flat index i belongs to channel i % c. Tensor construction
        // guarantees len == n*h*w*c, but the bias length is caller data —
        // guard it so a mis-sized bias cannot silently rotate through the
        // wrong channels.
        assert_eq!(
            b.len(),
            c,
            "bias length {} != output channel count {c}",
            b.len()
        );
        debug_assert!(
            out.as_slice().len().is_multiple_of(c.max(1)),
            "non-NHWC buffer"
        );
        for (i, v) in out.as_mut_slice().iter_mut().enumerate() {
            *v += b[i % c];
        }
    }
    out
}

/// Direct nested-loop emulation (the paper's approximate-CPU baseline).
///
/// When `use_lut` is false the inner multiplication uses native integer
/// arithmetic on the same quantized operands instead of the LUT fetch —
/// the difference in wall-clock between the two runs isolates the LUT
/// share for the Fig. 2 CPU breakdown.
///
/// Builds a throwaway [`PreparedFilter`] per call; use
/// [`run_cpu_direct_prepared`] to amortize it across calls.
///
/// # Errors
///
/// Propagates shape errors.
pub fn run_cpu_direct(
    input: &Tensor<f32>,
    spec: &ConvSpec<'_>,
    use_lut: bool,
) -> Result<(Tensor<f32>, PhaseProfile), EmuError> {
    let t0 = Instant::now();
    let plan = PreparedFilter::from_filter(spec.filter, &spec.filter_q);
    let build_s = t0.elapsed().as_secs_f64();
    let (out, mut profile) = run_cpu_direct_prepared(input, spec, &plan, use_lut)?;
    profile.add(Phase::Quantization, build_s);
    Ok((out, profile))
}

/// [`run_cpu_direct`] against a pre-built plan: only the input side is
/// quantized per call. `plan` must have been built from `spec.filter`
/// under `spec.filter_q`.
///
/// # Errors
///
/// Propagates shape errors.
pub fn run_cpu_direct_prepared(
    input: &Tensor<f32>,
    spec: &ConvSpec<'_>,
    plan: &PreparedFilter,
    use_lut: bool,
) -> Result<(Tensor<f32>, PhaseProfile), EmuError> {
    let fs = spec.filter.shape();
    let out_shape = spec.geometry.output_shape(input.shape(), fs)?;
    let (pad_h, pad_w) = spec.geometry.pad_before(input.shape(), fs);
    let shape = input.shape();
    let mut profile = PhaseProfile::new();

    // --- Input quantization (logical values); the filter side comes
    // pre-quantized from the plan.
    let t0 = Instant::now();
    let q_in: Vec<i32> = input
        .as_slice()
        .iter()
        .map(|&v| spec.input_q.quantize(v))
        .collect();
    let zero_q = spec.input_q.quantize(0.0);
    profile.add(Phase::Quantization, t0.elapsed().as_secs_f64());
    let col_q = plan.col_q();
    let q_f = plan.q_logical();
    let sf = plan.sf();

    // --- The convolution loops.
    let t1 = Instant::now();
    let b1 = i64::from(spec.input_q.zero_point());
    let a1 = f64::from(spec.input_q.scale());
    let n_taps = fs.patch_len() as i64;
    let mut out = Tensor::<f32>::zeros(out_shape);
    for n in 0..out_shape.n {
        for oy in 0..out_shape.h {
            for ox in 0..out_shape.w {
                // Patch sum Sp for this output position.
                let mut sp = 0i64;
                let mut taps: Vec<i32> = Vec::with_capacity(fs.patch_len());
                for ky in 0..fs.h {
                    let iy = (oy * spec.geometry.stride.0 + ky * spec.geometry.dilation.0) as isize
                        - pad_h as isize;
                    for kx in 0..fs.w {
                        let ix = (ox * spec.geometry.stride.1 + kx * spec.geometry.dilation.1)
                            as isize
                            - pad_w as isize;
                        let inside = iy >= 0
                            && (iy as usize) < shape.h
                            && ix >= 0
                            && (ix as usize) < shape.w;
                        for ci in 0..fs.c_in {
                            let q = if inside {
                                q_in[shape.index(n, iy as usize, ix as usize, ci)]
                            } else {
                                zero_q
                            };
                            sp += i64::from(q);
                            taps.push(q);
                        }
                    }
                }
                for co in 0..fs.c_out {
                    let b2 = i64::from(col_q[co].zero_point());
                    let a1a2 = a1 * f64::from(col_q[co].scale());
                    let mut acc = 0i64;
                    let mut tap = 0usize;
                    for ky in 0..fs.h {
                        for kx in 0..fs.w {
                            for ci in 0..fs.c_in {
                                let i_val = taps[tap];
                                tap += 1;
                                let f_val = q_f[fs.index(ky, kx, ci, co)];
                                let prod = if use_lut {
                                    i64::from(spec.lut.product(i_val, f_val))
                                } else {
                                    i64::from(i_val) * i64::from(f_val)
                                };
                                acc = spec.accumulator.add(acc, prod);
                            }
                        }
                    }
                    let corrected = acc - b2 * sp - b1 * sf[co] + n_taps * b1 * b2;
                    *out.at_mut(n, oy, ox, co) = (a1a2 * corrected as f64) as f32;
                }
            }
        }
    }
    // The monolithic loop interleaves lookup and accumulation; attribute
    // it to the LUT phase when the LUT is in use (callers isolate the true
    // LUT share by differencing against a `use_lut = false` run).
    profile.add(
        if use_lut {
            Phase::LutLookup
        } else {
            Phase::Other
        },
        t1.elapsed().as_secs_f64(),
    );
    Ok((apply_bias(out, spec.bias), profile))
}

/// Optimized host-side Algorithm 1: chunked quantizing im2col + LUT GEMM
/// on the context's persistent worker pool + Eq. 4 correction.
///
/// Builds a throwaway [`PreparedFilter`] per call; use
/// [`run_cpu_gemm_prepared`] to amortize it across calls. Chunk size and
/// worker pool come from `ctx`.
///
/// # Errors
///
/// Propagates shape errors.
pub fn run_cpu_gemm(
    input: &Tensor<f32>,
    spec: &ConvSpec<'_>,
    ctx: &EmuContext,
) -> Result<(Tensor<f32>, PhaseProfile), EmuError> {
    let t0 = Instant::now();
    let plan = PreparedFilter::from_filter(spec.filter, &spec.filter_q);
    let build_s = t0.elapsed().as_secs_f64();
    let (out, mut profile) = run_cpu_gemm_prepared(input, spec, &plan, ctx)?;
    profile.add(Phase::Quantization, build_s);
    Ok((out, profile))
}

/// [`run_cpu_gemm`] against a pre-built plan: the filter bytes, `Sf` sums
/// and per-channel parameters come straight from `plan`, and the GEMM is
/// the tiled, thread-sharded microkernel of [`crate::kernel`] running on
/// `ctx`'s persistent worker pool — cache-blocked per
/// [`EmuContext::tile_config`], with register micro-tiles streaming the
/// patch matrix against one hoisted LUT row per tap. `plan` must have
/// been built from `spec.filter` under `spec.filter_q`.
///
/// A zero-batch input returns a correctly-shaped empty output.
///
/// # Errors
///
/// Propagates shape errors.
pub fn run_cpu_gemm_prepared(
    input: &Tensor<f32>,
    spec: &ConvSpec<'_>,
    plan: &PreparedFilter,
    ctx: &EmuContext,
) -> Result<(Tensor<f32>, PhaseProfile), EmuError> {
    let fs = spec.filter.shape();
    let mut profile = PhaseProfile::new();
    let out_shape = spec.geometry.output_shape(input.shape(), fs)?;
    let n = input.shape().n;
    if n == 0 {
        return Ok((apply_bias(Tensor::zeros(out_shape), spec.bias), profile));
    }

    let lut = spec.lut;
    let accumulator = spec.accumulator;
    let pool = ctx.pool();
    let tiles = ctx.tile_config();
    let chunk_size = ctx.chunk_size();

    let mut parts: Vec<Tensor<f32>> = Vec::new();
    let mut start = 0usize;
    while start < n {
        let count = chunk_size.min(n - start);
        let chunk = input.batch_slice(start, count);

        // Quantizing im2col (shares the functional kernel; host timing).
        let t1 = Instant::now();
        let patches = im2col_quant(
            &chunk,
            fs,
            spec.geometry,
            spec.input_q,
            PatchSumStrategy::PrefixScan,
        )?
        .output;
        profile.add(Phase::Other, t1.elapsed().as_secs_f64());

        // Blocked LUT GEMM on the persistent pool, on the context's
        // kernel arm (bit-identical whichever arm runs).
        let t2 = Instant::now();
        let out_buf = kernel::dispatch::lut_gemm_dispatch(
            ctx.kernel(),
            &patches.matrix,
            &patches.patch_sums,
            plan,
            spec.input_q,
            lut,
            accumulator,
            tiles,
            pool,
        );
        profile.add(Phase::LutLookup, t2.elapsed().as_secs_f64());

        parts.push(Tensor::from_vec(patches.out_shape, out_buf)?);
        start += count;
    }
    let out = Tensor::concat_batch(&parts)?;
    Ok((apply_bias(out, spec.bias), profile))
}

/// [`run_cpu_gemm_prepared`] over a *fused* multi-request batch: one
/// segmented LUT GEMM per chunk instead of one whole pipeline per
/// request.
///
/// `segments` partitions the batch axis into request spans and `seg_q`
/// gives each span its own input quantization (from its own observers);
/// `spec.input_q` is ignored. Each chunk is intersected with the segment
/// spans, every resulting piece is im2col-quantized under its segment's
/// params — byte-identical to the patches a solo run of that request
/// produces — and the concatenated pieces run as **one** tiled GEMM whose
/// epilogue picks the owning segment's Eq. 4 constants per row. Since
/// every output row depends only on its own patch bytes, its segment's
/// params, and the fixed ascending-`k` fold order, the result is
/// bit-identical to running each request alone and concatenating, for any
/// chunk size, tile shape, thread count, and accumulator model.
///
/// # Errors
///
/// Returns [`EmuError::Config`] if the segment table does not cover
/// exactly the batch or `seg_q` does not cover exactly the segments;
/// propagates shape errors.
#[allow(clippy::too_many_arguments)]
pub fn run_cpu_gemm_fused_prepared(
    input: &Tensor<f32>,
    spec: &ConvSpec<'_>,
    seg_q: &[QuantParams],
    segments: &SegmentTable,
    plan: &PreparedFilter,
    ctx: &EmuContext,
) -> Result<(Tensor<f32>, PhaseProfile), EmuError> {
    let fs = spec.filter.shape();
    let mut profile = PhaseProfile::new();
    let out_shape = spec.geometry.output_shape(input.shape(), fs)?;
    let n = input.shape().n;
    if segments.total() != n || seg_q.len() != segments.len() {
        return Err(EmuError::Config(format!(
            "fused batch of {n} images: segment table covers {} images with {} \
             segments but {} input-quantization sets were supplied",
            segments.total(),
            segments.len(),
            seg_q.len()
        )));
    }
    if n == 0 {
        return Ok((apply_bias(Tensor::zeros(out_shape), spec.bias), profile));
    }

    let lut = spec.lut;
    let accumulator = spec.accumulator;
    let pool = ctx.pool();
    let tiles = ctx.tile_config();
    let chunk_size = ctx.chunk_size();
    let k = fs.patch_len();

    let mut parts: Vec<Tensor<f32>> = Vec::new();
    let mut start = 0usize;
    while start < n {
        let count = chunk_size.min(n - start);

        // Intersect the chunk with the request spans: each piece is
        // im2col-quantized under its own segment's params, then all
        // pieces run as one segmented GEMM.
        let t1 = Instant::now();
        let mut bytes: Vec<u8> = Vec::new();
        let mut sums: Vec<i64> = Vec::new();
        let mut piece_q: Vec<QuantParams> = Vec::new();
        let mut piece_rows: Vec<usize> = Vec::new();
        for (s, (seg_start, seg_end)) in segments.iter().enumerate() {
            let lo = seg_start.max(start);
            let hi = seg_end.min(start + count);
            if lo >= hi {
                continue;
            }
            let piece = input.batch_slice(lo, hi - lo);
            let patches = im2col_quant(
                &piece,
                fs,
                spec.geometry,
                seg_q[s],
                PatchSumStrategy::PrefixScan,
            )?
            .output;
            bytes.extend_from_slice(patches.matrix.as_slice());
            sums.extend_from_slice(&patches.patch_sums);
            piece_q.push(seg_q[s]);
            piece_rows.push(patches.matrix.rows());
        }
        let rows = sums.len();
        let matrix = Matrix::from_vec(rows, k, bytes)?;
        let row_table = SegmentTable::from_counts(&piece_rows);
        profile.add(Phase::Other, t1.elapsed().as_secs_f64());

        // One fused, blocked LUT GEMM for the whole chunk, on the
        // context's kernel arm.
        let t2 = Instant::now();
        let out_buf = kernel::dispatch::lut_gemm_dispatch_seg(
            ctx.kernel(),
            &matrix,
            &sums,
            plan,
            &piece_q,
            &row_table,
            lut,
            accumulator,
            tiles,
            pool,
        );
        profile.add(Phase::LutLookup, t2.elapsed().as_secs_f64());

        parts.push(Tensor::from_vec(
            Shape4::new(count, out_shape.h, out_shape.w, out_shape.c),
            out_buf,
        )?);
        start += count;
    }
    let out = Tensor::concat_batch(&parts)?;
    Ok((apply_bias(out, spec.bias), profile))
}

/// Algorithm 1 on the simulated GPU: the paper's proposal.
///
/// Functional results come from the [`gpusim`] kernels; the profile holds
/// *modeled* seconds derived from the kernels' event counts under the
/// context's device calibration. The min/max reductions the transformed
/// graph performs per batch are also charged here (they run on the device
/// in the paper's implementation).
///
/// Builds a throwaway [`PreparedFilter`] per call and charges its modeled
/// quantization cost; use [`run_gpusim_prepared`] to amortize it.
///
/// # Errors
///
/// Propagates shape errors.
pub fn run_gpusim(
    input: &Tensor<f32>,
    spec: &ConvSpec<'_>,
    ctx: &EmuContext,
) -> Result<(Tensor<f32>, PhaseProfile), EmuError> {
    let plan = PreparedFilter::from_filter(spec.filter, &spec.filter_q);
    let (out, mut profile) = run_gpusim_prepared(input, spec, &plan, ctx)?;
    // A standalone call pays the filter quantization a prepared caller
    // pays once at plan-build time.
    let ev = plan.quant_events();
    profile.add(Phase::Quantization, ctx.device().seconds(&ev));
    ctx.record_events(&ev);
    Ok((out, profile))
}

/// [`run_gpusim`] against a pre-built plan: the device kernels consume the
/// plan's quantized filter bytes directly, so no chunk ever re-quantizes
/// the filter bank (the pre-refactor code did — and rebuilt the f32
/// filter matrix — on **every** chunk). `plan` must have been built from
/// `spec.filter` under `spec.filter_q`.
///
/// A zero-batch input returns a correctly-shaped empty output.
///
/// # Errors
///
/// Propagates shape errors.
pub fn run_gpusim_prepared(
    input: &Tensor<f32>,
    spec: &ConvSpec<'_>,
    plan: &PreparedFilter,
    ctx: &EmuContext,
) -> Result<(Tensor<f32>, PhaseProfile), EmuError> {
    let fs = spec.filter.shape();
    let dev = ctx.device();
    let mut profile = PhaseProfile::new();

    // Min/max reductions over the input (the inserted Min/Max nodes).
    profile.add(
        Phase::Quantization,
        dev.seconds(&reduction_events(input.shape().len())),
    );

    let out_shape = spec.geometry.output_shape(input.shape(), fs)?;
    let n = input.shape().n;
    if n == 0 {
        return Ok((apply_bias(Tensor::zeros(out_shape), spec.bias), profile));
    }

    let mut parts: Vec<Tensor<f32>> = Vec::new();
    let mut start = 0usize;
    while start < n {
        let count = ctx.chunk_size().min(n - start);
        let chunk = input.batch_slice(start, count);

        let im2col = im2col_quant(
            &chunk,
            fs,
            spec.geometry,
            spec.input_q,
            PatchSumStrategy::PrefixScan,
        )?;
        for (phase, ev) in &im2col.events {
            profile.add(*phase, dev.seconds(ev));
            ctx.record_events(ev);
        }
        let patches = im2col.output;

        let gemm = ctx.with_cache(|cache| {
            approx_gemm_prepared(
                &patches.matrix,
                &patches.patch_sums,
                plan.f_bytes(),
                plan.sf(),
                plan.col_q(),
                spec.input_q,
                spec.lut,
                cache,
            )
        })?;
        for (phase, ev) in &gemm.events {
            profile.add(*phase, dev.seconds(ev));
            ctx.record_events(ev);
        }
        parts.push(Tensor::from_vec(patches.out_shape, gemm.output.into_vec())?);
        start += count;
    }
    let out = Tensor::concat_batch(&parts)?;
    Ok((apply_bias(out, spec.bias), profile))
}

/// The accurate f32 convolution timed on the device model — the paper's
/// "accurate Conv2D (GPU)" baseline. Functional output comes from the f32
/// reference; the cost is the FMA/DRAM roofline of a dense GEMM.
///
/// # Errors
///
/// Propagates shape errors.
pub fn run_gpusim_accurate(
    input: &Tensor<f32>,
    filter: &Filter,
    geometry: ConvGeometry,
    bias: Option<&[f32]>,
    ctx: &EmuContext,
) -> Result<(Tensor<f32>, PhaseProfile), EmuError> {
    let out = axtensor::ops::conv2d_gemm(input, filter, geometry)?;
    let macs = geometry.mac_count(input.shape(), filter.shape())?;
    let mut ev = gpusim::EventCounts::new();
    ev.fma_ops = macs;
    ev.global_read_bytes = (input.shape().len() + filter.shape().len()) as u64 * 4;
    ev.global_write_bytes = out.shape().len() as u64 * 4;
    let mut profile = PhaseProfile::new();
    profile.add(Phase::Other, ctx.device().seconds(&ev));
    Ok((apply_bias(out, bias), profile))
}

/// Reference output shape helper shared by the layer.
///
/// # Errors
///
/// Propagates shape errors.
pub fn output_shape(
    input: Shape4,
    spec_filter: &Filter,
    geometry: ConvGeometry,
) -> Result<Shape4, EmuError> {
    Ok(geometry.output_shape(input, spec_filter.shape())?)
}

/// Build a quantized reference output with exact arithmetic (quantize →
/// integer convolution → dequantize) — what TensorFlow's fake-quant path
/// computes. `AxConv2D` with an **exact** LUT must match this bit-for-bit
/// up to accumulator rounding; the paper: "the accuracy is the same as if
/// we use the quantization followed by dequantization available in
/// TensorFlow".
///
/// # Errors
///
/// Propagates shape errors.
pub fn quantized_reference(
    input: &Tensor<f32>,
    spec: &ConvSpec<'_>,
) -> Result<Tensor<f32>, EmuError> {
    let exact = MulLut::exact(spec.lut.signedness());
    let spec_exact = ConvSpec {
        lut: &exact,
        ..spec.clone()
    };
    let (out, _) = run_cpu_direct(input, &spec_exact, false)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Backend;
    use axmult::Signedness;
    use axquant::{QuantRange, RoundMode};
    use axtensor::{rng, FilterShape, Padding};

    fn spec<'a>(filter: &'a Filter, lut: &'a MulLut, geom: ConvGeometry) -> ConvSpec<'a> {
        ConvSpec {
            filter,
            geometry: geom,
            bias: None,
            lut,
            input_q: QuantParams::from_range(-1.0, 1.0, QuantRange::i8(), RoundMode::NearestEven),
            filter_q: Cow::Owned(
                QuantParams::from_range(-0.5, 0.5, QuantRange::i8(), RoundMode::NearestEven).into(),
            ),
            accumulator: Accumulator::Exact,
        }
    }

    fn close(a: &Tensor<f32>, b: &Tensor<f32>, tol: f32) -> bool {
        a.max_abs_diff(b).unwrap() <= tol
    }

    #[test]
    fn all_backends_agree_with_exact_lut() {
        let input = rng::uniform(Shape4::new(3, 7, 6, 3), 1, -1.0, 1.0);
        let filter = rng::uniform_filter(FilterShape::new(3, 3, 3, 5), 2, -0.5, 0.5);
        let lut = MulLut::exact(Signedness::Signed);
        for geom in [
            ConvGeometry::default(),
            ConvGeometry::default().with_stride(2),
            ConvGeometry::default().with_padding(Padding::Valid),
        ] {
            let s = spec(&filter, &lut, geom);
            let (direct, _) = run_cpu_direct(&input, &s, true).unwrap();
            let gemm_ctx = EmuContext::new(Backend::CpuGemm)
                .with_chunk_size(2)
                .unwrap();
            let (gemm, _) = run_cpu_gemm(&input, &s, &gemm_ctx).unwrap();
            let ctx = EmuContext::new(Backend::GpuSim).with_chunk_size(2).unwrap();
            let (gpu, _) = run_gpusim(&input, &s, &ctx).unwrap();
            assert!(close(&direct, &gemm, 1e-4), "direct vs gemm, {geom:?}");
            assert!(close(&direct, &gpu, 1e-2), "direct vs gpu, {geom:?}");
        }
    }

    #[test]
    fn backends_agree_with_approximate_lut() {
        let input = rng::uniform(Shape4::new(2, 6, 6, 2), 3, -1.0, 1.0);
        let filter = rng::uniform_filter(FilterShape::new(3, 3, 2, 4), 4, -0.5, 0.5);
        let bam = axmult::catalog::by_name("mul8s_bam_v8h0").unwrap();
        let s = spec(&filter, bam.lut(), ConvGeometry::default());
        let (direct, _) = run_cpu_direct(&input, &s, true).unwrap();
        let gemm_ctx = EmuContext::new(Backend::CpuGemm)
            .with_chunk_size(1)
            .unwrap();
        let (gemm, _) = run_cpu_gemm(&input, &s, &gemm_ctx).unwrap();
        let ctx = EmuContext::new(Backend::GpuSim);
        let (gpu, _) = run_gpusim(&input, &s, &ctx).unwrap();
        assert!(close(&direct, &gemm, 1e-4));
        assert!(close(&direct, &gpu, 1e-2));
    }

    #[test]
    fn prepared_paths_match_standalone_wrappers() {
        let input = rng::uniform(Shape4::new(3, 6, 6, 2), 17, -1.0, 1.0);
        let filter = rng::uniform_filter(FilterShape::new(3, 3, 2, 4), 18, -0.5, 0.5);
        let lut = MulLut::exact(Signedness::Signed);
        let s = spec(&filter, &lut, ConvGeometry::default().with_stride(2));
        let plan = PreparedFilter::from_filter(s.filter, &s.filter_q);

        let (direct, _) = run_cpu_direct(&input, &s, true).unwrap();
        let (direct_p, _) = run_cpu_direct_prepared(&input, &s, &plan, true).unwrap();
        assert_eq!(direct, direct_p);

        let ctx = EmuContext::new(Backend::CpuGemm)
            .with_chunk_size(2)
            .unwrap();
        let (gemm, _) = run_cpu_gemm(&input, &s, &ctx).unwrap();
        let (gemm_p, _) = run_cpu_gemm_prepared(&input, &s, &plan, &ctx).unwrap();
        assert_eq!(gemm, gemm_p);

        let gctx = EmuContext::new(Backend::GpuSim).with_chunk_size(2).unwrap();
        let (gpu, _) = run_gpusim(&input, &s, &gctx).unwrap();
        let (gpu_p, _) = run_gpusim_prepared(&input, &s, &plan, &gctx).unwrap();
        assert_eq!(gpu, gpu_p);
    }

    #[test]
    fn zero_batch_returns_shaped_empty_output() {
        let input = Tensor::<f32>::zeros(Shape4::new(0, 6, 6, 2));
        let filter = rng::uniform_filter(FilterShape::new(3, 3, 2, 4), 19, -0.5, 0.5);
        let lut = MulLut::exact(Signedness::Signed);
        let bias = [0.5f32, -0.5, 1.0, 0.0];
        let mut s = spec(&filter, &lut, ConvGeometry::default());
        s.bias = Some(&bias);
        let expect = Shape4::new(0, 6, 6, 4);

        let (direct, _) = run_cpu_direct(&input, &s, true).unwrap();
        assert_eq!(direct.shape(), expect);
        assert!(direct.as_slice().is_empty());

        let ctx = EmuContext::new(Backend::CpuGemm);
        let (gemm, _) = run_cpu_gemm(&input, &s, &ctx).unwrap();
        assert_eq!(gemm.shape(), expect);
        assert!(gemm.as_slice().is_empty());

        let gctx = EmuContext::new(Backend::GpuSim);
        let (gpu, _) = run_gpusim(&input, &s, &gctx).unwrap();
        assert_eq!(gpu.shape(), expect);
        assert!(gpu.as_slice().is_empty());
    }

    #[test]
    fn fused_gemm_is_per_request_runs_chained() {
        // The fused runner must be bit-identical to running each segment
        // alone (with its own params) and concatenating — across chunk
        // sizes that split requests and accumulator models, with an empty
        // segment in the mix.
        let input = rng::uniform(Shape4::new(7, 6, 6, 2), 51, -1.0, 1.0);
        let filter = rng::uniform_filter(FilterShape::new(3, 3, 2, 3), 52, -0.5, 0.5);
        let lut = MulLut::exact(Signedness::Signed);
        let segments = SegmentTable::from_counts(&[2, 0, 4, 1]);
        let seg_q: Vec<QuantParams> = segments
            .iter()
            .map(|(a, b)| {
                let (lo, hi) = axtensor::ops::min_max(&input.batch_slice(a, b - a));
                QuantParams::from_range(lo, hi, QuantRange::i8(), RoundMode::NearestEven)
            })
            .collect();
        let bias = [0.25f32, -0.5, 0.125];
        for accumulator in [Accumulator::Exact, Accumulator::Saturating(12)] {
            for chunk in [1, 3, 16] {
                let ctx = EmuContext::new(Backend::CpuGemm)
                    .with_chunk_size(chunk)
                    .unwrap();
                let mut s = spec(&filter, &lut, ConvGeometry::default());
                s.bias = Some(&bias);
                s.accumulator = accumulator;
                let plan = PreparedFilter::from_filter(s.filter, &s.filter_q);
                let (fused, _) =
                    run_cpu_gemm_fused_prepared(&input, &s, &seg_q, &segments, &plan, &ctx)
                        .unwrap();
                let mut parts = Vec::new();
                for (i, (a, b)) in segments.iter().enumerate() {
                    let piece = input.batch_slice(a, b - a);
                    let mut ss = s.clone();
                    ss.input_q = seg_q[i];
                    parts.push(run_cpu_gemm_prepared(&piece, &ss, &plan, &ctx).unwrap().0);
                }
                let chained = Tensor::concat_batch(&parts).unwrap();
                assert_eq!(fused, chained, "{accumulator:?} chunk {chunk}");
            }
        }
    }

    #[test]
    fn fused_gemm_rejects_mismatched_segments() {
        let input = rng::uniform(Shape4::new(3, 6, 6, 2), 53, -1.0, 1.0);
        let filter = rng::uniform_filter(FilterShape::new(3, 3, 2, 3), 54, -0.5, 0.5);
        let lut = MulLut::exact(Signedness::Signed);
        let s = spec(&filter, &lut, ConvGeometry::default());
        let plan = PreparedFilter::from_filter(s.filter, &s.filter_q);
        let ctx = EmuContext::new(Backend::CpuGemm);
        let err = run_cpu_gemm_fused_prepared(
            &input,
            &s,
            &[s.input_q],
            &SegmentTable::from_counts(&[2]),
            &plan,
            &ctx,
        )
        .unwrap_err();
        assert!(matches!(err, EmuError::Config(_)), "{err}");
    }

    #[test]
    fn range_validation_rejects_nan_and_inverted() {
        assert!(validate_range(-1.0, 1.0).is_ok());
        assert!(validate_range(0.0, 0.0).is_ok());
        assert!(validate_range(f32::NAN, 1.0).is_err());
        assert!(validate_range(-1.0, f32::NAN).is_err());
        assert!(validate_range(f32::NEG_INFINITY, 1.0).is_err());
        assert!(validate_range(-1.0, f32::INFINITY).is_err());
        assert!(validate_range(1.0, -1.0).is_err());
    }

    #[test]
    #[should_panic(expected = "bias length")]
    fn mis_sized_bias_is_rejected() {
        let out = Tensor::<f32>::zeros(Shape4::new(1, 2, 2, 3));
        let bias = [1.0f32, 2.0]; // 2 entries for 3 channels
        let _ = apply_bias(out, Some(&bias));
    }

    #[test]
    fn exact_lut_matches_quantized_reference() {
        let input = rng::uniform(Shape4::new(2, 8, 8, 3), 5, -1.0, 1.0);
        let filter = rng::uniform_filter(FilterShape::new(3, 3, 3, 4), 6, -0.5, 0.5);
        let lut = MulLut::exact(Signedness::Signed);
        let s = spec(&filter, &lut, ConvGeometry::default());
        let (out, _) = run_cpu_direct(&input, &s, true).unwrap();
        let reference = quantized_reference(&input, &s).unwrap();
        assert!(close(&out, &reference, 1e-5));
    }

    #[test]
    fn quantization_error_bounded_vs_float_conv() {
        // The approximate layer "produces a single floating-point output
        // which has the same range as ... the original convolutional
        // layer"; with an exact LUT the only deviation is quantization
        // noise.
        let input = rng::uniform(Shape4::new(1, 8, 8, 3), 7, -1.0, 1.0);
        let filter = rng::uniform_filter(FilterShape::new(3, 3, 3, 4), 8, -0.5, 0.5);
        let lut = MulLut::exact(Signedness::Signed);
        let s = spec(&filter, &lut, ConvGeometry::default());
        let (out, _) = run_cpu_direct(&input, &s, true).unwrap();
        let float_ref = axtensor::ops::conv2d_direct(&input, &filter, s.geometry).unwrap();
        // 27-tap dot product of 8-bit quantized values: error stays well
        // below the combined quantization steps.
        let bound = 27.0 * (s.input_q.scale() + s.filter_q.for_channel(0).scale());
        assert!(
            out.max_abs_diff(&float_ref).unwrap() < bound,
            "diff {} vs bound {bound}",
            out.max_abs_diff(&float_ref).unwrap()
        );
    }

    #[test]
    fn chunking_is_transparent() {
        let input = rng::uniform(Shape4::new(5, 6, 6, 2), 9, -1.0, 1.0);
        let filter = rng::uniform_filter(FilterShape::new(3, 3, 2, 3), 10, -0.5, 0.5);
        let lut = MulLut::exact(Signedness::Signed);
        let s = spec(&filter, &lut, ConvGeometry::default());
        let one_ctx = EmuContext::new(Backend::CpuGemm)
            .with_chunk_size(5)
            .unwrap();
        let (one, _) = run_cpu_gemm(&input, &s, &one_ctx).unwrap();
        let many_ctx = EmuContext::new(Backend::CpuGemm)
            .with_chunk_size(1)
            .unwrap();
        let (many, _) = run_cpu_gemm(&input, &s, &many_ctx).unwrap();
        assert!(close(&one, &many, 1e-6));
    }

    #[test]
    fn bias_applied_after_dequantization() {
        let input = Tensor::<f32>::zeros(Shape4::new(1, 2, 2, 1));
        let filter = rng::uniform_filter(FilterShape::new(1, 1, 1, 2), 11, -0.5, 0.5);
        let lut = MulLut::exact(Signedness::Signed);
        let bias = [1.0f32, -2.0];
        let mut s = spec(&filter, &lut, ConvGeometry::default());
        s.bias = Some(&bias);
        let (out, _) = run_cpu_direct(&input, &s, true).unwrap();
        for px in out.as_slice().chunks(2) {
            assert!((px[0] - 1.0).abs() < 1e-6);
            assert!((px[1] + 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn gpusim_profile_attributes_lut_phase() {
        let input = rng::uniform(Shape4::new(1, 6, 6, 2), 13, -1.0, 1.0);
        let filter = rng::uniform_filter(FilterShape::new(3, 3, 2, 4), 14, -0.5, 0.5);
        let lut = MulLut::exact(Signedness::Signed);
        let s = spec(&filter, &lut, ConvGeometry::default());
        let ctx = EmuContext::new(Backend::GpuSim);
        let (_, profile) = run_gpusim(&input, &s, &ctx).unwrap();
        assert!(profile.seconds(Phase::LutLookup) > 0.0);
        assert!(profile.seconds(Phase::Quantization) > 0.0);
        assert!(profile.seconds(Phase::Other) > 0.0);
    }

    #[test]
    fn gpusim_prepared_models_less_quantization() {
        // The prepared path's modeled Quantization time must be strictly
        // below the standalone path's, by exactly the plan's one-off
        // filter-quantization charge.
        let input = rng::uniform(Shape4::new(4, 6, 6, 2), 23, -1.0, 1.0);
        let filter = rng::uniform_filter(FilterShape::new(3, 3, 2, 4), 24, -0.5, 0.5);
        let lut = MulLut::exact(Signedness::Signed);
        let s = spec(&filter, &lut, ConvGeometry::default());
        let plan = PreparedFilter::from_filter(s.filter, &s.filter_q);
        let ctx = EmuContext::new(Backend::GpuSim).with_chunk_size(2).unwrap();
        let (_, standalone) = run_gpusim(&input, &s, &ctx).unwrap();
        let (_, prepared) = run_gpusim_prepared(&input, &s, &plan, &ctx).unwrap();
        let charge = ctx.device().seconds(&plan.quant_events());
        let diff = standalone.seconds(Phase::Quantization) - prepared.seconds(Phase::Quantization);
        assert!(
            (diff - charge).abs() < 1e-12,
            "diff {diff} vs one-off charge {charge}"
        );
    }

    #[test]
    fn accurate_gpusim_matches_float_reference() {
        let input = rng::uniform(Shape4::new(2, 6, 6, 3), 15, -1.0, 1.0);
        let filter = rng::uniform_filter(FilterShape::new(3, 3, 3, 4), 16, -0.5, 0.5);
        let ctx = EmuContext::new(Backend::GpuSim);
        let (out, profile) =
            run_gpusim_accurate(&input, &filter, ConvGeometry::default(), None, &ctx).unwrap();
        let reference =
            axtensor::ops::conv2d_gemm(&input, &filter, ConvGeometry::default()).unwrap();
        assert!(close(&out, &reference, 1e-6));
        assert!(profile.total() > 0.0);
    }
}
