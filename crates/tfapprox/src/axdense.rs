//! The approximate fully-connected layer.
//!
//! DNN accelerators route dense (fully-connected) layers through the same
//! integer MAC array as convolutions, so the same LUT emulation applies.
//! `AxDense` mirrors [`crate::AxConv2D`]'s algebra on a `[n, 1, 1, in]`
//! feature tensor: quantize per Eq. 1, multiply through the LUT,
//! dequantize with the Eq. 4 correction (a dense layer is the `K = in`,
//! one-patch-per-batch-row special case of the GEMM formulation).

use crate::prepared::PreparedFilter;
use crate::{backend, EmuContext, EmuError};
use axmult::{MulLut, Signedness};
use axnn::layer::{check_arity, Layer};
use axnn::NnError;
use axquant::{segment_bounds, QuantParams, QuantRange, RoundMode};
use axtensor::{ops, Matrix, SegmentTable, Shape4, Tensor};
use gpusim::{Phase, PhaseProfile};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Approximate dense layer: `[n, 1, 1, in] → [n, 1, 1, out]` with LUT
/// multiplications.
#[derive(Debug, Clone)]
pub struct AxDense {
    /// Row-major `[in, out]` weights.
    weights: Vec<f32>,
    bias: Vec<f32>,
    in_features: usize,
    out_features: usize,
    lut: MulLut,
    round: RoundMode,
    weight_range: (f32, f32),
    ctx: Arc<EmuContext>,
    /// The prepared weight plan (quantized weights + `Sf`), built lazily
    /// on first forward — a dense layer is the `K = in`, per-tensor
    /// special case of [`PreparedFilter`].
    plan: OnceLock<Arc<PreparedFilter>>,
}

impl AxDense {
    /// Create from row-major `[in, out]` weights and a bias of length
    /// `out`.
    ///
    /// # Panics
    ///
    /// Panics if the buffer sizes are inconsistent.
    #[must_use]
    pub fn new(
        in_features: usize,
        out_features: usize,
        weights: Vec<f32>,
        bias: Vec<f32>,
        lut: MulLut,
        ctx: Arc<EmuContext>,
    ) -> Self {
        assert_eq!(weights.len(), in_features * out_features);
        assert_eq!(bias.len(), out_features);
        let weight_range = ops::min_max_slice(&weights);
        AxDense {
            weights,
            bias,
            in_features,
            out_features,
            lut,
            round: RoundMode::NearestEven,
            weight_range,
            ctx,
            plan: OnceLock::new(),
        }
    }

    /// Build the approximate variant of an accurate dense layer.
    #[must_use]
    pub fn from_dense(
        dense: &axnn::layers::Dense,
        mult: &axmult::AxMultiplier,
        ctx: Arc<EmuContext>,
    ) -> Self {
        AxDense::new(
            dense.in_features(),
            dense.out_features(),
            dense.weights().to_vec(),
            dense.bias().to_vec(),
            mult.lut().clone(),
            ctx,
        )
    }

    fn quant_range(&self) -> QuantRange {
        match self.lut.signedness() {
            Signedness::Signed => QuantRange::i8(),
            Signedness::Unsigned => QuantRange::u8(),
        }
    }

    fn weight_quant(&self) -> QuantParams {
        QuantParams::from_range(
            self.weight_range.0,
            self.weight_range.1,
            self.quant_range(),
            self.round,
        )
    }

    /// The cached prepared weight plan, building it if necessary. The
    /// second element carries the one-off build cost (`None` after the
    /// first call).
    fn plan(&self) -> (Arc<PreparedFilter>, Option<PhaseProfile>) {
        let mut built = None;
        let plan = self.plan.get_or_init(|| {
            let t0 = Instant::now();
            let wmat = Matrix::from_vec(self.in_features, self.out_features, self.weights.clone())
                .expect("weight buffer sized in constructor");
            let plan = PreparedFilter::from_matrix(wmat, &self.weight_quant().into());
            let mut profile = PhaseProfile::new();
            profile.add(Phase::Quantization, t0.elapsed().as_secs_f64());
            built = Some(profile);
            Arc::new(plan)
        });
        (Arc::clone(plan), built)
    }

    /// Whether the prepared weight plan has been built.
    #[must_use]
    pub fn is_prepared(&self) -> bool {
        self.plan.get().is_some()
    }

    /// Eagerly build the prepared weight plan (normally built lazily on
    /// the first forward), recording its one-off quantization cost into
    /// the context profile. Idempotent — the dense counterpart of
    /// [`crate::AxConv2D::prepare`], for callers that want lazy
    /// first-forward failures (e.g. non-finite weights) surfaced early.
    /// (The session graph transform only rewrites convolutions, so a
    /// hand-built `AxDense` must be prepared by its owner.)
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::Config`] if the weights are non-finite (the
    /// same guard the forward path enforces).
    pub fn prepare(&self) -> Result<(), EmuError> {
        if !self.weight_range.0.is_finite() || !self.weight_range.1.is_finite() {
            return Err(EmuError::Config(
                "dense weights contain non-finite values".to_owned(),
            ));
        }
        let (_, built) = self.plan();
        if let Some(profile) = built {
            self.ctx.record(&profile);
        }
        Ok(())
    }

    /// Run the approximate dense computation (ranges computed per batch).
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::Config`] if the input feature count mismatches
    /// or the input contains non-finite values.
    pub fn compute(&self, input: &Tensor<f32>) -> Result<Tensor<f32>, EmuError> {
        let s = input.shape();
        if s.h * s.w * s.c != self.in_features {
            return Err(EmuError::Config(format!(
                "input features {} != {}",
                s.h * s.w * s.c,
                self.in_features
            )));
        }
        // `weight_range` comes from the NaN-propagating min/max scan: one
        // O(1) check rejects non-finite weights before they are baked
        // into a cached plan.
        if !self.weight_range.0.is_finite() || !self.weight_range.1.is_finite() {
            return Err(EmuError::Config(
                "dense weights contain non-finite values".to_owned(),
            ));
        }
        let (lo, hi) = ops::min_max(input);
        backend::validate_range(lo, hi)?;
        if s.n == 0 {
            // Zero rows: compute (and charge) nothing — not even the
            // one-off plan build — so zero-image runs report exactly
            // like runs with no batches (see `AxConv2D`).
            return Ok(Tensor::zeros(Shape4::new(0, 1, 1, self.out_features)));
        }
        let input_q = QuantParams::from_range(lo, hi, self.quant_range(), self.round);
        let weight_q = self.weight_quant();
        let (plan, built) = self.plan();

        let mut profile = PhaseProfile::new();
        if let Some(build_profile) = built {
            profile.merge(&build_profile);
        }
        let t0 = Instant::now();
        let q_in: Vec<i32> = input
            .as_slice()
            .iter()
            .map(|&v| input_q.quantize(v))
            .collect();
        profile.add(Phase::Quantization, t0.elapsed().as_secs_f64());
        let q_w = plan.q_logical();
        let sf = plan.sf();

        let t1 = Instant::now();
        let b1 = i64::from(input_q.zero_point());
        let b2 = i64::from(weight_q.zero_point());
        let a1a2 = f64::from(input_q.scale()) * f64::from(weight_q.scale());
        let k = self.in_features as i64;
        let n = s.n;
        let mut out = Tensor::<f32>::zeros(Shape4::new(n, 1, 1, self.out_features));
        for b in 0..n {
            let row = &q_in[b * self.in_features..(b + 1) * self.in_features];
            let sp: i64 = row.iter().map(|&q| i64::from(q)).sum();
            for o in 0..self.out_features {
                let mut acc = 0i64;
                for (i, &iv) in row.iter().enumerate() {
                    acc += i64::from(self.lut.product(iv, q_w[i * self.out_features + o]));
                }
                let corrected = acc - b2 * sp - b1 * sf[o] + k * b1 * b2;
                *out.at_mut(b, 0, 0, o) = (a1a2 * corrected as f64) as f32 + self.bias[o];
            }
        }
        profile.add(Phase::LutLookup, t1.elapsed().as_secs_f64());
        self.ctx.record(&profile);
        Ok(out)
    }

    /// Run the approximate dense computation over a *fused* multi-request
    /// batch, resolving one input range per segment (a dense row is one
    /// image, so [`segment_bounds`] observes each request's rows exactly
    /// as a solo [`Self::compute`] would).
    ///
    /// Bit-identical to computing each segment alone and concatenating:
    /// every output row depends only on its own features and its
    /// segment's `(α₁, β₁)`.
    ///
    /// # Errors
    ///
    /// As [`Self::compute`], applied per segment; additionally rejects a
    /// segment table that does not cover exactly the batch.
    pub fn compute_segmented(
        &self,
        input: &Tensor<f32>,
        segments: &SegmentTable,
    ) -> Result<Tensor<f32>, EmuError> {
        let s = input.shape();
        if s.h * s.w * s.c != self.in_features {
            return Err(EmuError::Config(format!(
                "input features {} != {}",
                s.h * s.w * s.c,
                self.in_features
            )));
        }
        if !self.weight_range.0.is_finite() || !self.weight_range.1.is_finite() {
            return Err(EmuError::Config(
                "dense weights contain non-finite values".to_owned(),
            ));
        }
        if segments.total() != s.n {
            return Err(EmuError::Config(format!(
                "segment table covers {} images but the fused batch holds {}",
                segments.total(),
                s.n
            )));
        }
        let bounds = segment_bounds(input.as_slice(), &segments.counts(), self.in_features);
        for &(lo, hi) in &bounds {
            backend::validate_range(lo, hi)?;
        }
        if s.n == 0 {
            return Ok(Tensor::zeros(Shape4::new(0, 1, 1, self.out_features)));
        }
        let seg_q = QuantParams::for_segments(&bounds, self.quant_range(), self.round);
        let weight_q = self.weight_quant();
        let (plan, built) = self.plan();

        let mut profile = PhaseProfile::new();
        if let Some(build_profile) = built {
            profile.merge(&build_profile);
        }
        // Per-row quantization under the owning segment's params.
        let t0 = Instant::now();
        let data = input.as_slice();
        let mut q_in = vec![0i32; data.len()];
        for (seg, (start, end)) in segments.iter().enumerate() {
            let q = seg_q[seg];
            let span = start * self.in_features..end * self.in_features;
            for (dst, &v) in q_in[span.clone()].iter_mut().zip(&data[span]) {
                *dst = q.quantize(v);
            }
        }
        profile.add(Phase::Quantization, t0.elapsed().as_secs_f64());
        let q_w = plan.q_logical();
        let sf = plan.sf();

        let t1 = Instant::now();
        let b2 = i64::from(weight_q.zero_point());
        let k = self.in_features as i64;
        let row_seg = segments.element_segments();
        // Per-segment epilogue constants, in the exact expression shape of
        // the solo path (`a1 * a2` as one f64 product).
        let b1s: Vec<i64> = seg_q.iter().map(|q| i64::from(q.zero_point())).collect();
        let a1a2s: Vec<f64> = seg_q
            .iter()
            .map(|q| f64::from(q.scale()) * f64::from(weight_q.scale()))
            .collect();
        let n = s.n;
        let mut out = Tensor::<f32>::zeros(Shape4::new(n, 1, 1, self.out_features));
        for b in 0..n {
            let seg = row_seg[b] as usize;
            let (b1, a1a2) = (b1s[seg], a1a2s[seg]);
            let row = &q_in[b * self.in_features..(b + 1) * self.in_features];
            let sp: i64 = row.iter().map(|&q| i64::from(q)).sum();
            for o in 0..self.out_features {
                let mut acc = 0i64;
                for (i, &iv) in row.iter().enumerate() {
                    acc += i64::from(self.lut.product(iv, q_w[i * self.out_features + o]));
                }
                let corrected = acc - b2 * sp - b1 * sf[o] + k * b1 * b2;
                *out.at_mut(b, 0, 0, o) = (a1a2 * corrected as f64) as f32 + self.bias[o];
            }
        }
        profile.add(Phase::LutLookup, t1.elapsed().as_secs_f64());
        self.ctx.record(&profile);
        Ok(out)
    }
}

impl Layer for AxDense {
    fn op_name(&self) -> &str {
        "AxDense"
    }

    fn output_shape(&self, inputs: &[Shape4]) -> Result<Shape4, NnError> {
        check_arity(self.op_name(), inputs, 1)?;
        let s = inputs[0];
        if s.h * s.w * s.c != self.in_features {
            return Err(NnError::Layer {
                layer: self.op_name().to_owned(),
                message: format!(
                    "input features {} != layer in_features {}",
                    s.h * s.w * s.c,
                    self.in_features
                ),
            });
        }
        Ok(Shape4::new(s.n, 1, 1, self.out_features))
    }

    fn forward(&self, inputs: &[&Tensor<f32>]) -> Result<Tensor<f32>, NnError> {
        check_arity(self.op_name(), inputs, 1)?;
        self.compute(inputs[0]).map_err(|e| NnError::Layer {
            layer: "AxDense".to_owned(),
            message: e.to_string(),
        })
    }

    /// The fused-batch forward: per-segment range resolution via
    /// [`Self::compute_segmented`].
    fn forward_segmented(
        &self,
        inputs: &[&Tensor<f32>],
        segments: &SegmentTable,
    ) -> Result<Tensor<f32>, NnError> {
        check_arity(self.op_name(), inputs, 1)?;
        self.compute_segmented(inputs[0], segments)
            .map_err(|e| NnError::Layer {
                layer: "AxDense".to_owned(),
                message: e.to_string(),
            })
    }

    fn mac_count(&self, inputs: &[Shape4]) -> Result<u64, NnError> {
        check_arity(self.op_name(), inputs, 1)?;
        Ok((inputs[0].n * self.in_features * self.out_features) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Backend;
    use axnn::layers::Dense;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_parts(seed: u64) -> (Vec<f32>, Vec<f32>, Tensor<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let weights: Vec<f32> = (0..64 * 10).map(|_| rng.gen_range(-0.3..0.3)).collect();
        let bias: Vec<f32> = (0..10).map(|_| rng.gen_range(-0.1..0.1)).collect();
        let input = Tensor::from_fn(Shape4::new(3, 1, 1, 64), |_, _, _, _| {
            rng.gen_range(-1.0..1.0)
        });
        (weights, bias, input)
    }

    #[test]
    fn exact_lut_tracks_float_dense() {
        let (weights, bias, input) = random_parts(1);
        let float_layer = Dense::new(64, 10, weights.clone(), bias.clone());
        let float_out = float_layer.forward(&[&input]).unwrap();
        let ctx = Arc::new(EmuContext::new(Backend::CpuDirect));
        let ax = AxDense::new(
            64,
            10,
            weights,
            bias,
            MulLut::exact(Signedness::Signed),
            ctx,
        );
        let ax_out = ax.compute(&input).unwrap();
        // 64-term dot product of 8-bit-quantized values.
        let diff = ax_out.max_abs_diff(&float_out).unwrap();
        assert!(diff < 0.2, "diff {diff}");
    }

    #[test]
    fn layer_contract() {
        let (weights, bias, input) = random_parts(2);
        let ctx = Arc::new(EmuContext::new(Backend::CpuDirect));
        let ax = AxDense::new(
            64,
            10,
            weights,
            bias,
            MulLut::exact(Signedness::Signed),
            ctx,
        );
        let out = ax.forward(&[&input]).unwrap();
        assert_eq!(out.shape(), Shape4::new(3, 1, 1, 10));
        assert_eq!(ax.mac_count(&[input.shape()]).unwrap(), 3 * 64 * 10);
        assert_eq!(ax.op_name(), "AxDense");
    }

    #[test]
    fn feature_mismatch_rejected() {
        let (weights, bias, _) = random_parts(3);
        let ctx = Arc::new(EmuContext::new(Backend::CpuDirect));
        let ax = AxDense::new(
            64,
            10,
            weights,
            bias,
            MulLut::exact(Signedness::Signed),
            ctx,
        );
        let bad = Tensor::<f32>::zeros(Shape4::new(1, 1, 1, 32));
        assert!(ax.compute(&bad).is_err());
    }

    #[test]
    fn approximate_lut_shifts_output() {
        let (weights, bias, input) = random_parts(4);
        let ctx = Arc::new(EmuContext::new(Backend::CpuDirect));
        let exact = AxDense::new(
            64,
            10,
            weights.clone(),
            bias.clone(),
            MulLut::exact(Signedness::Signed),
            Arc::clone(&ctx),
        );
        let bam = axmult::catalog::by_name("mul8s_bam_v8h0").unwrap();
        let approx = AxDense::new(64, 10, weights, bias, bam.lut().clone(), ctx);
        let a = exact.compute(&input).unwrap();
        let b = approx.compute(&input).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() > 0.0);
    }

    #[test]
    fn weight_plan_built_once_and_results_stable() {
        let (weights, bias, input) = random_parts(6);
        let ctx = Arc::new(EmuContext::new(Backend::CpuDirect));
        let ax = AxDense::new(
            64,
            10,
            weights,
            bias,
            MulLut::exact(Signedness::Signed),
            ctx,
        );
        assert!(!ax.is_prepared());
        let first = ax.compute(&input).unwrap();
        assert!(ax.is_prepared());
        let second = ax.compute(&input).unwrap();
        assert_eq!(first, second, "cached plan must be bit-identical");
    }

    #[test]
    fn prepare_is_eager_and_idempotent() {
        let (weights, bias, input) = random_parts(10);
        let ctx = Arc::new(EmuContext::new(Backend::CpuDirect));
        let ax = AxDense::new(
            64,
            10,
            weights,
            bias,
            MulLut::exact(Signedness::Signed),
            Arc::clone(&ctx),
        );
        assert!(!ax.is_prepared());
        ax.prepare().unwrap();
        assert!(ax.is_prepared());
        let quant_after_prepare = ctx.profile().seconds(Phase::Quantization);
        assert!(quant_after_prepare > 0.0);
        ax.prepare().unwrap(); // no-op
        assert_eq!(
            ctx.profile().seconds(Phase::Quantization),
            quant_after_prepare
        );
        let out = ax.compute(&input).unwrap();
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn prepare_rejects_non_finite_weights() {
        let (mut weights, bias, _) = random_parts(11);
        weights[0] = f32::NAN;
        let ctx = Arc::new(EmuContext::new(Backend::CpuDirect));
        let ax = AxDense::new(
            64,
            10,
            weights,
            bias,
            MulLut::exact(Signedness::Signed),
            ctx,
        );
        let err = ax.prepare().unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
        assert!(!ax.is_prepared());
    }

    #[test]
    fn non_finite_weights_are_rejected() {
        let (mut weights, bias, input) = random_parts(9);
        weights[17] = f32::INFINITY;
        let ctx = Arc::new(EmuContext::new(Backend::CpuDirect));
        let ax = AxDense::new(
            64,
            10,
            weights,
            bias,
            MulLut::exact(Signedness::Signed),
            ctx,
        );
        let err = ax.compute(&input).unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn non_finite_input_is_an_error() {
        let (weights, bias, _) = random_parts(7);
        let ctx = Arc::new(EmuContext::new(Backend::CpuDirect));
        let ax = AxDense::new(
            64,
            10,
            weights,
            bias,
            MulLut::exact(Signedness::Signed),
            ctx,
        );
        let mut bad = Tensor::<f32>::zeros(Shape4::new(1, 1, 1, 64));
        bad.as_mut_slice()[3] = f32::NAN;
        assert!(ax.compute(&bad).is_err());
    }

    #[test]
    fn zero_batch_dense_returns_empty_output() {
        let (weights, bias, _) = random_parts(8);
        let ctx = Arc::new(EmuContext::new(Backend::CpuDirect));
        let ax = AxDense::new(
            64,
            10,
            weights,
            bias,
            MulLut::exact(Signedness::Signed),
            ctx,
        );
        let empty = Tensor::<f32>::zeros(Shape4::new(0, 1, 1, 64));
        let out = ax.compute(&empty).unwrap();
        assert_eq!(out.shape(), Shape4::new(0, 1, 1, 10));
        assert!(out.as_slice().is_empty());
    }

    #[test]
    fn segmented_compute_matches_solo_chained() {
        let (weights, bias, _) = random_parts(12);
        let mut rng = StdRng::seed_from_u64(13);
        let input = Tensor::from_fn(Shape4::new(5, 1, 1, 64), |_, _, _, _| {
            rng.gen_range(-1.0..1.0)
        });
        let ctx = Arc::new(EmuContext::new(Backend::CpuDirect));
        let ax = AxDense::new(
            64,
            10,
            weights,
            bias,
            MulLut::exact(Signedness::Signed),
            ctx,
        );
        let segments = SegmentTable::from_counts(&[2, 0, 1, 2]);
        let fused = ax.compute_segmented(&input, &segments).unwrap();
        let mut parts = Vec::new();
        for (start, end) in segments.iter() {
            parts.push(ax.compute(&input.batch_slice(start, end - start)).unwrap());
        }
        let chained = Tensor::concat_batch(&parts).unwrap();
        assert_eq!(fused, chained);
    }

    #[test]
    fn segmented_compute_rejects_nan_and_bad_tables() {
        let (weights, bias, _) = random_parts(14);
        let ctx = Arc::new(EmuContext::new(Backend::CpuDirect));
        let ax = AxDense::new(
            64,
            10,
            weights,
            bias,
            MulLut::exact(Signedness::Signed),
            ctx,
        );
        let mut input = Tensor::<f32>::zeros(Shape4::new(2, 1, 1, 64));
        assert!(ax
            .compute_segmented(&input, &SegmentTable::from_counts(&[1]))
            .is_err());
        input.as_mut_slice()[70] = f32::NAN; // poison image 1 only
        let err = ax
            .compute_segmented(&input, &SegmentTable::from_counts(&[1, 1]))
            .unwrap_err();
        assert!(err.to_string().contains("invalid input range"), "{err}");
    }

    #[test]
    fn profile_records_lut_phase() {
        let (weights, bias, input) = random_parts(5);
        let ctx = Arc::new(EmuContext::new(Backend::CpuDirect));
        let ax = AxDense::new(
            64,
            10,
            weights,
            bias,
            MulLut::exact(Signedness::Signed),
            Arc::clone(&ctx),
        );
        let _ = ax.compute(&input).unwrap();
        assert!(ctx.profile().seconds(Phase::LutLookup) > 0.0);
    }
}
