//! The serving engine: keyed admission, micro-batch coalescing,
//! event-driven shard wakeup, and SLO-aware shedding.

use super::histogram::LatencyHistogram;
use super::registry::{SessionKey, SessionRegistry};
use crate::pool::WorkerPool;
use crate::{Error, Session};
use axtensor::Tensor;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The unit of [`ServeConfig::flush_ticks`]: one tick is 200 µs of
/// coalescing budget. A shard holding a partial micro-batch flushes at
/// the **deadline** `first-pop time + flush_ticks × FLUSH_TICK` (or
/// earlier, if a member's SLO deadline is tighter) — it sleeps on the
/// arrival condvar until that deadline and is woken by arrivals, never
/// by a poll timer.
pub const FLUSH_TICK: Duration = Duration::from_micros(200);

/// A serving-engine rejection. Every request outcome is explicit: a
/// request is either answered with its output tensor or with one of these
/// errors — never silently dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The bounded submission queue was full — the request was shed at
    /// submission time (explicit backpressure). Carries the configured
    /// queue depth the caller collided with.
    Overloaded {
        /// The configured [`ServeConfig::queue_depth`] that was full.
        depth: usize,
    },
    /// The request's SLO deadline expired before a shard started its
    /// micro-batch — it was shed at batch-formation time instead of
    /// wasting compute on an answer the caller no longer wants. Distinct
    /// from [`ServeError::Overloaded`]: the queue had room, the latency
    /// budget did not.
    DeadlineExceeded {
        /// The latency budget the request was submitted with.
        budget: Duration,
    },
    /// The engine is shutting down and no longer accepts submissions.
    ShuttingDown,
    /// The batch this request was part of failed to execute, or the
    /// response channel was severed; the message carries the underlying
    /// failure.
    Failed(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth } => {
                write!(f, "request shed: submission queue full ({depth} requests)")
            }
            ServeError::DeadlineExceeded { budget } => {
                write!(f, "request shed: deadline exceeded (budget {budget:?})")
            }
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
            ServeError::Failed(msg) => write!(f, "batch execution failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Configuration of a [`ServeEngine`].
///
/// # Example
///
/// ```
/// use tfapprox::serve::ServeConfig;
/// let cfg = ServeConfig::new()
///     .with_max_batch_images(16)
///     .with_flush_ticks(2)
///     .with_shards(2)
///     .with_queue_depth(512)
///     .with_fuse_batches(false);
/// assert_eq!(cfg.max_batch_images(), 16);
/// assert!(!cfg.fuse_batches());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    max_batch_images: usize,
    flush_ticks: usize,
    shards: usize,
    queue_depth: usize,
    fuse_batches: bool,
}

impl ServeConfig {
    /// The default configuration: up to 32 images per micro-batch, a
    /// 2-tick flush deadline, one shard, a 256-request queue, and fused
    /// batch execution enabled.
    #[must_use]
    pub fn new() -> Self {
        ServeConfig {
            max_batch_images: 32,
            flush_ticks: 2,
            shards: 1,
            queue_depth: 256,
            fuse_batches: true,
        }
    }

    /// Image budget of one micro-batch: a shard stops coalescing once the
    /// batch holds at least this many images. A single request larger
    /// than the budget still runs (as a batch of its own).
    #[must_use]
    pub fn with_max_batch_images(mut self, max_batch_images: usize) -> Self {
        self.max_batch_images = max_batch_images;
        self
    }

    /// Flush deadline, in ticks of [`FLUSH_TICK`]: a shard holding a
    /// partial micro-batch flushes it `flush_ticks × FLUSH_TICK` after
    /// popping its first request (sooner if a member's SLO deadline is
    /// tighter). `0` flushes as soon as the queue holds no further
    /// coalescable request. The shard sleeps until the deadline and is
    /// woken by arrivals — there is no poll loop.
    #[must_use]
    pub fn with_flush_ticks(mut self, flush_ticks: usize) -> Self {
        self.flush_ticks = flush_ticks;
        self
    }

    /// Number of shard workers forming and executing micro-batches
    /// concurrently (each serves every tenant; outputs are
    /// shard-invariant).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Bound of the submission queue, in requests (shared across all
    /// tenants). Submissions beyond it are shed with
    /// [`ServeError::Overloaded`].
    #[must_use]
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// Whether a coalesced micro-batch of same-shaped requests executes
    /// as **one** fused [`Session::infer_fused`] call (segment-aware
    /// quantization keeps each request's bits identical to a solo run)
    /// instead of one graph pass per request. `false` restores the
    /// request-at-a-time execution of PR 5/6 — useful as an A/B baseline
    /// and as an escape hatch. Either way, responses are bit-identical.
    ///
    /// [`Session::infer_fused`]: crate::Session::infer_fused
    #[must_use]
    pub fn with_fuse_batches(mut self, fuse_batches: bool) -> Self {
        self.fuse_batches = fuse_batches;
        self
    }

    /// The micro-batch image budget.
    #[must_use]
    pub fn max_batch_images(&self) -> usize {
        self.max_batch_images
    }

    /// The flush deadline in ticks of [`FLUSH_TICK`].
    #[must_use]
    pub fn flush_ticks(&self) -> usize {
        self.flush_ticks
    }

    /// The shard-worker count.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The submission-queue bound in requests.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// Whether coalesced micro-batches execute as one fused graph pass.
    #[must_use]
    pub fn fuse_batches(&self) -> bool {
        self.fuse_batches
    }

    /// Reject configurations that would deadlock or process nothing —
    /// the same typed-`Err`-at-the-boundary convention as
    /// [`crate::SessionBuilder`].
    fn validate(&self) -> Result<(), Error> {
        if self.max_batch_images == 0 {
            return Err(Error::Config(
                "serve max_batch_images must be positive (got 0)".to_owned(),
            ));
        }
        if self.shards == 0 {
            return Err(Error::Config(
                "serve shards must be positive (got 0)".to_owned(),
            ));
        }
        if self.queue_depth == 0 {
            return Err(Error::Config(
                "serve queue_depth must be positive (got 0)".to_owned(),
            ));
        }
        Ok(())
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-tenant slice of the engine's counters, keyed by the tenant's
/// [`SessionKey`]. Rows are ordered by the key's display form
/// (`model@mult`), so snapshots are deterministic and diffable.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantServeStats {
    /// The tenant the counters belong to.
    pub key: SessionKey,
    /// Requests answered through batch execution for this tenant
    /// (successfully or with a batch failure).
    pub requests: u64,
    /// This tenant's requests shed at batch-formation time because their
    /// SLO deadline had already expired — the per-tenant split of
    /// [`ServeStats::deadline_shed`], so a noisy neighbour blowing its
    /// own budget is visible as *its* problem, not smeared over the tier.
    pub deadline_shed: u64,
}

/// A point-in-time snapshot of the engine's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    /// Micro-batches formed and executed.
    pub batches: u64,
    /// Requests answered through batch execution (successfully or with a
    /// batch failure). Shed requests are counted separately.
    pub requests: u64,
    /// Images answered across all requests.
    pub images: u64,
    /// Requests shed at submission time (queue full).
    pub shed: u64,
    /// Requests shed at batch-formation time because their SLO deadline
    /// had already expired.
    pub deadline_shed: u64,
    /// Mean requests per micro-batch (`requests / batches`; 0.0 before
    /// the first batch). Occupancy above 1 means coalescing is happening.
    pub mean_occupancy: f64,
    /// Sustained serving throughput: images answered per second of shard
    /// busy time (time spent inside `infer_batches`, summed over shards).
    /// Idle gaps between batches do not dilute it.
    pub images_per_second: f64,
    /// Median submit-to-response latency of answered requests, in
    /// seconds (0.0 before the first response). Estimated from the
    /// engine's streaming [`LatencyHistogram`].
    pub p50_latency_s: f64,
    /// 95th-percentile submit-to-response latency, in seconds.
    pub p95_latency_s: f64,
    /// 99th-percentile submit-to-response latency, in seconds — the tail
    /// that governs how much load the tier can admit under an SLO.
    pub p99_latency_s: f64,
    /// Micro-batches that executed as one fused graph pass (a subset of
    /// `batches`): multi-request batches of same-shaped inputs run under
    /// [`ServeConfig::fuse_batches`]. Single-request and shape-mixed
    /// batches always run per request and are not counted here.
    pub fused_batches: u64,
    /// Per-tenant counters, ordered by the key's display form. Empty
    /// until the first request is answered or shed on a deadline.
    pub per_tenant: Vec<TenantServeStats>,
    /// The LUT-GEMM kernel arm the default tenant's session dispatches
    /// to (a [`crate::kernel::KernelKind`] name), so serving throughput
    /// rows are attributable to the kernel that produced them.
    pub kernel: &'static str,
}

/// One queued request: the tenant key, its resolved session (held so an
/// LRU eviction can never invalidate an in-flight request), the input,
/// the oneshot responder, and the latency bookkeeping.
struct Request {
    key: SessionKey,
    session: Arc<Session>,
    input: Tensor<f32>,
    responder: mpsc::SyncSender<Result<Tensor<f32>, Error>>,
    submitted: Instant,
    /// The absolute SLO deadline, if the request was submitted with one.
    deadline: Option<(Instant, Duration)>,
}

struct ServeQueue {
    requests: VecDeque<Request>,
    shutdown: bool,
}

/// Per-tenant counter cell behind [`Shared::tenants`].
#[derive(Default)]
struct TenantCounters {
    requests: u64,
    deadline_shed: u64,
}

/// State shared between the engine handle and its shard workers.
struct Shared {
    registry: Arc<SessionRegistry>,
    /// Kernel-arm name of the default tenant's session, snapshot at
    /// engine construction for [`ServeStats::kernel`].
    kernel: &'static str,
    default_key: SessionKey,
    config: ServeConfig,
    queue: Mutex<ServeQueue>,
    arrival: Condvar,
    batches: AtomicU64,
    fused_batches: AtomicU64,
    requests: AtomicU64,
    images: AtomicU64,
    shed: AtomicU64,
    deadline_shed: AtomicU64,
    busy_nanos: AtomicU64,
    latency: LatencyHistogram,
    /// Per-tenant counters. A mutex (not atomics) because the map grows
    /// with tenant arrivals; it is taken once per batch and per shed,
    /// never on the submit path.
    tenants: Mutex<HashMap<SessionKey, TenantCounters>>,
}

impl Shared {
    /// Answer an expired request with [`ServeError::DeadlineExceeded`]
    /// and drop it from the pipeline; pass a live request through.
    fn unless_expired(&self, request: Request, now: Instant) -> Option<Request> {
        match request.deadline {
            Some((at, budget)) if now >= at => {
                self.deadline_shed.fetch_add(1, Ordering::Relaxed);
                self.tenants
                    .lock()
                    .expect("serve tenant counters")
                    .entry(request.key.clone())
                    .or_default()
                    .deadline_shed += 1;
                let _ = request
                    .responder
                    .send(Err(ServeError::DeadlineExceeded { budget }.into()));
                None
            }
            _ => Some(request),
        }
    }

    /// Form the next micro-batch: pop the first live request, then
    /// coalesce same-key arrivals until the image budget is met or the
    /// flush deadline — `flush_ticks × FLUSH_TICK` past the first pop,
    /// capped by the tightest member SLO deadline — passes. The shard
    /// sleeps on the arrival condvar in between: wakeups are submissions
    /// (or shutdown), not poll ticks. Returns `None` when the engine is
    /// shut down *and* the queue is drained — pending requests are
    /// always served first.
    fn next_batch(&self) -> Option<Vec<Request>> {
        let budget = self.config.max_batch_images;
        let flush_budget = FLUSH_TICK.saturating_mul(self.config.flush_ticks as u32);
        let mut q = self.queue.lock().expect("serve queue");
        // Pop the first live request (shedding expired ones), sleeping
        // while the queue is empty.
        let first = loop {
            match q.requests.pop_front() {
                Some(r) => {
                    if let Some(live) = self.unless_expired(r, Instant::now()) {
                        break live;
                    }
                }
                None => {
                    if q.shutdown {
                        return None;
                    }
                    q = self.arrival.wait(q).expect("serve wait");
                }
            }
        };
        let mut flush_at = Instant::now() + flush_budget;
        if let Some((at, _)) = first.deadline {
            flush_at = flush_at.min(at);
        }
        let key = first.key.clone();
        let mut images = first.input.shape().n;
        let mut batch = vec![first];
        loop {
            // Drain every queued same-key request (front to back; other
            // tenants' requests keep their positions).
            let now = Instant::now();
            let mut i = 0;
            while images < budget && i < q.requests.len() {
                if q.requests[i].key == key {
                    let r = q.requests.remove(i).expect("index in range");
                    if let Some(live) = self.unless_expired(r, now) {
                        images += live.input.shape().n;
                        if let Some((at, _)) = live.deadline {
                            flush_at = flush_at.min(at);
                        }
                        batch.push(live);
                    }
                } else {
                    i += 1;
                }
            }
            if images >= budget || q.shutdown {
                break;
            }
            let now = Instant::now();
            if now >= flush_at {
                break;
            }
            // Event-driven wait: woken by an arrival or the deadline,
            // whichever comes first.
            let (guard, _) = self
                .arrival
                .wait_timeout(q, flush_at - now)
                .expect("serve wait");
            q = guard;
        }
        Some(batch)
    }

    /// Run one micro-batch through its tenant's session and deliver
    /// per-request responses, recording each submit-to-response latency.
    /// A failed — or even panicking — batch answers every member with
    /// [`ServeError::Failed`] and leaves the shard alive for the next
    /// batch: never a silent drop, never a dead engine.
    ///
    /// A multi-request batch whose inputs all share one image shape runs
    /// as **one** fused [`Session::infer_fused`] graph pass when
    /// [`ServeConfig::fuse_batches`] is on; segment-aware quantization
    /// keeps every member's response bit-identical to a solo run.
    /// Shape-mixed or single-request batches run per request
    /// ([`Session::infer_batches`]), as does everything when fusion is
    /// toggled off.
    ///
    /// [`Session::infer_fused`]: crate::Session::infer_fused
    /// [`Session::infer_batches`]: crate::Session::infer_batches
    fn execute(&self, batch: Vec<Request>) {
        debug_assert!(
            batch.iter().all(|r| r.key == batch[0].key),
            "a micro-batch must hold one tenant only"
        );
        let key = batch[0].key.clone();
        let session = Arc::clone(&batch[0].session);
        let mut inputs = Vec::with_capacity(batch.len());
        let mut waiters = Vec::with_capacity(batch.len());
        for r in batch {
            inputs.push(r.input);
            waiters.push((r.responder, r.submitted));
        }
        let images: usize = inputs.iter().map(|t| t.shape().n).sum();
        // Fusion needs one concatenated batch tensor, so every member
        // must share (h, w, c); image *counts* may differ freely (zero
        // included — an empty request is an empty segment).
        let same_shape = inputs.windows(2).all(|w| {
            let (a, b) = (w[0].shape(), w[1].shape());
            (a.h, a.w, a.c) == (b.h, b.w, b.c)
        });
        let fused = self.config.fuse_batches && inputs.len() > 1 && same_shape;
        let t0 = Instant::now();
        // A panic escaping here would unwind the whole shard loop: the
        // pool's catch would keep the *thread* alive but the loop job
        // would be gone, and with one shard every later accepted request
        // would hang forever. Contain it at the batch boundary instead.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if fused {
                session.infer_fused(&inputs)
            } else {
                session.infer_batches(&inputs).map(|(outputs, _)| outputs)
            }
        }));
        self.busy_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        if fused {
            self.fused_batches.fetch_add(1, Ordering::Relaxed);
        }
        self.requests
            .fetch_add(waiters.len() as u64, Ordering::Relaxed);
        self.images.fetch_add(images as u64, Ordering::Relaxed);
        self.tenants
            .lock()
            .expect("serve tenant counters")
            .entry(key)
            .or_default()
            .requests += waiters.len() as u64;
        match result {
            Ok(Ok(outputs)) => {
                debug_assert_eq!(outputs.len(), waiters.len());
                for (out, (tx, submitted)) in outputs.into_iter().zip(waiters) {
                    // A dropped Ticket is the receiver's choice, not a
                    // lost response; ignore the send error.
                    let _ = tx.send(Ok(out));
                    self.latency.record(submitted.elapsed());
                }
            }
            Ok(Err(e)) => {
                let msg = e.to_string();
                for (tx, submitted) in waiters {
                    let _ = tx.send(Err(ServeError::Failed(msg.clone()).into()));
                    self.latency.record(submitted.elapsed());
                }
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "batch execution panicked".to_owned());
                let msg = format!("panic: {msg}");
                for (tx, submitted) in waiters {
                    let _ = tx.send(Err(ServeError::Failed(msg.clone()).into()));
                    self.latency.record(submitted.elapsed());
                }
            }
        }
    }

    fn shard_loop(&self) {
        while let Some(batch) = self.next_batch() {
            self.execute(batch);
        }
    }
}

/// A pending response: wait on it to receive the request's output.
///
/// Each submitted request gets exactly one ticket and each ticket
/// resolves exactly once — to the output tensor or to an explicit
/// [`ServeError`]. The completion API is one coherent trio:
///
/// - [`Ticket::wait`] — block until the response arrives,
/// - [`Ticket::wait_timeout`] — block with a watchdog bound,
/// - [`Ticket::try_wait`] — non-blocking probe that returns the ticket
///   itself when the response is not ready yet, so a poll loop never
///   consumes a pending ticket.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Tensor<f32>, Error>>,
}

impl Ticket {
    /// Block until the response arrives.
    ///
    /// # Errors
    ///
    /// Returns the engine's explicit per-request error — a failed batch,
    /// a deadline shed, or a severed response channel (a shard panicked
    /// mid-batch).
    pub fn wait(self) -> Result<Tensor<f32>, Error> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(ServeError::Failed("response channel severed".into()).into()))
    }

    /// Block until the response arrives or `timeout` elapses (useful for
    /// watchdogs around the engine).
    ///
    /// # Errors
    ///
    /// As [`Ticket::wait`], or [`ServeError::Failed`] on timeout.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Tensor<f32>, Error> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                Err(ServeError::Failed(format!("no response within {timeout:?}")).into())
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Err(ServeError::Failed("response channel severed".into()).into())
            }
        }
    }

    /// Non-blocking probe: the response if it has arrived, or the ticket
    /// itself (`Err`) when it is still pending — the ticket is not
    /// consumed, so callers can poll and fall back to [`Ticket::wait`]
    /// at any time.
    ///
    /// A severed response channel (a shard died mid-batch) resolves the
    /// probe with [`ServeError::Failed`], exactly as `wait` would.
    ///
    /// # Errors
    ///
    /// The `Err` variant carries the still-pending ticket, not a
    /// failure; failures arrive as the resolved `Ok(Err(_))` shape.
    pub fn try_wait(self) -> Result<Result<Tensor<f32>, Error>, Ticket> {
        match self.rx.try_recv() {
            Ok(result) => Ok(result),
            Err(mpsc::TryRecvError::Empty) => Err(self),
            Err(mpsc::TryRecvError::Disconnected) => Ok(Err(ServeError::Failed(
                "response channel severed".into(),
            )
            .into())),
        }
    }
}

/// A multi-tenant serving engine: many compiled sessions from one
/// [`SessionRegistry`], one shared submission queue, shard workers with
/// event-driven wakeup, and per-request SLO deadlines.
///
/// [`ServeEngine::new`] is the single-tenant shim — it wraps one session
/// in a fresh registry under the default key, so [`ServeEngine::submit`]
/// and [`ServeEngine::infer`] keep their PR-5 shape.
/// [`ServeEngine::with_registry`] is the multi-tenant entry point:
/// submissions carry a [`SessionKey`] and coalesce per key (a micro-batch
/// never mixes tenants), so every response stays **bit-identical** to a
/// solo [`Session::infer`] of the same input on that tenant's session,
/// regardless of which tenant mix shared the batch window.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use tfapprox::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = axnn::resnet::ResNetConfig::with_depth(8)?.build(42)?;
/// let mult = axmult::catalog::by_name("mul8s_exact")?;
/// let session = Arc::new(
///     Session::builder()
///         .backend(Backend::CpuGemm)
///         .multiplier(&mult)
///         .compile(&graph)?,
/// );
/// let engine = ServeEngine::new(Arc::clone(&session), ServeConfig::new())?;
///
/// let input = axtensor::rng::uniform(axnn::resnet::cifar_input_shape(1), 7, -1.0, 1.0);
/// let served = engine.infer(input.clone())?;
/// assert_eq!(served, session.infer(&input)?); // bit-identical to solo
/// assert!(engine.stats().p50_latency_s > 0.0);
/// # Ok(())
/// # }
/// ```
pub struct ServeEngine {
    shared: Arc<Shared>,
    /// The shard workers live on a dedicated pool; `Drop` shuts the queue
    /// down first, so the pool's own shutdown can join them.
    pool: WorkerPool,
}

impl fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeEngine")
            .field("config", &self.shared.config)
            .field("shards", &self.pool.threads())
            .field("default_key", &self.shared.default_key)
            .finish_non_exhaustive()
    }
}

/// The model name [`ServeEngine::new`] installs its session under.
pub const DEFAULT_MODEL: &str = "default";

impl ServeEngine {
    /// Start a single-tenant engine over one compiled session — the
    /// PR-5 surface, now a shim over a one-entry [`SessionRegistry`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] for a zero batch budget, shard count, or
    /// queue depth.
    pub fn new(session: Arc<Session>, config: ServeConfig) -> Result<Self, Error> {
        let registry = Arc::new(SessionRegistry::new(1)?);
        let default_key = registry.install(DEFAULT_MODEL, session)?;
        Self::with_registry(registry, default_key, config)
    }

    /// Start a multi-tenant engine over `registry`. `default_key` is the
    /// tenant [`ServeEngine::submit`]/[`ServeEngine::infer`] route to;
    /// keyed submissions ([`ServeEngine::submit_to`]) may address any
    /// key the registry can resolve.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] for an invalid `config` or a
    /// `default_key` the registry cannot resolve; propagates a
    /// compile-on-miss failure for the default key.
    pub fn with_registry(
        registry: Arc<SessionRegistry>,
        default_key: SessionKey,
        config: ServeConfig,
    ) -> Result<Self, Error> {
        config.validate()?;
        // Fail fast on an unservable default tenant; note its kernel arm
        // for stats attribution while we hold the session.
        let kernel = registry.session_for(&default_key)?.kernel().name();
        let shared = Arc::new(Shared {
            registry,
            kernel,
            default_key,
            config,
            queue: Mutex::new(ServeQueue {
                requests: VecDeque::new(),
                shutdown: false,
            }),
            arrival: Condvar::new(),
            batches: AtomicU64::new(0),
            fused_batches: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            images: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_shed: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            tenants: Mutex::new(HashMap::new()),
        });
        let pool = WorkerPool::new(config.shards);
        for _ in 0..config.shards {
            let shard = Arc::clone(&shared);
            pool.submit(Box::new(move || shard.shard_loop()));
        }
        Ok(ServeEngine { shared, pool })
    }

    /// The configuration the engine runs with.
    #[must_use]
    pub fn config(&self) -> ServeConfig {
        self.shared.config
    }

    /// The session registry the engine serves from.
    #[must_use]
    pub fn registry(&self) -> &Arc<SessionRegistry> {
        &self.shared.registry
    }

    /// The tenant key [`ServeEngine::submit`] routes to.
    #[must_use]
    pub fn default_key(&self) -> &SessionKey {
        &self.shared.default_key
    }

    /// The default tenant's compiled session (resolved through the
    /// registry; for an engine built with [`ServeEngine::new`] this is
    /// the session it wrapped).
    ///
    /// # Errors
    ///
    /// Propagates a registry compile-on-miss failure (impossible for the
    /// pinned anchor of a [`ServeEngine::new`] engine).
    pub fn session(&self) -> Result<Arc<Session>, Error> {
        self.shared.registry.session_for(&self.shared.default_key)
    }

    fn enqueue(
        &self,
        key: &SessionKey,
        input: Tensor<f32>,
        budget: Option<Duration>,
    ) -> Result<Ticket, Error> {
        // Admission: resolve (and compile-on-miss) before taking the
        // queue lock, so a cold tenant never stalls the submit path of
        // the hot ones.
        let session = self.shared.registry.session_for(key)?;
        let (tx, rx) = mpsc::sync_channel(1);
        let submitted = Instant::now();
        let deadline = budget.map(|b| (submitted + b, b));
        {
            let mut q = self.shared.queue.lock().expect("serve queue");
            if q.shutdown {
                return Err(ServeError::ShuttingDown.into());
            }
            if q.requests.len() >= self.shared.config.queue_depth {
                self.shared.shed.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded {
                    depth: self.shared.config.queue_depth,
                }
                .into());
            }
            q.requests.push_back(Request {
                key: key.clone(),
                session,
                input,
                responder: tx,
                submitted,
                deadline,
            });
        }
        self.shared.arrival.notify_all();
        Ok(Ticket { rx })
    }

    /// Submit one request (a batch tensor of zero or more images) to the
    /// default tenant and get a [`Ticket`] for its response.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Overloaded`] (wrapped in [`Error::Serve`])
    /// if the bounded queue is full — explicit backpressure at submission
    /// time — or [`ServeError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, input: Tensor<f32>) -> Result<Ticket, Error> {
        let key = self.shared.default_key.clone();
        self.enqueue(&key, input, None)
    }

    /// Submit one request to the tenant `key` addresses. The request
    /// coalesces only with requests of the same key — a micro-batch
    /// never mixes tenants — and if the key's session was evicted it is
    /// recompiled on admission (the key carries its resolved
    /// multipliers).
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::submit`], plus [`Error::Config`] for a key
    /// whose model is not installed in the registry, and any
    /// compile-on-miss failure.
    pub fn submit_to(&self, key: &SessionKey, input: Tensor<f32>) -> Result<Ticket, Error> {
        self.enqueue(key, input, None)
    }

    /// Submit with an SLO latency budget: if the request is still
    /// waiting when a shard would start its micro-batch and `budget` has
    /// already elapsed, it is shed with [`ServeError::DeadlineExceeded`]
    /// instead of burning compute on a response the caller has given up
    /// on. A pending deadline also tightens its batch's flush deadline,
    /// so a tight-SLO request is never parked for the full flush window.
    ///
    /// The deadline bounds *queue wait*, not execution: a request whose
    /// batch has started executes to completion.
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::submit_to`]; the deadline itself surfaces on
    /// the [`Ticket`], not here.
    pub fn submit_within(
        &self,
        key: &SessionKey,
        input: Tensor<f32>,
        budget: Duration,
    ) -> Result<Ticket, Error> {
        self.enqueue(key, input, Some(budget))
    }

    /// Submit one request to the default tenant and block for its
    /// response — the synchronous convenience over
    /// [`ServeEngine::submit`] + [`Ticket::wait`].
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::submit`] and [`Ticket::wait`].
    pub fn infer(&self, input: Tensor<f32>) -> Result<Tensor<f32>, Error> {
        self.submit(input)?.wait()
    }

    /// Submit to a tenant key and block for the response — the
    /// synchronous convenience over [`ServeEngine::submit_to`] +
    /// [`Ticket::wait`].
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::submit_to`] and [`Ticket::wait`].
    pub fn infer_to(&self, key: &SessionKey, input: Tensor<f32>) -> Result<Tensor<f32>, Error> {
        self.submit_to(key, input)?.wait()
    }

    /// Snapshot the engine's counters, including the latency
    /// percentiles of every answered request and the per-tenant
    /// request/shed split.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        let batches = self.shared.batches.load(Ordering::Relaxed);
        let requests = self.shared.requests.load(Ordering::Relaxed);
        let images = self.shared.images.load(Ordering::Relaxed);
        let busy_s = self.shared.busy_nanos.load(Ordering::Relaxed) as f64 / 1e9;
        let mut per_tenant: Vec<TenantServeStats> = self
            .shared
            .tenants
            .lock()
            .expect("serve tenant counters")
            .iter()
            .map(|(key, c)| TenantServeStats {
                key: key.clone(),
                requests: c.requests,
                deadline_shed: c.deadline_shed,
            })
            .collect();
        per_tenant.sort_by_key(|t| t.key.to_string());
        ServeStats {
            batches,
            requests,
            images,
            shed: self.shared.shed.load(Ordering::Relaxed),
            deadline_shed: self.shared.deadline_shed.load(Ordering::Relaxed),
            mean_occupancy: if batches == 0 {
                0.0
            } else {
                requests as f64 / batches as f64
            },
            images_per_second: if busy_s > 0.0 {
                images as f64 / busy_s
            } else {
                0.0
            },
            p50_latency_s: self.shared.latency.quantile_seconds(0.50),
            p95_latency_s: self.shared.latency.quantile_seconds(0.95),
            p99_latency_s: self.shared.latency.quantile_seconds(0.99),
            fused_batches: self.shared.fused_batches.load(Ordering::Relaxed),
            per_tenant,
            kernel: self.shared.kernel,
        }
    }
}

impl Drop for ServeEngine {
    /// Graceful shutdown: refuse new submissions, let the shard workers
    /// drain and answer every pending request, then join them (via the
    /// pool's own shutdown, which runs after this body).
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("serve queue");
            q.shutdown = true;
        }
        self.shared.arrival.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Assignment, Backend, Session};
    use axnn::layers::{Conv2D, ReLU};
    use axnn::Graph;
    use axtensor::{rng, ConvGeometry, FilterShape, Shape4};

    /// A tiny two-conv graph: fast enough for debug-mode tests while
    /// still exercising the transform (two AxConv2D + observers).
    fn tiny_graph() -> Graph {
        let mut g = Graph::new();
        let x = g.input();
        let f1 = rng::uniform_filter(FilterShape::new(3, 3, 2, 3), 11, -0.5, 0.5);
        let c1 = g
            .add(
                "conv1",
                Arc::new(Conv2D::new(f1, ConvGeometry::default())),
                &[x],
            )
            .unwrap();
        let r1 = g.add("relu1", Arc::new(ReLU::new()), &[c1]).unwrap();
        let f2 = rng::uniform_filter(FilterShape::new(3, 3, 3, 2), 12, -0.5, 0.5);
        let c2 = g
            .add(
                "conv2",
                Arc::new(Conv2D::new(f2, ConvGeometry::default())),
                &[r1],
            )
            .unwrap();
        g.set_output(c2).unwrap();
        g
    }

    fn tiny_session_with(mult_name: &str) -> Arc<Session> {
        let mult = axmult::catalog::by_name(mult_name).unwrap();
        Arc::new(
            Session::builder()
                .backend(Backend::CpuGemm)
                .chunk_size(4)
                .threads(2)
                .multiplier(&mult)
                .compile(&tiny_graph())
                .unwrap(),
        )
    }

    fn tiny_session() -> Arc<Session> {
        tiny_session_with("mul8s_exact")
    }

    fn input(seed: u64, n: usize) -> Tensor<f32> {
        rng::uniform(Shape4::new(n, 5, 5, 2), seed, -1.0, 1.0)
    }

    #[test]
    fn config_validation_rejects_zeros() {
        let session = tiny_session();
        for cfg in [
            ServeConfig::new().with_max_batch_images(0),
            ServeConfig::new().with_shards(0),
            ServeConfig::new().with_queue_depth(0),
        ] {
            let err = ServeEngine::new(Arc::clone(&session), cfg).unwrap_err();
            assert!(matches!(err, Error::Config(_)), "{err}");
        }
    }

    #[test]
    fn served_response_is_bit_identical_to_solo_infer() {
        let session = tiny_session();
        let engine = ServeEngine::new(Arc::clone(&session), ServeConfig::new()).unwrap();
        for seed in 0..4 {
            let x = input(seed, 2);
            let served = engine.infer(x.clone()).unwrap();
            assert_eq!(served, session.infer(&x).unwrap(), "seed {seed}");
        }
        let stats = engine.stats();
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.images, 8);
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.deadline_shed, 0);
        assert!(stats.batches >= 1);
        assert!(stats.images_per_second > 0.0);
    }

    #[test]
    fn coalescing_batches_queued_requests() {
        let session = tiny_session();
        // One shard and a generous flush deadline: requests submitted
        // before it passes coalesce into few batches.
        let engine = ServeEngine::new(
            Arc::clone(&session),
            ServeConfig::new()
                .with_max_batch_images(8)
                .with_flush_ticks(50),
        )
        .unwrap();
        let tickets: Vec<Ticket> = (0..8)
            .map(|s| engine.submit(input(s, 1)).unwrap())
            .collect();
        for (s, t) in tickets.into_iter().enumerate() {
            let out = t.wait().unwrap();
            assert_eq!(out, session.infer(&input(s as u64, 1)).unwrap());
        }
        let stats = engine.stats();
        assert_eq!(stats.requests, 8);
        assert!(
            stats.batches < 8,
            "expected coalescing, got {} batches for 8 requests",
            stats.batches
        );
        assert!(stats.mean_occupancy > 1.0);
    }

    #[test]
    fn full_queue_sheds_with_explicit_error() {
        let session = tiny_session();
        let engine = ServeEngine::new(
            Arc::clone(&session),
            ServeConfig::new()
                .with_queue_depth(2)
                .with_max_batch_images(1)
                .with_shards(1),
        )
        .unwrap();
        // A large first request keeps the single shard busy while the
        // queue fills behind it.
        let busy = engine.submit(input(99, 32)).unwrap();
        let mut held = Vec::new();
        let mut shed = 0usize;
        for s in 0..12 {
            match engine.submit(input(s, 1)) {
                Ok(t) => held.push((s, t)),
                Err(Error::Serve(ServeError::Overloaded { depth })) => {
                    assert_eq!(depth, 2);
                    shed += 1;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(shed > 0, "queue depth 2 must shed under a burst of 12");
        assert!(engine.stats().shed >= shed as u64);
        // Every accepted request still resolves, bit-identically.
        assert!(busy.wait().is_ok());
        for (s, t) in held {
            assert_eq!(t.wait().unwrap(), session.infer(&input(s, 1)).unwrap());
        }
    }

    #[test]
    fn drop_drains_pending_requests() {
        let session = tiny_session();
        let engine = ServeEngine::new(
            Arc::clone(&session),
            ServeConfig::new().with_max_batch_images(4),
        )
        .unwrap();
        let tickets: Vec<(u64, Ticket)> = (0..6)
            .map(|s| (s, engine.submit(input(s, 1)).unwrap()))
            .collect();
        drop(engine); // graceful: answers everything before joining
        for (s, t) in tickets {
            assert_eq!(t.wait().unwrap(), session.infer(&input(s, 1)).unwrap());
        }
    }

    #[test]
    fn zero_image_request_resolves_with_shaped_empty_output() {
        let session = tiny_session();
        let engine = ServeEngine::new(Arc::clone(&session), ServeConfig::new()).unwrap();
        let out = engine.infer(input(1, 0)).unwrap();
        assert_eq!(out.shape().n, 0);
        assert_eq!(out, session.infer(&input(1, 0)).unwrap());
        let stats = engine.stats();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.images, 0);
    }

    #[test]
    fn oversized_request_still_runs_as_its_own_batch() {
        let session = tiny_session();
        let engine = ServeEngine::new(
            Arc::clone(&session),
            ServeConfig::new().with_max_batch_images(2),
        )
        .unwrap();
        let x = input(5, 7); // far over the 2-image budget
        assert_eq!(engine.infer(x.clone()).unwrap(), session.infer(&x).unwrap());
    }

    #[test]
    fn failed_batch_answers_every_member_and_engine_survives() {
        let session = tiny_session();
        let engine = ServeEngine::new(
            Arc::clone(&session),
            ServeConfig::new()
                .with_shards(1)
                .with_max_batch_images(8)
                .with_flush_ticks(20),
        )
        .unwrap();
        // A request whose channel count mismatches the graph: the whole
        // micro-batch it lands in fails, and every member must hear so.
        let bad = Tensor::<f32>::zeros(Shape4::new(1, 5, 5, 7));
        let t_bad = engine.submit(bad).unwrap();
        let err = t_bad.wait().unwrap_err();
        assert!(matches!(err, Error::Serve(ServeError::Failed(_))), "{err}");
        // The single shard is still alive and serving correctly.
        let x = input(21, 2);
        assert_eq!(engine.infer(x.clone()).unwrap(), session.infer(&x).unwrap());
    }

    #[test]
    fn panicking_batch_answers_failed_and_engine_survives() {
        use axnn::layer::Layer;
        use axnn::NnError;

        /// A layer that panics when any forwarded tensor holds a negative
        /// value — a stand-in for an internal invariant violation.
        #[derive(Debug)]
        struct PanicOnNegative;
        impl Layer for PanicOnNegative {
            fn op_name(&self) -> &str {
                "PanicOnNegative"
            }
            fn output_shape(&self, inputs: &[Shape4]) -> Result<Shape4, NnError> {
                Ok(inputs[0])
            }
            fn forward(&self, inputs: &[&Tensor<f32>]) -> Result<Tensor<f32>, NnError> {
                assert!(
                    inputs[0].as_slice().iter().all(|&v| v >= 0.0),
                    "negative activation"
                );
                Ok(inputs[0].clone())
            }
        }

        let mut g = Graph::new();
        let x = g.input();
        let trap = g.add("trap", Arc::new(PanicOnNegative), &[x]).unwrap();
        let f = rng::uniform_filter(FilterShape::new(3, 3, 2, 2), 5, -0.5, 0.5);
        let c = g
            .add(
                "conv",
                Arc::new(Conv2D::new(f, ConvGeometry::default())),
                &[trap],
            )
            .unwrap();
        g.set_output(c).unwrap();
        let mult = axmult::catalog::by_name("mul8s_exact").unwrap();
        let session = Arc::new(
            Session::builder()
                .backend(Backend::CpuGemm)
                .multiplier(&mult)
                .compile(&g)
                .unwrap(),
        );
        let engine =
            ServeEngine::new(Arc::clone(&session), ServeConfig::new().with_shards(1)).unwrap();

        // A panicking batch must answer with an explicit Failed error…
        let poison = Tensor::<f32>::full(Shape4::new(1, 5, 5, 2), -1.0);
        let err = engine.infer(poison).unwrap_err();
        match &err {
            Error::Serve(ServeError::Failed(msg)) => {
                assert!(msg.contains("panic"), "{msg}")
            }
            other => panic!("expected Failed, got {other}"),
        }
        // …and the single shard must keep serving afterwards.
        let ok = Tensor::<f32>::full(Shape4::new(1, 5, 5, 2), 0.5);
        assert_eq!(
            engine.infer(ok.clone()).unwrap(),
            session.infer(&ok).unwrap()
        );
    }

    #[test]
    fn fused_and_unfused_execution_are_bit_identical() {
        let session = tiny_session();
        // Varied image counts (0, 1, 2) so fused batches hold empty and
        // tiny segments; solo inference is the golden for both modes.
        let count = |s: u64| (s % 3) as usize;
        let golden: Vec<Tensor<f32>> = (0..6)
            .map(|s| session.infer(&input(s, count(s))).unwrap())
            .collect();
        for fuse in [true, false] {
            let engine = ServeEngine::new(
                Arc::clone(&session),
                ServeConfig::new()
                    .with_shards(1)
                    .with_max_batch_images(16)
                    .with_flush_ticks(50)
                    .with_fuse_batches(fuse),
            )
            .unwrap();
            let tickets: Vec<Ticket> = (0..6)
                .map(|s| engine.submit(input(s, count(s))).unwrap())
                .collect();
            for (s, t) in tickets.into_iter().enumerate() {
                assert_eq!(t.wait().unwrap(), golden[s], "fuse={fuse} request {s}");
            }
            let stats = engine.stats();
            assert_eq!(stats.requests, 6);
            if fuse {
                // Any multi-request batch must have run fused (all
                // inputs share (5, 5, 2)); coalescing itself is
                // timing-dependent, so only assert when it happened.
                if stats.batches < 6 {
                    assert!(stats.fused_batches >= 1, "{stats:?}");
                }
            } else {
                assert_eq!(stats.fused_batches, 0, "{stats:?}");
            }
        }
    }

    #[test]
    fn shape_mixed_batches_fall_back_to_per_request_execution() {
        let session = tiny_session();
        let engine = ServeEngine::new(
            Arc::clone(&session),
            ServeConfig::new()
                .with_shards(1)
                .with_max_batch_images(16)
                .with_flush_ticks(50),
        )
        .unwrap();
        // Same tenant, different spatial shapes: the requests may
        // coalesce into one micro-batch but must never fuse — and every
        // response stays bit-identical either way.
        let small = rng::uniform(Shape4::new(1, 5, 5, 2), 3, -1.0, 1.0);
        let big = rng::uniform(Shape4::new(2, 7, 7, 2), 4, -1.0, 1.0);
        let t_small = engine.submit(small.clone()).unwrap();
        let t_big = engine.submit(big.clone()).unwrap();
        assert_eq!(t_small.wait().unwrap(), session.infer(&small).unwrap());
        assert_eq!(t_big.wait().unwrap(), session.infer(&big).unwrap());
        assert_eq!(engine.stats().fused_batches, 0);
    }

    #[test]
    fn per_tenant_stats_split_requests_by_key() {
        let anchor = tiny_session();
        let registry = Arc::new(SessionRegistry::new(4).unwrap());
        let key_a = registry.install("tiny", Arc::clone(&anchor)).unwrap();
        let bam = axmult::catalog::by_name("mul8s_bam_v8h0").unwrap();
        let key_b = registry.admit("tiny", &Assignment::uniform(bam)).unwrap();
        let engine =
            ServeEngine::with_registry(registry, key_a.clone(), ServeConfig::new()).unwrap();
        for seed in 0..3 {
            engine.infer_to(&key_a, input(seed, 1)).unwrap();
        }
        engine.infer_to(&key_b, input(9, 1)).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.per_tenant.len(), 2);
        let row = |key: &SessionKey| {
            stats
                .per_tenant
                .iter()
                .find(|t| &t.key == key)
                .unwrap_or_else(|| panic!("missing tenant row for {key}"))
        };
        assert_eq!(row(&key_a).requests, 3);
        assert_eq!(row(&key_b).requests, 1);
        assert_eq!(row(&key_a).deadline_shed, 0);
        assert_eq!(row(&key_b).deadline_shed, 0);
        // Rows are ordered by display form — deterministic snapshots.
        let names: Vec<String> = stats.per_tenant.iter().map(|t| t.key.to_string()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn serve_error_display_names_the_cause() {
        assert!(ServeError::Overloaded { depth: 8 }
            .to_string()
            .contains("queue full (8"));
        assert!(ServeError::ShuttingDown.to_string().contains("shutting"));
        assert!(ServeError::DeadlineExceeded {
            budget: Duration::from_millis(5)
        }
        .to_string()
        .contains("deadline"));
        let e: Error = ServeError::Failed("boom".into()).into();
        assert!(e.to_string().contains("boom"), "{e}");
    }

    #[test]
    fn keyed_submissions_route_to_their_tenant() {
        // Two tenants with different multipliers over one anchor: each
        // keyed response must be bit-identical to ITS tenant's solo
        // session — never the other's.
        let anchor = tiny_session();
        let registry = Arc::new(SessionRegistry::new(4).unwrap());
        let key_exact = registry.install("tiny", Arc::clone(&anchor)).unwrap();
        let bam = axmult::catalog::by_name("mul8s_bam_v8h0").unwrap();
        let key_bam = registry.admit("tiny", &Assignment::uniform(bam)).unwrap();
        let solo_bam = tiny_session_with("mul8s_bam_v8h0");
        let engine = ServeEngine::with_registry(
            registry,
            key_exact.clone(),
            ServeConfig::new().with_shards(2).with_max_batch_images(4),
        )
        .unwrap();
        for seed in 0..4 {
            let x = input(seed, 2);
            let exact_out = engine.infer_to(&key_exact, x.clone()).unwrap();
            let bam_out = engine.infer_to(&key_bam, x.clone()).unwrap();
            assert_eq!(exact_out, anchor.infer(&x).unwrap(), "seed {seed}");
            assert_eq!(bam_out, solo_bam.infer(&x).unwrap(), "seed {seed}");
            assert_ne!(
                exact_out, bam_out,
                "the two multipliers must actually differ for this check to mean anything"
            );
        }
        // The default-key shim routes to the anchor tenant.
        let x = input(9, 1);
        assert_eq!(engine.infer(x.clone()).unwrap(), anchor.infer(&x).unwrap());
    }

    #[test]
    fn micro_batches_never_mix_tenants() {
        // One shard, wide-open flush window, both tenants' requests
        // queued together: coalescing must split them by key, and every
        // response stays bit-identical to its own tenant.
        let anchor = tiny_session();
        let registry = Arc::new(SessionRegistry::new(4).unwrap());
        let key_a = registry.install("tiny", Arc::clone(&anchor)).unwrap();
        let bam = axmult::catalog::by_name("mul8s_bam_v8h0").unwrap();
        let key_b = registry.admit("tiny", &Assignment::uniform(bam)).unwrap();
        let solo_b = tiny_session_with("mul8s_bam_v8h0");
        let engine = ServeEngine::with_registry(
            registry,
            key_a.clone(),
            ServeConfig::new()
                .with_shards(1)
                .with_max_batch_images(16)
                .with_flush_ticks(25),
        )
        .unwrap();
        let tickets: Vec<_> = (0..10)
            .map(|s| {
                let key = if s % 2 == 0 { &key_a } else { &key_b };
                (s, engine.submit_to(key, input(s as u64, 1)).unwrap())
            })
            .collect();
        for (s, t) in tickets {
            let golden = if s % 2 == 0 {
                anchor.infer(&input(s as u64, 1)).unwrap()
            } else {
                solo_b.infer(&input(s as u64, 1)).unwrap()
            };
            assert_eq!(t.wait().unwrap(), golden, "request {s}");
        }
    }

    #[test]
    fn expired_deadline_sheds_with_deadline_exceeded() {
        let session = tiny_session();
        let engine = ServeEngine::new(
            Arc::clone(&session),
            ServeConfig::new()
                .with_shards(1)
                .with_max_batch_images(1)
                .with_queue_depth(64),
        )
        .unwrap();
        let key = engine.default_key().clone();
        // Keep the single shard busy so the zero-budget request is
        // guaranteed to wait past its (immediate) deadline.
        let busy = engine.submit(input(99, 24)).unwrap();
        let doomed = engine
            .submit_within(&key, input(1, 1), Duration::ZERO)
            .unwrap();
        let err = doomed.wait().unwrap_err();
        match err {
            Error::Serve(ServeError::DeadlineExceeded { budget }) => {
                assert_eq!(budget, Duration::ZERO)
            }
            other => panic!("expected DeadlineExceeded, got {other}"),
        }
        assert!(busy.wait().is_ok());
        let stats = engine.stats();
        assert_eq!(stats.deadline_shed, 1);
        // Sheds are not counted as answered requests.
        assert_eq!(stats.requests, 1);
    }

    #[test]
    fn generous_deadline_resolves_normally() {
        let session = tiny_session();
        let engine = ServeEngine::new(Arc::clone(&session), ServeConfig::new()).unwrap();
        let key = engine.default_key().clone();
        let x = input(3, 2);
        let out = engine
            .submit_within(&key, x.clone(), Duration::from_secs(60))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(out, session.infer(&x).unwrap());
        assert_eq!(engine.stats().deadline_shed, 0);
    }

    #[test]
    fn try_wait_polls_without_consuming_the_ticket() {
        let session = tiny_session();
        let engine = ServeEngine::new(
            Arc::clone(&session),
            ServeConfig::new().with_shards(1).with_max_batch_images(1),
        )
        .unwrap();
        // Park a big request in front so the probe almost certainly sees
        // "pending" at least once — but the test is correct either way.
        let busy = engine.submit(input(42, 16)).unwrap();
        let x = input(7, 1);
        let mut ticket = engine.submit(x.clone()).unwrap();
        let mut probes = 0u32;
        let out = loop {
            match ticket.try_wait() {
                Ok(result) => break result.unwrap(),
                Err(pending) => {
                    // Not ready: the ticket comes back intact.
                    ticket = pending;
                    probes += 1;
                    std::thread::yield_now();
                }
            }
        };
        assert_eq!(out, session.infer(&x).unwrap());
        assert!(busy.wait().is_ok());
        // `probes` is informational; zero is legal if the engine was fast.
        let _ = probes;
    }

    #[test]
    fn latency_percentiles_populate_and_order() {
        let session = tiny_session();
        let engine = ServeEngine::new(Arc::clone(&session), ServeConfig::new()).unwrap();
        for seed in 0..6 {
            engine.infer(input(seed, 1)).unwrap();
        }
        let stats = engine.stats();
        assert!(stats.p50_latency_s > 0.0);
        assert!(stats.p50_latency_s <= stats.p95_latency_s);
        assert!(stats.p95_latency_s <= stats.p99_latency_s);
    }

    #[test]
    fn single_tenant_shim_exposes_registry_and_default_key() {
        let session = tiny_session();
        let engine = ServeEngine::new(Arc::clone(&session), ServeConfig::new()).unwrap();
        assert_eq!(engine.default_key().model(), DEFAULT_MODEL);
        let resolved = engine.session().unwrap();
        assert!(Arc::ptr_eq(&resolved, &session));
        let stats = engine.registry().stats();
        assert_eq!(stats.models, 1);
        // submit_to with the default key is exactly submit.
        let x = input(2, 1);
        let keyed = engine
            .infer_to(&engine.default_key().clone(), x.clone())
            .unwrap();
        assert_eq!(keyed, session.infer(&x).unwrap());
    }
}
