//! A streaming latency histogram for tail-latency observability.
//!
//! Tail latency — not mean throughput — is what governs how much load a
//! serving tier can admit while meeting its SLOs, so the engine records
//! every answered request's submit-to-response latency here and surfaces
//! p50/p95/p99 through [`crate::serve::ServeStats`]. The histogram is
//! lock-free on the record path (one relaxed atomic increment), constant
//! in memory, and mergeable-by-construction: values land in power-of-two
//! nanosecond buckets, so a quantile estimate is never more than one
//! bucket (a factor of two) away from the true order statistic, and
//! within a bucket the estimate interpolates linearly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two buckets: bucket `i` (for `i >= 1`) holds
/// durations whose nanosecond count has bit-length `i`, i.e. the range
/// `[2^(i-1), 2^i)`; bucket 0 holds exactly zero. 64 buckets cover the
/// whole `u64` nanosecond range (up to ~584 years).
const BUCKETS: usize = 64;

/// A fixed-size, lock-free histogram of durations with quantile
/// estimation.
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// use tfapprox::serve::LatencyHistogram;
///
/// let h = LatencyHistogram::new();
/// for ms in [1u64, 2, 3, 4, 100] {
///     h.record(Duration::from_millis(ms));
/// }
/// assert_eq!(h.count(), 5);
/// let p50 = h.quantile(0.5).unwrap();
/// assert!(p50 >= Duration::from_millis(1) && p50 < Duration::from_millis(8));
/// // The tail sees the outlier the mean would hide.
/// assert!(h.quantile(0.99).unwrap() >= Duration::from_millis(64));
/// ```
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
        }
    }

    /// The bucket index of a nanosecond count: its bit length.
    fn bucket_of(nanos: u64) -> usize {
        (u64::BITS - nanos.leading_zeros()) as usize
    }

    /// The half-open nanosecond range `[lo, hi)` of bucket `i`.
    fn bounds_of(i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 1)
        } else {
            (1u64 << (i - 1), (1u64 << (i - 1)).saturating_mul(2))
        }
    }

    /// Record one duration (lock-free; one relaxed increment).
    pub fn record(&self, latency: Duration) {
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        let i = Self::bucket_of(nanos).min(BUCKETS - 1);
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Durations recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Estimate the `q`-quantile (`q` is clamped into `[0, 1]`): the
    /// smallest latency at least `q` of the recorded durations fall at or
    /// below. Linear interpolation inside the owning power-of-two bucket
    /// keeps the estimate within a factor of two of the true order
    /// statistic.
    ///
    /// Returns `None` while the histogram is empty. Concurrent recording
    /// makes the snapshot approximate, never torn per bucket.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // The 1-based rank of the order statistic we estimate: the first
        // one with strictly more than `q` of the data at or below it, so
        // p99 of a 1%-outlier distribution lands ON the outlier.
        let rank = (((q * total as f64).floor() as u64).saturating_add(1)).clamp(1, total);
        let mut seen = 0u64;
        for (i, &n) in counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let (lo, hi) = Self::bounds_of(i);
                // Midpoint interpolation: rank k of n sits at (k-0.5)/n
                // through the bucket, strictly inside [lo, hi).
                let into = ((rank - seen) as f64 - 0.5) / n as f64;
                let nanos = lo as f64 + into * (hi - lo) as f64;
                return Some(Duration::from_nanos(nanos as u64));
            }
            seen += n;
        }
        // Unreachable: rank <= total and the loop covers every count.
        None
    }

    /// `quantile` as fractional seconds, with `0.0` for an empty
    /// histogram — the shape [`crate::serve::ServeStats`] reports.
    #[must_use]
    pub fn quantile_seconds(&self, q: f64) -> f64 {
        self.quantile(q).map_or(0.0, |d| d.as_secs_f64())
    }

    /// Reset every bucket (e.g. between benchmark sweep points). Not
    /// atomic with respect to concurrent `record` calls: counts recorded
    /// during the reset may be partially kept.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile_seconds(0.99), 0.0);
    }

    #[test]
    fn single_value_is_every_quantile() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(300));
        for q in [0.0, 0.5, 0.99, 1.0] {
            let est = h.quantile(q).unwrap();
            // Within the owning power-of-two bucket [262144, 524288) ns.
            assert!(
                est.as_nanos() >= 262_144 && est.as_nanos() < 524_288,
                "q={q} estimated {est:?}"
            );
        }
    }

    #[test]
    fn zero_duration_lands_in_bucket_zero() {
        let h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5).unwrap(), Duration::ZERO);
    }

    #[test]
    fn quantiles_are_monotone_and_bracket_the_data() {
        let h = LatencyHistogram::new();
        // 90 fast requests, 9 slow, 1 very slow: the classic tail.
        for _ in 0..90 {
            h.record(Duration::from_micros(100));
        }
        for _ in 0..9 {
            h.record(Duration::from_millis(10));
        }
        h.record(Duration::from_secs(1));
        let p50 = h.quantile(0.50).unwrap();
        let p95 = h.quantile(0.95).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 <= p95 && p95 <= p99, "{p50:?} {p95:?} {p99:?}");
        // p50 sits in the fast bucket, p95 in the slow one, p99 at the
        // outlier — each within its factor-of-two bucket.
        assert!(p50 < Duration::from_micros(200), "{p50:?}");
        assert!(
            p95 >= Duration::from_millis(8) && p95 < Duration::from_millis(20),
            "{p95:?}"
        );
        assert!(p99 >= Duration::from_millis(512), "{p99:?}");
    }

    #[test]
    fn out_of_range_q_clamps() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(5));
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
        assert!(h.quantile(f64::NAN).is_some()); // NaN clamps too
    }

    #[test]
    fn reset_clears() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(5));
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn concurrent_records_are_all_counted() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(Duration::from_nanos(t * 1000 + i));
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
    }
}
