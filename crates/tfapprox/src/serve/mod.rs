//! The serving tier: many compiled [`Session`]s behind one admission
//! queue, with micro-batching, event-driven shards, and SLO shedding.
//!
//! PRs 2–4 made one `Session::infer` call fast; PR 5 let many concurrent
//! callers share one session's speed. This module generalises that to
//! the paper's real shape — *many* approximate-multiplier configurations
//! served at once (the ALWANN design-space story of
//! conf_date_VaverkaMVS20) — by splitting the tier into three parts:
//!
//! - [`registry`] — a [`SessionRegistry`] holding compiled sessions
//!   keyed by `(model, resolved per-layer multipliers)` behind an LRU of
//!   compiled plans. Admission of a new multiplier variant compiles
//!   on-miss through [`Session::reassign`], so the plan-transplant path
//!   makes a cold tenant pay input-side work only.
//! - [`engine`] — the [`ServeEngine`]: keyed submission
//!   ([`ServeEngine::submit_to`]) over one shared worker pool, per-key
//!   micro-batch coalescing, **event-driven** shard wakeup (a shard
//!   sleeps on the arrival condvar until its flush *deadline*; there is
//!   no poll tick), per-request SLO deadlines with
//!   [`ServeError::DeadlineExceeded`] shedding, and bounded-queue
//!   backpressure with [`ServeError::Overloaded`].
//! - [`histogram`] — a lock-free streaming [`LatencyHistogram`] that
//!   gives [`ServeStats`] its p50/p95/p99 submit-to-response latencies:
//!   the tail numbers that govern how much load the tier can admit.
//!
//! # Request lifecycle
//!
//! **Admission** (resolve the [`SessionKey`] through the registry,
//! compile-on-miss, bounded-queue check) → **keyed coalesce** (a shard
//! pops the first live request and coalesces only same-key arrivals) →
//! **wakeup** (the shard sleeps until its flush deadline — or the
//! tightest member SLO deadline — and is woken by arrivals) → **shed or
//! execute** (expired requests answer `DeadlineExceeded`; the batch
//! executes as **one fused** [`Session::infer_fused`] graph pass when
//! [`ServeConfig::fuse_batches`] is on and every member shares one image
//! shape, and as one [`Session::infer_batches`] pass per request
//! otherwise, then answers every member).
//!
//! # Determinism
//!
//! A request's output is **bit-identical** whether it ran solo, in any
//! batch composition, fused or unfused, on any shard, under any tenant
//! mix, before or after an LRU eviction of its session. For the
//! per-request path this is as before: one graph pass per tensor. The
//! fused path earns the same guarantee through **segments**: the batch
//! tensor carries an [`axtensor::SegmentTable`] marking each request's
//! image span, the transformed graph's `Min`/`Max` observers reduce *per
//! segment* (never across request boundaries), and the LUT-GEMM epilogue
//! applies each segment's own quantization parameters to its rows. The
//! cross-contamination that once made fusion unsafe — whole-tensor
//! range observers bleeding one caller's data into another's
//! quantization grid — is gone by construction, and the conformance
//! suite pins `infer_fused` against solo `infer` bit-for-bit across
//! every backend and accumulator model.
//!
//! [`Session`]: crate::Session
//! [`Session::reassign`]: crate::Session::reassign
//! [`Session::infer_batches`]: crate::Session::infer_batches
//! [`Session::infer_fused`]: crate::Session::infer_fused
//! [`Session::infer`]: crate::Session::infer

#![deny(missing_docs)]

pub mod engine;
pub mod histogram;
pub mod registry;

pub use engine::{
    ServeConfig, ServeEngine, ServeError, ServeStats, TenantServeStats, Ticket, DEFAULT_MODEL,
    FLUSH_TICK,
};
pub use histogram::LatencyHistogram;
pub use registry::{RegistryStats, SessionKey, SessionRegistry};
