//! The multi-tenant session registry: many compiled [`Session`]s, one
//! serving tier.
//!
//! The ALWANN design-space story is "many multiplier assignments of the
//! same model"; the production story is "many models × many assignments
//! × many callers". Both need the same structure: a registry that keys
//! compiled sessions by **(model, resolved multiplier assignment)**,
//! keeps the hot ones resident behind an LRU of compiled plans, and
//! compiles misses through [`Session::reassign`] — the plan-transplant
//! path that makes admitting a new multiplier variant pay input-side
//! work only (the anchor session's prepared filter plans are reused or
//! transplanted, never rebuilt for same-signedness changes).
//!
//! Every model is **installed** once with its anchor session (pinned,
//! never evicted — it is the reassign donor for all of the model's
//! variants); variants are **admitted** on demand and evicted
//! least-recently-used when the configured capacity is exceeded.
//! Eviction only drops the registry's reference: in-flight requests hold
//! their own `Arc<Session>`, so a session serving a micro-batch is never
//! invalidated mid-flight.

use crate::{Assignment, Error, Session};
use axmult::AxMultiplier;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Identity of one compiled tenant: a model (graph) name plus the
/// resolved per-layer multiplier assignment.
///
/// Two keys are equal iff they name the same installed model and resolve
/// to the same multiplier **names** layer by layer (catalog names are
/// unique per truth table, so names identify the emulated hardware).
/// Keys are cheap to clone (one `Arc` bump) and carry enough information
/// — the resolved multipliers themselves — for the registry to recompile
/// the session after an eviction without the caller resupplying the
/// [`Assignment`].
#[derive(Clone)]
pub struct SessionKey {
    inner: Arc<KeyInner>,
}

struct KeyInner {
    model: String,
    mults: Vec<AxMultiplier>,
}

impl SessionKey {
    fn new(model: &str, mults: Vec<AxMultiplier>) -> Self {
        SessionKey {
            inner: Arc::new(KeyInner {
                model: model.to_owned(),
                mults,
            }),
        }
    }

    /// The installed model name this key addresses.
    #[must_use]
    pub fn model(&self) -> &str {
        &self.inner.model
    }

    /// The resolved multiplier name of each convolution layer, in
    /// topological order.
    #[must_use]
    pub fn multiplier_names(&self) -> Vec<&str> {
        self.inner.mults.iter().map(AxMultiplier::name).collect()
    }

    fn mults(&self) -> &[AxMultiplier] {
        &self.inner.mults
    }
}

impl PartialEq for SessionKey {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
            || (self.inner.model == other.inner.model
                && self.inner.mults.len() == other.inner.mults.len()
                && self
                    .inner
                    .mults
                    .iter()
                    .zip(&other.inner.mults)
                    .all(|(a, b)| a.name() == b.name()))
    }
}

impl Eq for SessionKey {}

impl Hash for SessionKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.inner.model.hash(state);
        for m in &self.inner.mults {
            m.name().hash(state);
        }
    }
}

impl fmt::Debug for SessionKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionKey")
            .field("model", &self.inner.model)
            .field("multipliers", &self.multiplier_names())
            .finish()
    }
}

impl fmt::Display for SessionKey {
    /// `model@mult` when the assignment is uniform, `model@[m0,m1,…]`
    /// otherwise.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = self.multiplier_names();
        match names.split_first() {
            Some((first, rest)) if rest.iter().all(|n| n == first) => {
                write!(f, "{}@{first}", self.inner.model)
            }
            _ => write!(f, "{}@[{}]", self.inner.model, names.join(",")),
        }
    }
}

/// A point-in-time snapshot of the registry's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryStats {
    /// Installed models (each with its pinned anchor session).
    pub models: usize,
    /// Variant sessions currently resident, beyond the pinned anchors.
    pub resident: usize,
    /// The configured variant capacity.
    pub capacity: usize,
    /// Lookups answered from a resident session.
    pub hits: u64,
    /// Lookups that compiled a session (admission of a new variant, or
    /// recompilation of an evicted one).
    pub misses: u64,
    /// Variant sessions dropped by the LRU.
    pub evictions: u64,
}

struct RegistryInner {
    /// Pinned anchors: the reassign donors, one per installed model.
    anchors: HashMap<String, (SessionKey, Arc<Session>)>,
    /// Resident variants in LRU order: front = coldest, back = hottest.
    variants: Vec<(SessionKey, Arc<Session>)>,
}

/// Many compiled sessions behind one LRU of compiled plans.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use tfapprox::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = axnn::resnet::ResNetConfig::with_depth(8)?.build(42)?;
/// let exact = axmult::catalog::by_name("mul8s_exact")?;
/// let anchor = Arc::new(
///     Session::builder()
///         .backend(Backend::CpuGemm)
///         .multiplier(&exact)
///         .compile(&graph)?,
/// );
///
/// let registry = SessionRegistry::new(8)?;
/// registry.install("resnet8", anchor)?;
///
/// // Admitting a new multiplier variant compiles on miss — through the
/// // reassign plan-transplant path, so it is cheap — and is a hit after.
/// let rough = axmult::catalog::by_name("mul8s_bam_v8h0")?;
/// let key = registry.admit("resnet8", &Assignment::uniform(rough))?;
/// assert_eq!(registry.stats().misses, 1);
/// let _again = registry.admit("resnet8", &Assignment::uniform(
///     axmult::catalog::by_name("mul8s_bam_v8h0")?,
/// ))?;
/// assert_eq!(registry.stats().hits, 1);
/// assert_eq!(key.to_string(), "resnet8@mul8s_bam_v8h0");
/// # Ok(())
/// # }
/// ```
pub struct SessionRegistry {
    capacity: usize,
    inner: Mutex<RegistryInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl fmt::Debug for SessionRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("SessionRegistry")
            .field("capacity", &self.capacity)
            .field("models", &stats.models)
            .field("resident", &stats.resident)
            .finish_non_exhaustive()
    }
}

impl SessionRegistry {
    /// A registry keeping at most `capacity` variant sessions resident
    /// (anchors are pinned and do not count against it).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] for a zero capacity — a registry that
    /// could hold no variant would thrash on every admission.
    pub fn new(capacity: usize) -> Result<Self, Error> {
        if capacity == 0 {
            return Err(Error::Config(
                "registry capacity must be positive (got 0)".to_owned(),
            ));
        }
        Ok(SessionRegistry {
            capacity,
            inner: Mutex::new(RegistryInner {
                anchors: HashMap::new(),
                variants: Vec::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        })
    }

    /// Install a model under `model`, with `anchor` as its pinned anchor
    /// session — the [`Session::reassign`] donor every later variant of
    /// this model compiles from. Returns the anchor's own key.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] if `model` is already installed
    /// (replacing an anchor out from under its variants would silently
    /// change what existing keys mean).
    pub fn install(&self, model: &str, anchor: Arc<Session>) -> Result<SessionKey, Error> {
        let key = SessionKey::new(model, anchor.multipliers().to_vec());
        let mut inner = self.inner.lock().expect("registry lock");
        if inner.anchors.contains_key(model) {
            return Err(Error::Config(format!(
                "model '{model}' is already installed in the registry"
            )));
        }
        inner
            .anchors
            .insert(model.to_owned(), (key.clone(), anchor));
        Ok(key)
    }

    /// Admit a tenant: resolve `assignment` against the installed
    /// `model`, compile the session if it is not resident (via the
    /// anchor's `reassign` — plan transplant, not a cold compile), and
    /// return the key to submit against.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] for an unknown model or an assignment
    /// that does not resolve against the model's convolution-layer
    /// count; propagates compile failures.
    pub fn admit(&self, model: &str, assignment: &Assignment) -> Result<SessionKey, Error> {
        let conv_layers = {
            let inner = self.inner.lock().expect("registry lock");
            let (_, anchor) = inner.anchors.get(model).ok_or_else(|| {
                Error::Config(format!("model '{model}' is not installed in the registry"))
            })?;
            anchor.multipliers().len()
        };
        let key = SessionKey::new(model, assignment.resolve(conv_layers)?);
        self.session_for(&key)?;
        Ok(key)
    }

    /// The resident session for `key`, compiling on miss (admission of a
    /// new variant, or an evicted one resubmitted — the key carries the
    /// resolved multipliers, so no `Assignment` is needed). A hit
    /// touches the LRU.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] if the key's model was never installed;
    /// propagates compile failures.
    pub fn session_for(&self, key: &SessionKey) -> Result<Arc<Session>, Error> {
        let anchor = {
            let mut inner = self.inner.lock().expect("registry lock");
            if let Some((anchor_key, anchor)) = inner.anchors.get(key.model()) {
                if anchor_key == key {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Arc::clone(anchor));
                }
                let anchor = Arc::clone(anchor);
                if let Some(i) = inner.variants.iter().position(|(k, _)| k == key) {
                    // LRU touch: move to the hot end.
                    let entry = inner.variants.remove(i);
                    let session = Arc::clone(&entry.1);
                    inner.variants.push(entry);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(session);
                }
                anchor
            } else {
                return Err(Error::Config(format!(
                    "model '{}' is not installed in the registry",
                    key.model()
                )));
            }
        };
        // Compile outside the lock: admission of one slow tenant must not
        // stall every other tenant's lookups. The reassign path reuses or
        // transplants the anchor's prepared plans, so the remaining cost
        // is small.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fresh = Arc::new(anchor.reassign(&Assignment::per_layer(key.mults().to_vec()))?);
        let mut inner = self.inner.lock().expect("registry lock");
        if let Some(i) = inner.variants.iter().position(|(k, _)| k == key) {
            // Another thread admitted the same key while we compiled:
            // first one in wins, ours is dropped.
            let entry = inner.variants.remove(i);
            let session = Arc::clone(&entry.1);
            inner.variants.push(entry);
            return Ok(session);
        }
        inner.variants.push((key.clone(), Arc::clone(&fresh)));
        while inner.variants.len() > self.capacity {
            inner.variants.remove(0);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(fresh)
    }

    /// Whether `key`'s session is currently resident (anchor or
    /// variant). Does not touch the LRU — a probe, not a use.
    #[must_use]
    pub fn is_resident(&self, key: &SessionKey) -> bool {
        let inner = self.inner.lock().expect("registry lock");
        inner
            .anchors
            .get(key.model())
            .is_some_and(|(k, _)| k == key)
            || inner.variants.iter().any(|(k, _)| k == key)
    }

    /// The resident variant keys in LRU order (coldest first). Anchors
    /// are pinned and not listed.
    #[must_use]
    pub fn resident_keys(&self) -> Vec<SessionKey> {
        let inner = self.inner.lock().expect("registry lock");
        inner.variants.iter().map(|(k, _)| k.clone()).collect()
    }

    /// Snapshot the registry's counters.
    #[must_use]
    pub fn stats(&self) -> RegistryStats {
        let inner = self.inner.lock().expect("registry lock");
        RegistryStats {
            models: inner.anchors.len(),
            resident: inner.variants.len(),
            capacity: self.capacity,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Backend;
    use axnn::layers::Conv2D;
    use axnn::Graph;
    use axtensor::{rng, ConvGeometry, FilterShape};

    fn tiny_anchor(backend: Backend) -> Arc<Session> {
        let mut g = Graph::new();
        let x = g.input();
        let f1 = rng::uniform_filter(FilterShape::new(3, 3, 2, 3), 11, -0.5, 0.5);
        let c1 = g
            .add(
                "conv1",
                Arc::new(Conv2D::new(f1, ConvGeometry::default())),
                &[x],
            )
            .unwrap();
        let f2 = rng::uniform_filter(FilterShape::new(3, 3, 3, 2), 12, -0.5, 0.5);
        let c2 = g
            .add(
                "conv2",
                Arc::new(Conv2D::new(f2, ConvGeometry::default())),
                &[c1],
            )
            .unwrap();
        g.set_output(c2).unwrap();
        let exact = axmult::catalog::by_name("mul8s_exact").unwrap();
        Arc::new(
            Session::builder()
                .backend(backend)
                .chunk_size(4)
                .threads(2)
                .multiplier(&exact)
                .compile(&g)
                .unwrap(),
        )
    }

    fn uniform(name: &str) -> Assignment {
        Assignment::uniform(axmult::catalog::by_name(name).unwrap())
    }

    #[test]
    fn zero_capacity_is_a_config_error() {
        let err = SessionRegistry::new(0).unwrap_err();
        assert!(matches!(err, Error::Config(_)), "{err}");
        assert!(err.to_string().contains("capacity"), "{err}");
    }

    #[test]
    fn duplicate_install_is_rejected() {
        let registry = SessionRegistry::new(4).unwrap();
        let anchor = tiny_anchor(Backend::CpuGemm);
        registry.install("m", Arc::clone(&anchor)).unwrap();
        let err = registry.install("m", anchor).unwrap_err();
        assert!(err.to_string().contains("already installed"), "{err}");
    }

    #[test]
    fn unknown_model_is_a_config_error() {
        let registry = SessionRegistry::new(4).unwrap();
        let err = registry
            .admit("ghost", &uniform("mul8s_exact"))
            .unwrap_err();
        assert!(err.to_string().contains("not installed"), "{err}");
    }

    #[test]
    fn anchor_assignment_is_a_pinned_hit() {
        let registry = SessionRegistry::new(1).unwrap();
        let anchor = tiny_anchor(Backend::CpuGemm);
        let key = registry.install("m", Arc::clone(&anchor)).unwrap();
        let got = registry.session_for(&key).unwrap();
        assert!(Arc::ptr_eq(&got, &anchor));
        let stats = registry.stats();
        assert_eq!((stats.hits, stats.misses, stats.resident), (1, 0, 0));
        // Admitting the anchor's own assignment resolves to the anchor.
        let same = registry.admit("m", &uniform("mul8s_exact")).unwrap();
        assert_eq!(same, key);
        assert_eq!(registry.stats().resident, 0, "anchor is not a variant");
    }

    #[test]
    fn miss_compiles_then_hits() {
        let registry = SessionRegistry::new(4).unwrap();
        registry
            .install("m", tiny_anchor(Backend::CpuGemm))
            .unwrap();
        let key = registry.admit("m", &uniform("mul8s_bam_v8h0")).unwrap();
        assert_eq!(registry.stats().misses, 1);
        let first = registry.session_for(&key).unwrap();
        let second = registry.session_for(&key).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        let stats = registry.stats();
        assert_eq!(stats.misses, 1, "resident session must not recompile");
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn lru_evicts_coldest_and_touch_reorders() {
        let registry = SessionRegistry::new(2).unwrap();
        registry
            .install("m", tiny_anchor(Backend::CpuGemm))
            .unwrap();
        let a = registry.admit("m", &uniform("mul8s_bam_v8h0")).unwrap();
        let b = registry.admit("m", &uniform("mul8s_drum4")).unwrap();
        // Touch `a`: `b` becomes the coldest.
        registry.session_for(&a).unwrap();
        let c = registry.admit("m", &uniform("mul8s_mitchell")).unwrap();
        assert!(registry.is_resident(&a), "touched entry must survive");
        assert!(!registry.is_resident(&b), "coldest entry must evict");
        assert!(registry.is_resident(&c));
        let stats = registry.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.resident, 2);
        assert_eq!(registry.resident_keys(), vec![a.clone(), c]);
        // The evicted key still resolves — recompiled from the anchor.
        let revived = registry.session_for(&b).unwrap();
        assert_eq!(revived.multipliers()[0].name(), "mul8s_drum4");
        assert_eq!(registry.stats().evictions, 2, "a evicted in turn");
    }

    #[test]
    fn mismatched_assignment_errors() {
        let registry = SessionRegistry::new(2).unwrap();
        registry
            .install("m", tiny_anchor(Backend::CpuGemm))
            .unwrap();
        let exact = axmult::catalog::by_name("mul8s_exact").unwrap();
        let err = registry
            .admit("m", &Assignment::per_layer(vec![exact]))
            .unwrap_err();
        assert!(err.to_string().contains("2 convolution layers"), "{err}");
    }

    #[test]
    fn key_identity_is_model_plus_multiplier_names() {
        let registry = SessionRegistry::new(4).unwrap();
        registry
            .install("m", tiny_anchor(Backend::CpuGemm))
            .unwrap();
        let a = registry.admit("m", &uniform("mul8s_bam_v8h0")).unwrap();
        // The same assignment expressed differently resolves to an equal
        // key — and hits, not recompiles.
        let rough = axmult::catalog::by_name("mul8s_bam_v8h0").unwrap();
        let b = registry
            .admit(
                "m",
                &Assignment::per_layer(vec![rough.clone(), rough.clone()]),
            )
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(registry.stats().misses, 1);
        assert_eq!(a.to_string(), "m@mul8s_bam_v8h0");
        let mixed = registry
            .admit(
                "m",
                &Assignment::uniform(rough)
                    .with_layer(0, axmult::catalog::by_name("mul8s_exact").unwrap()),
            )
            .unwrap();
        assert_ne!(a, mixed);
        assert_eq!(mixed.to_string(), "m@[mul8s_exact,mul8s_bam_v8h0]");
        assert_eq!(
            mixed.multiplier_names(),
            vec!["mul8s_exact", "mul8s_bam_v8h0"]
        );
        assert_eq!(mixed.model(), "m");
    }
}
