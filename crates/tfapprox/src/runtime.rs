//! Batch-wise inference with `tinit + tcomp` accounting.
//!
//! Table I reports every configuration as `tinit + tcomp`: a constant
//! initialization (context creation, allocation, data transfer) plus a
//! computation time that grows linearly with the number of MACs. This
//! module executes a (transformed) graph over evaluation batches and
//! produces that decomposition.

use crate::{Backend, EmuContext, EmuError};
use axnn::Graph;
use axtensor::Tensor;
use gpusim::{Phase, PhaseProfile};
use std::time::Instant;

/// Modeled constant CPU-side initialization (framework start-up, weight
/// loading) — Table I's CPU `tinit` is 0.2–0.3 s and flat.
pub const CPU_INIT_S: f64 = 0.25;

/// Result of one emulated inference run.
#[derive(Debug, Clone, Copy)]
pub struct EmulationReport {
    /// The backend that executed the run.
    pub backend: Backend,
    /// Initialization seconds (constant for a given dataset).
    pub tinit: f64,
    /// Computation seconds (linear in MACs).
    pub tcomp: f64,
    /// Phase breakdown of `tinit + tcomp` (Fig. 2).
    pub profile: PhaseProfile,
    /// Images processed.
    pub images: usize,
    /// The LUT-GEMM kernel arm that executed the host GEMM (a
    /// [`crate::kernel::KernelKind`] name), or `"none"` for backends
    /// that never enter the host LUT-GEMM (direct CPU loops, the
    /// simulated GPU, the accurate baseline).
    pub kernel: &'static str,
}

impl EmulationReport {
    /// Total time `tinit + tcomp`.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.tinit + self.tcomp
    }

    /// Emulated-inference throughput, `images / (tinit + tcomp)` — the
    /// figure of merit the paper's speedup columns compare.
    ///
    /// Returns an explicit 0.0 — never a division by zero or a NaN — for
    /// degenerate runs: zero images (zero-batch inputs are legal and flow
    /// through every backend) or zero total time.
    #[must_use]
    pub fn images_per_second(&self) -> f64 {
        let total = self.total();
        if self.images == 0 || total <= 0.0 {
            0.0
        } else {
            self.images as f64 / total
        }
    }

    /// Render the report as one JSON object (schema
    /// `tfapprox-session-report/2`), suitable for appending to a
    /// `BENCH_*.json` trajectory the way the conv-engine bench does:
    /// backend, the active LUT-GEMM kernel, `tinit`/`tcomp`/total
    /// seconds, image count, throughput, and the Fig. 2 phase seconds
    /// and fractions.
    #[must_use]
    pub fn to_json(&self) -> String {
        let phase_entries = |f: &dyn Fn(Phase) -> f64| -> String {
            let fields: Vec<String> = Phase::all()
                .iter()
                .map(|&p| {
                    format!(
                        "{}: {}",
                        json_string(&format!("{p:?}").to_lowercase()),
                        json_number(f(p))
                    )
                })
                .collect();
            format!("{{{}}}", fields.join(", "))
        };
        let fields = [
            ("schema", json_string("tfapprox-session-report/2")),
            ("backend", json_string(&self.backend.to_string())),
            ("kernel", json_string(self.kernel)),
            ("tinit_s", json_number(self.tinit)),
            ("tcomp_s", json_number(self.tcomp)),
            ("total_s", json_number(self.total())),
            ("images", format!("{}", self.images)),
            ("images_per_second", json_number(self.images_per_second())),
            ("phase_seconds", phase_entries(&|p| self.profile.seconds(p))),
            (
                "phase_fractions",
                phase_entries(&|p| self.profile.fraction(p)),
            ),
        ];
        let body: Vec<String> = fields
            .iter()
            .map(|(k, v)| format!("{}: {v}", json_string(k)))
            .collect();
        format!("{{{}}}", body.join(", "))
    }
}

/// Escape and quote a JSON string literal (backend names and schema tags
/// only — no control characters beyond the standard escapes expected).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a float as a JSON number (`null` for non-finite values).
fn json_number(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_owned()
    }
}

/// Modeled `tinit` for the simulated GPU: context creation plus PCIe
/// transfer of the dataset and the 128 kB LUT (weights are comparatively
/// negligible for the CIFAR ResNets).
#[must_use]
pub fn gpu_init_seconds(ctx: &EmuContext, dataset_bytes: u64) -> f64 {
    let dev = ctx.device();
    dev.context_init_s + dev.transfer_seconds(dataset_bytes + axmult::lut::LUT_BYTES as u64)
}

/// Run a transformed (approximate) graph over evaluation batches.
///
/// For CPU backends, `tcomp` is real measured wall-clock; for the
/// simulated GPU it is the modeled time accumulated in the context's
/// profile plus a DRAM charge for the non-convolution layers.
///
/// Zero-image runs are legal in **both** shapes — an empty `batches`
/// list and a list of zero-image batch tensors — and behave the same:
/// `outputs` always holds exactly one (possibly shaped-empty) tensor per
/// input batch, the report carries `images == 0` with an explicit 0.0
/// throughput, and `tinit` is still charged (on the modeled GPU backend
/// the two shapes produce bit-identical reports; on CPU backends `tcomp`
/// is wall-clock and differs only by measurement noise).
///
/// The first batch of the first run additionally pays each layer's
/// prepared-plan build (one-off filter quantization, charged to the
/// Quantization phase); subsequent runs over the same graph reuse the
/// cached plans, so their Quantization share is input-side only.
///
/// Returns the per-batch outputs and the report.
///
/// # Errors
///
/// Propagates graph execution failures.
pub fn run_approx(
    graph: &Graph,
    batches: &[Tensor<f32>],
    ctx: &EmuContext,
) -> Result<(Vec<Tensor<f32>>, EmulationReport), EmuError> {
    ctx.reset_profile();
    let mut outputs = Vec::with_capacity(batches.len());
    let mut images = 0usize;
    let mut dataset_bytes = 0u64;
    let wall = Instant::now();
    for batch in batches {
        images += batch.shape().n;
        dataset_bytes += batch.shape().len() as u64 * 4;
        outputs.push(graph.forward(batch)?);
    }
    let wall_s = wall.elapsed().as_secs_f64();

    let mut profile = ctx.profile();
    let (tinit, tcomp) = match ctx.backend() {
        Backend::CpuDirect | Backend::CpuGemm => {
            // Real measured time; phases inside the conv layers were
            // measured too. Attribute the non-conv remainder to Other.
            let conv_total = profile.total();
            let remainder = (wall_s - conv_total).max(0.0);
            profile.add(Phase::Other, remainder);
            (CPU_INIT_S, wall_s)
        }
        Backend::GpuSim => {
            // Modeled conv time is in the profile; charge the
            // element-wise layers (BN, ReLU, Add, pooling) as DRAM
            // traffic.
            let dev = ctx.device();
            let elementwise_bytes = dataset_bytes * 8; // read+write few passes
            let extra = elementwise_bytes as f64 / dev.dram_bytes_per_s;
            profile.add(Phase::Other, extra);
            (gpu_init_seconds(ctx, dataset_bytes), profile.total())
        }
    };
    profile.add(Phase::Init, tinit);
    debug_assert_eq!(
        outputs.len(),
        batches.len(),
        "one output per input batch, even for zero-image batches"
    );
    Ok((
        outputs,
        EmulationReport {
            backend: ctx.backend(),
            tinit,
            tcomp,
            profile,
            images,
            kernel: match ctx.backend() {
                Backend::CpuGemm => ctx.kernel().name(),
                Backend::CpuDirect | Backend::GpuSim => "none",
            },
        },
    ))
}

/// Run the **accurate** float graph on the host, measuring wall-clock —
/// Table I's "accurate Conv2D (CPU)" baseline.
///
/// # Errors
///
/// Propagates graph execution failures.
pub fn run_accurate_cpu(
    graph: &Graph,
    batches: &[Tensor<f32>],
) -> Result<(Vec<Tensor<f32>>, EmulationReport), EmuError> {
    let mut outputs = Vec::with_capacity(batches.len());
    let mut images = 0usize;
    let wall = Instant::now();
    for batch in batches {
        images += batch.shape().n;
        outputs.push(graph.forward(batch)?);
    }
    let tcomp = wall.elapsed().as_secs_f64();
    let mut profile = PhaseProfile::new();
    profile.add(Phase::Init, CPU_INIT_S);
    profile.add(Phase::Other, tcomp);
    Ok((
        outputs,
        EmulationReport {
            backend: Backend::CpuDirect,
            tinit: CPU_INIT_S,
            tcomp,
            profile,
            images,
            kernel: "none",
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow;
    use axnn::resnet::{cifar_input_shape, ResNetConfig};
    use axtensor::rng;
    use std::sync::Arc;

    fn tiny_setup(backend: Backend) -> (Graph, Vec<Tensor<f32>>, Arc<EmuContext>) {
        let graph = ResNetConfig::with_depth(8).unwrap().build(1).unwrap();
        let mult = axmult::catalog::by_name("mul8s_exact").unwrap();
        let ctx = Arc::new(EmuContext::new(backend).with_chunk_size(2).unwrap());
        let (ax, _) = flow::approximate_graph(&graph, &mult, &ctx).unwrap();
        let batches = vec![
            rng::uniform(cifar_input_shape(2), 1, -1.0, 1.0),
            rng::uniform(cifar_input_shape(2), 2, -1.0, 1.0),
        ];
        (ax, batches, ctx)
    }

    #[test]
    fn cpu_run_measures_wall_clock() {
        let (graph, batches, ctx) = tiny_setup(Backend::CpuGemm);
        let (outputs, report) = run_approx(&graph, &batches, &ctx).unwrap();
        assert_eq!(outputs.len(), 2);
        assert_eq!(report.images, 4);
        assert!(report.tcomp > 0.0);
        assert_eq!(report.tinit, CPU_INIT_S);
        assert!(report.total() > report.tcomp);
    }

    #[test]
    fn gpu_run_reports_modeled_time() {
        let (graph, batches, ctx) = tiny_setup(Backend::GpuSim);
        let (_, report) = run_approx(&graph, &batches, &ctx).unwrap();
        // Modeled seconds present in every phase.
        assert!(report.profile.seconds(Phase::LutLookup) > 0.0);
        assert!(report.profile.seconds(Phase::Quantization) > 0.0);
        assert!(report.tinit > ctx.device().context_init_s);
        // Tiny workload: modeled comp far below init.
        assert!(report.tcomp < report.tinit);
    }

    #[test]
    fn second_run_reuses_prepared_plans() {
        // Modeled GPU time is deterministic: the first run pays every
        // layer's one-off filter-quantization charge, later runs don't.
        let (graph, batches, ctx) = tiny_setup(Backend::GpuSim);
        let (_, first) = run_approx(&graph, &batches, &ctx).unwrap();
        let (_, second) = run_approx(&graph, &batches, &ctx).unwrap();
        let (_, third) = run_approx(&graph, &batches, &ctx).unwrap();
        let q = |r: &EmulationReport| r.profile.seconds(Phase::Quantization);
        assert!(q(&second) < q(&first));
        assert!((q(&second) - q(&third)).abs() < 1e-12);
    }

    #[test]
    fn accurate_cpu_baseline_runs() {
        let graph = ResNetConfig::with_depth(8).unwrap().build(1).unwrap();
        let batches = vec![rng::uniform(cifar_input_shape(2), 1, -1.0, 1.0)];
        let (outputs, report) = run_accurate_cpu(&graph, &batches).unwrap();
        assert_eq!(outputs.len(), 1);
        assert!(report.tcomp > 0.0);
    }

    #[test]
    fn images_per_second_coherent() {
        let (graph, batches, ctx) = tiny_setup(Backend::GpuSim);
        let (_, report) = run_approx(&graph, &batches, &ctx).unwrap();
        let ips = report.images_per_second();
        assert!((ips - report.images as f64 / report.total()).abs() < 1e-12);
        let empty = EmulationReport {
            backend: Backend::GpuSim,
            tinit: 0.0,
            tcomp: 0.0,
            profile: PhaseProfile::new(),
            images: 0,
            kernel: "none",
        };
        assert_eq!(empty.images_per_second(), 0.0);
    }

    #[test]
    fn zero_batch_run_reports_zero_throughput() {
        // A zero-image run is legal (zero-batch inputs flow through every
        // backend); the throughput must be an explicit 0.0 even though
        // tinit makes total() positive — not 0/0 or images/0.
        let (graph, _, ctx) = tiny_setup(Backend::CpuGemm);
        let empty = axtensor::Tensor::<f32>::zeros(cifar_input_shape(0));
        let (outputs, report) = run_approx(&graph, std::slice::from_ref(&empty), &ctx).unwrap();
        assert_eq!(report.images, 0);
        assert!(report.total() > 0.0, "tinit must still be charged");
        assert_eq!(report.images_per_second(), 0.0);
        assert!(report.images_per_second().is_finite());
        assert_eq!(outputs[0].shape().n, 0);
        // The rendered report stays well-formed (no NaN -> null surprises
        // in the throughput field).
        assert!(report.to_json().contains("\"images_per_second\": 0.0"));
    }

    #[test]
    fn empty_batch_list_matches_zero_batch_tensor() {
        // The two zero-image shapes — no batches at all, and batches with
        // zero images — must report identically. The modeled GPU backend
        // is deterministic, so the comparison is exact.
        let (graph, _, ctx) = tiny_setup(Backend::GpuSim);
        let (none_out, none) = run_approx(&graph, &[], &ctx).unwrap();
        let zero = Tensor::<f32>::zeros(cifar_input_shape(0));
        let (zero_out, zeroed) = run_approx(&graph, std::slice::from_ref(&zero), &ctx).unwrap();

        // One output per input batch, shaped-empty where the batch was.
        assert!(none_out.is_empty());
        assert_eq!(zero_out.len(), 1);
        assert_eq!(zero_out[0].shape().n, 0);

        for (report, label) in [(&none, "empty list"), (&zeroed, "zero tensor")] {
            assert_eq!(report.images, 0, "{label}");
            assert_eq!(report.images_per_second(), 0.0, "{label}");
            assert!(report.tinit > 0.0, "{label}: tinit still charged");
        }
        assert_eq!(none.tinit, zeroed.tinit);
        assert_eq!(none.tcomp, zeroed.tcomp);
        for p in Phase::all() {
            assert_eq!(
                none.profile.seconds(p),
                zeroed.profile.seconds(p),
                "phase {p:?} differs between empty-list and zero-tensor"
            );
        }
        assert_eq!(none.to_json(), zeroed.to_json());
    }

    #[test]
    fn empty_batch_list_on_cpu_reports_zero_images() {
        let (graph, _, ctx) = tiny_setup(Backend::CpuGemm);
        let (outputs, report) = run_approx(&graph, &[], &ctx).unwrap();
        assert!(outputs.is_empty());
        assert_eq!(report.images, 0);
        assert_eq!(report.images_per_second(), 0.0);
        assert_eq!(report.tinit, CPU_INIT_S);
        assert!(report.to_json().contains("\"images\": 0"));
    }

    #[test]
    fn report_json_contains_every_field() {
        let (graph, batches, ctx) = tiny_setup(Backend::GpuSim);
        let (_, report) = run_approx(&graph, &batches, &ctx).unwrap();
        let doc = report.to_json();
        for needle in [
            "\"schema\": \"tfapprox-session-report/2\"",
            "\"backend\": \"gpu-sim\"",
            "\"kernel\": \"none\"",
            "\"tinit_s\"",
            "\"tcomp_s\"",
            "\"total_s\"",
            "\"images\": 4",
            "\"images_per_second\"",
            "\"phase_seconds\"",
            "\"phase_fractions\"",
            "\"lutlookup\"",
        ] {
            assert!(doc.contains(needle), "missing {needle} in {doc}");
        }
    }

    #[test]
    fn cpu_gemm_report_names_the_active_kernel() {
        let (graph, batches, ctx) = tiny_setup(Backend::CpuGemm);
        let (_, report) = run_approx(&graph, &batches, &ctx).unwrap();
        assert_eq!(report.kernel, ctx.kernel().name());
        let needle = format!("\"kernel\": \"{}\"", report.kernel);
        assert!(report.to_json().contains(&needle), "{}", report.to_json());
    }

    #[test]
    fn profile_fractions_form_distribution() {
        let (graph, batches, ctx) = tiny_setup(Backend::GpuSim);
        let (_, report) = run_approx(&graph, &batches, &ctx).unwrap();
        let sum: f64 = Phase::all()
            .iter()
            .map(|&p| report.profile.fraction(p))
            .sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
