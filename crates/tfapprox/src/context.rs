//! Shared emulation state: backend selection, profiling, the texture
//! cache, and the persistent worker pool.

use crate::kernel::{auto_kernel, KernelKind, TileConfig};
use crate::pool::WorkerPool;
use crate::EmuError;
use gpusim::{DeviceConfig, EventCounts, PhaseProfile, TextureCache};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;

/// Where the approximate convolution is emulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Backend {
    /// Nested loops over the convolution definition with per-tap LUT
    /// lookups — the CPU approach of ALWANN \[12\] that the paper uses as
    /// its approximate-CPU baseline ("difficult to efficiently
    /// parallelize").
    CpuDirect,
    /// Chunked im2col + tiled LUT GEMM on host threads — an optimized CPU
    /// realization of Algorithm 1 (our addition; shows the GEMM
    /// formulation helps even without a GPU).
    CpuGemm,
    /// Algorithm 1 on the simulated CUDA-capable device: quantizing
    /// im2col kernel, tiled `ApproxGEMM` with texture-cache LUT fetches,
    /// analytic cycle accounting (the paper's proposal).
    #[default]
    GpuSim,
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Backend::CpuDirect => "cpu-direct",
            Backend::CpuGemm => "cpu-gemm",
            Backend::GpuSim => "gpu-sim",
        };
        f.write_str(s)
    }
}

/// Shared state of one emulation session.
///
/// All `AxConv2D` layers of a transformed graph share one context: the
/// phase profile accumulates across layers and batches, and the simulated
/// texture cache stays warm across kernel launches exactly as the real
/// LUT stays resident on the device.
#[derive(Debug)]
pub struct EmuContext {
    backend: Backend,
    device: DeviceConfig,
    chunk_size: usize,
    threads: usize,
    tiles: TileConfig,
    kernel: KernelKind,
    profile: Mutex<PhaseProfile>,
    events: Mutex<EventCounts>,
    cache: Mutex<TextureCache>,
    /// Spawned on first use and reused for the context's whole lifetime —
    /// the host GEMM backend no longer opens a thread scope per chunk.
    pool: OnceLock<WorkerPool>,
}

impl EmuContext {
    /// A context with the default (GTX-1080-class) device and chunk size.
    #[must_use]
    pub fn new(backend: Backend) -> Self {
        Self::with_device(backend, DeviceConfig::gtx1080())
    }

    /// A context with an explicit device configuration.
    #[must_use]
    pub fn with_device(backend: Backend, device: DeviceConfig) -> Self {
        let cache = TextureCache::new(device.tex_cache_bytes, device.tex_cache_line, 4);
        EmuContext {
            backend,
            device,
            // Algorithm 1 splits the batch "into chunks of a constant size
            // to decouple memory usage from convolution parameters".
            chunk_size: 125,
            threads: std::thread::available_parallelism().map_or(1, usize::from),
            tiles: TileConfig::default(),
            kernel: auto_kernel(),
            profile: Mutex::new(PhaseProfile::new()),
            events: Mutex::new(EventCounts::new()),
            cache: Mutex::new(cache),
            pool: OnceLock::new(),
        }
    }

    /// Override the Algorithm-1 chunk size (images per chunk).
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::Config`] if `chunk_size` is 0 — a zero chunk
    /// would make the chunked GEMM loop silently process nothing.
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Result<Self, EmuError> {
        if chunk_size == 0 {
            return Err(EmuError::Config(
                "chunk size must be positive (got 0)".to_owned(),
            ));
        }
        self.chunk_size = chunk_size;
        Ok(self)
    }

    /// The selected backend.
    #[must_use]
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The simulated device.
    #[must_use]
    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }

    /// Images per Algorithm-1 chunk.
    #[must_use]
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Override the host worker-thread count (default: available
    /// parallelism). Takes effect only if set before the pool's first use.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::Config`] if `threads` is 0 — a zero-worker
    /// pool would deadlock the GEMM backend on its first chunk.
    pub fn with_threads(mut self, threads: usize) -> Result<Self, EmuError> {
        if threads == 0 {
            return Err(EmuError::Config(
                "thread count must be positive (got 0)".to_owned(),
            ));
        }
        self.threads = threads;
        Ok(self)
    }

    /// Override the cache-blocking panel sizes of the tiled host LUT-GEMM
    /// (already validated non-zero by [`TileConfig::new`]).
    #[must_use]
    pub fn with_tile_config(mut self, tiles: TileConfig) -> Self {
        self.tiles = tiles;
        self
    }

    /// The cache-blocking panel sizes of the tiled host LUT-GEMM.
    #[must_use]
    pub fn tile_config(&self) -> TileConfig {
        self.tiles
    }

    /// Force a specific LUT-GEMM kernel arm instead of the process-wide
    /// automatic choice ([`auto_kernel`]). `KernelKind::ScalarTiled` is
    /// the always-available escape hatch.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::Config`] if this process cannot execute
    /// `kernel` (wrong architecture or missing CPU features) — an
    /// explicit override must never silently downgrade.
    pub fn with_kernel(mut self, kernel: KernelKind) -> Result<Self, EmuError> {
        if !kernel.is_supported() {
            return Err(EmuError::Config(format!(
                "kernel '{kernel}' is not supported on this host"
            )));
        }
        self.kernel = kernel;
        Ok(self)
    }

    /// The LUT-GEMM kernel arm this context dispatches to.
    #[must_use]
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// The persistent host worker pool, spawned on first use.
    pub fn pool(&self) -> &WorkerPool {
        self.pool.get_or_init(|| WorkerPool::new(self.threads))
    }

    /// Add phase times (thread-safe).
    pub fn record(&self, profile: &PhaseProfile) {
        self.profile.lock().merge(profile);
    }

    /// Snapshot the accumulated profile.
    #[must_use]
    pub fn profile(&self) -> PhaseProfile {
        *self.profile.lock()
    }

    /// Add raw kernel event counts (GPU backend only).
    pub fn record_events(&self, ev: &EventCounts) {
        *self.events.lock() += *ev;
    }

    /// Snapshot the accumulated raw events (texture hit rates, fetch
    /// counts, DRAM traffic) of the GPU backend.
    #[must_use]
    pub fn events(&self) -> EventCounts {
        *self.events.lock()
    }

    /// Reset the accumulated profile and events (e.g. between
    /// experiments).
    pub fn reset_profile(&self) {
        *self.profile.lock() = PhaseProfile::new();
        *self.events.lock() = EventCounts::new();
    }

    /// Run `f` with exclusive access to the simulated texture cache.
    pub fn with_cache<R>(&self, f: impl FnOnce(&mut TextureCache) -> R) -> R {
        f(&mut self.cache.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::Phase;

    #[test]
    fn profile_accumulates_across_records() {
        let ctx = EmuContext::new(Backend::GpuSim);
        let mut p = PhaseProfile::new();
        p.add(Phase::LutLookup, 1.5);
        ctx.record(&p);
        ctx.record(&p);
        assert_eq!(ctx.profile().seconds(Phase::LutLookup), 3.0);
        ctx.reset_profile();
        assert_eq!(ctx.profile().total(), 0.0);
    }

    #[test]
    fn cache_state_persists() {
        let ctx = EmuContext::new(Backend::GpuSim);
        ctx.with_cache(|c| {
            c.access(0);
        });
        let hit = ctx.with_cache(|c| c.access(0));
        assert_eq!(hit, gpusim::texture::Access::Hit);
    }

    #[test]
    fn zero_chunk_size_rejected_as_error() {
        let err = EmuContext::new(Backend::CpuGemm)
            .with_chunk_size(0)
            .unwrap_err();
        assert!(matches!(err, EmuError::Config(_)), "{err}");
        assert!(err.to_string().contains("chunk size"), "{err}");
    }

    #[test]
    fn zero_threads_rejected_as_error() {
        let err = EmuContext::new(Backend::CpuGemm)
            .with_threads(0)
            .unwrap_err();
        assert!(matches!(err, EmuError::Config(_)), "{err}");
        assert!(err.to_string().contains("thread count"), "{err}");
    }

    #[test]
    fn positive_overrides_accepted() {
        let ctx = EmuContext::new(Backend::CpuGemm)
            .with_chunk_size(3)
            .unwrap()
            .with_threads(2)
            .unwrap();
        assert_eq!(ctx.chunk_size(), 3);
    }

    #[test]
    fn kernel_defaults_to_auto_and_accepts_scalar_override() {
        let ctx = EmuContext::new(Backend::CpuGemm);
        assert_eq!(ctx.kernel(), auto_kernel());
        let ctx = ctx.with_kernel(KernelKind::ScalarTiled).unwrap();
        assert_eq!(ctx.kernel(), KernelKind::ScalarTiled);
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[test]
    fn unsupported_kernel_override_rejected() {
        let err = EmuContext::new(Backend::CpuGemm)
            .with_kernel(KernelKind::Avx2Gather)
            .unwrap_err();
        assert!(matches!(err, EmuError::Config(_)), "{err}");
    }

    #[test]
    fn backend_display() {
        assert_eq!(Backend::CpuDirect.to_string(), "cpu-direct");
        assert_eq!(Backend::GpuSim.to_string(), "gpu-sim");
    }
}
