use std::fmt;

/// Errors from the emulation layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum EmuError {
    /// A tensor/shape error.
    Tensor(axtensor::TensorError),
    /// A graph error.
    Nn(axnn::NnError),
    /// A multiplier error.
    Mult(axmult::MultError),
    /// An invalid emulation parameter.
    Config(String),
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::Tensor(e) => write!(f, "tensor error: {e}"),
            EmuError::Nn(e) => write!(f, "graph error: {e}"),
            EmuError::Mult(e) => write!(f, "multiplier error: {e}"),
            EmuError::Config(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl std::error::Error for EmuError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EmuError::Tensor(e) => Some(e),
            EmuError::Nn(e) => Some(e),
            EmuError::Mult(e) => Some(e),
            EmuError::Config(_) => None,
        }
    }
}

impl From<axtensor::TensorError> for EmuError {
    fn from(e: axtensor::TensorError) -> Self {
        EmuError::Tensor(e)
    }
}

impl From<axnn::NnError> for EmuError {
    fn from(e: axnn::NnError) -> Self {
        EmuError::Nn(e)
    }
}

impl From<axmult::MultError> for EmuError {
    fn from(e: axmult::MultError) -> Self {
        EmuError::Mult(e)
    }
}
