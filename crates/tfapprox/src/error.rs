use std::fmt;

/// Errors from the emulation layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum EmuError {
    /// A tensor/shape error.
    Tensor(axtensor::TensorError),
    /// A graph error.
    Nn(axnn::NnError),
    /// A multiplier error.
    Mult(axmult::MultError),
    /// An invalid emulation parameter.
    Config(String),
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::Tensor(e) => write!(f, "tensor error: {e}"),
            EmuError::Nn(e) => write!(f, "graph error: {e}"),
            EmuError::Mult(e) => write!(f, "multiplier error: {e}"),
            EmuError::Config(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl std::error::Error for EmuError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EmuError::Tensor(e) => Some(e),
            EmuError::Nn(e) => Some(e),
            EmuError::Mult(e) => Some(e),
            EmuError::Config(_) => None,
        }
    }
}

impl From<axtensor::TensorError> for EmuError {
    fn from(e: axtensor::TensorError) -> Self {
        EmuError::Tensor(e)
    }
}

impl From<axnn::NnError> for EmuError {
    fn from(e: axnn::NnError) -> Self {
        EmuError::Nn(e)
    }
}

impl From<axmult::MultError> for EmuError {
    fn from(e: axmult::MultError) -> Self {
        EmuError::Mult(e)
    }
}

/// The unified error of the compiled-session API.
///
/// Every failure mode of building and running a [`crate::Session`] —
/// emulation configuration ([`EmuError`], which also carries quantization
/// failures as its `Config` variant), graph construction/execution
/// ([`axnn::NnError`]), multiplier-catalog lookups
/// ([`axmult::MultError`]), tensor/shape errors
/// ([`axtensor::TensorError`]), and serving-engine rejections
/// ([`crate::serve::ServeError`]) — converts into this one type via
/// `From`, so `?` works uniformly at every call site.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// An emulation-layer error (backend, quantization, configuration).
    Emu(EmuError),
    /// A graph construction or execution error.
    Nn(axnn::NnError),
    /// A multiplier/catalog error.
    Mult(axmult::MultError),
    /// A tensor/shape error.
    Tensor(axtensor::TensorError),
    /// An invalid session configuration.
    Config(String),
    /// A serving-engine rejection (backpressure shed, shutdown, or a
    /// failed batch) — every request outcome is explicit, never a silent
    /// drop.
    Serve(crate::serve::ServeError),
    /// A circuit-to-LUT compilation failure (netlist shape, verification,
    /// registration) from the [`crate::compile`] pipeline.
    Compile(axcompile::CompileError),
    /// A filesystem failure (e.g. reading a pre-baked LUT file for
    /// [`crate::compile::import_lut_file`]).
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Emu(e) => write!(f, "{e}"),
            Error::Nn(e) => write!(f, "graph error: {e}"),
            Error::Mult(e) => write!(f, "multiplier error: {e}"),
            Error::Tensor(e) => write!(f, "tensor error: {e}"),
            Error::Config(msg) => write!(f, "session configuration error: {msg}"),
            Error::Serve(e) => write!(f, "serving error: {e}"),
            Error::Compile(e) => write!(f, "multiplier compilation error: {e}"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Emu(e) => Some(e),
            Error::Nn(e) => Some(e),
            Error::Mult(e) => Some(e),
            Error::Tensor(e) => Some(e),
            Error::Config(_) => None,
            Error::Serve(e) => Some(e),
            Error::Compile(e) => Some(e),
            Error::Io(e) => Some(e),
        }
    }
}

impl From<axcompile::CompileError> for Error {
    fn from(e: axcompile::CompileError) -> Self {
        Error::Compile(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<crate::serve::ServeError> for Error {
    fn from(e: crate::serve::ServeError) -> Self {
        Error::Serve(e)
    }
}

impl From<EmuError> for Error {
    fn from(e: EmuError) -> Self {
        Error::Emu(e)
    }
}

impl From<axnn::NnError> for Error {
    fn from(e: axnn::NnError) -> Self {
        Error::Nn(e)
    }
}

impl From<axmult::MultError> for Error {
    fn from(e: axmult::MultError) -> Self {
        Error::Mult(e)
    }
}

impl From<axtensor::TensorError> for Error {
    fn from(e: axtensor::TensorError) -> Self {
        Error::Tensor(e)
    }
}
