//! Bring-your-own multipliers: the [`axcompile`] pipeline wired to the
//! emulation stack.
//!
//! This module closes the loop the paper opens — *arbitrary* approximate
//! multipliers in the MAC datapath, not just catalog entries:
//!
//! 1. Describe the multiplier as a gate-level netlist — built with
//!    [`axcircuit::builder`]/[`axcircuit::approx`], or parsed from the
//!    textual format in [`axcircuit::text`].
//! 2. Compile it here: the exhaustive 2¹⁶ sweep is sharded over the same
//!    persistent [`WorkerPool`] that runs inference (this module implements
//!    [`axcompile::Executor`] for it), verified against the golden sweep,
//!    and characterized with hardware cost + error metrics.
//! 3. [`CompiledMultiplier::register`] it, and the custom name resolves
//!    everywhere a built-in does: [`crate::SessionBuilder::multiplier_named`],
//!    [`crate::Assignment::uniform_named`], serving keys.
//!
//! ```
//! use tfapprox::prelude::*;
//! use tfapprox::compile::compile_netlist;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let netlist = axcircuit::approx::truncated_unsigned(8, 4)?;
//! let pool = tfapprox::WorkerPool::new(2);
//! let compiled = compile_netlist(&netlist, "doc_my_trunc4", Signedness::Unsigned, &pool)?;
//! compiled.register()?;
//! // Now addressable by name, exactly like a catalog entry.
//! let assignment = Assignment::uniform_named("doc_my_trunc4")?;
//! # axmult::registry::unregister("doc_my_trunc4");
//! # let _ = assignment;
//! # Ok(())
//! # }
//! ```

use crate::pool::WorkerPool;
use axcircuit::Netlist;

pub use axcompile::{
    CompileError, CompileReport, CompileRequest, CompiledMultiplier, Executor, SerialExecutor,
};
pub use axmult::Signedness;

impl Executor for WorkerPool {
    fn run_jobs<'env>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        self.run(jobs);
    }
}

/// Compile a netlist into a catalog-grade multiplier on `pool`, sharding
/// the exhaustive sweep so every worker thread stays busy.
///
/// This is the convenience path; use [`CompileRequest`] directly for a
/// custom description, shard count, or an `equiv`-checked reference.
///
/// # Errors
///
/// See [`CompileRequest::run`].
pub fn compile_netlist(
    netlist: &Netlist,
    name: impl Into<String>,
    signedness: Signedness,
    pool: &WorkerPool,
) -> Result<CompiledMultiplier, CompileError> {
    CompileRequest::new(netlist, name, signedness)
        .with_shards(pool.threads() * 4)
        .run(pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use axcircuit::approx;

    #[test]
    fn worker_pool_compile_matches_serial() {
        let nl = approx::broken_array_unsigned(8, 7, 1).unwrap();
        let pool = WorkerPool::new(4);
        let pooled = compile_netlist(&nl, "tfc_test_pool", Signedness::Unsigned, &pool).unwrap();
        let serial = CompileRequest::new(&nl, "tfc_test_serial", Signedness::Unsigned)
            .run(&SerialExecutor)
            .unwrap();
        assert_eq!(pooled.multiplier().lut(), serial.multiplier().lut());
        assert!(pooled.report().shards > 1, "pool path must shard");
    }

    #[test]
    fn registered_compile_resolves_through_by_name() {
        let nl = approx::exact_unsigned(8).unwrap();
        let pool = WorkerPool::new(2);
        let compiled =
            compile_netlist(&nl, "tfc_test_exact_reg", Signedness::Unsigned, &pool).unwrap();
        compiled.register().unwrap();
        let resolved = axmult::catalog::by_name("tfc_test_exact_reg").unwrap();
        // Bit-identical to the built-in exact multiplier.
        let builtin = axmult::catalog::by_name("mul8u_exact").unwrap();
        assert_eq!(resolved.lut(), builtin.lut());
        axmult::registry::unregister("tfc_test_exact_reg");
    }
}
