//! Bring-your-own multipliers: the [`axcompile`] pipeline wired to the
//! emulation stack.
//!
//! This module closes the loop the paper opens — *arbitrary* approximate
//! multipliers in the MAC datapath, not just catalog entries:
//!
//! 1. Describe the multiplier as a gate-level netlist — built with
//!    [`axcircuit::builder`]/[`axcircuit::approx`], or parsed from the
//!    textual format in [`axcircuit::text`].
//! 2. Compile it here: the exhaustive 2¹⁶ sweep is sharded over the same
//!    persistent [`WorkerPool`] that runs inference (this module implements
//!    [`axcompile::Executor`] for it), verified against the golden sweep,
//!    and characterized with hardware cost + error metrics.
//! 3. [`CompiledMultiplier::register`] it, and the custom name resolves
//!    everywhere a built-in does: [`crate::SessionBuilder::multiplier_named`],
//!    [`crate::Assignment::uniform_named`], serving keys.
//!
//! ```
//! use tfapprox::prelude::*;
//! use tfapprox::compile::compile_netlist;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let netlist = axcircuit::approx::truncated_unsigned(8, 4)?;
//! let pool = tfapprox::WorkerPool::new(2);
//! let compiled = compile_netlist(&netlist, "doc_my_trunc4", Signedness::Unsigned, &pool)?;
//! compiled.register()?;
//! // Now addressable by name, exactly like a catalog entry.
//! let assignment = Assignment::uniform_named("doc_my_trunc4")?;
//! # axmult::registry::unregister("doc_my_trunc4");
//! # let _ = assignment;
//! # Ok(())
//! # }
//! ```

use crate::pool::WorkerPool;
use axcircuit::Netlist;

pub use axcompile::{
    CompileError, CompileReport, CompileRequest, CompiledMultiplier, Executor, SerialExecutor,
};
pub use axmult::Signedness;

impl Executor for WorkerPool {
    fn run_jobs<'env>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        self.run(jobs);
    }
}

/// Import a pre-baked LUT file (the flat little-endian `u16[65536]`
/// layout written by [`axmult::MulLut::save`] and the original
/// `tf-approximate` tooling, e.g. the published EvoApprox8b tables) and
/// register it under `name`, so it resolves everywhere a built-in or
/// compiled multiplier does.
///
/// An imported table has no netlist, so it carries no hardware-cost
/// column — only the exhaustively computed [`axmult::ErrorMetrics`]
/// (available via [`axmult::AxMultiplier::metrics`] on the returned
/// entry).
///
/// # Errors
///
/// - [`crate::Error::Io`] if the file cannot be read.
/// - [`crate::Error::Mult`] with [`axmult::MultError::BadLutSize`] if the
///   file is truncated or oversized (anything but exactly 128 KiB), and
///   with [`axmult::MultError::DuplicateMultiplier`] if `name` is already
///   taken.
pub fn import_lut_file(
    path: impl AsRef<std::path::Path>,
    name: impl Into<String>,
    signedness: Signedness,
) -> Result<axmult::AxMultiplier, crate::Error> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)?;
    let lut = axmult::MulLut::from_bytes(&bytes, signedness)?;
    let mult = axmult::AxMultiplier::new(
        name,
        format!("imported {signedness} LUT from {}", path.display()),
        lut,
        None,
    );
    axmult::registry::register(mult.clone())?;
    Ok(mult)
}

/// Compile a netlist into a catalog-grade multiplier on `pool`, sharding
/// the exhaustive sweep so every worker thread stays busy.
///
/// This is the convenience path; use [`CompileRequest`] directly for a
/// custom description, shard count, or an `equiv`-checked reference.
///
/// # Errors
///
/// See [`CompileRequest::run`].
pub fn compile_netlist(
    netlist: &Netlist,
    name: impl Into<String>,
    signedness: Signedness,
    pool: &WorkerPool,
) -> Result<CompiledMultiplier, CompileError> {
    CompileRequest::new(netlist, name, signedness)
        .with_shards(pool.threads() * 4)
        .run(pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use axcircuit::approx;

    #[test]
    fn worker_pool_compile_matches_serial() {
        let nl = approx::broken_array_unsigned(8, 7, 1).unwrap();
        let pool = WorkerPool::new(4);
        let pooled = compile_netlist(&nl, "tfc_test_pool", Signedness::Unsigned, &pool).unwrap();
        let serial = CompileRequest::new(&nl, "tfc_test_serial", Signedness::Unsigned)
            .run(&SerialExecutor)
            .unwrap();
        assert_eq!(pooled.multiplier().lut(), serial.multiplier().lut());
        assert!(pooled.report().shards > 1, "pool path must shard");
    }

    #[test]
    fn import_round_trips_a_saved_lut() {
        // A table written by `MulLut::save` imports bit-identically and
        // resolves by name through the catalog, like a compiled entry.
        let dir = std::env::temp_dir().join("tfapprox_import_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.bin");
        let lut = axmult::MulLut::from_fn(Signedness::Signed, |a, b| a * b - (b & 3));
        lut.save(&path).unwrap();
        let imported = import_lut_file(&path, "tfc_test_import_rt", Signedness::Signed).unwrap();
        assert_eq!(imported.lut(), &lut);
        assert_eq!(imported.cost(), None, "no netlist, no cost column");
        assert!(!imported.metrics().is_exact());
        let resolved = axmult::catalog::by_name("tfc_test_import_rt").unwrap();
        assert_eq!(resolved.lut(), &lut);
        // Re-importing under the same name is a typed duplicate error.
        let err = import_lut_file(&path, "tfc_test_import_rt", Signedness::Signed).unwrap_err();
        assert!(
            matches!(
                err,
                crate::Error::Mult(axmult::MultError::DuplicateMultiplier { .. })
            ),
            "{err}"
        );
        axmult::registry::unregister("tfc_test_import_rt");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn import_rejects_wrong_sized_files() {
        let dir = std::env::temp_dir().join("tfapprox_import_test");
        std::fs::create_dir_all(&dir).unwrap();
        for (fname, len) in [
            ("short.bin", 100usize),
            ("long.bin", axmult::lut::LUT_BYTES + 2),
        ] {
            let path = dir.join(fname);
            std::fs::write(&path, vec![0u8; len]).unwrap();
            let err =
                import_lut_file(&path, "tfc_test_import_bad", Signedness::Unsigned).unwrap_err();
            assert!(
                matches!(
                    err,
                    crate::Error::Mult(axmult::MultError::BadLutSize { got, .. }) if got == len
                ),
                "{len}: {err}"
            );
            std::fs::remove_file(&path).ok();
        }
        // A bad file must register nothing.
        assert!(axmult::registry::get("tfc_test_import_bad").is_none());
        // A missing file is a typed I/O error.
        let err = import_lut_file(
            dir.join("does_not_exist.bin"),
            "tfc_test_import_missing",
            Signedness::Unsigned,
        )
        .unwrap_err();
        assert!(matches!(err, crate::Error::Io(_)), "{err}");
    }

    #[test]
    fn registered_compile_resolves_through_by_name() {
        let nl = approx::exact_unsigned(8).unwrap();
        let pool = WorkerPool::new(2);
        let compiled =
            compile_netlist(&nl, "tfc_test_exact_reg", Signedness::Unsigned, &pool).unwrap();
        compiled.register().unwrap();
        let resolved = axmult::catalog::by_name("tfc_test_exact_reg").unwrap();
        // Bit-identical to the built-in exact multiplier.
        let builtin = axmult::catalog::by_name("mul8u_exact").unwrap();
        assert_eq!(resolved.lut(), builtin.lut());
        axmult::registry::unregister("tfc_test_exact_reg");
    }
}
