//! A persistent scoped worker pool for the host-side GEMM backend.
//!
//! `run_cpu_gemm` used to open a fresh `std::thread::scope` — spawning and
//! joining OS threads — for **every chunk of every forward call**. Under
//! repeated inference that thread churn is pure overhead. The pool here is
//! spawned once per [`crate::EmuContext`] and reused for the context's
//! whole lifetime; [`WorkerPool::run`] submits a batch of borrowing
//! closures and blocks until all of them have executed, which is what
//! makes lending stack references to long-lived workers sound.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolQueue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct PoolState {
    queue: Mutex<PoolQueue>,
    work_cv: Condvar,
}

/// A fixed-size pool of worker threads executing batches of scoped jobs.
pub struct WorkerPool {
    state: Arc<PoolState>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Spawn a pool of `threads` workers (at least one).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let state = Arc::new(PoolState {
            queue: Mutex::new(PoolQueue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("emu-worker-{i}"))
                    .spawn(move || worker_loop(&state))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            state,
            workers,
            threads,
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enqueue one `'static` job without waiting for it — the
    /// fire-and-forget counterpart of [`WorkerPool::run`], used by
    /// long-lived residents such as the [`crate::serve::ServeEngine`]
    /// shard loops. A panicking job is caught so the worker thread stays
    /// alive for subsequent submissions.
    ///
    /// # Panics
    ///
    /// Panics if the pool has already been shut down.
    pub fn submit(&self, job: Box<dyn FnOnce() + Send + 'static>) {
        let mut queue = self.state.queue.lock().expect("pool queue");
        assert!(!queue.shutdown, "worker pool already shut down");
        queue.jobs.push_back(Box::new(move || {
            let _ = catch_unwind(AssertUnwindSafe(job));
        }));
        drop(queue);
        self.state.work_cv.notify_one();
    }

    /// Execute every job in `jobs` on the pool, blocking until all have
    /// finished. Jobs may borrow from the caller's stack: because this
    /// method does not return before the last job completes, no borrow
    /// outlives its referent.
    ///
    /// Must not be called from inside a pool job (the worker would wait on
    /// work only it could execute).
    ///
    /// # Panics
    ///
    /// Panics if any job panicked (after all jobs have finished).
    pub fn run<'env>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if jobs.is_empty() {
            return;
        }
        let total = jobs.len();
        let done = Arc::new((Mutex::new(0usize), Condvar::new()));
        let panicked = Arc::new(AtomicBool::new(false));
        {
            let mut queue = self.state.queue.lock().expect("pool queue");
            assert!(!queue.shutdown, "worker pool already shut down");
            for job in jobs {
                // SAFETY: the only thing erased here is the `'env`
                // lifetime bound. The loop below blocks until all `total`
                // jobs have signalled completion, so every borrow captured
                // by `job` is still live whenever the job runs.
                let job: Job = unsafe {
                    std::mem::transmute::<
                        Box<dyn FnOnce() + Send + 'env>,
                        Box<dyn FnOnce() + Send + 'static>,
                    >(job)
                };
                let done = Arc::clone(&done);
                let panicked = Arc::clone(&panicked);
                queue.jobs.push_back(Box::new(move || {
                    if catch_unwind(AssertUnwindSafe(job)).is_err() {
                        panicked.store(true, Ordering::SeqCst);
                    }
                    let (count, cv) = &*done;
                    *count.lock().expect("completion count") += 1;
                    cv.notify_all();
                }));
            }
            self.state.work_cv.notify_all();
        }
        let (count, cv) = &*done;
        let mut finished = count.lock().expect("completion count");
        while *finished < total {
            finished = cv.wait(finished).expect("completion wait");
        }
        assert!(
            !panicked.load(Ordering::SeqCst),
            "a worker-pool job panicked"
        );
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        if let Ok(mut queue) = self.state.queue.lock() {
            queue.shutdown = true;
        }
        self.state.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(state: &PoolState) {
    loop {
        let job = {
            let mut queue = state.queue.lock().expect("pool queue");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break Some(job);
                }
                if queue.shutdown {
                    break None;
                }
                queue = state.work_cv.wait(queue).expect("pool wait");
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_borrowing_jobs_to_completion() {
        let pool = WorkerPool::new(3);
        let mut out = vec![0usize; 64];
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = out
            .chunks_mut(16)
            .enumerate()
            .map(|(i, slab)| {
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    for (j, v) in slab.iter_mut().enumerate() {
                        *v = i * 100 + j;
                    }
                });
                job
            })
            .collect();
        pool.run(jobs);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i / 16) * 100 + i % 16);
        }
    }

    #[test]
    fn reusable_across_batches() {
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        for _ in 0..10 {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                .map(|_| {
                    let job: Box<dyn FnOnce() + Send + '_> = Box::new(|| {
                        hits.fetch_add(1, Ordering::SeqCst);
                    });
                    job
                })
                .collect();
            pool.run(jobs);
        }
        assert_eq!(hits.load(Ordering::SeqCst), 40);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let pool = WorkerPool::new(1);
        pool.run(Vec::new());
    }

    #[test]
    fn zero_thread_request_still_works() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        let ran = AtomicBool::new(false);
        pool.run(vec![
            Box::new(|| ran.store(true, Ordering::SeqCst)) as Box<dyn FnOnce() + Send + '_>
        ]);
        assert!(ran.load(Ordering::SeqCst));
    }

    #[test]
    fn submit_runs_detached_jobs() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = std::sync::mpsc::channel();
        for i in 0..8 {
            let tx = tx.clone();
            pool.submit(Box::new(move || tx.send(i).expect("send result")));
        }
        let mut got: Vec<i32> = (0..8).map(|_| rx.recv().expect("job ran")).collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn submitted_panic_does_not_kill_the_worker() {
        let pool = WorkerPool::new(1);
        pool.submit(Box::new(|| panic!("boom")));
        // The single worker caught the panic and still serves both APIs.
        let (tx, rx) = std::sync::mpsc::channel();
        pool.submit(Box::new(move || tx.send(42u8).expect("send")));
        assert_eq!(rx.recv().expect("worker alive"), 42);
        let ran = AtomicBool::new(false);
        pool.run(vec![
            Box::new(|| ran.store(true, Ordering::SeqCst)) as Box<dyn FnOnce() + Send + '_>
        ]);
        assert!(ran.load(Ordering::SeqCst));
    }

    #[test]
    #[should_panic(expected = "worker-pool job panicked")]
    fn job_panic_propagates_after_batch() {
        let pool = WorkerPool::new(2);
        let survivor = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&survivor);
        pool.run(vec![
            Box::new(|| panic!("boom")) as Box<dyn FnOnce() + Send + '_>,
            Box::new(move || flag.store(true, Ordering::SeqCst)),
        ]);
    }

    #[test]
    fn pool_survives_a_panicked_job() {
        let pool = WorkerPool::new(1);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(vec![
                Box::new(|| panic!("boom")) as Box<dyn FnOnce() + Send + '_>
            ]);
        }));
        assert!(result.is_err());
        // The worker thread is still alive and accepts new work.
        let ran = AtomicBool::new(false);
        pool.run(vec![
            Box::new(|| ran.store(true, Ordering::SeqCst)) as Box<dyn FnOnce() + Send + '_>
        ]);
        assert!(ran.load(Ordering::SeqCst));
    }
}
