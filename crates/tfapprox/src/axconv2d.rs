//! The approximate 2D convolution operator.

use crate::accumulator::Accumulator;
use crate::backend::{self, ConvSpec};
use crate::{Backend, EmuContext, EmuError};
use axmult::{AxMultiplier, MulLut, Signedness};
use axnn::layer::{check_arity, Layer};
use axnn::layers::Conv2D;
use axnn::NnError;
use axquant::{FilterQuantization, QuantParams, QuantRange, RoundMode};
use axtensor::{ops, ConvGeometry, Filter, Shape4, Tensor};
use std::sync::Arc;

/// `AxConv2D`: the drop-in approximate replacement for `Conv2D`.
///
/// "The approximate layer reads two floating-point inputs and produces a
/// single floating-point output which has the same range as if we use the
/// original convolutional layer." Besides the activation tensor it
/// consumes two scalar range inputs (`Min`, `Max` — inserted by the graph
/// transform of Fig. 1); the filter range is known statically from the
/// weights. Internally the layer quantizes per Eq. 1, multiplies through
/// the multiplier LUT, and dequantizes with the Eq. 4 correction, running
/// on the backend selected by its shared [`EmuContext`].
#[derive(Debug, Clone)]
pub struct AxConv2D {
    filter: Filter,
    geometry: ConvGeometry,
    bias: Option<Vec<f32>>,
    lut: MulLut,
    mult_name: String,
    round: RoundMode,
    filter_range: (f32, f32),
    per_channel: bool,
    accumulator: Accumulator,
    ctx: Arc<EmuContext>,
}

impl AxConv2D {
    /// Create from parts.
    #[must_use]
    pub fn new(filter: Filter, geometry: ConvGeometry, lut: MulLut, ctx: Arc<EmuContext>) -> Self {
        let filter_range = ops::min_max_slice(filter.as_slice());
        AxConv2D {
            filter,
            geometry,
            bias: None,
            lut,
            mult_name: "custom".to_owned(),
            round: RoundMode::NearestEven,
            filter_range,
            per_channel: false,
            accumulator: Accumulator::Exact,
            ctx,
        }
    }

    /// Build the approximate variant of an existing accurate convolution —
    /// the per-layer step of the paper's design flow.
    #[must_use]
    pub fn from_conv2d(conv: &Conv2D, mult: &AxMultiplier, ctx: Arc<EmuContext>) -> Self {
        let mut ax = AxConv2D::new(
            conv.filter().clone(),
            conv.geometry(),
            mult.lut().clone(),
            ctx,
        );
        ax.mult_name = mult.name().to_owned();
        ax.bias = conv.bias().map(<[f32]>::to_vec);
        ax
    }

    /// Set the rounding mode applied during quantization.
    #[must_use]
    pub fn with_round_mode(mut self, round: RoundMode) -> Self {
        self.round = round;
        self
    }

    /// Quantize the filter bank per output channel instead of per tensor
    /// (TensorFlow's per-channel weight quantization) — each filter gets
    /// its own `(α₂, β₂)` from its own weight range, reducing
    /// quantization error for banks with uneven per-filter magnitudes.
    #[must_use]
    pub fn with_per_channel_filter_quant(mut self) -> Self {
        self.per_channel = true;
        self
    }

    /// Whether filter quantization is per output channel.
    #[must_use]
    pub fn is_per_channel(&self) -> bool {
        self.per_channel
    }

    /// Set the MAC accumulator model (CPU backends): explore
    /// accumulator-width reduction, a further approximation knob of the
    /// emulated accelerator.
    #[must_use]
    pub fn with_accumulator(mut self, accumulator: Accumulator) -> Self {
        self.accumulator = accumulator;
        self
    }

    /// Attach a per-output-channel bias.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the output channel count.
    #[must_use]
    pub fn with_bias(mut self, bias: Vec<f32>) -> Self {
        assert_eq!(bias.len(), self.filter.shape().c_out);
        self.bias = Some(bias);
        self
    }

    /// Name of the emulated multiplier.
    #[must_use]
    pub fn multiplier_name(&self) -> &str {
        &self.mult_name
    }

    /// The quantized integer range implied by the multiplier's signedness
    /// ("\[-128, 127\] for signed, \[0, 255\] for unsigned multipliers").
    #[must_use]
    pub fn quant_range(&self) -> QuantRange {
        match self.lut.signedness() {
            Signedness::Signed => QuantRange::i8(),
            Signedness::Unsigned => QuantRange::u8(),
        }
    }

    /// The shared emulation context.
    #[must_use]
    pub fn context(&self) -> &Arc<EmuContext> {
        &self.ctx
    }

    fn filter_quantization(&self) -> FilterQuantization {
        let range = self.quant_range();
        if self.per_channel {
            let fs = self.filter.shape();
            let mut ranges = vec![(f32::INFINITY, f32::NEG_INFINITY); fs.c_out];
            for (i, &w) in self.filter.as_slice().iter().enumerate() {
                let c = i % fs.c_out; // HWCF layout: c_out fastest
                ranges[c].0 = ranges[c].0.min(w);
                ranges[c].1 = ranges[c].1.max(w);
            }
            FilterQuantization::from_channel_ranges(&ranges, range, self.round)
        } else {
            QuantParams::from_range(self.filter_range.0, self.filter_range.1, range, self.round)
                .into()
        }
    }

    fn spec_with_input_range(&self, lo: f32, hi: f32) -> ConvSpec<'_> {
        let range = self.quant_range();
        ConvSpec {
            filter: &self.filter,
            geometry: self.geometry,
            bias: self.bias.as_deref(),
            lut: &self.lut,
            input_q: QuantParams::from_range(lo, hi, range, self.round),
            filter_q: self.filter_quantization(),
            accumulator: self.accumulator,
        }
    }

    /// Convolve with the input range supplied by the caller (the Fig. 1
    /// `Min`/`Max` scalars).
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn convolve_with_range(
        &self,
        input: &Tensor<f32>,
        lo: f32,
        hi: f32,
    ) -> Result<Tensor<f32>, EmuError> {
        let spec = self.spec_with_input_range(lo, hi);
        let (out, profile) = match self.ctx.backend() {
            Backend::CpuDirect => backend::run_cpu_direct(input, &spec, true)?,
            Backend::CpuGemm => backend::run_cpu_gemm(input, &spec, self.ctx.chunk_size())?,
            Backend::GpuSim => backend::run_gpusim(input, &spec, &self.ctx)?,
        };
        self.ctx.record(&profile);
        Ok(out)
    }

    /// Convolve, computing the input range internally (standalone use
    /// outside a transformed graph).
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn convolve(&self, input: &Tensor<f32>) -> Result<Tensor<f32>, EmuError> {
        let (lo, hi) = ops::min_max(input);
        self.convolve_with_range(input, lo, hi)
    }
}

impl Layer for AxConv2D {
    fn op_name(&self) -> &str {
        "AxConv2D"
    }

    fn arity(&self) -> usize {
        3 // [input, min, max]
    }

    fn output_shape(&self, inputs: &[Shape4]) -> Result<Shape4, NnError> {
        check_arity(self.op_name(), inputs, 3)?;
        Ok(self.geometry.output_shape(inputs[0], self.filter.shape())?)
    }

    fn forward(&self, inputs: &[&Tensor<f32>]) -> Result<Tensor<f32>, NnError> {
        check_arity(self.op_name(), inputs, 3)?;
        let lo = inputs[1].as_slice()[0];
        let hi = inputs[2].as_slice()[0];
        self.convolve_with_range(inputs[0], lo, hi)
            .map_err(|e| NnError::Layer {
                layer: "AxConv2D".to_owned(),
                message: e.to_string(),
            })
    }

    fn mac_count(&self, inputs: &[Shape4]) -> Result<u64, NnError> {
        check_arity(self.op_name(), inputs, 3)?;
        Ok(self.geometry.mac_count(inputs[0], self.filter.shape())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axtensor::{rng, FilterShape};

    fn make(backend: Backend, lut: MulLut) -> (AxConv2D, Tensor<f32>) {
        let filter = rng::uniform_filter(FilterShape::new(3, 3, 3, 4), 2, -0.5, 0.5);
        let ctx = Arc::new(EmuContext::new(backend));
        let layer = AxConv2D::new(filter, ConvGeometry::default(), lut, ctx);
        let input = rng::uniform(Shape4::new(2, 6, 6, 3), 1, -1.0, 1.0);
        (layer, input)
    }

    #[test]
    fn standalone_convolve_close_to_float() {
        let (layer, input) = make(Backend::CpuGemm, MulLut::exact(Signedness::Signed));
        let out = layer.convolve(&input).unwrap();
        let float_ref = ops::conv2d_gemm(&input, &layer.filter, ConvGeometry::default()).unwrap();
        let diff = out.max_abs_diff(&float_ref).unwrap();
        assert!(diff < 0.5, "quantization noise only, got {diff}");
    }

    #[test]
    fn layer_contract_arity_and_shape() {
        let (layer, input) = make(Backend::CpuDirect, MulLut::exact(Signedness::Signed));
        let scalar = Tensor::from_vec(Shape4::new(1, 1, 1, 1), vec![-1.0]).unwrap();
        let scalar_hi = Tensor::from_vec(Shape4::new(1, 1, 1, 1), vec![1.0]).unwrap();
        let out = layer.forward(&[&input, &scalar, &scalar_hi]).unwrap();
        assert_eq!(out.shape(), Shape4::new(2, 6, 6, 4));
        assert!(layer.forward(&[&input]).is_err());
    }

    #[test]
    fn signedness_determines_range() {
        let (signed, _) = make(Backend::CpuDirect, MulLut::exact(Signedness::Signed));
        assert_eq!(signed.quant_range(), QuantRange::i8());
        let (unsigned, _) = make(Backend::CpuDirect, MulLut::exact(Signedness::Unsigned));
        assert_eq!(unsigned.quant_range(), QuantRange::u8());
    }

    #[test]
    fn unsigned_multiplier_handles_signed_data() {
        // Data in [-1, 1] with an unsigned multiplier: the affine
        // zero-point shifts everything into [0, 255].
        let (layer, input) = make(Backend::CpuGemm, MulLut::exact(Signedness::Unsigned));
        let out = layer.convolve(&input).unwrap();
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
        // Still close to the float convolution.
        let (exact_layer, _) = make(Backend::CpuGemm, MulLut::exact(Signedness::Signed));
        let signed_out = exact_layer.convolve(&input).unwrap();
        assert!(out.max_abs_diff(&signed_out).unwrap() < 0.5);
    }

    #[test]
    fn profile_recorded_into_context() {
        let (layer, input) = make(Backend::GpuSim, MulLut::exact(Signedness::Signed));
        assert_eq!(layer.context().profile().total(), 0.0);
        let _ = layer.convolve(&input).unwrap();
        assert!(layer.context().profile().total() > 0.0);
    }

    #[test]
    fn per_channel_quantization_reduces_error() {
        // A filter bank with wildly uneven per-channel magnitudes: the
        // per-tensor scale wastes resolution on the small channel.
        let fs = FilterShape::new(3, 3, 3, 2);
        let filter = Filter::from_fn(fs, |h, w, ci, co| {
            let base = ((h * 3 + w) as f32 - 4.0) / 10.0 + ci as f32 * 0.01;
            if co == 0 {
                base // range ~[-0.4, 0.4]
            } else {
                base * 0.02 // range ~[-0.008, 0.008]
            }
        });
        let input = rng::uniform(Shape4::new(1, 8, 8, 3), 21, -1.0, 1.0);
        let float_ref = ops::conv2d_direct(&input, &filter, ConvGeometry::default()).unwrap();
        let ctx = Arc::new(EmuContext::new(Backend::CpuGemm));
        let per_tensor = AxConv2D::new(
            filter.clone(),
            ConvGeometry::default(),
            MulLut::exact(Signedness::Signed),
            Arc::clone(&ctx),
        );
        let per_channel = per_tensor.clone().with_per_channel_filter_quant();
        assert!(per_channel.is_per_channel());
        // Compare the error on the *small-magnitude* channel (c = 1): the
        // per-tensor scale is sized for channel 0 and wastes resolution
        // there; per-channel quantization recovers it.
        let channel_err = |out: &Tensor<f32>| -> f32 {
            let mut worst = 0f32;
            let s = out.shape();
            for n in 0..s.n {
                for h in 0..s.h {
                    for w in 0..s.w {
                        worst = worst.max((out.at(n, h, w, 1) - float_ref.at(n, h, w, 1)).abs());
                    }
                }
            }
            worst
        };
        let e_tensor = channel_err(&per_tensor.convolve(&input).unwrap());
        let e_channel = channel_err(&per_channel.convolve(&input).unwrap());
        assert!(
            e_channel < e_tensor / 4.0,
            "per-channel {e_channel} !< per-tensor {e_tensor} / 4"
        );
    }

    #[test]
    fn per_channel_agrees_across_backends() {
        let filter = rng::uniform_filter(FilterShape::new(3, 3, 2, 3), 22, -0.5, 0.5);
        let input = rng::uniform(Shape4::new(2, 6, 6, 2), 23, -1.0, 1.0);
        let lut = MulLut::exact(Signedness::Signed);
        let run = |backend: Backend| {
            let ctx = Arc::new(EmuContext::new(backend));
            AxConv2D::new(filter.clone(), ConvGeometry::default(), lut.clone(), ctx)
                .with_per_channel_filter_quant()
                .convolve(&input)
                .unwrap()
        };
        let direct = run(Backend::CpuDirect);
        let gemm = run(Backend::CpuGemm);
        let gpu = run(Backend::GpuSim);
        assert!(direct.max_abs_diff(&gemm).unwrap() < 1e-4);
        assert!(direct.max_abs_diff(&gpu).unwrap() < 1e-2);
    }

    #[test]
    fn wide_accumulator_equals_exact() {
        let (layer, input) = make(Backend::CpuDirect, MulLut::exact(Signedness::Signed));
        let exact_out = layer.convolve(&input).unwrap();
        let wide = layer.clone().with_accumulator(Accumulator::Saturating(32));
        let wide_out = wide.convolve(&input).unwrap();
        assert_eq!(exact_out, wide_out, "32-bit accumulator never clips here");
    }

    #[test]
    fn narrow_saturating_accumulator_clips() {
        // Drive the accumulator hard: all-max inputs and weights.
        let filter = Filter::from_fn(FilterShape::new(3, 3, 8, 1), |_, _, _, _| 0.5);
        let input = Tensor::<f32>::full(Shape4::new(1, 8, 8, 8), 1.0);
        let ctx = Arc::new(EmuContext::new(Backend::CpuGemm));
        let base = AxConv2D::new(
            filter,
            ConvGeometry::default(),
            MulLut::exact(Signedness::Signed),
            ctx,
        );
        let exact_out = base.convolve(&input).unwrap();
        let narrow = base.clone().with_accumulator(Accumulator::Saturating(16));
        let narrow_out = narrow.convolve(&input).unwrap();
        // 72 taps x 127*127 far exceeds 2^15: saturation must bite. (The
        // dequantization correction shifts the clipped raw sum, so the
        // deviation is not sign-monotone — only its presence is asserted.)
        let diff = exact_out.max_abs_diff(&narrow_out).unwrap();
        assert!(diff > 0.0, "16-bit accumulator must saturate");
        assert!(narrow_out.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn accumulator_model_consistent_across_cpu_backends() {
        let filter = rng::uniform_filter(FilterShape::new(3, 3, 4, 2), 31, -0.5, 0.5);
        let input = rng::uniform(Shape4::new(1, 6, 6, 4), 32, -1.0, 1.0);
        let run = |backend: Backend| {
            let ctx = Arc::new(EmuContext::new(backend));
            AxConv2D::new(
                filter.clone(),
                ConvGeometry::default(),
                MulLut::exact(Signedness::Signed),
                ctx,
            )
            .with_accumulator(Accumulator::Wrapping(12))
            .convolve(&input)
            .unwrap()
        };
        let a = run(Backend::CpuDirect);
        let b = run(Backend::CpuGemm);
        assert!(a.max_abs_diff(&b).unwrap() < 1e-4);
    }

    #[test]
    fn mac_count_matches_accurate_conv() {
        let (layer, _) = make(Backend::CpuDirect, MulLut::exact(Signedness::Signed));
        let shape = Shape4::new(1, 6, 6, 3);
        let scalar = Shape4::new(1, 1, 1, 1);
        let macs = layer.mac_count(&[shape, scalar, scalar]).unwrap();
        assert_eq!(macs, 6 * 6 * 4 * 27);
    }
}
