//! The approximate 2D convolution operator.

use crate::accumulator::Accumulator;
use crate::backend::{self, ConvSpec};
use crate::prepared::PreparedFilter;
use crate::{Backend, EmuContext, EmuError};
use axmult::{AxMultiplier, MulLut, Signedness};
use axnn::layer::{check_arity, Layer};
use axnn::layers::Conv2D;
use axnn::NnError;
use axquant::{FilterQuantization, QuantParams, QuantRange, RoundMode};
use axtensor::{ops, ConvGeometry, Filter, SegmentTable, Shape4, Tensor};
use gpusim::{Phase, PhaseProfile};
use std::borrow::Cow;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// `AxConv2D`: the drop-in approximate replacement for `Conv2D`.
///
/// "The approximate layer reads two floating-point inputs and produces a
/// single floating-point output which has the same range as if we use the
/// original convolutional layer." Besides the activation tensor it
/// consumes two scalar range inputs (`Min`, `Max` — inserted by the graph
/// transform of Fig. 1); the filter range is known statically from the
/// weights. Internally the layer quantizes per Eq. 1, multiplies through
/// the multiplier LUT, and dequantizes with the Eq. 4 correction, running
/// on the backend selected by its shared [`EmuContext`].
#[derive(Debug, Clone)]
pub struct AxConv2D {
    filter: Filter,
    geometry: ConvGeometry,
    bias: Option<Vec<f32>>,
    lut: MulLut,
    mult_name: String,
    round: RoundMode,
    filter_range: (f32, f32),
    per_channel: bool,
    accumulator: Accumulator,
    ctx: Arc<EmuContext>,
    /// The prepared-execution plan, built lazily on first forward and
    /// invalidated by builder mutations that change filter quantization.
    plan: OnceLock<Arc<PreparedFilter>>,
}

impl AxConv2D {
    /// Create from parts.
    #[must_use]
    pub fn new(filter: Filter, geometry: ConvGeometry, lut: MulLut, ctx: Arc<EmuContext>) -> Self {
        let filter_range = ops::min_max_slice(filter.as_slice());
        AxConv2D {
            filter,
            geometry,
            bias: None,
            lut,
            mult_name: "custom".to_owned(),
            round: RoundMode::NearestEven,
            filter_range,
            per_channel: false,
            accumulator: Accumulator::Exact,
            ctx,
            plan: OnceLock::new(),
        }
    }

    /// Build the approximate variant of an existing accurate convolution —
    /// the per-layer step of the paper's design flow.
    #[must_use]
    pub fn from_conv2d(conv: &Conv2D, mult: &AxMultiplier, ctx: Arc<EmuContext>) -> Self {
        let mut ax = AxConv2D::new(
            conv.filter().clone(),
            conv.geometry(),
            mult.lut().clone(),
            ctx,
        );
        ax.mult_name = mult.name().to_owned();
        ax.bias = conv.bias().map(<[f32]>::to_vec);
        ax
    }

    /// Set the rounding mode applied during quantization.
    #[must_use]
    pub fn with_round_mode(mut self, round: RoundMode) -> Self {
        self.round = round;
        self.plan = OnceLock::new(); // rounding changes the quantized plan
        self
    }

    /// Quantize the filter bank per output channel instead of per tensor
    /// (TensorFlow's per-channel weight quantization) — each filter gets
    /// its own `(α₂, β₂)` from its own weight range, reducing
    /// quantization error for banks with uneven per-filter magnitudes.
    #[must_use]
    pub fn with_per_channel_filter_quant(mut self) -> Self {
        self.per_channel = true;
        self.plan = OnceLock::new(); // quantization flavour changes the plan
        self
    }

    /// Whether filter quantization is per output channel.
    #[must_use]
    pub fn is_per_channel(&self) -> bool {
        self.per_channel
    }

    /// Set the MAC accumulator model (CPU backends): explore
    /// accumulator-width reduction, a further approximation knob of the
    /// emulated accelerator.
    #[must_use]
    pub fn with_accumulator(mut self, accumulator: Accumulator) -> Self {
        self.accumulator = accumulator;
        self
    }

    /// Attach a per-output-channel bias.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the output channel count.
    #[must_use]
    pub fn with_bias(mut self, bias: Vec<f32>) -> Self {
        assert_eq!(bias.len(), self.filter.shape().c_out);
        self.bias = Some(bias);
        self
    }

    /// Name of the emulated multiplier.
    #[must_use]
    pub fn multiplier_name(&self) -> &str {
        &self.mult_name
    }

    /// The quantized integer range implied by the multiplier's signedness
    /// ("\[-128, 127\] for signed, \[0, 255\] for unsigned multipliers").
    #[must_use]
    pub fn quant_range(&self) -> QuantRange {
        match self.lut.signedness() {
            Signedness::Signed => QuantRange::i8(),
            Signedness::Unsigned => QuantRange::u8(),
        }
    }

    /// The shared emulation context.
    #[must_use]
    pub fn context(&self) -> &Arc<EmuContext> {
        &self.ctx
    }

    fn filter_quantization(&self) -> FilterQuantization {
        let range = self.quant_range();
        if self.per_channel {
            let fs = self.filter.shape();
            // HWCF layout invariant (see `axtensor::ops::Filter`): c_out
            // is the fastest-varying dimension, so flat index i belongs to
            // channel i % c_out. `Filter::from_vec` guarantees the buffer
            // length matches the shape exactly.
            debug_assert!(
                self.filter.as_slice().len().is_multiple_of(fs.c_out.max(1)),
                "filter buffer is not a whole number of channel groups"
            );
            let mut ranges = vec![(f32::INFINITY, f32::NEG_INFINITY); fs.c_out];
            for (i, &w) in self.filter.as_slice().iter().enumerate() {
                let c = i % fs.c_out;
                ranges[c].0 = ranges[c].0.min(w);
                ranges[c].1 = ranges[c].1.max(w);
            }
            FilterQuantization::from_channel_ranges(&ranges, range, self.round)
        } else {
            QuantParams::from_range(self.filter_range.0, self.filter_range.1, range, self.round)
                .into()
        }
    }

    /// Build the per-call spec against an existing plan. The filter-side
    /// quantization is borrowed from the plan instead of re-derived via
    /// [`Self::filter_quantization`], which for per-channel layers
    /// rescans every filter tap — per-call work this engine exists to
    /// hoist. (The prepared backends take the filter side from the plan
    /// anyway; `spec.filter_q` only has to stay consistent with it.)
    fn spec_with_plan<'a>(&'a self, plan: &'a PreparedFilter, lo: f32, hi: f32) -> ConvSpec<'a> {
        let range = self.quant_range();
        ConvSpec {
            filter: &self.filter,
            geometry: self.geometry,
            bias: self.bias.as_deref(),
            lut: &self.lut,
            input_q: QuantParams::from_range(lo, hi, range, self.round),
            filter_q: Cow::Borrowed(plan.filter_quantization()),
            accumulator: self.accumulator,
        }
    }

    /// The cached prepared-execution plan, building it if necessary. The
    /// second element carries the build cost (wall-clock for CPU
    /// backends, modeled device seconds for the simulated GPU) exactly
    /// once — `None` on every call after the first.
    fn plan(&self) -> (Arc<PreparedFilter>, Option<PhaseProfile>) {
        let mut built = None;
        let plan = self.plan.get_or_init(|| {
            let t0 = Instant::now();
            let plan = PreparedFilter::from_filter(&self.filter, &self.filter_quantization());
            let mut profile = PhaseProfile::new();
            match self.ctx.backend() {
                Backend::CpuDirect | Backend::CpuGemm => {
                    profile.add(Phase::Quantization, t0.elapsed().as_secs_f64());
                }
                Backend::GpuSim => {
                    let ev = plan.quant_events();
                    profile.add(Phase::Quantization, self.ctx.device().seconds(&ev));
                    self.ctx.record_events(&ev);
                }
            }
            built = Some(profile);
            Arc::new(plan)
        });
        (Arc::clone(plan), built)
    }

    /// Reject filter banks whose weights would bake NaN/Inf-derived
    /// coefficients into a cached plan. `filter_range` comes from the
    /// NaN-propagating min/max scan, so this check is O(1).
    fn validate_filter_weights(&self) -> Result<(), EmuError> {
        if !self.filter_range.0.is_finite() || !self.filter_range.1.is_finite() {
            return Err(EmuError::Config(
                "filter weights contain non-finite values".to_owned(),
            ));
        }
        Ok(())
    }

    /// Eagerly build the prepared-execution plan (normally built lazily on
    /// the first forward), recording its one-off quantization cost into
    /// the context profile. Idempotent.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::Config`] if the filter weights are non-finite
    /// (the same guard the forward path enforces).
    pub fn prepare(&self) -> Result<(), EmuError> {
        self.validate_filter_weights()?;
        let (_, built) = self.plan();
        if let Some(profile) = built {
            self.ctx.record(&profile);
        }
        Ok(())
    }

    /// Whether the prepared-execution plan has been built.
    #[must_use]
    pub fn is_prepared(&self) -> bool {
        self.plan.get().is_some()
    }

    /// The cached plan, if already built (no build is triggered).
    pub(crate) fn cached_plan(&self) -> Option<Arc<PreparedFilter>> {
        self.plan.get().cloned()
    }

    /// Seed the plan cache with an already-built plan from an equivalent
    /// layer — the session `reassign` fast path. The caller must
    /// guarantee the donor layer had the same filter and the same
    /// quantization flavour (range, rounding, per-channel setting);
    /// under the session API that holds whenever the two multipliers
    /// share a signedness. No-op if a plan is already cached.
    pub(crate) fn seed_plan(&self, plan: Arc<PreparedFilter>) {
        let _ = self.plan.set(plan);
    }

    /// Convolve with the input range supplied by the caller (the Fig. 1
    /// `Min`/`Max` scalars).
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::Config`] for a non-finite or inverted input
    /// range or a filter bank with non-finite weights; propagates shape
    /// errors.
    pub fn convolve_with_range(
        &self,
        input: &Tensor<f32>,
        lo: f32,
        hi: f32,
    ) -> Result<Tensor<f32>, EmuError> {
        backend::validate_range(lo, hi)?;
        self.validate_filter_weights()?;
        if input.shape().n == 0 {
            // Zero images: nothing to compute, so build (and charge)
            // nothing — in particular not the one-off plan, which would
            // otherwise make a zero-image run report differently from a
            // run with no batches at all.
            let out_shape = self
                .geometry
                .output_shape(input.shape(), self.filter.shape())?;
            return Ok(Tensor::zeros(out_shape));
        }
        let (plan, built) = self.plan();
        let spec = self.spec_with_plan(&plan, lo, hi);
        let (out, mut profile) = match self.ctx.backend() {
            Backend::CpuDirect => backend::run_cpu_direct_prepared(input, &spec, &plan, true)?,
            Backend::CpuGemm => backend::run_cpu_gemm_prepared(input, &spec, &plan, &self.ctx)?,
            Backend::GpuSim => backend::run_gpusim_prepared(input, &spec, &plan, &self.ctx)?,
        };
        if let Some(build_profile) = built {
            profile.merge(&build_profile);
        }
        self.ctx.record(&profile);
        Ok(out)
    }

    /// Convolve, computing the input range internally (standalone use
    /// outside a transformed graph).
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn convolve(&self, input: &Tensor<f32>) -> Result<Tensor<f32>, EmuError> {
        let (lo, hi) = ops::min_max(input);
        self.convolve_with_range(input, lo, hi)
    }

    /// Convolve a *fused* multi-request batch, with one input range per
    /// segment (the segmented Fig. 1 observers' outputs).
    ///
    /// Bit-identical to calling [`Self::convolve_with_range`] on each
    /// segment alone with its own range and concatenating. On the
    /// host-GEMM backend the whole batch runs as one segmented GEMM per
    /// chunk ([`backend::run_cpu_gemm_fused_prepared`]); the other
    /// backends run per segment and concatenate, which is the identity by
    /// construction.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::Config`] if any segment's range is non-finite
    /// or inverted, if the segment table does not cover exactly the
    /// batch, or if `bounds` does not cover exactly the segments;
    /// propagates shape errors.
    pub fn convolve_segmented(
        &self,
        input: &Tensor<f32>,
        bounds: &[(f32, f32)],
        segments: &SegmentTable,
    ) -> Result<Tensor<f32>, EmuError> {
        let n = input.shape().n;
        if segments.total() != n || bounds.len() != segments.len() {
            return Err(EmuError::Config(format!(
                "fused batch of {n} images: segment table covers {} images with {} \
                 segments but {} ranges were supplied",
                segments.total(),
                segments.len(),
                bounds.len()
            )));
        }
        for &(lo, hi) in bounds {
            backend::validate_range(lo, hi)?;
        }
        self.validate_filter_weights()?;
        let out_shape = self
            .geometry
            .output_shape(input.shape(), self.filter.shape())?;
        if n == 0 {
            // All segments empty: nothing to compute, and — exactly like
            // the solo zero-image path — no plan is built or charged.
            return Ok(Tensor::zeros(out_shape));
        }
        let (plan, built) = self.plan();
        let range = self.quant_range();
        let (out, mut profile) = match self.ctx.backend() {
            Backend::CpuGemm => {
                let seg_q: Vec<QuantParams> = bounds
                    .iter()
                    .map(|&(lo, hi)| QuantParams::from_range(lo, hi, range, self.round))
                    .collect();
                // The spec's own input_q is unused by the fused runner;
                // seed it with segment 0's range for coherence.
                let spec = self.spec_with_plan(&plan, bounds[0].0, bounds[0].1);
                backend::run_cpu_gemm_fused_prepared(
                    input, &spec, &seg_q, segments, &plan, &self.ctx,
                )?
            }
            // The nested-loop and simulated-device backends gain nothing
            // from fusion (no shared GEMM to amortize); run the segments
            // back-to-back — the bit-identity baseline itself.
            Backend::CpuDirect | Backend::GpuSim => {
                let mut parts: Vec<Tensor<f32>> = Vec::new();
                let mut profile = PhaseProfile::new();
                for (s, (start, end)) in segments.iter().enumerate() {
                    if start == end {
                        parts.push(Tensor::zeros(Shape4::new(
                            0,
                            out_shape.h,
                            out_shape.w,
                            out_shape.c,
                        )));
                        continue;
                    }
                    let piece = input.batch_slice(start, end - start);
                    let spec = self.spec_with_plan(&plan, bounds[s].0, bounds[s].1);
                    let (part, part_profile) = match self.ctx.backend() {
                        Backend::CpuDirect => {
                            backend::run_cpu_direct_prepared(&piece, &spec, &plan, true)?
                        }
                        _ => backend::run_gpusim_prepared(&piece, &spec, &plan, &self.ctx)?,
                    };
                    parts.push(part);
                    profile.merge(&part_profile);
                }
                (Tensor::concat_batch(&parts)?, profile)
            }
        };
        if let Some(build_profile) = built {
            profile.merge(&build_profile);
        }
        self.ctx.record(&profile);
        Ok(out)
    }
}

impl Layer for AxConv2D {
    fn op_name(&self) -> &str {
        "AxConv2D"
    }

    fn arity(&self) -> usize {
        3 // [input, min, max]
    }

    fn output_shape(&self, inputs: &[Shape4]) -> Result<Shape4, NnError> {
        check_arity(self.op_name(), inputs, 3)?;
        Ok(self.geometry.output_shape(inputs[0], self.filter.shape())?)
    }

    fn forward(&self, inputs: &[&Tensor<f32>]) -> Result<Tensor<f32>, NnError> {
        check_arity(self.op_name(), inputs, 3)?;
        let scalar = |t: &Tensor<f32>, name: &str| -> Result<f32, NnError> {
            t.as_slice().first().copied().ok_or_else(|| NnError::Layer {
                layer: "AxConv2D".to_owned(),
                message: format!("empty {name} range tensor"),
            })
        };
        let lo = scalar(inputs[1], "Min")?;
        let hi = scalar(inputs[2], "Max")?;
        self.convolve_with_range(inputs[0], lo, hi)
            .map_err(|e| NnError::Layer {
                layer: "AxConv2D".to_owned(),
                message: e.to_string(),
            })
    }

    /// The fused-batch forward: `inputs[1]`/`inputs[2]` are the segmented
    /// observers' `[S, 1, 1, 1]` per-segment range tensors.
    fn forward_segmented(
        &self,
        inputs: &[&Tensor<f32>],
        segments: &SegmentTable,
    ) -> Result<Tensor<f32>, NnError> {
        check_arity(self.op_name(), inputs, 3)?;
        let los = inputs[1].as_slice();
        let his = inputs[2].as_slice();
        if los.len() != segments.len() || his.len() != segments.len() {
            return Err(NnError::Layer {
                layer: "AxConv2D".to_owned(),
                message: format!(
                    "range tensors hold {} min / {} max entries for {} segments",
                    los.len(),
                    his.len(),
                    segments.len()
                ),
            });
        }
        let bounds: Vec<(f32, f32)> = los.iter().zip(his).map(|(&lo, &hi)| (lo, hi)).collect();
        self.convolve_segmented(inputs[0], &bounds, segments)
            .map_err(|e| NnError::Layer {
                layer: "AxConv2D".to_owned(),
                message: e.to_string(),
            })
    }

    fn mac_count(&self, inputs: &[Shape4]) -> Result<u64, NnError> {
        check_arity(self.op_name(), inputs, 3)?;
        Ok(self.geometry.mac_count(inputs[0], self.filter.shape())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axtensor::{rng, FilterShape};

    fn make(backend: Backend, lut: MulLut) -> (AxConv2D, Tensor<f32>) {
        let filter = rng::uniform_filter(FilterShape::new(3, 3, 3, 4), 2, -0.5, 0.5);
        let ctx = Arc::new(EmuContext::new(backend));
        let layer = AxConv2D::new(filter, ConvGeometry::default(), lut, ctx);
        let input = rng::uniform(Shape4::new(2, 6, 6, 3), 1, -1.0, 1.0);
        (layer, input)
    }

    #[test]
    fn standalone_convolve_close_to_float() {
        let (layer, input) = make(Backend::CpuGemm, MulLut::exact(Signedness::Signed));
        let out = layer.convolve(&input).unwrap();
        let float_ref = ops::conv2d_gemm(&input, &layer.filter, ConvGeometry::default()).unwrap();
        let diff = out.max_abs_diff(&float_ref).unwrap();
        assert!(diff < 0.5, "quantization noise only, got {diff}");
    }

    #[test]
    fn layer_contract_arity_and_shape() {
        let (layer, input) = make(Backend::CpuDirect, MulLut::exact(Signedness::Signed));
        let scalar = Tensor::from_vec(Shape4::new(1, 1, 1, 1), vec![-1.0]).unwrap();
        let scalar_hi = Tensor::from_vec(Shape4::new(1, 1, 1, 1), vec![1.0]).unwrap();
        let out = layer.forward(&[&input, &scalar, &scalar_hi]).unwrap();
        assert_eq!(out.shape(), Shape4::new(2, 6, 6, 4));
        assert!(layer.forward(&[&input]).is_err());
    }

    #[test]
    fn empty_range_tensor_is_an_error_not_a_panic() {
        let (layer, input) = make(Backend::CpuDirect, MulLut::exact(Signedness::Signed));
        let empty = Tensor::<f32>::zeros(Shape4::new(0, 1, 1, 1));
        let scalar = Tensor::from_vec(Shape4::new(1, 1, 1, 1), vec![1.0]).unwrap();
        let err = layer.forward(&[&input, &empty, &scalar]).unwrap_err();
        assert!(err.to_string().contains("empty Min range tensor"), "{err}");
        let err = layer.forward(&[&input, &scalar, &empty]).unwrap_err();
        assert!(err.to_string().contains("empty Max range tensor"), "{err}");
    }

    #[test]
    fn invalid_ranges_are_rejected() {
        let (layer, input) = make(Backend::CpuGemm, MulLut::exact(Signedness::Signed));
        assert!(layer.convolve_with_range(&input, 1.0, -1.0).is_err());
        assert!(layer.convolve_with_range(&input, f32::NAN, 1.0).is_err());
        assert!(layer
            .convolve_with_range(&input, -1.0, f32::INFINITY)
            .is_err());
        // A degenerate-but-valid range still works.
        assert!(layer.convolve_with_range(&input, 0.0, 0.0).is_ok());
    }

    #[test]
    fn non_finite_filter_weights_are_rejected() {
        let mut weights = vec![0.1f32; 3 * 3 * 3 * 4];
        weights[5] = f32::NAN;
        let filter = Filter::from_vec(FilterShape::new(3, 3, 3, 4), weights).unwrap();
        let ctx = Arc::new(EmuContext::new(Backend::CpuGemm));
        let layer = AxConv2D::new(
            filter,
            ConvGeometry::default(),
            MulLut::exact(Signedness::Signed),
            ctx,
        );
        let input = rng::uniform(Shape4::new(1, 6, 6, 3), 41, -1.0, 1.0);
        let err = layer.convolve(&input).unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn plan_is_built_once_and_reused() {
        let (layer, input) = make(Backend::GpuSim, MulLut::exact(Signedness::Signed));
        assert!(!layer.is_prepared());
        let first_out = layer.convolve(&input).unwrap();
        assert!(layer.is_prepared());
        let first = layer.context().profile();
        layer.context().reset_profile();
        let second_out = layer.convolve(&input).unwrap();
        let second = layer.context().profile();
        assert_eq!(first_out, second_out);
        // The modeled GPU profile is deterministic: the second call's
        // Quantization share is input-side only — smaller than the first
        // by exactly the plan's one-off filter-quantization charge.
        let charge = layer.context().device().seconds(
            &crate::PreparedFilter::from_filter(&layer.filter, &layer.filter_quantization())
                .quant_events(),
        );
        let diff = first.seconds(Phase::Quantization) - second.seconds(Phase::Quantization);
        assert!(
            (diff - charge).abs() < 1e-12,
            "diff {diff} vs one-off charge {charge}"
        );
    }

    #[test]
    fn zero_image_forward_builds_and_charges_no_plan() {
        // Regression (PR 5): a zero-image forward used to build the
        // prepared plan and charge its one-off quantization cost, making
        // a zero-image `infer_batches` report differ from an empty one.
        for backend in [Backend::CpuDirect, Backend::CpuGemm, Backend::GpuSim] {
            let (layer, _) = make(backend, MulLut::exact(Signedness::Signed));
            let empty = Tensor::<f32>::zeros(Shape4::new(0, 6, 6, 3));
            let out = layer.convolve(&empty).unwrap();
            assert_eq!(out.shape(), Shape4::new(0, 6, 6, 4), "{backend:?}");
            assert!(!layer.is_prepared(), "{backend:?} built a plan for nothing");
            assert_eq!(
                layer.context().profile().total(),
                0.0,
                "{backend:?} charged time for zero images"
            );
        }
    }

    #[test]
    fn prepare_is_eager_and_idempotent() {
        let (layer, input) = make(Backend::CpuGemm, MulLut::exact(Signedness::Signed));
        layer.prepare().unwrap();
        assert!(layer.is_prepared());
        let quant_after_prepare = layer.context().profile().seconds(Phase::Quantization);
        assert!(quant_after_prepare > 0.0);
        layer.prepare().unwrap(); // no-op
        assert_eq!(
            layer.context().profile().seconds(Phase::Quantization),
            quant_after_prepare
        );
        let out = layer.convolve(&input).unwrap();
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn builder_mutation_invalidates_plan() {
        let (layer, _) = make(Backend::CpuGemm, MulLut::exact(Signedness::Signed));
        layer.prepare().unwrap();
        assert!(layer.is_prepared());
        let per_channel = layer.clone().with_per_channel_filter_quant();
        assert!(!per_channel.is_prepared());
        let (layer2, _) = make(Backend::CpuGemm, MulLut::exact(Signedness::Signed));
        layer2.prepare().unwrap();
        let rounded = layer2.clone().with_round_mode(RoundMode::TowardZero);
        assert!(!rounded.is_prepared());
    }

    #[test]
    fn signedness_determines_range() {
        let (signed, _) = make(Backend::CpuDirect, MulLut::exact(Signedness::Signed));
        assert_eq!(signed.quant_range(), QuantRange::i8());
        let (unsigned, _) = make(Backend::CpuDirect, MulLut::exact(Signedness::Unsigned));
        assert_eq!(unsigned.quant_range(), QuantRange::u8());
    }

    #[test]
    fn unsigned_multiplier_handles_signed_data() {
        // Data in [-1, 1] with an unsigned multiplier: the affine
        // zero-point shifts everything into [0, 255].
        let (layer, input) = make(Backend::CpuGemm, MulLut::exact(Signedness::Unsigned));
        let out = layer.convolve(&input).unwrap();
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
        // Still close to the float convolution.
        let (exact_layer, _) = make(Backend::CpuGemm, MulLut::exact(Signedness::Signed));
        let signed_out = exact_layer.convolve(&input).unwrap();
        assert!(out.max_abs_diff(&signed_out).unwrap() < 0.5);
    }

    #[test]
    fn profile_recorded_into_context() {
        let (layer, input) = make(Backend::GpuSim, MulLut::exact(Signedness::Signed));
        assert_eq!(layer.context().profile().total(), 0.0);
        let _ = layer.convolve(&input).unwrap();
        assert!(layer.context().profile().total() > 0.0);
    }

    #[test]
    fn per_channel_quantization_reduces_error() {
        // A filter bank with wildly uneven per-channel magnitudes: the
        // per-tensor scale wastes resolution on the small channel.
        let fs = FilterShape::new(3, 3, 3, 2);
        let filter = Filter::from_fn(fs, |h, w, ci, co| {
            let base = ((h * 3 + w) as f32 - 4.0) / 10.0 + ci as f32 * 0.01;
            if co == 0 {
                base // range ~[-0.4, 0.4]
            } else {
                base * 0.02 // range ~[-0.008, 0.008]
            }
        });
        let input = rng::uniform(Shape4::new(1, 8, 8, 3), 21, -1.0, 1.0);
        let float_ref = ops::conv2d_direct(&input, &filter, ConvGeometry::default()).unwrap();
        let ctx = Arc::new(EmuContext::new(Backend::CpuGemm));
        let per_tensor = AxConv2D::new(
            filter.clone(),
            ConvGeometry::default(),
            MulLut::exact(Signedness::Signed),
            Arc::clone(&ctx),
        );
        let per_channel = per_tensor.clone().with_per_channel_filter_quant();
        assert!(per_channel.is_per_channel());
        // Compare the error on the *small-magnitude* channel (c = 1): the
        // per-tensor scale is sized for channel 0 and wastes resolution
        // there; per-channel quantization recovers it.
        let channel_err = |out: &Tensor<f32>| -> f32 {
            let mut worst = 0f32;
            let s = out.shape();
            for n in 0..s.n {
                for h in 0..s.h {
                    for w in 0..s.w {
                        worst = worst.max((out.at(n, h, w, 1) - float_ref.at(n, h, w, 1)).abs());
                    }
                }
            }
            worst
        };
        let e_tensor = channel_err(&per_tensor.convolve(&input).unwrap());
        let e_channel = channel_err(&per_channel.convolve(&input).unwrap());
        assert!(
            e_channel < e_tensor / 4.0,
            "per-channel {e_channel} !< per-tensor {e_tensor} / 4"
        );
    }

    #[test]
    fn per_channel_agrees_across_backends() {
        let filter = rng::uniform_filter(FilterShape::new(3, 3, 2, 3), 22, -0.5, 0.5);
        let input = rng::uniform(Shape4::new(2, 6, 6, 2), 23, -1.0, 1.0);
        let lut = MulLut::exact(Signedness::Signed);
        let run = |backend: Backend| {
            let ctx = Arc::new(EmuContext::new(backend));
            AxConv2D::new(filter.clone(), ConvGeometry::default(), lut.clone(), ctx)
                .with_per_channel_filter_quant()
                .convolve(&input)
                .unwrap()
        };
        let direct = run(Backend::CpuDirect);
        let gemm = run(Backend::CpuGemm);
        let gpu = run(Backend::GpuSim);
        assert!(direct.max_abs_diff(&gemm).unwrap() < 1e-4);
        assert!(direct.max_abs_diff(&gpu).unwrap() < 1e-2);
    }

    #[test]
    fn wide_accumulator_equals_exact() {
        let (layer, input) = make(Backend::CpuDirect, MulLut::exact(Signedness::Signed));
        let exact_out = layer.convolve(&input).unwrap();
        let wide = layer.clone().with_accumulator(Accumulator::Saturating(32));
        let wide_out = wide.convolve(&input).unwrap();
        assert_eq!(exact_out, wide_out, "32-bit accumulator never clips here");
    }

    #[test]
    fn narrow_saturating_accumulator_clips() {
        // Drive the accumulator hard: all-max inputs and weights.
        let filter = Filter::from_fn(FilterShape::new(3, 3, 8, 1), |_, _, _, _| 0.5);
        let input = Tensor::<f32>::full(Shape4::new(1, 8, 8, 8), 1.0);
        let ctx = Arc::new(EmuContext::new(Backend::CpuGemm));
        let base = AxConv2D::new(
            filter,
            ConvGeometry::default(),
            MulLut::exact(Signedness::Signed),
            ctx,
        );
        let exact_out = base.convolve(&input).unwrap();
        let narrow = base.clone().with_accumulator(Accumulator::Saturating(16));
        let narrow_out = narrow.convolve(&input).unwrap();
        // 72 taps x 127*127 far exceeds 2^15: saturation must bite. (The
        // dequantization correction shifts the clipped raw sum, so the
        // deviation is not sign-monotone — only its presence is asserted.)
        let diff = exact_out.max_abs_diff(&narrow_out).unwrap();
        assert!(diff > 0.0, "16-bit accumulator must saturate");
        assert!(narrow_out.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn accumulator_model_consistent_across_cpu_backends() {
        let filter = rng::uniform_filter(FilterShape::new(3, 3, 4, 2), 31, -0.5, 0.5);
        let input = rng::uniform(Shape4::new(1, 6, 6, 4), 32, -1.0, 1.0);
        let run = |backend: Backend| {
            let ctx = Arc::new(EmuContext::new(backend));
            AxConv2D::new(
                filter.clone(),
                ConvGeometry::default(),
                MulLut::exact(Signedness::Signed),
                ctx,
            )
            .with_accumulator(Accumulator::Wrapping(12))
            .convolve(&input)
            .unwrap()
        };
        let a = run(Backend::CpuDirect);
        let b = run(Backend::CpuGemm);
        assert!(a.max_abs_diff(&b).unwrap() < 1e-4);
    }

    #[test]
    fn segmented_convolve_matches_solo_chained_on_every_backend() {
        let filter = rng::uniform_filter(FilterShape::new(3, 3, 2, 3), 61, -0.5, 0.5);
        let input = rng::uniform(Shape4::new(6, 5, 5, 2), 62, -1.0, 1.0);
        let segments = SegmentTable::from_counts(&[1, 3, 0, 2]);
        let bounds: Vec<(f32, f32)> = segments
            .iter()
            .map(|(a, b)| ops::min_max(&input.batch_slice(a, b - a)))
            .collect();
        for backend in [Backend::CpuDirect, Backend::CpuGemm, Backend::GpuSim] {
            let ctx = Arc::new(EmuContext::new(backend).with_chunk_size(4).unwrap());
            let layer = AxConv2D::new(
                filter.clone(),
                ConvGeometry::default(),
                MulLut::exact(Signedness::Signed),
                ctx,
            )
            .with_bias(vec![0.25, -0.5, 0.125]);
            let fused = layer
                .convolve_segmented(&input, &bounds, &segments)
                .unwrap();
            let mut parts = Vec::new();
            for (s, (a, b)) in segments.iter().enumerate() {
                let piece = input.batch_slice(a, b - a);
                parts.push(
                    layer
                        .convolve_with_range(&piece, bounds[s].0, bounds[s].1)
                        .unwrap(),
                );
            }
            let chained = Tensor::concat_batch(&parts).unwrap();
            assert_eq!(fused, chained, "{backend:?}");
        }
    }

    #[test]
    fn segmented_convolve_rejects_bad_tables_and_ranges() {
        let (layer, input) = make(Backend::CpuGemm, MulLut::exact(Signedness::Signed));
        // Table covering the wrong image count.
        let err = layer
            .convolve_segmented(&input, &[(-1.0, 1.0)], &SegmentTable::from_counts(&[1]))
            .unwrap_err();
        assert!(matches!(err, EmuError::Config(_)), "{err}");
        // One range missing.
        let err = layer
            .convolve_segmented(&input, &[(-1.0, 1.0)], &SegmentTable::from_counts(&[1, 1]))
            .unwrap_err();
        assert!(matches!(err, EmuError::Config(_)), "{err}");
        // A NaN range in any segment is rejected, as solo would.
        let err = layer
            .convolve_segmented(
                &input,
                &[(-1.0, 1.0), (f32::NAN, 1.0)],
                &SegmentTable::from_counts(&[1, 1]),
            )
            .unwrap_err();
        assert!(err.to_string().contains("invalid input range"), "{err}");
    }

    #[test]
    fn segmented_all_empty_builds_no_plan() {
        let (layer, _) = make(Backend::CpuGemm, MulLut::exact(Signedness::Signed));
        let empty = Tensor::<f32>::zeros(Shape4::new(0, 6, 6, 3));
        let out = layer
            .convolve_segmented(
                &empty,
                &[(0.0, 0.0), (0.0, 0.0)],
                &SegmentTable::from_counts(&[0, 0]),
            )
            .unwrap();
        assert_eq!(out.shape(), Shape4::new(0, 6, 6, 4));
        assert!(!layer.is_prepared());
    }

    #[test]
    fn mac_count_matches_accurate_conv() {
        let (layer, _) = make(Backend::CpuDirect, MulLut::exact(Signedness::Signed));
        let shape = Shape4::new(1, 6, 6, 3);
        let scalar = Shape4::new(1, 1, 1, 1);
        let macs = layer.mac_count(&[shape, scalar, scalar]).unwrap();
        assert_eq!(macs, 6 * 6 * 4 * 27);
    }
}
