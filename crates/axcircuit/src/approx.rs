//! Named approximate-multiplier circuit constructors.
//!
//! These are thin, documented wrappers over [`MultiplierSpec`] that mirror
//! how approximate-circuit libraries (EvoApprox8b and the broken-array /
//! truncated multiplier literature) parameterize their designs. Each
//! constructor returns a gate-level [`Netlist`] whose exhaustive truth table
//! can be extracted with [`crate::truth::TruthTable`] and turned into the
//! 128 kB look-up table the TFApprox paper stores in GPU texture memory.

use crate::builder::{CellDrop, MultiplierSpec};
use crate::{CircuitError, Netlist};

/// Exact unsigned `w × w` array multiplier.
///
/// # Errors
///
/// See [`MultiplierSpec::build`].
pub fn exact_unsigned(w: u32) -> Result<Netlist, CircuitError> {
    MultiplierSpec::unsigned(w, w).build()
}

/// Exact signed (two's-complement) `w × w` multiplier.
///
/// # Errors
///
/// See [`MultiplierSpec::build`].
pub fn exact_signed(w: u32) -> Result<Netlist, CircuitError> {
    MultiplierSpec::signed(w, w).build()
}

/// Truncated unsigned multiplier: the `k` least-significant product columns
/// are never computed (their partial products are dropped). Classic
/// fixed-width truncation; always under-estimates.
///
/// # Errors
///
/// See [`MultiplierSpec::build`].
pub fn truncated_unsigned(w: u32, k: u32) -> Result<Netlist, CircuitError> {
    MultiplierSpec::unsigned(w, w)
        .with_drop(CellDrop::LsbColumns(k))
        .build()
}

/// Broken-array multiplier (BAM) after Mahdiani et al.: omits carry-save
/// cells below a vertical break level `vbl` and a horizontal break level
/// `hbl`, trading accuracy for area/power.
///
/// # Errors
///
/// See [`MultiplierSpec::build`].
pub fn broken_array_unsigned(w: u32, vbl: u32, hbl: u32) -> Result<Netlist, CircuitError> {
    MultiplierSpec::unsigned(w, w)
        .with_drop(CellDrop::BrokenArray { vbl, hbl })
        .build()
}

/// Broken-array signed multiplier (sign-extended array with BAM mask).
///
/// # Errors
///
/// See [`MultiplierSpec::build`].
pub fn broken_array_signed(w: u32, vbl: u32, hbl: u32) -> Result<Netlist, CircuitError> {
    MultiplierSpec::signed(w, w)
        .with_drop(CellDrop::BrokenArray { vbl, hbl })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_unsigned_is_exact() {
        let nl = exact_unsigned(6).unwrap();
        for x in [0u64, 1, 31, 63] {
            for y in [0u64, 2, 33, 63] {
                assert_eq!(nl.eval_words(&[x, y]).unwrap(), x * y);
            }
        }
    }

    #[test]
    fn exact_signed_is_exact() {
        let nl = exact_signed(6).unwrap();
        for x in [-32i64, -1, 0, 1, 31] {
            for y in [-32i64, -3, 0, 7, 31] {
                let got = nl
                    .eval_words(&[(x as u64) & 0x3F, (y as u64) & 0x3F])
                    .unwrap();
                assert_eq!(got, ((x * y) as u64) & 0xFFF, "{x}*{y}");
            }
        }
    }

    #[test]
    fn truncation_reduces_gate_count() {
        let exact = exact_unsigned(8).unwrap();
        let trunc = truncated_unsigned(8, 6).unwrap();
        assert!(trunc.n_gates() < exact.n_gates());
    }

    #[test]
    fn bam_zero_breaks_is_exact() {
        let exact = exact_unsigned(4).unwrap();
        let bam = broken_array_unsigned(4, 0, 0).unwrap();
        for x in 0u64..16 {
            for y in 0u64..16 {
                assert_eq!(
                    bam.eval_words(&[x, y]).unwrap(),
                    exact.eval_words(&[x, y]).unwrap()
                );
            }
        }
    }

    #[test]
    fn deeper_breaks_drop_more_gates() {
        let shallow = broken_array_unsigned(8, 2, 0).unwrap();
        let deep = broken_array_unsigned(8, 8, 2).unwrap();
        assert!(deep.n_gates() < shallow.n_gates());
    }
}
