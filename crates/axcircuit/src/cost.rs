//! Unit-gate hardware cost model.
//!
//! Approximate-circuit papers (including the EvoApprox8b library that
//! TFApprox loads its truth tables from) report *relative* area, power and
//! delay using a unit-gate model: a 2-input NAND/NOR counts as 1 unit of
//! area and 1 unit of switching energy, XOR/XNOR as 2, inverters as 0.5,
//! and delay is the longest path weighted by per-gate delays. The absolute
//! calibration does not matter for the reproduction — only the ordering and
//! ratios between multiplier variants do.

use crate::{GateKind, Netlist};
use serde::{Deserialize, Serialize};

/// Relative hardware cost of a netlist under the unit-gate model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareCost {
    /// Area in unit-gate equivalents.
    pub area: f64,
    /// Switching power proxy in unit-gate equivalents (equals area under
    /// the uniform activity assumption used here).
    pub power: f64,
    /// Critical-path delay in unit-gate delays.
    pub delay: f64,
    /// Raw gate count (excluding constants and buffers).
    pub gates: usize,
}

impl HardwareCost {
    /// Power-delay product — a common energy figure of merit.
    #[must_use]
    pub fn pdp(&self) -> f64 {
        self.power * self.delay
    }
}

/// Per-gate unit costs: `(area, delay)`.
fn unit_cost(kind: GateKind) -> (f64, f64) {
    match kind {
        GateKind::Const0 | GateKind::Const1 => (0.0, 0.0),
        GateKind::Buf => (0.0, 0.0),
        GateKind::Not => (0.5, 0.5),
        GateKind::Nand | GateKind::Nor | GateKind::AndNot => (1.0, 1.0),
        GateKind::And | GateKind::Or => (1.5, 1.5),
        GateKind::Xor | GateKind::Xnor => (2.0, 2.0),
    }
}

/// Evaluate the unit-gate cost of a netlist.
///
/// Area and power sum per-gate unit areas; delay is the longest
/// input-to-output path with per-gate unit delays.
///
/// # Example
///
/// ```
/// use axcircuit::{approx, cost};
///
/// # fn main() -> Result<(), axcircuit::CircuitError> {
/// let exact = approx::exact_unsigned(8)?;
/// let bam = approx::broken_array_unsigned(8, 8, 0)?;
/// let (ce, cb) = (cost::evaluate(&exact), cost::evaluate(&bam));
/// assert!(cb.area < ce.area, "approximation must save area");
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn evaluate(nl: &Netlist) -> HardwareCost {
    let mut area = 0.0;
    let mut gates = 0;
    let n_inputs = nl.n_inputs() as usize;
    let mut arrival = vec![0.0f64; n_inputs + nl.n_gates()];
    for (i, g) in nl.gates().iter().enumerate() {
        let (a_cost, d_cost) = unit_cost(g.kind);
        area += a_cost;
        if !matches!(g.kind, GateKind::Const0 | GateKind::Const1 | GateKind::Buf) {
            gates += 1;
        }
        let ta = arrival[g.a.index()];
        let tb = if g.kind.arity() >= 2 {
            arrival[g.b.index()]
        } else {
            0.0
        };
        arrival[n_inputs + i] = ta.max(tb) + d_cost;
    }
    let delay = nl
        .outputs()
        .iter()
        .map(|o| arrival[o.index()])
        .fold(0.0f64, f64::max);
    HardwareCost {
        area,
        power: area,
        delay,
        gates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx;
    use crate::builder::MultiplierSpec;

    #[test]
    fn exact_8x8_cost_in_plausible_range() {
        let nl = MultiplierSpec::unsigned(8, 8).build().unwrap();
        let c = evaluate(&nl);
        // An 8x8 array multiplier has 64 AND cells plus ~56 adders;
        // unit-gate area should land in the few-hundreds.
        assert!(c.area > 100.0 && c.area < 1000.0, "area = {}", c.area);
        assert!(c.delay > 5.0, "delay = {}", c.delay);
        assert!(c.gates > 100);
    }

    #[test]
    fn approximation_strictly_cheaper() {
        let exact = evaluate(&approx::exact_unsigned(8).unwrap());
        let t2 = evaluate(&approx::truncated_unsigned(8, 2).unwrap());
        let t6 = evaluate(&approx::truncated_unsigned(8, 6).unwrap());
        assert!(t2.area < exact.area);
        assert!(t6.area < t2.area);
        assert!(t6.pdp() < exact.pdp());
    }

    #[test]
    fn empty_netlist_zero_cost() {
        let mut nl = Netlist::new(1);
        let y = nl.push1(GateKind::Buf, nl.input(0)).unwrap();
        nl.set_outputs(vec![y]).unwrap();
        let c = evaluate(&nl);
        assert_eq!(c.area, 0.0);
        assert_eq!(c.delay, 0.0);
        assert_eq!(c.gates, 0);
    }

    #[test]
    fn delay_tracks_depth_direction() {
        let small = evaluate(&MultiplierSpec::unsigned(4, 4).build().unwrap());
        let big = evaluate(&MultiplierSpec::unsigned(8, 8).build().unwrap());
        assert!(big.delay > small.delay);
    }
}
