use std::fmt;

/// Errors produced when constructing or evaluating a [`crate::Netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A gate referenced a net that does not exist yet.
    ///
    /// Gates may only reference primary inputs or the outputs of gates
    /// created earlier, which keeps the netlist topologically ordered by
    /// construction.
    DanglingNet {
        /// The offending net id.
        net: u32,
        /// Number of nets defined at the time of the reference.
        defined: u32,
    },
    /// The number of input values supplied to evaluation does not match the
    /// number of primary inputs.
    InputArity {
        /// Inputs the netlist expects.
        expected: usize,
        /// Inputs the caller supplied.
        got: usize,
    },
    /// An operand word does not fit in the declared bit-width.
    OperandWidth {
        /// Index of the operand.
        operand: usize,
        /// Declared width in bits.
        width: u32,
        /// The value that did not fit.
        value: u64,
    },
    /// A bit-width outside the supported range was requested.
    UnsupportedWidth {
        /// The requested width.
        width: u32,
        /// Largest supported width for this operation.
        max: u32,
    },
    /// The netlist has no outputs, so evaluation would be meaningless.
    NoOutputs,
    /// A textual netlist line could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A textual netlist referenced a net that is not defined at that
    /// point — a dangling name, a forward reference, or a cycle (the
    /// format is definition-ordered, so any reference to a net defined
    /// later is indistinguishable from a cycle and equally rejected).
    UndefinedNet {
        /// 1-based line number of the offending reference.
        line: usize,
        /// The net name that was referenced.
        name: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::DanglingNet { net, defined } => write!(
                f,
                "gate references net {net} but only {defined} nets are defined"
            ),
            CircuitError::InputArity { expected, got } => {
                write!(f, "expected {expected} input values, got {got}")
            }
            CircuitError::OperandWidth {
                operand,
                width,
                value,
            } => write!(
                f,
                "operand {operand} value {value} does not fit in {width} bits"
            ),
            CircuitError::UnsupportedWidth { width, max } => {
                write!(f, "width {width} unsupported (maximum {max})")
            }
            CircuitError::NoOutputs => write!(f, "netlist has no outputs"),
            CircuitError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            CircuitError::UndefinedNet { line, name } => write!(
                f,
                "line {line} references net '{name}' which is not defined at that point \
                 (dangling, forward or cyclic reference)"
            ),
        }
    }
}

impl std::error::Error for CircuitError {}
