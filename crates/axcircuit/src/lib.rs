//! Gate-level combinational circuit substrate.
//!
//! The TFApprox paper emulates *approximate arithmetic circuits* — concretely,
//! 8-bit approximate multipliers used in the MAC datapath of a DNN hardware
//! accelerator. Those circuits originate as gate-level designs (e.g. the
//! EvoApprox8b library). This crate provides the hardware side of the
//! reproduction:
//!
//! - [`Netlist`]: a combinational netlist of two-input gates with
//!   bit-parallel (64-way) evaluation,
//! - [`builder`]: generators for half/full adders, ripple-carry adders and
//!   carry-save **array multipliers**,
//! - [`approx`]: circuit approximation transforms (partial-product
//!   truncation and the broken-array multiplier),
//! - [`cost`]: a unit-gate area / power / delay model so every multiplier
//!   comes with a hardware cost estimate,
//! - [`truth`]: exhaustive truth-table extraction (the 2¹⁶-entry tables the
//!   paper stores in GPU texture memory),
//! - [`text`]: a BLIF-like textual netlist format, so externally designed
//!   multipliers (EvoApprox-style) can be brought in without writing Rust.
//!
//! # Example
//!
//! ```
//! use axcircuit::builder::MultiplierSpec;
//!
//! # fn main() -> Result<(), axcircuit::CircuitError> {
//! // An exact 8x8 unsigned array multiplier...
//! let exact = MultiplierSpec::unsigned(8, 8).build()?;
//! // ...behaves like `*`:
//! let out = exact.eval_words(&[13, 11])?;
//! assert_eq!(out, 143);
//! # Ok(())
//! # }
//! ```

pub mod approx;
pub mod builder;
pub mod cost;
pub mod dot;
pub mod equiv;
pub mod gate;
pub mod netlist;
pub mod text;
pub mod truth;

mod error;

pub use error::CircuitError;
pub use gate::{Gate, GateKind, NetId};
pub use netlist::Netlist;
