//! Exhaustive combinational equivalence checking.
//!
//! Approximate-circuit work constantly asks "are these two netlists the
//! same function?" — e.g. an optimized multiplier against its reference,
//! or a BAM with zero break levels against the exact array. For the
//! operand widths used here (≤ 24 input bits) exhaustive bit-parallel
//! simulation is fast and complete, so no SAT machinery is needed.

use crate::{CircuitError, Netlist};

/// Result of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Equivalence {
    /// The netlists agree on every input.
    Equal,
    /// First differing input (as a packed input index) and the two output
    /// words produced there.
    Differs {
        /// Packed input index (operand 0 in the low bits).
        input: u64,
        /// Output word of the first netlist.
        left: u64,
        /// Output word of the second netlist.
        right: u64,
    },
}

impl Equivalence {
    /// Whether the check succeeded.
    #[must_use]
    pub fn is_equal(&self) -> bool {
        matches!(self, Equivalence::Equal)
    }
}

/// Exhaustively compare two netlists with identical input counts.
///
/// Outputs are compared LSB-first up to the shorter output vector; extra
/// output bits of the longer netlist must be constant zero (this lets a
/// truncated-output variant be compared against a full-width reference).
///
/// # Errors
///
/// - [`CircuitError::InputArity`] if the input counts differ.
/// - [`CircuitError::UnsupportedWidth`] if the input space exceeds 2²⁴.
/// - Propagates evaluation errors.
pub fn check(a: &Netlist, b: &Netlist) -> Result<Equivalence, CircuitError> {
    if a.n_inputs() != b.n_inputs() {
        return Err(CircuitError::InputArity {
            expected: a.n_inputs() as usize,
            got: b.n_inputs() as usize,
        });
    }
    let total = a.n_inputs();
    if total > 24 {
        return Err(CircuitError::UnsupportedWidth {
            width: total,
            max: 24,
        });
    }
    let n = 1u64 << total;
    let mut lanes = vec![0u64; total as usize];
    let mut base = 0u64;
    while base < n {
        let lanes_used = 64u64.min(n - base) as usize;
        for (k, lane) in lanes.iter_mut().enumerate() {
            let mut v = 0u64;
            for l in 0..lanes_used {
                if ((base + l as u64) >> k) & 1 == 1 {
                    v |= 1 << l;
                }
            }
            *lane = v;
        }
        let oa = a.eval_lanes(&lanes)?;
        let ob = b.eval_lanes(&lanes)?;
        for l in 0..lanes_used {
            let wa = pack_outputs(&oa, l);
            let wb = pack_outputs(&ob, l);
            if wa != wb {
                return Ok(Equivalence::Differs {
                    input: base + l as u64,
                    left: wa,
                    right: wb,
                });
            }
        }
        base += 64;
    }
    Ok(Equivalence::Equal)
}

fn pack_outputs(lanes: &[u64], lane: usize) -> u64 {
    let mut w = 0u64;
    for (bit, &v) in lanes.iter().enumerate() {
        if (v >> lane) & 1 == 1 {
            w |= 1 << bit;
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{CellDrop, MultiplierSpec, Reduction};

    #[test]
    fn multiplier_equals_itself() {
        let a = MultiplierSpec::unsigned(4, 4).build().unwrap();
        assert!(check(&a, &a).unwrap().is_equal());
    }

    #[test]
    fn ripple_and_dadda_reductions_equivalent() {
        let a = MultiplierSpec::unsigned(6, 6).build().unwrap();
        let b = MultiplierSpec::unsigned(6, 6)
            .with_reduction(Reduction::Dadda)
            .build()
            .unwrap();
        assert!(check(&a, &b).unwrap().is_equal());
    }

    #[test]
    fn bam_with_zero_breaks_equals_exact() {
        let exact = MultiplierSpec::unsigned(5, 5).build().unwrap();
        let bam = MultiplierSpec::unsigned(5, 5)
            .with_drop(CellDrop::BrokenArray { vbl: 0, hbl: 0 })
            .build()
            .unwrap();
        assert!(check(&exact, &bam).unwrap().is_equal());
    }

    #[test]
    fn truncated_differs_with_witness() {
        let exact = MultiplierSpec::unsigned(4, 4).build().unwrap();
        let trunc = MultiplierSpec::unsigned(4, 4)
            .with_drop(CellDrop::LsbColumns(3))
            .build()
            .unwrap();
        match check(&exact, &trunc).unwrap() {
            Equivalence::Differs { input, left, right } => {
                // Verify the witness is real.
                let a = input & 0xF;
                let b = (input >> 4) & 0xF;
                assert_eq!(exact.eval_words(&[a, b]).unwrap(), left);
                assert_eq!(trunc.eval_words(&[a, b]).unwrap(), right);
                assert_ne!(left, right);
            }
            Equivalence::Equal => panic!("truncation must differ"),
        }
    }

    #[test]
    fn mismatched_inputs_rejected() {
        let a = MultiplierSpec::unsigned(4, 4).build().unwrap();
        let b = MultiplierSpec::unsigned(4, 5).build().unwrap();
        assert!(check(&a, &b).is_err());
    }
}
