//! Textual netlist format: a BLIF-like, definition-ordered gate listing.
//!
//! TFApprox users bring their own approximate multipliers as gate-level
//! designs (the EvoApprox library ships C/Verilog netlists). This module
//! provides the textual interchange format the compile pipeline parses:
//!
//! ```text
//! # 2-bit bitwise AND, for illustration.
//! .model tiny_and
//! .operands 2 2
//! .gate and y0 = a0 b0
//! .gate and y1 = a1 b1
//! .outputs y0 y1
//! .end
//! ```
//!
//! Rules:
//!
//! - `#` starts a comment (to end of line); blank lines are ignored.
//! - `.model <name>` — optional, at most once, before `.operands`.
//! - `.operands <w0> <w1> ...` — required, once, before any gate. Declares
//!   the integer operands. Each operand's bits become implicitly-defined
//!   input nets named by the operand letter (`a`, `b`, `c`, … in declaration
//!   order, at most 26 operands) followed by the bit index, LSB first:
//!   `a0` is bit 0 of operand 0, `b3` is bit 3 of operand 1.
//! - `.gate <kind> <dst> = <src...>` — defines net `<dst>` as the output of
//!   a gate. `<kind>` is one of `const0`, `const1`, `buf`, `not`, `and`,
//!   `or`, `xor`, `nand`, `nor`, `xnor`, `andnot`; the number of sources
//!   must match the gate's arity (0, 1 or 2). Sources may only reference
//!   nets defined **earlier** — the format is definition-ordered, so a
//!   forward reference is indistinguishable from a combinational cycle and
//!   both are rejected with [`CircuitError::UndefinedNet`].
//! - `.outputs <net...>` — required, once, after all gates. LSB first.
//! - `.end` — optional terminator; nothing may follow it.
//!
//! Net names are identifiers (`[A-Za-z_][A-Za-z0-9_]*`). Defining the same
//! name twice (including shadowing an implicit input) is an error.
//!
//! [`format()`] emits canonical names (inputs by operand letter + bit, gate
//! nets as `n<net-index>`), so `parse(&format(&nl, m))` reconstructs a
//! [`Netlist`] structurally equal to `nl` for netlists built through the
//! canonical constructors (`push`/`push1`/`const0`/`const1`), which all of
//! this crate's generators use.

use crate::{CircuitError, GateKind, NetId, Netlist};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Maximum number of operands the implicit `a`/`b`/`c`… naming supports.
pub const MAX_OPERANDS: usize = 26;

fn parse_err(line: usize, message: impl Into<String>) -> CircuitError {
    CircuitError::Parse {
        line,
        message: message.into(),
    }
}

fn is_identifier(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn gate_kind_of(token: &str) -> Option<GateKind> {
    Some(match token {
        "const0" => GateKind::Const0,
        "const1" => GateKind::Const1,
        "buf" => GateKind::Buf,
        "not" => GateKind::Not,
        "and" => GateKind::And,
        "or" => GateKind::Or,
        "xor" => GateKind::Xor,
        "nand" => GateKind::Nand,
        "nor" => GateKind::Nor,
        "xnor" => GateKind::Xnor,
        "andnot" => GateKind::AndNot,
        _ => return None,
    })
}

/// Canonical name of bit `bit` of operand `op`: letter + bit index.
fn input_name(op: usize, bit: u32) -> String {
    let letter = (b'a' + op as u8) as char;
    format!("{letter}{bit}")
}

/// Parse a textual netlist.
///
/// # Errors
///
/// - [`CircuitError::Parse`] for malformed syntax: unknown directives or
///   gate kinds, wrong token counts, bad identifiers, duplicate net
///   definitions, missing or repeated `.operands`/`.outputs`, content after
///   `.end`, operand counts outside `1..=26`.
/// - [`CircuitError::UndefinedNet`] when a gate source or output references
///   a name not defined at that point (dangling, forward or cyclic).
pub fn parse(src: &str) -> Result<Netlist, CircuitError> {
    let mut model_seen = false;
    let mut netlist: Option<Netlist> = None;
    let mut names: HashMap<String, NetId> = HashMap::new();
    let mut outputs_seen = false;
    let mut end_seen = false;
    let mut n_lines = 0usize;

    for (idx, raw) in src.lines().enumerate() {
        let line = idx + 1;
        n_lines = line;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        if end_seen {
            return Err(parse_err(line, "content after .end"));
        }
        let tokens: Vec<&str> = text.split_whitespace().collect();
        match tokens[0] {
            ".model" => {
                if model_seen {
                    return Err(parse_err(line, "duplicate .model directive"));
                }
                if netlist.is_some() {
                    return Err(parse_err(line, ".model must precede .operands"));
                }
                if tokens.len() != 2 {
                    return Err(parse_err(line, ".model takes exactly one name"));
                }
                model_seen = true;
            }
            ".operands" => {
                if netlist.is_some() {
                    return Err(parse_err(line, "duplicate .operands directive"));
                }
                let widths: Vec<u32> = tokens[1..]
                    .iter()
                    .map(|t| {
                        t.parse::<u32>()
                            .map_err(|_| parse_err(line, format!("invalid operand width '{t}'")))
                    })
                    .collect::<Result<_, _>>()?;
                if widths.is_empty() || widths.len() > MAX_OPERANDS {
                    return Err(parse_err(
                        line,
                        format!(".operands takes 1..={MAX_OPERANDS} widths"),
                    ));
                }
                if widths
                    .iter()
                    .try_fold(0u32, |s, &w| s.checked_add(w))
                    .is_none()
                {
                    return Err(parse_err(line, "total input width overflows"));
                }
                let nl = Netlist::with_operands(&widths);
                for (op, &width) in widths.iter().enumerate() {
                    for bit in 0..width {
                        names.insert(input_name(op, bit), nl.operand_bit(op, bit));
                    }
                }
                netlist = Some(nl);
            }
            ".gate" => {
                let nl = netlist
                    .as_mut()
                    .ok_or_else(|| parse_err(line, ".gate before .operands"))?;
                if outputs_seen {
                    return Err(parse_err(line, ".gate after .outputs"));
                }
                if tokens.len() < 4 || tokens[3] != "=" {
                    return Err(parse_err(line, "expected '.gate <kind> <dst> = <src...>'"));
                }
                let kind = gate_kind_of(tokens[1])
                    .ok_or_else(|| parse_err(line, format!("unknown gate kind '{}'", tokens[1])))?;
                let dst = tokens[2];
                if !is_identifier(dst) {
                    return Err(parse_err(line, format!("invalid net name '{dst}'")));
                }
                if names.contains_key(dst) {
                    return Err(parse_err(line, format!("net '{dst}' is already defined")));
                }
                let srcs = &tokens[4..];
                if srcs.len() != kind.arity() {
                    return Err(parse_err(
                        line,
                        format!(
                            "gate '{}' takes {} source(s), got {}",
                            tokens[1],
                            kind.arity(),
                            srcs.len()
                        ),
                    ));
                }
                let resolve = |name: &str| -> Result<NetId, CircuitError> {
                    names.get(name).copied().ok_or(CircuitError::UndefinedNet {
                        line,
                        name: name.to_string(),
                    })
                };
                let id = match kind.arity() {
                    0 => nl.push(kind, NetId(0), NetId(0))?,
                    1 => nl.push1(kind, resolve(srcs[0])?)?,
                    _ => nl.push(kind, resolve(srcs[0])?, resolve(srcs[1])?)?,
                };
                names.insert(dst.to_string(), id);
            }
            ".outputs" => {
                let nl = netlist
                    .as_mut()
                    .ok_or_else(|| parse_err(line, ".outputs before .operands"))?;
                if outputs_seen {
                    return Err(parse_err(line, "duplicate .outputs directive"));
                }
                if tokens.len() < 2 {
                    return Err(parse_err(line, ".outputs needs at least one net"));
                }
                let outs: Vec<NetId> = tokens[1..]
                    .iter()
                    .map(|name| {
                        names.get(*name).copied().ok_or(CircuitError::UndefinedNet {
                            line,
                            name: (*name).to_string(),
                        })
                    })
                    .collect::<Result<_, _>>()?;
                nl.set_outputs(outs)?;
                outputs_seen = true;
            }
            ".end" => {
                if tokens.len() != 1 {
                    return Err(parse_err(line, ".end takes no arguments"));
                }
                end_seen = true;
            }
            other => {
                return Err(parse_err(line, format!("unknown directive '{other}'")));
            }
        }
    }

    let nl = netlist.ok_or_else(|| parse_err(n_lines.max(1), "missing .operands directive"))?;
    if !outputs_seen {
        return Err(parse_err(n_lines.max(1), "missing .outputs directive"));
    }
    Ok(nl)
}

/// Render a netlist in the textual format with canonical net names.
///
/// Inputs are named by operand letter + bit index; gate outputs are named
/// `n<net-index>`. The result parses back to a structurally equal netlist
/// for canonically constructed circuits (see the module docs). `model` is
/// emitted as the `.model` name when non-empty.
#[must_use]
pub fn format(nl: &Netlist, model: &str) -> String {
    let mut names: Vec<String> = Vec::with_capacity(nl.n_nets() as usize);
    for (op, &width) in nl.operand_widths().iter().enumerate() {
        for bit in 0..width {
            names.push(input_name(op, bit));
        }
    }
    for i in nl.n_inputs()..nl.n_nets() {
        names.push(format!("n{i}"));
    }

    let mut out = String::new();
    if !model.is_empty() {
        let _ = writeln!(out, ".model {model}");
    }
    let widths: Vec<String> = nl.operand_widths().iter().map(u32::to_string).collect();
    let _ = writeln!(out, ".operands {}", widths.join(" "));
    let base = nl.n_inputs() as usize;
    for (i, g) in nl.gates().iter().enumerate() {
        let dst = &names[base + i];
        match g.kind.arity() {
            0 => {
                let _ = writeln!(out, ".gate {} {dst} =", g.kind);
            }
            1 => {
                let _ = writeln!(out, ".gate {} {dst} = {}", g.kind, names[g.a.index()]);
            }
            _ => {
                let _ = writeln!(
                    out,
                    ".gate {} {dst} = {} {}",
                    g.kind,
                    names[g.a.index()],
                    names[g.b.index()]
                );
            }
        }
    }
    let outs: Vec<&str> = nl
        .outputs()
        .iter()
        .map(|o| names[o.index()].as_str())
        .collect();
    let _ = writeln!(out, ".outputs {}", outs.join(" "));
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx;
    use crate::builder::MultiplierSpec;
    use crate::truth::TruthTable;
    use proptest::{prop_assert_eq, proptest, ProptestConfig};

    const TINY_AND: &str = "\
# 2-bit bitwise AND.
.model tiny_and
.operands 2 2
.gate and y0 = a0 b0
.gate and y1 = a1 b1
.outputs y0 y1
.end
";

    #[test]
    fn parses_and_evaluates() {
        let nl = parse(TINY_AND).unwrap();
        assert_eq!(nl.operand_widths(), &[2, 2]);
        assert_eq!(nl.n_gates(), 2);
        assert_eq!(nl.eval_words(&[0b11, 0b10]).unwrap(), 0b10);
    }

    #[test]
    fn round_trips_exact_multiplier() {
        let nl = MultiplierSpec::unsigned(4, 4).build().unwrap();
        let text = format(&nl, "mul4x4");
        let reparsed = parse(&text).unwrap();
        assert_eq!(reparsed, nl);
    }

    #[test]
    fn round_trips_approx_generators() {
        for nl in [
            approx::exact_unsigned(8).unwrap(),
            approx::truncated_unsigned(8, 3).unwrap(),
            approx::broken_array_unsigned(8, 5, 2).unwrap(),
            approx::exact_signed(8).unwrap(),
        ] {
            let reparsed = parse(&format(&nl, "m")).unwrap();
            assert_eq!(reparsed, nl);
        }
    }

    #[test]
    fn parsed_netlist_matches_builder_truth_table() {
        let nl = MultiplierSpec::unsigned(4, 4).build().unwrap();
        let reparsed = parse(&format(&nl, "")).unwrap();
        let tt = TruthTable::from_netlist(&reparsed).unwrap();
        for a in 0u32..16 {
            for b in 0u32..16 {
                assert_eq!(tt.lookup(a, b), a * b);
            }
        }
    }

    #[test]
    fn forward_reference_rejected_as_cycle() {
        // `y` references `z`, defined one line later: in a
        // definition-ordered format this is exactly a cycle.
        let src = "\
.operands 1 1
.gate and y = a0 z
.gate and z = b0 y
.outputs y
";
        let err = parse(src).unwrap_err();
        assert_eq!(
            err,
            CircuitError::UndefinedNet {
                line: 2,
                name: "z".into()
            }
        );
    }

    #[test]
    fn malformed_corpus_yields_typed_errors() {
        // Each entry: (source, line the error must point at, substring of
        // the Display message). None of these may panic.
        let corpus: &[(&str, usize, &str)] = &[
            ("", 1, "missing .operands"),
            (
                ".operands 2 2\n.gate and y = a0 b0\n",
                2,
                "missing .outputs",
            ),
            (".gate and y = a0 b0\n", 1, ".gate before .operands"),
            (".outputs y\n", 1, ".outputs before .operands"),
            (".operands\n", 1, ".operands takes"),
            (".operands 2 x\n", 1, "invalid operand width 'x'"),
            (".operands 2 2\n.operands 2 2\n", 2, "duplicate .operands"),
            (".model a\n.model b\n", 2, "duplicate .model"),
            (".model two words\n", 1, "exactly one name"),
            (".operands 2\n.model late\n", 2, "precede .operands"),
            (
                ".operands 2\n.gate frob y = a0\n",
                2,
                "unknown gate kind 'frob'",
            ),
            (".operands 2\n.gate and y a0 b0\n", 2, "expected '.gate"),
            (
                ".operands 2\n.gate and y = a0\n",
                2,
                "takes 2 source(s), got 1",
            ),
            (
                ".operands 2\n.gate not y = a0 a1\n",
                2,
                "takes 1 source(s), got 2",
            ),
            (
                ".operands 2\n.gate const1 y = a0\n",
                2,
                "takes 0 source(s), got 1",
            ),
            (".operands 2\n.gate and a1 = a0 a0\n", 2, "already defined"),
            (
                ".operands 2\n.gate and y = a0 a0\n.gate or y = a0 a1\n",
                3,
                "already defined",
            ),
            (
                ".operands 2\n.gate and 9y = a0 a0\n",
                2,
                "invalid net name '9y'",
            ),
            (
                ".operands 2\n.outputs a0\n.gate and y = a0 a1\n",
                3,
                ".gate after .outputs",
            ),
            (
                ".operands 2\n.outputs a0\n.outputs a1\n",
                3,
                "duplicate .outputs",
            ),
            (".operands 2\n.outputs\n", 2, ".outputs needs at least one"),
            (
                ".operands 2\n.outputs a0\n.end\n.operands 2\n",
                4,
                "content after .end",
            ),
            (
                ".operands 2\n.outputs a0\n.end now\n",
                3,
                ".end takes no arguments",
            ),
            (".operands 2\n.wires y\n", 2, "unknown directive '.wires'"),
            ("garbage line\n", 1, "unknown directive 'garbage'"),
        ];
        for (src, want_line, want_msg) in corpus {
            let err = parse(src).unwrap_err();
            match &err {
                CircuitError::Parse { line, .. } => {
                    assert_eq!(line, want_line, "wrong line for {src:?}: {err}")
                }
                other => panic!("expected Parse error for {src:?}, got {other:?}"),
            }
            let msg = err.to_string();
            assert!(
                msg.contains(want_msg),
                "error for {src:?} was '{msg}', expected to contain '{want_msg}'"
            );
        }
    }

    #[test]
    fn dangling_references_are_typed() {
        let cases: &[(&str, usize, &str)] = &[
            (".operands 2\n.gate and y = a0 zz\n", 2, "zz"),
            (".operands 2\n.gate not y = qq\n", 2, "qq"),
            (".operands 2\n.outputs nowhere\n", 2, "nowhere"),
            // Out-of-range bit index on an implicit input name.
            (".operands 2\n.gate and y = a0 a5\n", 2, "a5"),
            // Operand letter beyond the declared operand count.
            (".operands 2 2\n.gate and y = a0 c0\n", 2, "c0"),
        ];
        for (src, want_line, want_name) in cases {
            let err = parse(src).unwrap_err();
            assert_eq!(
                err,
                CircuitError::UndefinedNet {
                    line: *want_line,
                    name: (*want_name).to_string()
                },
                "for {src:?}"
            );
        }
    }

    #[test]
    fn operand_count_limit_enforced() {
        let widths = vec!["1"; MAX_OPERANDS + 1].join(" ");
        let src = std::format!(".operands {widths}\n.outputs a0\n");
        let err = parse(&src);
        assert!(matches!(err, Err(CircuitError::Parse { line: 1, .. })));
    }

    /// Build a canonical netlist from raw sampled data: widths pick the
    /// operand shape, each (kind, a, b) triple is mapped onto the currently
    /// defined nets, outputs are a non-empty selection of all nets.
    fn netlist_from_raw(widths: &[u32], gates: &[(u8, u16, u16)], out_sel: &[u16]) -> Netlist {
        const KINDS: [GateKind; 11] = [
            GateKind::Const0,
            GateKind::Const1,
            GateKind::Buf,
            GateKind::Not,
            GateKind::And,
            GateKind::Or,
            GateKind::Xor,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xnor,
            GateKind::AndNot,
        ];
        let mut nl = Netlist::with_operands(widths);
        let mut defined: Vec<NetId> = (0..nl.n_inputs()).map(|i| nl.input(i)).collect();
        for &(k, a, b) in gates {
            let kind = KINDS[k as usize % KINDS.len()];
            let id = match kind.arity() {
                0 => {
                    if kind == GateKind::Const0 {
                        nl.const0().unwrap()
                    } else {
                        nl.const1().unwrap()
                    }
                }
                1 => {
                    let src = defined[a as usize % defined.len()];
                    nl.push1(kind, src).unwrap()
                }
                _ => {
                    let sa = defined[a as usize % defined.len()];
                    let sb = defined[b as usize % defined.len()];
                    nl.push(kind, sa, sb).unwrap()
                }
            };
            defined.push(id);
        }
        let outs: Vec<NetId> = out_sel
            .iter()
            .map(|&s| defined[s as usize % defined.len()])
            .collect();
        nl.set_outputs(outs).unwrap();
        nl
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn format_parse_round_trip(
            widths in proptest::collection::vec(1u32..5, 1..4),
            gates in proptest::collection::vec((0u8..11, 0u16..512, 0u16..512), 1..40),
            out_sel in proptest::collection::vec(0u16..512, 1..9),
        ) {
            let nl = netlist_from_raw(&widths, &gates, &out_sel);
            let text = format(&nl, "roundtrip");
            let reparsed = parse(&text).unwrap();
            prop_assert_eq!(&reparsed, &nl);
            // And the reparsed netlist evaluates identically on a probe.
            let probe: Vec<u64> = (0..nl.n_inputs() as usize)
                .map(|i| 0x9E37_79B9_7F4A_7C15u64.rotate_left(i as u32 * 7))
                .collect();
            prop_assert_eq!(
                reparsed.eval_lanes(&probe).unwrap(),
                nl.eval_lanes(&probe).unwrap()
            );
        }
    }
}
