//! Graphviz DOT export for netlists.
//!
//! Small approximate circuits are routinely inspected visually; this
//! export renders inputs as boxes, gates as ellipses labeled with their
//! function, and outputs as double circles.

use crate::{GateKind, Netlist};
use std::fmt::Write as _;

/// Render a netlist as a Graphviz DOT digraph.
///
/// # Example
///
/// ```
/// use axcircuit::builder::MultiplierSpec;
///
/// # fn main() -> Result<(), axcircuit::CircuitError> {
/// let nl = MultiplierSpec::unsigned(2, 2).build()?;
/// let dot = axcircuit::dot::to_dot(&nl, "mul2x2");
/// assert!(dot.starts_with("digraph mul2x2 {"));
/// assert!(dot.contains("and"));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn to_dot(nl: &Netlist, name: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph {name} {{");
    let _ = writeln!(s, "  rankdir=LR;");
    for i in 0..nl.n_inputs() {
        let _ = writeln!(s, "  n{i} [shape=box, label=\"in{i}\"];");
    }
    let base = nl.n_inputs();
    for (i, g) in nl.gates().iter().enumerate() {
        let id = base + i as u32;
        let _ = writeln!(s, "  n{id} [shape=ellipse, label=\"{}\"];", g.kind);
        match g.kind.arity() {
            0 => {}
            1 => {
                let _ = writeln!(s, "  n{} -> n{id};", g.a.index());
            }
            _ => {
                let _ = writeln!(s, "  n{} -> n{id};", g.a.index());
                let _ = writeln!(s, "  n{} -> n{id};", g.b.index());
            }
        }
    }
    for (bit, o) in nl.outputs().iter().enumerate() {
        let _ = writeln!(s, "  out{bit} [shape=doublecircle, label=\"p{bit}\"];");
        let _ = writeln!(s, "  n{} -> out{bit};", o.index());
    }
    let _ = writeln!(s, "}}");
    s
}

/// Histogram of gate kinds in a netlist — the standard-cell usage report.
#[must_use]
pub fn gate_histogram(nl: &Netlist) -> Vec<(GateKind, usize)> {
    let mut counts: Vec<(GateKind, usize)> = Vec::new();
    for g in nl.gates() {
        if let Some(entry) = counts.iter_mut().find(|(k, _)| *k == g.kind) {
            entry.1 += 1;
        } else {
            counts.push((g.kind, 1));
        }
    }
    counts.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MultiplierSpec;
    use crate::Netlist;

    #[test]
    fn dot_contains_all_nodes_and_outputs() {
        let nl = MultiplierSpec::unsigned(2, 2).build().unwrap();
        let dot = to_dot(&nl, "m");
        assert!(dot.contains("in0"));
        assert!(dot.contains("in3"));
        assert!(dot.contains("out3"));
        assert_eq!(dot.matches("shape=doublecircle").count(), 4);
    }

    #[test]
    fn histogram_counts_match_total() {
        let nl = MultiplierSpec::unsigned(4, 4).build().unwrap();
        let hist = gate_histogram(&nl);
        let total: usize = hist.iter().map(|(_, c)| c).sum();
        assert_eq!(total, nl.n_gates());
        // An array multiplier is AND-cell heavy.
        assert_eq!(hist[0].0, crate::GateKind::And);
    }

    #[test]
    fn empty_netlist_renders() {
        let mut nl = Netlist::new(1);
        let y = nl.push1(crate::GateKind::Buf, nl.input(0)).unwrap();
        nl.set_outputs(vec![y]).unwrap();
        let dot = to_dot(&nl, "wire");
        assert!(dot.contains("digraph wire"));
    }
}
