//! Primitive gates and net identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a net (a wire) inside a [`crate::Netlist`].
///
/// Nets `0..n_inputs` are the primary inputs; net `n_inputs + i` is driven by
/// gate `i`. `NetId`s are only meaningful relative to the netlist that issued
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Raw index of this net.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The kind of a primitive gate.
///
/// All gates have at most two inputs; unary gates ignore their second
/// operand. The set mirrors a typical standard-cell library subset used by
/// approximate-circuit libraries such as EvoApprox8b.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// Constant logic 0 (no inputs).
    Const0,
    /// Constant logic 1 (no inputs).
    Const1,
    /// Buffer: `y = a`.
    Buf,
    /// Inverter: `y = !a`.
    Not,
    /// `y = a & b`.
    And,
    /// `y = a | b`.
    Or,
    /// `y = a ^ b`.
    Xor,
    /// `y = !(a & b)`.
    Nand,
    /// `y = !(a | b)`.
    Nor,
    /// `y = !(a ^ b)`.
    Xnor,
    /// And-not: `y = a & !b` (useful for sign handling in subtractors).
    AndNot,
}

impl GateKind {
    /// Number of inputs this gate consumes (0, 1 or 2).
    #[must_use]
    pub fn arity(self) -> usize {
        match self {
            GateKind::Const0 | GateKind::Const1 => 0,
            GateKind::Buf | GateKind::Not => 1,
            GateKind::And
            | GateKind::Or
            | GateKind::Xor
            | GateKind::Nand
            | GateKind::Nor
            | GateKind::Xnor
            | GateKind::AndNot => 2,
        }
    }

    /// Apply the gate function on 64-bit lanes (bit-parallel evaluation).
    #[inline]
    #[must_use]
    pub fn apply_u64(self, a: u64, b: u64) -> u64 {
        match self {
            GateKind::Const0 => 0,
            GateKind::Const1 => u64::MAX,
            GateKind::Buf => a,
            GateKind::Not => !a,
            GateKind::And => a & b,
            GateKind::Or => a | b,
            GateKind::Xor => a ^ b,
            GateKind::Nand => !(a & b),
            GateKind::Nor => !(a | b),
            GateKind::Xnor => !(a ^ b),
            GateKind::AndNot => a & !b,
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Const0 => "const0",
            GateKind::Const1 => "const1",
            GateKind::Buf => "buf",
            GateKind::Not => "not",
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Xor => "xor",
            GateKind::Nand => "nand",
            GateKind::Nor => "nor",
            GateKind::Xnor => "xnor",
            GateKind::AndNot => "andnot",
        };
        f.write_str(s)
    }
}

/// One gate instance inside a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gate {
    /// The logic function.
    pub kind: GateKind,
    /// First operand net (ignored for constants).
    pub a: NetId,
    /// Second operand net (ignored for constants and unary gates).
    pub b: NetId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_kind() {
        assert_eq!(GateKind::Const0.arity(), 0);
        assert_eq!(GateKind::Not.arity(), 1);
        assert_eq!(GateKind::And.arity(), 2);
        assert_eq!(GateKind::AndNot.arity(), 2);
    }

    #[test]
    fn apply_u64_truth_tables() {
        let a = 0b1100u64;
        let b = 0b1010u64;
        assert_eq!(GateKind::And.apply_u64(a, b) & 0xF, 0b1000);
        assert_eq!(GateKind::Or.apply_u64(a, b) & 0xF, 0b1110);
        assert_eq!(GateKind::Xor.apply_u64(a, b) & 0xF, 0b0110);
        assert_eq!(GateKind::Nand.apply_u64(a, b) & 0xF, 0b0111);
        assert_eq!(GateKind::Nor.apply_u64(a, b) & 0xF, 0b0001);
        assert_eq!(GateKind::Xnor.apply_u64(a, b) & 0xF, 0b1001);
        assert_eq!(GateKind::AndNot.apply_u64(a, b) & 0xF, 0b0100);
        assert_eq!(GateKind::Not.apply_u64(a, 0) & 0xF, 0b0011);
        assert_eq!(GateKind::Buf.apply_u64(a, 0) & 0xF, 0b1100);
        assert_eq!(GateKind::Const0.apply_u64(a, b), 0);
        assert_eq!(GateKind::Const1.apply_u64(a, b), u64::MAX);
    }

    #[test]
    fn net_id_display() {
        assert_eq!(NetId(7).to_string(), "n7");
        assert_eq!(NetId(7).index(), 7);
    }
}
