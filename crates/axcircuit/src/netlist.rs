//! Combinational netlists with bit-parallel evaluation.

use crate::{CircuitError, Gate, GateKind, NetId};
use serde::{Deserialize, Serialize};

/// A combinational netlist of two-input gates.
///
/// The netlist is topologically ordered *by construction*: every gate may
/// only reference primary inputs or nets driven by earlier gates, which the
/// push methods enforce. Evaluation is therefore a single forward sweep.
///
/// Evaluation is bit-parallel: each net carries a `u64`, i.e. 64 independent
/// input vectors are evaluated at once. Exhaustively evaluating an 8×8
/// multiplier (2¹⁶ input combinations) thus needs only 1024 sweeps.
///
/// # Example
///
/// ```
/// use axcircuit::{Netlist, GateKind};
///
/// # fn main() -> Result<(), axcircuit::CircuitError> {
/// // y = a XOR b built from NAND gates.
/// let mut nl = Netlist::new(2);
/// let (a, b) = (nl.input(0), nl.input(1));
/// let nab = nl.push(GateKind::Nand, a, b)?;
/// let l = nl.push(GateKind::Nand, a, nab)?;
/// let r = nl.push(GateKind::Nand, b, nab)?;
/// let y = nl.push(GateKind::Nand, l, r)?;
/// nl.set_outputs(vec![y])?;
/// assert_eq!(nl.eval_bits(&[false, true])?, vec![true]);
/// assert_eq!(nl.eval_bits(&[true, true])?, vec![false]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Netlist {
    n_inputs: u32,
    gates: Vec<Gate>,
    outputs: Vec<NetId>,
    /// Operand bit-widths, most-significant operand last. Informational:
    /// used by `eval_words` to pack integer operands onto input nets.
    operand_widths: Vec<u32>,
}

impl Netlist {
    /// Create an empty netlist with `n_inputs` primary inputs.
    #[must_use]
    pub fn new(n_inputs: u32) -> Self {
        Netlist {
            n_inputs,
            gates: Vec::new(),
            outputs: Vec::new(),
            operand_widths: vec![n_inputs],
        }
    }

    /// Create a netlist whose primary inputs are grouped into integer
    /// operands of the given bit-widths (LSB-first within each operand).
    ///
    /// This enables [`Netlist::eval_words`], which packs/unpacks integers.
    #[must_use]
    pub fn with_operands(widths: &[u32]) -> Self {
        let n_inputs = widths.iter().sum();
        Netlist {
            n_inputs,
            gates: Vec::new(),
            outputs: Vec::new(),
            operand_widths: widths.to_vec(),
        }
    }

    /// Net id of primary input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_inputs`.
    #[must_use]
    pub fn input(&self, i: u32) -> NetId {
        assert!(
            i < self.n_inputs,
            "input {i} out of range {}",
            self.n_inputs
        );
        NetId(i)
    }

    /// Net id of bit `bit` of operand `op` (LSB-first).
    ///
    /// # Panics
    ///
    /// Panics if the operand or bit index is out of range.
    #[must_use]
    pub fn operand_bit(&self, op: usize, bit: u32) -> NetId {
        let base: u32 = self.operand_widths[..op].iter().sum();
        assert!(bit < self.operand_widths[op], "bit {bit} out of range");
        NetId(base + bit)
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn n_inputs(&self) -> u32 {
        self.n_inputs
    }

    /// Number of gates.
    #[must_use]
    pub fn n_gates(&self) -> usize {
        self.gates.len()
    }

    /// The declared operand widths.
    #[must_use]
    pub fn operand_widths(&self) -> &[u32] {
        &self.operand_widths
    }

    /// The gates, in topological order.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The output nets.
    #[must_use]
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Total number of nets (inputs + gate outputs).
    #[must_use]
    pub fn n_nets(&self) -> u32 {
        self.n_inputs + self.gates.len() as u32
    }

    fn check_net(&self, net: NetId) -> Result<(), CircuitError> {
        if net.0 < self.n_nets() {
            Ok(())
        } else {
            Err(CircuitError::DanglingNet {
                net: net.0,
                defined: self.n_nets(),
            })
        }
    }

    /// Append a gate and return the net it drives.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DanglingNet`] if an operand net is not yet
    /// defined (this preserves topological order).
    pub fn push(&mut self, kind: GateKind, a: NetId, b: NetId) -> Result<NetId, CircuitError> {
        if kind.arity() >= 1 {
            self.check_net(a)?;
        }
        if kind.arity() >= 2 {
            self.check_net(b)?;
        }
        let id = NetId(self.n_nets());
        self.gates.push(Gate { kind, a, b });
        Ok(id)
    }

    /// Append a unary gate.
    ///
    /// # Errors
    ///
    /// Same as [`Netlist::push`].
    pub fn push1(&mut self, kind: GateKind, a: NetId) -> Result<NetId, CircuitError> {
        self.push(kind, a, a)
    }

    /// Append a constant-0 net.
    ///
    /// # Errors
    ///
    /// Never fails in practice; `Result` kept for uniformity.
    pub fn const0(&mut self) -> Result<NetId, CircuitError> {
        self.push(GateKind::Const0, NetId(0), NetId(0))
    }

    /// Append a constant-1 net.
    ///
    /// # Errors
    ///
    /// Never fails in practice; `Result` kept for uniformity.
    pub fn const1(&mut self) -> Result<NetId, CircuitError> {
        self.push(GateKind::Const1, NetId(0), NetId(0))
    }

    /// Declare the output nets (LSB-first for integer results).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DanglingNet`] if any output net is undefined.
    pub fn set_outputs(&mut self, outputs: Vec<NetId>) -> Result<(), CircuitError> {
        for &net in &outputs {
            self.check_net(net)?;
        }
        self.outputs = outputs;
        Ok(())
    }

    /// Evaluate the netlist on 64 input vectors at once.
    ///
    /// `inputs[i]` carries 64 values of primary input `i` (one per bit
    /// lane). Returns one `u64` per output net.
    ///
    /// # Errors
    ///
    /// - [`CircuitError::InputArity`] if `inputs.len() != n_inputs`.
    /// - [`CircuitError::NoOutputs`] if no outputs are declared.
    pub fn eval_lanes(&self, inputs: &[u64]) -> Result<Vec<u64>, CircuitError> {
        if inputs.len() != self.n_inputs as usize {
            return Err(CircuitError::InputArity {
                expected: self.n_inputs as usize,
                got: inputs.len(),
            });
        }
        if self.outputs.is_empty() {
            return Err(CircuitError::NoOutputs);
        }
        let mut nets = vec![0u64; self.n_nets() as usize];
        nets[..inputs.len()].copy_from_slice(inputs);
        let base = self.n_inputs as usize;
        for (i, g) in self.gates.iter().enumerate() {
            let a = nets[g.a.index()];
            let b = nets[g.b.index()];
            nets[base + i] = g.kind.apply_u64(a, b);
        }
        Ok(self.outputs.iter().map(|o| nets[o.index()]).collect())
    }

    /// Evaluate on a single boolean input vector.
    ///
    /// # Errors
    ///
    /// Same as [`Netlist::eval_lanes`].
    pub fn eval_bits(&self, inputs: &[bool]) -> Result<Vec<bool>, CircuitError> {
        let lanes: Vec<u64> = inputs.iter().map(|&b| if b { 1 } else { 0 }).collect();
        let out = self.eval_lanes(&lanes)?;
        Ok(out.iter().map(|&w| w & 1 == 1).collect())
    }

    /// Evaluate with integer operands packed per [`Netlist::with_operands`]
    /// and return the outputs packed LSB-first into a `u64`.
    ///
    /// # Errors
    ///
    /// - [`CircuitError::InputArity`] if `words.len()` differs from the
    ///   number of declared operands.
    /// - [`CircuitError::OperandWidth`] if a word does not fit its width.
    /// - [`CircuitError::UnsupportedWidth`] if a declared operand width or
    ///   the output count exceeds 64 bits — the packed `u64` cannot carry
    ///   them, and silently truncating (which a release-mode shift
    ///   overflow would otherwise do) would corrupt results.
    /// - Propagates evaluation errors.
    pub fn eval_words(&self, words: &[u64]) -> Result<u64, CircuitError> {
        if words.len() != self.operand_widths.len() {
            return Err(CircuitError::InputArity {
                expected: self.operand_widths.len(),
                got: words.len(),
            });
        }
        if let Some(&wide) = self.operand_widths.iter().find(|&&w| w > 64) {
            return Err(CircuitError::UnsupportedWidth {
                width: wide,
                max: 64,
            });
        }
        if self.outputs.len() > 64 {
            return Err(CircuitError::UnsupportedWidth {
                width: self.outputs.len() as u32,
                max: 64,
            });
        }
        let mut lanes = Vec::with_capacity(self.n_inputs as usize);
        for (op, (&w, &width)) in words.iter().zip(&self.operand_widths).enumerate() {
            if width < 64 && w >> width != 0 {
                return Err(CircuitError::OperandWidth {
                    operand: op,
                    width,
                    value: w,
                });
            }
            for bit in 0..width {
                lanes.push(if (w >> bit) & 1 == 1 { u64::MAX } else { 0 });
            }
        }
        let out = self.eval_lanes(&lanes)?;
        let mut result = 0u64;
        for (bit, &lane) in out.iter().enumerate() {
            if lane & 1 == 1 {
                result |= 1 << bit;
            }
        }
        Ok(result)
    }

    /// Logic depth: the longest input-to-output path counted in gates
    /// (buffers and constants contribute 0).
    #[must_use]
    pub fn depth(&self) -> u32 {
        let mut level = vec![0u32; self.n_nets() as usize];
        let base = self.n_inputs as usize;
        for (i, g) in self.gates.iter().enumerate() {
            let cost = match g.kind {
                GateKind::Const0 | GateKind::Const1 | GateKind::Buf => 0,
                _ => 1,
            };
            let la = level[g.a.index()];
            let lb = if g.kind.arity() >= 2 {
                level[g.b.index()]
            } else {
                0
            };
            level[base + i] = la.max(lb) + cost;
        }
        self.outputs
            .iter()
            .map(|o| level[o.index()])
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_from_nand() -> Netlist {
        let mut nl = Netlist::new(2);
        let (a, b) = (nl.input(0), nl.input(1));
        let nab = nl.push(GateKind::Nand, a, b).unwrap();
        let l = nl.push(GateKind::Nand, a, nab).unwrap();
        let r = nl.push(GateKind::Nand, b, nab).unwrap();
        let y = nl.push(GateKind::Nand, l, r).unwrap();
        nl.set_outputs(vec![y]).unwrap();
        nl
    }

    #[test]
    fn xor_truth_table() {
        let nl = xor_from_nand();
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let out = nl.eval_bits(&[a, b]).unwrap();
            assert_eq!(out[0], a ^ b, "a={a} b={b}");
        }
    }

    #[test]
    fn dangling_net_rejected() {
        let mut nl = Netlist::new(1);
        let bogus = NetId(10);
        let err = nl.push(GateKind::And, nl.input(0), bogus).unwrap_err();
        assert!(matches!(err, CircuitError::DanglingNet { net: 10, .. }));
    }

    #[test]
    fn input_arity_checked() {
        let nl = xor_from_nand();
        let err = nl.eval_bits(&[true]).unwrap_err();
        assert!(matches!(
            err,
            CircuitError::InputArity {
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn no_outputs_is_error() {
        let nl = Netlist::new(2);
        let err = nl.eval_lanes(&[0, 0]).unwrap_err();
        assert_eq!(err, CircuitError::NoOutputs);
    }

    #[test]
    fn eval_words_packs_operands() {
        // 2-bit AND of two operands, bitwise.
        let mut nl = Netlist::with_operands(&[2, 2]);
        let y0 = nl
            .push(GateKind::And, nl.operand_bit(0, 0), nl.operand_bit(1, 0))
            .unwrap();
        let y1 = nl
            .push(GateKind::And, nl.operand_bit(0, 1), nl.operand_bit(1, 1))
            .unwrap();
        nl.set_outputs(vec![y0, y1]).unwrap();
        assert_eq!(nl.eval_words(&[0b11, 0b10]).unwrap(), 0b10);
        assert_eq!(nl.eval_words(&[0b01, 0b01]).unwrap(), 0b01);
    }

    #[test]
    fn eval_words_rejects_oversized_operand() {
        let mut nl = Netlist::with_operands(&[2, 2]);
        let y = nl
            .push(GateKind::And, nl.operand_bit(0, 0), nl.operand_bit(1, 0))
            .unwrap();
        nl.set_outputs(vec![y]).unwrap();
        let err = nl.eval_words(&[4, 0]).unwrap_err();
        assert!(matches!(err, CircuitError::OperandWidth { operand: 0, .. }));
    }

    #[test]
    fn eval_words_rejects_operand_width_over_64() {
        // A 65-bit operand cannot be packed into one u64; previously this
        // silently truncated (or overflowed the shift in debug builds).
        let mut nl = Netlist::with_operands(&[65, 2]);
        let y = nl
            .push(GateKind::And, nl.operand_bit(0, 0), nl.operand_bit(1, 0))
            .unwrap();
        nl.set_outputs(vec![y]).unwrap();
        let err = nl.eval_words(&[0, 0]).unwrap_err();
        assert_eq!(err, CircuitError::UnsupportedWidth { width: 65, max: 64 });
    }

    #[test]
    fn eval_words_rejects_more_than_64_outputs() {
        let mut nl = Netlist::with_operands(&[2, 2]);
        let y = nl
            .push(GateKind::And, nl.operand_bit(0, 0), nl.operand_bit(1, 0))
            .unwrap();
        nl.set_outputs(vec![y; 65]).unwrap();
        let err = nl.eval_words(&[0, 0]).unwrap_err();
        assert_eq!(err, CircuitError::UnsupportedWidth { width: 65, max: 64 });
    }

    #[test]
    fn depth_of_nand_xor_is_three() {
        let nl = xor_from_nand();
        assert_eq!(nl.depth(), 3);
    }

    #[test]
    fn constants_evaluate() {
        let mut nl = Netlist::new(1);
        let c0 = nl.const0().unwrap();
        let c1 = nl.const1().unwrap();
        nl.set_outputs(vec![c0, c1]).unwrap();
        let out = nl.eval_bits(&[true]).unwrap();
        assert_eq!(out, vec![false, true]);
    }

    #[test]
    fn bit_parallel_matches_scalar() {
        let nl = xor_from_nand();
        // Lane i encodes the pair (i & 1, i >> 1) for i in 0..4.
        let a = 0b0101u64;
        let b = 0b0011u64;
        let out = nl.eval_lanes(&[a, b]).unwrap()[0];
        for lane in 0..4u64 {
            let expect = ((a >> lane) & 1) ^ ((b >> lane) & 1);
            assert_eq!((out >> lane) & 1, expect);
        }
    }
}
