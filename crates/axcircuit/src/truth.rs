//! Exhaustive truth-table extraction.
//!
//! TFApprox represents every approximate multiplier by its complete truth
//! table — for an 8×8 multiplier, 2¹⁶ 16-bit entries (128 kB), indexed by
//! stitching the two 8-bit operands into one 16-bit value. This module
//! extracts that table from a gate-level [`Netlist`] using the bit-parallel
//! evaluator (64 input vectors per sweep).

use crate::{CircuitError, Netlist};

/// A complete truth table of a two-operand combinational circuit.
///
/// Entry `i` holds the output word for the input index `i`, where the index
/// packs operand 0 into the low bits and operand 1 above it — exactly the
/// "stitched" indexing TFApprox uses for its texture fetches
/// (`index = (b << width_a) | a`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruthTable {
    entries: Vec<u32>,
    width_a: u32,
    width_b: u32,
    width_out: u32,
}

impl TruthTable {
    /// Exhaustively evaluate a two-operand netlist.
    ///
    /// # Errors
    ///
    /// - [`CircuitError::InputArity`] if the netlist does not have exactly
    ///   two declared operands.
    /// - [`CircuitError::UnsupportedWidth`] if total input width exceeds 24
    ///   bits (16 M entries) or output width exceeds 32 bits.
    /// - Propagates evaluation errors.
    pub fn from_netlist(nl: &Netlist) -> Result<Self, CircuitError> {
        let widths = nl.operand_widths();
        if widths.len() != 2 {
            return Err(CircuitError::InputArity {
                expected: 2,
                got: widths.len(),
            });
        }
        let (wa, wb) = (widths[0], widths[1]);
        let total = wa + wb;
        if total > 24 {
            return Err(CircuitError::UnsupportedWidth {
                width: total,
                max: 24,
            });
        }
        let wout = nl.outputs().len() as u32;
        if wout > 32 {
            return Err(CircuitError::UnsupportedWidth {
                width: wout,
                max: 32,
            });
        }
        let n = 1usize << total;
        let mut entries = vec![0u32; n];
        // Bit-parallel sweep: 64 consecutive indices per evaluation. Input
        // bit `k` of lane `l` within a base index `base` is bit k of
        // (base + l).
        let mut lanes = vec![0u64; total as usize];
        let mut base = 0usize;
        while base < n {
            for (k, lane) in lanes.iter_mut().enumerate() {
                let mut v = 0u64;
                for l in 0..64usize.min(n - base) {
                    let idx = base + l;
                    if (idx >> k) & 1 == 1 {
                        v |= 1 << l;
                    }
                }
                *lane = v;
            }
            let out = nl.eval_lanes(&lanes)?;
            for l in 0..64usize.min(n - base) {
                let mut word = 0u32;
                for (bit, &ow) in out.iter().enumerate() {
                    if (ow >> l) & 1 == 1 {
                        word |= 1 << bit;
                    }
                }
                entries[base + l] = word;
            }
            base += 64;
        }
        Ok(TruthTable {
            entries,
            width_a: wa,
            width_b: wb,
            width_out: wout,
        })
    }

    /// Assemble a truth table from pre-computed entries.
    ///
    /// This is the admission path for sharded compilation: workers each
    /// fill a slice of the stitched index space, and the shards are stitched
    /// back together here. The entries must be indexed `(b << width_a) | a`,
    /// exactly as [`TruthTable::from_netlist`] produces them.
    ///
    /// # Errors
    ///
    /// - [`CircuitError::UnsupportedWidth`] if total input width exceeds 24
    ///   bits or output width exceeds 32 bits (same limits as
    ///   [`TruthTable::from_netlist`]).
    /// - [`CircuitError::InputArity`] if `entries.len()` is not exactly
    ///   `2^(width_a + width_b)`.
    pub fn from_parts(
        entries: Vec<u32>,
        width_a: u32,
        width_b: u32,
        width_out: u32,
    ) -> Result<Self, CircuitError> {
        let total = width_a + width_b;
        if total > 24 {
            return Err(CircuitError::UnsupportedWidth {
                width: total,
                max: 24,
            });
        }
        if width_out > 32 {
            return Err(CircuitError::UnsupportedWidth {
                width: width_out,
                max: 32,
            });
        }
        let expected = 1usize << total;
        if entries.len() != expected {
            return Err(CircuitError::InputArity {
                expected,
                got: entries.len(),
            });
        }
        Ok(TruthTable {
            entries,
            width_a,
            width_b,
            width_out,
        })
    }

    /// Width of operand 0 in bits.
    #[must_use]
    pub fn width_a(&self) -> u32 {
        self.width_a
    }

    /// Width of operand 1 in bits.
    #[must_use]
    pub fn width_b(&self) -> u32 {
        self.width_b
    }

    /// Output width in bits.
    #[must_use]
    pub fn width_out(&self) -> u32 {
        self.width_out
    }

    /// Number of entries (`2^(width_a + width_b)`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty (never true for a built table).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up by stitched index `(b << width_a) | a`.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<u32> {
        self.entries.get(index).copied()
    }

    /// Look up by operand pair.
    ///
    /// # Panics
    ///
    /// Panics if an operand exceeds its declared width.
    #[must_use]
    pub fn lookup(&self, a: u32, b: u32) -> u32 {
        assert!(a >> self.width_a == 0, "operand a out of range");
        assert!(b >> self.width_b == 0, "operand b out of range");
        self.entries[((b as usize) << self.width_a) | a as usize]
    }

    /// The raw entries, indexed by the stitched operand index.
    #[must_use]
    pub fn entries(&self) -> &[u32] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MultiplierSpec;

    #[test]
    fn exact_4x4_table_matches_multiplication() {
        let nl = MultiplierSpec::unsigned(4, 4).build().unwrap();
        let tt = TruthTable::from_netlist(&nl).unwrap();
        assert_eq!(tt.len(), 256);
        assert_eq!(tt.width_out(), 8);
        for a in 0u32..16 {
            for b in 0u32..16 {
                assert_eq!(tt.lookup(a, b), a * b, "{a}*{b}");
            }
        }
    }

    #[test]
    fn exact_8x8_table_matches_multiplication() {
        let nl = MultiplierSpec::unsigned(8, 8).build().unwrap();
        let tt = TruthTable::from_netlist(&nl).unwrap();
        assert_eq!(tt.len(), 65536);
        for (a, b) in [(0u32, 0u32), (255, 255), (200, 3), (17, 19), (128, 128)] {
            assert_eq!(tt.lookup(a, b), a * b);
        }
    }

    #[test]
    fn stitched_index_layout() {
        let nl = MultiplierSpec::unsigned(4, 4).build().unwrap();
        let tt = TruthTable::from_netlist(&nl).unwrap();
        // index = (b << 4) | a
        assert_eq!(tt.get((3 << 4) | 2).unwrap(), 6);
    }

    #[test]
    fn signed_8x8_table_two_complement() {
        let nl = MultiplierSpec::signed(8, 8).build().unwrap();
        let tt = TruthTable::from_netlist(&nl).unwrap();
        let cases: [(i32, i32); 5] = [(-128, -128), (-128, 127), (-1, -1), (0, -5), (100, -3)];
        for (x, y) in cases {
            let a = (x as u32) & 0xFF;
            let b = (y as u32) & 0xFF;
            let got = tt.lookup(a, b);
            let expect = ((x * y) as u32) & 0xFFFF;
            assert_eq!(got, expect, "{x}*{y}");
        }
    }

    #[test]
    fn oversized_inputs_rejected() {
        let nl = Netlist::with_operands(&[16, 16]);
        // Not even populated; width check fires first.
        let err = TruthTable::from_netlist(&nl).unwrap_err();
        assert!(matches!(err, CircuitError::UnsupportedWidth { .. }));
    }

    #[test]
    fn from_parts_round_trips_from_netlist() {
        let nl = MultiplierSpec::unsigned(4, 4).build().unwrap();
        let tt = TruthTable::from_netlist(&nl).unwrap();
        let rebuilt = TruthTable::from_parts(tt.entries().to_vec(), 4, 4, tt.width_out()).unwrap();
        assert_eq!(rebuilt, tt);
    }

    #[test]
    fn from_parts_validates_shape() {
        let err = TruthTable::from_parts(vec![0; 10], 4, 4, 8).unwrap_err();
        assert!(matches!(
            err,
            CircuitError::InputArity {
                expected: 256,
                got: 10
            }
        ));
        let err = TruthTable::from_parts(vec![0; 4], 13, 12, 8).unwrap_err();
        assert!(matches!(
            err,
            CircuitError::UnsupportedWidth { width: 25, max: 24 }
        ));
        let err = TruthTable::from_parts(vec![0; 256], 4, 4, 33).unwrap_err();
        assert!(matches!(
            err,
            CircuitError::UnsupportedWidth { width: 33, max: 32 }
        ));
    }
}
