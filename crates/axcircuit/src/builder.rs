//! Generators for arithmetic circuits: adders and array multipliers.
//!
//! The multiplier generator is *approximation aware*: a [`CellDrop`] mask
//! describes which partial-product cells are omitted, which is how classic
//! approximate multiplier families (truncated multipliers, the broken-array
//! multiplier) are derived from the exact array structure.

use crate::{CircuitError, GateKind, NetId, Netlist};
use serde::{Deserialize, Serialize};

/// Result of an n-bit adder: sum bits (LSB-first) and the carry-out.
#[derive(Debug, Clone)]
pub struct AdderOut {
    /// Sum bits, LSB first; same width as the operands.
    pub sum: Vec<NetId>,
    /// Carry out of the most significant position.
    pub carry: NetId,
}

/// Append a half adder; returns `(sum, carry)`.
///
/// # Errors
///
/// Returns [`CircuitError::DanglingNet`] if an operand is undefined.
pub fn half_adder(nl: &mut Netlist, a: NetId, b: NetId) -> Result<(NetId, NetId), CircuitError> {
    let sum = nl.push(GateKind::Xor, a, b)?;
    let carry = nl.push(GateKind::And, a, b)?;
    Ok((sum, carry))
}

/// Append a full adder; returns `(sum, carry)`.
///
/// # Errors
///
/// Returns [`CircuitError::DanglingNet`] if an operand is undefined.
pub fn full_adder(
    nl: &mut Netlist,
    a: NetId,
    b: NetId,
    c: NetId,
) -> Result<(NetId, NetId), CircuitError> {
    let ab = nl.push(GateKind::Xor, a, b)?;
    let sum = nl.push(GateKind::Xor, ab, c)?;
    let t1 = nl.push(GateKind::And, ab, c)?;
    let t2 = nl.push(GateKind::And, a, b)?;
    let carry = nl.push(GateKind::Or, t1, t2)?;
    Ok((sum, carry))
}

/// Append a ripple-carry adder over equal-width operands.
///
/// # Errors
///
/// - [`CircuitError::InputArity`] if operand widths differ.
/// - [`CircuitError::DanglingNet`] if any operand net is undefined.
pub fn ripple_carry_adder(
    nl: &mut Netlist,
    a: &[NetId],
    b: &[NetId],
    cin: Option<NetId>,
) -> Result<AdderOut, CircuitError> {
    if a.len() != b.len() {
        return Err(CircuitError::InputArity {
            expected: a.len(),
            got: b.len(),
        });
    }
    let mut sum = Vec::with_capacity(a.len());
    let mut carry = match cin {
        Some(c) => c,
        None => nl.const0()?,
    };
    for (&ai, &bi) in a.iter().zip(b) {
        let (s, c) = full_adder(nl, ai, bi, carry)?;
        sum.push(s);
        carry = c;
    }
    Ok(AdderOut { sum, carry })
}

/// Append a Kogge–Stone parallel-prefix adder over equal-width operands.
///
/// Generate/propagate pairs are combined in ⌈log₂ n⌉ prefix layers, giving
/// logarithmic depth at the cost of more gates than a ripple-carry adder —
/// the classic speed/area trade-off of the final adder in fast
/// multipliers.
///
/// # Errors
///
/// - [`CircuitError::InputArity`] if operand widths differ.
/// - [`CircuitError::DanglingNet`] if any operand net is undefined.
pub fn kogge_stone_adder(
    nl: &mut Netlist,
    a: &[NetId],
    b: &[NetId],
) -> Result<AdderOut, CircuitError> {
    if a.len() != b.len() {
        return Err(CircuitError::InputArity {
            expected: a.len(),
            got: b.len(),
        });
    }
    let n = a.len();
    if n == 0 {
        return Ok(AdderOut {
            sum: Vec::new(),
            carry: nl.const0()?,
        });
    }
    // Level-0 generate/propagate.
    let mut g: Vec<NetId> = Vec::with_capacity(n);
    let mut p: Vec<NetId> = Vec::with_capacity(n);
    let mut p0: Vec<NetId> = Vec::with_capacity(n);
    for (&ai, &bi) in a.iter().zip(b) {
        g.push(nl.push(GateKind::And, ai, bi)?);
        let prop = nl.push(GateKind::Xor, ai, bi)?;
        p.push(prop);
        p0.push(prop);
    }
    // Prefix sweep: (G, P)_i := (G_i | P_i & G_{i-d}, P_i & P_{i-d}).
    let mut d = 1usize;
    while d < n {
        let mut ng = g.clone();
        let mut np = p.clone();
        for i in d..n {
            let t = nl.push(GateKind::And, p[i], g[i - d])?;
            ng[i] = nl.push(GateKind::Or, g[i], t)?;
            np[i] = nl.push(GateKind::And, p[i], p[i - d])?;
        }
        g = ng;
        p = np;
        d *= 2;
    }
    // Carry into bit i is the group generate of bits 0..i.
    let mut sum = Vec::with_capacity(n);
    let zero = nl.const0()?;
    for i in 0..n {
        let carry_in = if i == 0 { zero } else { g[i - 1] };
        sum.push(nl.push(GateKind::Xor, p0[i], carry_in)?);
    }
    Ok(AdderOut {
        sum,
        carry: g[n - 1],
    })
}

/// How the partial-product columns are compressed to the final result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Reduction {
    /// Compress each column in place, rippling carries column-to-column —
    /// compact, linear-depth (the classic carry-save array).
    #[default]
    RippleColumns,
    /// Wallace/Dadda-style layered tree reduction to two rows, followed by
    /// a Kogge–Stone final adder — more gates, logarithmic depth.
    Dadda,
}

/// Which partial-product cells of an array multiplier are omitted.
///
/// Cell `(i, j)` is the AND of multiplicand bit `j` and multiplier bit `i`;
/// its arithmetic weight is `2^(i+j)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CellDrop {
    /// Exact multiplier: keep every cell.
    #[default]
    None,
    /// Truncated multiplier: drop cells whose weight column `i + j` is
    /// below `k` (the classic LSB-column truncation).
    LsbColumns(u32),
    /// Drop entire partial-product rows `i < k` (truncates the multiplier
    /// operand's LSBs).
    Rows(u32),
    /// Broken-array multiplier (BAM): combine a vertical break (drop
    /// columns `i + j < vbl`) with a horizontal break (drop rows `i < hbl`),
    /// after Mahdiani et al.
    BrokenArray {
        /// Vertical break level (columns dropped).
        vbl: u32,
        /// Horizontal break level (rows dropped).
        hbl: u32,
    },
}

impl CellDrop {
    /// Whether partial-product cell `(row i, col j)` is kept.
    #[must_use]
    pub fn keeps(self, i: u32, j: u32) -> bool {
        match self {
            CellDrop::None => true,
            CellDrop::LsbColumns(k) => i + j >= k,
            CellDrop::Rows(k) => i >= k,
            CellDrop::BrokenArray { vbl, hbl } => i + j >= vbl && i >= hbl,
        }
    }
}

/// Specification of an array multiplier to generate.
///
/// # Example
///
/// ```
/// use axcircuit::builder::{CellDrop, MultiplierSpec};
///
/// # fn main() -> Result<(), axcircuit::CircuitError> {
/// let trunc = MultiplierSpec::unsigned(8, 8)
///     .with_drop(CellDrop::LsbColumns(4))
///     .build()?;
/// // Truncation only ever under-estimates an unsigned product:
/// assert!(trunc.eval_words(&[255, 255])? <= 255 * 255);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiplierSpec {
    width_a: u32,
    width_b: u32,
    signed: bool,
    drop: CellDrop,
    reduction: Reduction,
}

impl MultiplierSpec {
    /// An exact unsigned `width_a × width_b` array multiplier.
    #[must_use]
    pub fn unsigned(width_a: u32, width_b: u32) -> Self {
        MultiplierSpec {
            width_a,
            width_b,
            signed: false,
            drop: CellDrop::None,
            reduction: Reduction::RippleColumns,
        }
    }

    /// An exact signed (two's-complement) `width_a × width_b` multiplier.
    ///
    /// Implemented by sign-extending both operands to the product width and
    /// reusing the unsigned array; the result is the exact two's-complement
    /// product modulo `2^(width_a + width_b)`.
    #[must_use]
    pub fn signed(width_a: u32, width_b: u32) -> Self {
        MultiplierSpec {
            width_a,
            width_b,
            signed: true,
            drop: CellDrop::None,
            reduction: Reduction::RippleColumns,
        }
    }

    /// Set the approximation mask.
    #[must_use]
    pub fn with_drop(mut self, drop: CellDrop) -> Self {
        self.drop = drop;
        self
    }

    /// Set the column-reduction architecture.
    #[must_use]
    pub fn with_reduction(mut self, reduction: Reduction) -> Self {
        self.reduction = reduction;
        self
    }

    /// The reduction architecture.
    #[must_use]
    pub fn reduction(&self) -> Reduction {
        self.reduction
    }

    /// Operand widths `(a, b)`.
    #[must_use]
    pub fn widths(&self) -> (u32, u32) {
        (self.width_a, self.width_b)
    }

    /// Whether the multiplier interprets operands as two's complement.
    #[must_use]
    pub fn is_signed(&self) -> bool {
        self.signed
    }

    /// The approximation mask.
    #[must_use]
    pub fn drop(&self) -> CellDrop {
        self.drop
    }

    /// Generate the netlist.
    ///
    /// The produced netlist has two operands of `width_a` and `width_b`
    /// bits and `width_a + width_b` output bits (LSB-first).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnsupportedWidth`] if an operand width is 0
    /// or the product width exceeds 32 bits (the exhaustive-evaluation
    /// limit used elsewhere in the workspace).
    pub fn build(&self) -> Result<Netlist, CircuitError> {
        let (wa, wb) = (self.width_a, self.width_b);
        if wa == 0 || wb == 0 {
            return Err(CircuitError::UnsupportedWidth { width: 0, max: 32 });
        }
        let wp = wa + wb;
        if wp > 32 {
            return Err(CircuitError::UnsupportedWidth { width: wp, max: 32 });
        }
        let mut nl = Netlist::with_operands(&[wa, wb]);

        // Effective operand bit nets; for signed multiplication, sign-extend
        // to the product width (two's-complement product == unsigned product
        // of sign extensions, modulo 2^wp).
        let (ea, eb): (u32, u32) = if self.signed { (wp, wp) } else { (wa, wb) };
        let a_bit = |bit: u32| -> u32 { bit.min(wa - 1) };
        let b_bit = |bit: u32| -> u32 { bit.min(wb - 1) };

        // Column-wise partial-product collection.
        let mut cols: Vec<Vec<NetId>> = vec![Vec::new(); wp as usize];
        for i in 0..eb {
            for j in 0..ea {
                let col = i + j;
                if col >= wp {
                    continue;
                }
                if !self.drop.keeps(i, j) {
                    continue;
                }
                let a = nl.operand_bit(0, a_bit(j));
                let b = nl.operand_bit(1, b_bit(i));
                let pp = nl.push(GateKind::And, a, b)?;
                cols[col as usize].push(pp);
            }
        }

        let outputs = match self.reduction {
            Reduction::RippleColumns => reduce_ripple_columns(&mut nl, cols, wp as usize)?,
            Reduction::Dadda => reduce_dadda(&mut nl, cols, wp as usize)?,
        };
        nl.set_outputs(outputs)?;
        Ok(nl)
    }
}

/// Carry-save column reduction: compress every column to a single bit,
/// rippling carries into the next column.
fn reduce_ripple_columns(
    nl: &mut Netlist,
    mut cols: Vec<Vec<NetId>>,
    wp: usize,
) -> Result<Vec<NetId>, CircuitError> {
    let mut outputs = Vec::with_capacity(wp);
    for col in 0..wp {
        while cols[col].len() > 1 {
            if cols[col].len() >= 3 {
                let a = cols[col].pop().expect("len >= 3");
                let b = cols[col].pop().expect("len >= 3");
                let c = cols[col].pop().expect("len >= 3");
                let (s, cy) = full_adder(nl, a, b, c)?;
                cols[col].push(s);
                if col + 1 < wp {
                    cols[col + 1].push(cy);
                }
            } else {
                let a = cols[col].pop().expect("len == 2");
                let b = cols[col].pop().expect("len == 2");
                let (s, cy) = half_adder(nl, a, b)?;
                cols[col].push(s);
                if col + 1 < wp {
                    cols[col + 1].push(cy);
                }
            }
        }
        let bit = match cols[col].first() {
            Some(&net) => net,
            None => nl.const0()?,
        };
        outputs.push(bit);
    }
    Ok(outputs)
}

/// Wallace/Dadda-style layered reduction: each layer compresses every
/// column independently with full/half adders (carries feed the *next
/// layer* of the next column), until all columns have height ≤ 2; a
/// Kogge–Stone adder then sums the two remaining rows.
fn reduce_dadda(
    nl: &mut Netlist,
    mut cols: Vec<Vec<NetId>>,
    wp: usize,
) -> Result<Vec<NetId>, CircuitError> {
    loop {
        let max_height = cols.iter().map(Vec::len).max().unwrap_or(0);
        if max_height <= 2 {
            break;
        }
        let mut next: Vec<Vec<NetId>> = vec![Vec::new(); wp];
        for col in 0..wp {
            let bits = std::mem::take(&mut cols[col]);
            let mut it = bits.into_iter().peekable();
            while it.peek().is_some() {
                let a = it.next().expect("peeked");
                match (it.next(), it.next()) {
                    (Some(b), Some(c)) => {
                        let (s, cy) = full_adder(nl, a, b, c)?;
                        next[col].push(s);
                        if col + 1 < wp {
                            next[col + 1].push(cy);
                        }
                    }
                    (Some(b), None) => {
                        let (s, cy) = half_adder(nl, a, b)?;
                        next[col].push(s);
                        if col + 1 < wp {
                            next[col + 1].push(cy);
                        }
                    }
                    (None, _) => next[col].push(a),
                }
            }
        }
        cols = next;
    }
    // Two rows remain; sum them with the fast final adder.
    let zero = nl.const0()?;
    let row_a: Vec<NetId> = cols
        .iter()
        .map(|c| c.first().copied().unwrap_or(zero))
        .collect();
    let row_b: Vec<NetId> = cols
        .iter()
        .map(|c| c.get(1).copied().unwrap_or(zero))
        .collect();
    let out = kogge_stone_adder(nl, &row_a, &row_b)?;
    Ok(out.sum) // product width already wp; the final carry is always 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_adder_truth_table() {
        let mut nl = Netlist::new(2);
        let (a, b) = (nl.input(0), nl.input(1));
        let (s, c) = half_adder(&mut nl, a, b).unwrap();
        nl.set_outputs(vec![s, c]).unwrap();
        for (a, b) in [(0u64, 0u64), (0, 1), (1, 0), (1, 1)] {
            let got = nl
                .eval_bits(&[a == 1, b == 1])
                .unwrap()
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &v)| acc | ((v as u64) << i));
            assert_eq!(got, a + b);
        }
    }

    #[test]
    fn full_adder_truth_table() {
        let mut nl = Netlist::new(3);
        let (a, b, c) = (nl.input(0), nl.input(1), nl.input(2));
        let (s, cy) = full_adder(&mut nl, a, b, c).unwrap();
        nl.set_outputs(vec![s, cy]).unwrap();
        for v in 0u64..8 {
            let (a, b, c) = (v & 1, (v >> 1) & 1, (v >> 2) & 1);
            let got = nl
                .eval_bits(&[a == 1, b == 1, c == 1])
                .unwrap()
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &v)| acc | ((v as u64) << i));
            assert_eq!(got, a + b + c);
        }
    }

    #[test]
    fn ripple_carry_adder_exhaustive_4bit() {
        let mut nl = Netlist::with_operands(&[4, 4]);
        let a: Vec<NetId> = (0..4).map(|i| nl.operand_bit(0, i)).collect();
        let b: Vec<NetId> = (0..4).map(|i| nl.operand_bit(1, i)).collect();
        let out = ripple_carry_adder(&mut nl, &a, &b, None).unwrap();
        let mut bits = out.sum.clone();
        bits.push(out.carry);
        nl.set_outputs(bits).unwrap();
        for x in 0u64..16 {
            for y in 0u64..16 {
                assert_eq!(nl.eval_words(&[x, y]).unwrap(), x + y, "{x}+{y}");
            }
        }
    }

    #[test]
    fn mismatched_adder_widths_rejected() {
        let mut nl = Netlist::with_operands(&[2, 3]);
        let a: Vec<NetId> = (0..2).map(|i| nl.operand_bit(0, i)).collect();
        let b: Vec<NetId> = (0..3).map(|i| nl.operand_bit(1, i)).collect();
        assert!(ripple_carry_adder(&mut nl, &a, &b, None).is_err());
    }

    #[test]
    fn unsigned_4x4_multiplier_exhaustive() {
        let nl = MultiplierSpec::unsigned(4, 4).build().unwrap();
        for x in 0u64..16 {
            for y in 0u64..16 {
                assert_eq!(nl.eval_words(&[x, y]).unwrap(), x * y, "{x}*{y}");
            }
        }
    }

    #[test]
    fn unsigned_8x8_multiplier_spot_checks() {
        let nl = MultiplierSpec::unsigned(8, 8).build().unwrap();
        for (x, y) in [(0u64, 0u64), (255, 255), (255, 1), (128, 2), (17, 19)] {
            assert_eq!(nl.eval_words(&[x, y]).unwrap(), x * y, "{x}*{y}");
        }
    }

    #[test]
    fn signed_4x4_multiplier_exhaustive() {
        let nl = MultiplierSpec::signed(4, 4).build().unwrap();
        for x in -8i64..8 {
            for y in -8i64..8 {
                let xa = (x as u64) & 0xF;
                let ya = (y as u64) & 0xF;
                let got = nl.eval_words(&[xa, ya]).unwrap();
                let expect = ((x * y) as u64) & 0xFF;
                assert_eq!(got, expect, "{x}*{y}");
            }
        }
    }

    #[test]
    fn truncated_multiplier_underestimates() {
        let nl = MultiplierSpec::unsigned(4, 4)
            .with_drop(CellDrop::LsbColumns(3))
            .build()
            .unwrap();
        for x in 0u64..16 {
            for y in 0u64..16 {
                let got = nl.eval_words(&[x, y]).unwrap();
                assert!(got <= x * y, "{x}*{y}: {got} > {}", x * y);
            }
        }
    }

    #[test]
    fn row_drop_equivalent_to_operand_truncation() {
        let nl = MultiplierSpec::unsigned(4, 4)
            .with_drop(CellDrop::Rows(2))
            .build()
            .unwrap();
        for x in 0u64..16 {
            for y in 0u64..16 {
                let got = nl.eval_words(&[x, y]).unwrap();
                assert_eq!(got, x * (y & !0b11), "{x}*{y}");
            }
        }
    }

    #[test]
    fn broken_array_mask_combines_breaks() {
        let drop = CellDrop::BrokenArray { vbl: 3, hbl: 1 };
        assert!(!drop.keeps(0, 5)); // row below hbl
        assert!(!drop.keeps(1, 1)); // column below vbl
        assert!(drop.keeps(1, 2));
        assert!(drop.keeps(3, 3));
    }

    #[test]
    fn zero_width_rejected() {
        assert!(MultiplierSpec::unsigned(0, 4).build().is_err());
    }

    #[test]
    fn oversized_product_rejected() {
        let err = MultiplierSpec::unsigned(20, 20).build().unwrap_err();
        assert!(matches!(
            err,
            CircuitError::UnsupportedWidth { width: 40, max: 32 }
        ));
    }

    #[test]
    fn exact_mask_keeps_everything() {
        for i in 0..8 {
            for j in 0..8 {
                assert!(CellDrop::None.keeps(i, j));
            }
        }
    }

    #[test]
    fn kogge_stone_adder_exhaustive_5bit() {
        let mut nl = Netlist::with_operands(&[5, 5]);
        let a: Vec<NetId> = (0..5).map(|i| nl.operand_bit(0, i)).collect();
        let b: Vec<NetId> = (0..5).map(|i| nl.operand_bit(1, i)).collect();
        let out = kogge_stone_adder(&mut nl, &a, &b).unwrap();
        let mut bits = out.sum.clone();
        bits.push(out.carry);
        nl.set_outputs(bits).unwrap();
        for x in 0u64..32 {
            for y in 0u64..32 {
                assert_eq!(nl.eval_words(&[x, y]).unwrap(), x + y, "{x}+{y}");
            }
        }
    }

    #[test]
    fn kogge_stone_shallower_than_ripple() {
        let build = |fast: bool| {
            let mut nl = Netlist::with_operands(&[8, 8]);
            let a: Vec<NetId> = (0..8).map(|i| nl.operand_bit(0, i)).collect();
            let b: Vec<NetId> = (0..8).map(|i| nl.operand_bit(1, i)).collect();
            let out = if fast {
                kogge_stone_adder(&mut nl, &a, &b).unwrap()
            } else {
                ripple_carry_adder(&mut nl, &a, &b, None).unwrap()
            };
            let mut bits = out.sum.clone();
            bits.push(out.carry);
            nl.set_outputs(bits).unwrap();
            nl
        };
        let ks = build(true);
        let rca = build(false);
        assert!(
            ks.depth() < rca.depth(),
            "{} !< {}",
            ks.depth(),
            rca.depth()
        );
        assert!(ks.n_gates() > rca.n_gates(), "prefix logic costs area");
    }

    #[test]
    fn dadda_multiplier_exhaustive_5x5() {
        let nl = MultiplierSpec::unsigned(5, 5)
            .with_reduction(Reduction::Dadda)
            .build()
            .unwrap();
        for x in 0u64..32 {
            for y in 0u64..32 {
                assert_eq!(nl.eval_words(&[x, y]).unwrap(), x * y, "{x}*{y}");
            }
        }
    }

    #[test]
    fn dadda_signed_spot_checks() {
        let nl = MultiplierSpec::signed(8, 8)
            .with_reduction(Reduction::Dadda)
            .build()
            .unwrap();
        for (x, y) in [(-128i64, -128i64), (-128, 127), (-1, -1), (99, -3)] {
            let got = nl
                .eval_words(&[(x as u64) & 0xFF, (y as u64) & 0xFF])
                .unwrap();
            assert_eq!(got, ((x * y) as u64) & 0xFFFF, "{x}*{y}");
        }
    }

    #[test]
    fn dadda_shallower_than_ripple_columns() {
        let ripple = MultiplierSpec::unsigned(8, 8).build().unwrap();
        let dadda = MultiplierSpec::unsigned(8, 8)
            .with_reduction(Reduction::Dadda)
            .build()
            .unwrap();
        assert!(
            dadda.depth() < ripple.depth(),
            "dadda {} !< ripple {}",
            dadda.depth(),
            ripple.depth()
        );
    }

    #[test]
    fn dadda_respects_cell_drop() {
        let nl = MultiplierSpec::unsigned(4, 4)
            .with_drop(CellDrop::Rows(2))
            .with_reduction(Reduction::Dadda)
            .build()
            .unwrap();
        for x in 0u64..16 {
            for y in 0u64..16 {
                assert_eq!(nl.eval_words(&[x, y]).unwrap(), x * (y & !0b11));
            }
        }
    }

    #[test]
    fn empty_kogge_stone() {
        let mut nl = Netlist::new(0);
        let out = kogge_stone_adder(&mut nl, &[], &[]).unwrap();
        assert!(out.sum.is_empty());
    }
}
