//! The computation graph and the Fig. 1 rewrite pass.

use crate::layer::Layer;
use crate::layers::{Conv2D, MaxOf, MinOf};
use crate::NnError;
use axtensor::{SegmentTable, Shape4, Tensor};
use std::sync::Arc;

/// Identifier of a graph node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

impl NodeId {
    /// Raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
enum NodeKind {
    /// The graph's single input placeholder.
    Input,
    /// An operator node.
    Op(Arc<dyn Layer>),
}

#[derive(Debug, Clone)]
struct Node {
    name: String,
    kind: NodeKind,
    inputs: Vec<NodeId>,
}

/// A DAG of named operator nodes with a single input placeholder.
///
/// Nodes are appended in topological order by construction (a node may
/// only reference earlier nodes), so execution is a single forward sweep.
///
/// # Example
///
/// ```
/// use axnn::{Graph, layers::ReLU};
/// use axtensor::{Shape4, Tensor};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), axnn::NnError> {
/// let mut g = Graph::new();
/// let x = g.input();
/// let y = g.add("act", Arc::new(ReLU::new()), &[x])?;
/// g.set_output(y)?;
/// let t = Tensor::from_vec(Shape4::new(1, 1, 1, 2), vec![-1.0, 2.0])?;
/// assert_eq!(g.forward(&t)?.as_slice(), &[0.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Graph {
    nodes: Vec<Node>,
    output: Option<NodeId>,
}

impl Graph {
    /// An empty graph holding only the input placeholder.
    #[must_use]
    pub fn new() -> Self {
        Graph {
            nodes: vec![Node {
                name: "input".to_owned(),
                kind: NodeKind::Input,
                inputs: Vec::new(),
            }],
            output: None,
        }
    }

    /// Id of the input placeholder.
    #[must_use]
    pub fn input(&self) -> NodeId {
        NodeId(0)
    }

    /// Append an operator node.
    ///
    /// # Errors
    ///
    /// - [`NnError::UnknownNode`] if an input id does not exist yet.
    /// - [`NnError::InputArity`] if the edge count differs from the
    ///   layer's arity.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        layer: Arc<dyn Layer>,
        inputs: &[NodeId],
    ) -> Result<NodeId, NnError> {
        for id in inputs {
            if id.0 >= self.nodes.len() {
                return Err(NnError::UnknownNode(id.0));
            }
        }
        let name = name.into();
        if inputs.len() != layer.arity() {
            return Err(NnError::InputArity {
                layer: name,
                expected: layer.arity(),
                got: inputs.len(),
            });
        }
        self.nodes.push(Node {
            name,
            kind: NodeKind::Op(layer),
            inputs: inputs.to_vec(),
        });
        Ok(NodeId(self.nodes.len() - 1))
    }

    /// Declare the output node.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::UnknownNode`] for an id that does not exist.
    pub fn set_output(&mut self, id: NodeId) -> Result<(), NnError> {
        if id.0 >= self.nodes.len() {
            return Err(NnError::UnknownNode(id.0));
        }
        self.output = Some(id);
        Ok(())
    }

    /// Number of nodes (including the input placeholder).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph holds only the input placeholder.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Iterate over `(name, op_name)` of every operator node.
    pub fn ops(&self) -> impl Iterator<Item = (&str, &str)> {
        self.nodes.iter().filter_map(|n| match &n.kind {
            NodeKind::Input => None,
            NodeKind::Op(l) => Some((n.name.as_str(), l.op_name())),
        })
    }

    /// Count of 2D convolution layers (accurate or approximate) — the
    /// paper's `L` column.
    #[must_use]
    pub fn conv_layer_count(&self) -> usize {
        self.conv_layers().count()
    }

    /// Iterate over `(id, name)` of every 2D convolution layer (accurate
    /// or approximate) in topological order — the layer identifiers a
    /// per-layer multiplier assignment indexes into.
    pub fn conv_layers(&self) -> impl Iterator<Item = (NodeId, &str)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| match &n.kind {
                NodeKind::Op(l) if l.op_name().ends_with("Conv2D") => {
                    Some((NodeId(i), n.name.as_str()))
                }
                _ => None,
            })
    }

    /// Name of a node, if the id exists.
    #[must_use]
    pub fn node_name(&self, id: NodeId) -> Option<&str> {
        self.nodes.get(id.0).map(|n| n.name.as_str())
    }

    /// Execute the graph on one input batch.
    ///
    /// # Errors
    ///
    /// - [`NnError::NoOutput`] if no output node was declared.
    /// - Propagates layer execution errors.
    pub fn forward(&self, input: &Tensor<f32>) -> Result<Tensor<f32>, NnError> {
        let out = self.output.ok_or(NnError::NoOutput)?;
        let mut values: Vec<Option<Tensor<f32>>> = vec![None; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            let value = match &node.kind {
                NodeKind::Input => input.clone(),
                NodeKind::Op(layer) => {
                    let ins: Vec<&Tensor<f32>> = node
                        .inputs
                        .iter()
                        .map(|id| values[id.0].as_ref().expect("topological order"))
                        .collect();
                    layer.forward(&ins)?
                }
            };
            values[i] = Some(value);
            // Free tensors no longer needed? Kept simple: graphs here are
            // small; peak memory is not the bottleneck of the emulation.
        }
        Ok(values[out.0].take().expect("executed above"))
    }

    /// Execute the graph on one *fused* input batch whose batch axis is
    /// partitioned into per-request `segments`.
    ///
    /// Identical to [`Graph::forward`] except that every node runs
    /// through [`Layer::forward_segmented`], so segment-aware operators
    /// (the `Min`/`Max` observers, quantizing layers) treat each segment
    /// exactly as a solo [`Graph::forward`] of that segment would —
    /// which makes the fused output bit-identical to the concatenation
    /// of per-segment solo outputs.
    ///
    /// # Errors
    ///
    /// - [`NnError::NoOutput`] if no output node was declared.
    /// - [`NnError::SegmentMismatch`] if the table's total differs from
    ///   the input's batch count.
    /// - Propagates layer execution errors.
    pub fn forward_segmented(
        &self,
        input: &Tensor<f32>,
        segments: &SegmentTable,
    ) -> Result<Tensor<f32>, NnError> {
        let out = self.output.ok_or(NnError::NoOutput)?;
        if segments.total() != input.shape().n {
            return Err(NnError::SegmentMismatch {
                images: input.shape().n,
                covered: segments.total(),
            });
        }
        let mut values: Vec<Option<Tensor<f32>>> = vec![None; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            let value = match &node.kind {
                NodeKind::Input => input.clone(),
                NodeKind::Op(layer) => {
                    let ins: Vec<&Tensor<f32>> = node
                        .inputs
                        .iter()
                        .map(|id| values[id.0].as_ref().expect("topological order"))
                        .collect();
                    layer.forward_segmented(&ins, segments)?
                }
            };
            values[i] = Some(value);
        }
        Ok(values[out.0].take().expect("executed above"))
    }

    /// Infer the shape of every node for a given input shape.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference failures; [`NnError::NoOutput`] is *not*
    /// required here (shapes are inferable without an output).
    pub fn infer_shapes(&self, input: Shape4) -> Result<Vec<Shape4>, NnError> {
        let mut shapes = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let s = match &node.kind {
                NodeKind::Input => input,
                NodeKind::Op(layer) => {
                    let ins: Vec<Shape4> = node.inputs.iter().map(|id| shapes[id.0]).collect();
                    layer.output_shape(&ins)?
                }
            };
            shapes.push(s);
        }
        Ok(shapes)
    }

    /// Total multiply-accumulate count for one forward pass at the given
    /// input shape (the paper's `# MACs` for a single image when
    /// `input.n == 1`).
    ///
    /// # Errors
    ///
    /// Propagates shape-inference failures.
    pub fn mac_count(&self, input: Shape4) -> Result<u64, NnError> {
        let shapes = self.infer_shapes(input)?;
        let mut total = 0u64;
        for node in &self.nodes {
            if let NodeKind::Op(layer) = &node.kind {
                let ins: Vec<Shape4> = node.inputs.iter().map(|id| shapes[id.0]).collect();
                total += layer.mac_count(&ins)?;
            }
        }
        Ok(total)
    }

    /// Render a human-readable summary table: one line per node with its
    /// operator, inferred output shape and MAC count for the given input
    /// shape.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference failures.
    pub fn summary(&self, input: Shape4) -> Result<String, NnError> {
        use std::fmt::Write as _;
        let shapes = self.infer_shapes(input)?;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<28} {:>10} {:>18} {:>14}",
            "node", "op", "output", "MACs"
        );
        let mut total = 0u64;
        for (i, node) in self.nodes.iter().enumerate() {
            let (op, macs) = match &node.kind {
                NodeKind::Input => ("input".to_owned(), 0),
                NodeKind::Op(layer) => {
                    let ins: Vec<Shape4> = node.inputs.iter().map(|id| shapes[id.0]).collect();
                    (layer.op_name().to_owned(), layer.mac_count(&ins)?)
                }
            };
            total += macs;
            let _ = writeln!(
                s,
                "{:<28} {:>10} {:>18} {:>14}",
                node.name,
                op,
                shapes[i].to_string(),
                macs
            );
        }
        let _ = writeln!(s, "{:<28} {:>10} {:>18} {:>14}", "TOTAL", "", "", total);
        Ok(s)
    }

    /// The paper's design-flow transform (Fig. 1): replace every `Conv2D`
    /// by the layer `replacer` produces, inserting `Min` and `Max`
    /// observers on the convolution's input and wiring them as the extra
    /// range inputs of the replacement (which must therefore have arity 3:
    /// `[input, min, max]`).
    ///
    /// Returns the transformed graph and the number of replacements.
    ///
    /// # Errors
    ///
    /// Propagates node-construction failures.
    pub fn rewrite_convs(
        &self,
        mut replacer: impl FnMut(&Conv2D) -> Arc<dyn Layer>,
    ) -> Result<(Graph, usize), NnError> {
        let mut out = Graph::new();
        let mut map: Vec<NodeId> = Vec::with_capacity(self.nodes.len());
        map.push(out.input());
        let mut replaced = 0usize;
        for node in self.nodes.iter().skip(1) {
            let mapped: Vec<NodeId> = node.inputs.iter().map(|id| map[id.0]).collect();
            let NodeKind::Op(layer) = &node.kind else {
                unreachable!("only node 0 is the input placeholder");
            };
            let new_id = if let Some(conv) = layer.as_conv2d() {
                let src = mapped[0];
                let lo = out.add(format!("{}/min", node.name), Arc::new(MinOf::new()), &[src])?;
                let hi = out.add(format!("{}/max", node.name), Arc::new(MaxOf::new()), &[src])?;
                replaced += 1;
                out.add(node.name.clone(), replacer(conv), &[src, lo, hi])?
            } else {
                out.add(node.name.clone(), Arc::clone(layer), &mapped)?
            };
            map.push(new_id);
        }
        if let Some(o) = self.output {
            out.set_output(map[o.0])?;
        }
        Ok((out, replaced))
    }
}

impl Default for Graph {
    fn default() -> Self {
        Graph::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Add, ReLU};
    use axtensor::{rng, ConvGeometry, FilterShape};

    fn tiny_conv() -> Arc<dyn Layer> {
        Arc::new(Conv2D::new(
            rng::uniform_filter(FilterShape::new(3, 3, 1, 2), 1, -0.5, 0.5),
            ConvGeometry::default(),
        ))
    }

    #[test]
    fn linear_chain_executes() {
        let mut g = Graph::new();
        let x = g.input();
        let c = g.add("conv", tiny_conv(), &[x]).unwrap();
        let r = g.add("relu", Arc::new(ReLU::new()), &[c]).unwrap();
        g.set_output(r).unwrap();
        let input = rng::uniform(Shape4::new(1, 4, 4, 1), 2, -1.0, 1.0);
        let out = g.forward(&input).unwrap();
        assert_eq!(out.shape(), Shape4::new(1, 4, 4, 2));
        assert!(out.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn diamond_residual_executes() {
        let mut g = Graph::new();
        let x = g.input();
        let r = g.add("relu", Arc::new(ReLU::new()), &[x]).unwrap();
        let a = g.add("add", Arc::new(Add::new()), &[x, r]).unwrap();
        g.set_output(a).unwrap();
        let input = Tensor::from_vec(Shape4::new(1, 1, 2, 1), vec![-1.0, 2.0]).unwrap();
        let out = g.forward(&input).unwrap();
        assert_eq!(out.as_slice(), &[-1.0, 4.0]);
    }

    #[test]
    fn forward_requires_output() {
        let g = Graph::new();
        let t = Tensor::<f32>::zeros(Shape4::new(1, 1, 1, 1));
        assert!(matches!(g.forward(&t).unwrap_err(), NnError::NoOutput));
    }

    #[test]
    fn unknown_input_id_rejected() {
        let mut g = Graph::new();
        let bogus = NodeId(5);
        assert!(matches!(
            g.add("r", Arc::new(ReLU::new()), &[bogus]).unwrap_err(),
            NnError::UnknownNode(5)
        ));
    }

    #[test]
    fn arity_mismatch_rejected_at_build() {
        let mut g = Graph::new();
        let x = g.input();
        assert!(g.add("add", Arc::new(Add::new()), &[x]).is_err());
    }

    #[test]
    fn mac_count_sums_convs() {
        let mut g = Graph::new();
        let x = g.input();
        let c = g.add("conv", tiny_conv(), &[x]).unwrap();
        g.set_output(c).unwrap();
        // 4x4x2 output, 9-tap, 1 channel: 4*4*2*9.
        assert_eq!(g.mac_count(Shape4::new(1, 4, 4, 1)).unwrap(), 288);
    }

    #[test]
    fn rewrite_inserts_min_max_and_replaces() {
        let mut g = Graph::new();
        let x = g.input();
        let c = g.add("conv1", tiny_conv(), &[x]).unwrap();
        let r = g.add("relu", Arc::new(ReLU::new()), &[c]).unwrap();
        g.set_output(r).unwrap();

        // A fake 3-input replacement that ignores the ranges and applies
        // the original conv — structure is what we verify here.
        #[derive(Debug)]
        struct Fake(Conv2D);
        impl Layer for Fake {
            fn op_name(&self) -> &str {
                "AxConv2D"
            }
            fn arity(&self) -> usize {
                3
            }
            fn output_shape(&self, inputs: &[Shape4]) -> Result<Shape4, NnError> {
                self.0.output_shape(&inputs[..1])
            }
            fn forward(&self, inputs: &[&Tensor<f32>]) -> Result<Tensor<f32>, NnError> {
                self.0.forward(&inputs[..1])
            }
        }

        let (rew, n) = g
            .rewrite_convs(|conv| Arc::new(Fake(conv.clone())))
            .unwrap();
        assert_eq!(n, 1);
        let ops: Vec<(String, String)> = rew
            .ops()
            .map(|(a, b)| (a.to_owned(), b.to_owned()))
            .collect();
        assert!(ops.iter().any(|(_, op)| op == "Min"));
        assert!(ops.iter().any(|(_, op)| op == "Max"));
        assert!(ops.iter().any(|(_, op)| op == "AxConv2D"));
        assert!(!ops.iter().any(|(_, op)| op == "Conv2D"));

        // And it still executes, producing the same values as the fake
        // passthrough.
        let input = rng::uniform(Shape4::new(1, 4, 4, 1), 3, -1.0, 1.0);
        let a = g.forward(&input).unwrap();
        let b = rew.forward(&input).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() < 1e-6);
    }

    #[test]
    fn summary_lists_nodes_and_total() {
        let mut g = Graph::new();
        let x = g.input();
        let c = g.add("conv", tiny_conv(), &[x]).unwrap();
        let r = g.add("relu", Arc::new(ReLU::new()), &[c]).unwrap();
        g.set_output(r).unwrap();
        let s = g.summary(Shape4::new(1, 4, 4, 1)).unwrap();
        assert!(s.contains("conv"));
        assert!(s.contains("ReLU"));
        assert!(s.contains("TOTAL"));
        assert!(s.contains("288")); // conv MACs from the sibling test
    }

    #[test]
    fn conv_layer_count_counts_both_variants() {
        let mut g = Graph::new();
        let x = g.input();
        let c1 = g.add("c1", tiny_conv(), &[x]).unwrap();
        g.set_output(c1).unwrap();
        assert_eq!(g.conv_layer_count(), 1);
    }

    #[test]
    fn conv_layers_yields_ids_and_names_in_topo_order() {
        let mut g = Graph::new();
        let x = g.input();
        let c1 = g.add("stem", tiny_conv(), &[x]).unwrap();
        let r = g.add("relu", Arc::new(ReLU::new()), &[c1]).unwrap();
        let c2 = g.add("head", tiny_conv(), &[r]).unwrap();
        g.set_output(c2).unwrap();
        let convs: Vec<(NodeId, String)> = g
            .conv_layers()
            .map(|(id, name)| (id, name.to_owned()))
            .collect();
        assert_eq!(convs.len(), 2);
        assert_eq!(convs[0].1, "stem");
        assert_eq!(convs[1].1, "head");
        assert!(convs[0].0.index() < convs[1].0.index());
        assert_eq!(g.node_name(convs[1].0), Some("head"));
        assert_eq!(g.node_name(NodeId(99)), None);
    }
}
