//! Synthetic CIFAR-10-shaped dataset.
//!
//! The paper evaluates on "CIFAR-10 ... containing 10⁴ input images having
//! 32 × 32 × 3 pixels each. ... The evaluation of the data set is divided
//! in 10 batches consisting of 1000 images each." Real CIFAR-10 files are
//! not available offline; because the measured quantities are
//! shape-determined (timing is weight- and data-independent, accuracy
//! experiments compare exact vs. approximate execution of the same inputs),
//! a deterministic synthetic dataset with the same geometry preserves every
//! relevant behaviour.

use axtensor::{rng, Shape4, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Total images in the evaluation set.
pub const IMAGES: usize = 10_000;
/// Number of evaluation batches.
pub const BATCHES: usize = 10;
/// Images per batch.
pub const BATCH_SIZE: usize = IMAGES / BATCHES;

/// Deterministic synthetic CIFAR-10: 10 000 `32×32×3` images in 10
/// batches, with pseudo-labels for agreement metrics.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticCifar10 {
    seed: u64,
}

impl SyntheticCifar10 {
    /// A dataset generated from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SyntheticCifar10 { seed }
    }

    /// One evaluation batch of the standard size.
    ///
    /// # Panics
    ///
    /// Panics if `index >= BATCHES`.
    #[must_use]
    pub fn batch(&self, index: usize) -> Tensor<f32> {
        assert!(index < BATCHES, "batch {index} out of range");
        self.batch_sized(index, BATCH_SIZE)
    }

    /// A batch of `size` images (for reduced-scale measured runs).
    ///
    /// Batches with the same `index` share a prefix: `batch_sized(i, k)`
    /// equals the first `k` images of `batch(i)`.
    #[must_use]
    pub fn batch_sized(&self, index: usize, size: usize) -> Tensor<f32> {
        // Images are normalized to [-1, 1), the usual CIFAR preprocessing.
        rng::uniform(
            Shape4::new(size, 32, 32, 3),
            self.seed ^ ((index as u64 + 1) << 32),
            -1.0,
            1.0,
        )
    }

    /// Pseudo-labels (0..10) for a batch, for top-1 agreement metrics.
    #[must_use]
    pub fn labels(&self, index: usize, size: usize) -> Vec<u8> {
        let mut r = StdRng::seed_from_u64(self.seed ^ ((index as u64 + 1) << 16));
        (0..size).map(|_| r.gen_range(0..10u8)).collect()
    }
}

/// Top-1 class of each row of a `[n, 1, 1, 10]` probability tensor.
#[must_use]
pub fn argmax_classes(probs: &Tensor<f32>) -> Vec<u8> {
    let c = probs.shape().c;
    probs
        .as_slice()
        .chunks(c)
        .map(|row| {
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i as u8)
                .unwrap_or(0)
        })
        .collect()
}

/// Fraction of rows where two probability tensors agree on the top-1
/// class — the metric for "does the approximate multiplier change the
/// prediction".
///
/// # Panics
///
/// Panics if the tensors have different shapes.
#[must_use]
pub fn top1_agreement(a: &Tensor<f32>, b: &Tensor<f32>) -> f64 {
    assert_eq!(a.shape(), b.shape(), "shape mismatch");
    let ca = argmax_classes(a);
    let cb = argmax_classes(b);
    let same = ca.iter().zip(&cb).filter(|(x, y)| x == y).count();
    same as f64 / ca.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_consistent() {
        assert_eq!(BATCHES * BATCH_SIZE, IMAGES);
    }

    #[test]
    fn batches_are_deterministic_and_distinct() {
        let d = SyntheticCifar10::new(1);
        let a = d.batch_sized(0, 4);
        let b = d.batch_sized(0, 4);
        assert_eq!(a, b);
        let c = d.batch_sized(1, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn sized_batch_is_prefix() {
        let d = SyntheticCifar10::new(3);
        let big = d.batch_sized(2, 8);
        let small = d.batch_sized(2, 3);
        assert_eq!(big.batch_slice(0, 3), small);
    }

    #[test]
    fn images_normalized() {
        let d = SyntheticCifar10::new(7);
        let b = d.batch_sized(0, 2);
        assert!(b.as_slice().iter().all(|&v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn labels_in_range() {
        let d = SyntheticCifar10::new(7);
        assert!(d.labels(0, 100).iter().all(|&l| l < 10));
    }

    #[test]
    fn argmax_and_agreement() {
        let a =
            Tensor::from_vec(Shape4::new(2, 1, 1, 3), vec![0.1, 0.8, 0.1, 0.6, 0.2, 0.2]).unwrap();
        let b =
            Tensor::from_vec(Shape4::new(2, 1, 1, 3), vec![0.2, 0.7, 0.1, 0.1, 0.8, 0.1]).unwrap();
        assert_eq!(argmax_classes(&a), vec![1, 0]);
        assert_eq!(top1_agreement(&a, &b), 0.5);
    }
}
