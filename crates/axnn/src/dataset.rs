//! Synthetic CIFAR-10-shaped dataset.
//!
//! The paper evaluates on "CIFAR-10 ... containing 10⁴ input images having
//! 32 × 32 × 3 pixels each. ... The evaluation of the data set is divided
//! in 10 batches consisting of 1000 images each." Real CIFAR-10 files are
//! not available offline; because the measured quantities are
//! shape-determined (timing is weight- and data-independent, accuracy
//! experiments compare exact vs. approximate execution of the same inputs),
//! a deterministic synthetic dataset with the same geometry preserves every
//! relevant behaviour.

use axtensor::{rng, Shape4, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Total images in the evaluation set.
pub const IMAGES: usize = 10_000;
/// Number of evaluation batches.
pub const BATCHES: usize = 10;
/// Images per batch.
pub const BATCH_SIZE: usize = IMAGES / BATCHES;

/// Deterministic synthetic CIFAR-10: 10 000 `32×32×3` images in 10
/// batches, with pseudo-labels for agreement metrics.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticCifar10 {
    seed: u64,
}

impl SyntheticCifar10 {
    /// A dataset generated from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SyntheticCifar10 { seed }
    }

    /// One evaluation batch of the standard size.
    ///
    /// # Panics
    ///
    /// Panics if `index >= BATCHES`.
    #[must_use]
    pub fn batch(&self, index: usize) -> Tensor<f32> {
        assert!(index < BATCHES, "batch {index} out of range");
        self.batch_sized(index, BATCH_SIZE)
    }

    /// A batch of `size` images (for reduced-scale measured runs).
    ///
    /// Batches with the same `index` share a prefix: `batch_sized(i, k)`
    /// equals the first `k` images of `batch(i)`.
    #[must_use]
    pub fn batch_sized(&self, index: usize, size: usize) -> Tensor<f32> {
        // Images are normalized to [-1, 1), the usual CIFAR preprocessing.
        rng::uniform(
            Shape4::new(size, 32, 32, 3),
            self.seed ^ ((index as u64 + 1) << 32),
            -1.0,
            1.0,
        )
    }

    /// Pseudo-labels (0..10) for a batch, for top-1 agreement metrics.
    #[must_use]
    pub fn labels(&self, index: usize, size: usize) -> Vec<u8> {
        let mut r = StdRng::seed_from_u64(self.seed ^ ((index as u64 + 1) << 16));
        (0..size).map(|_| r.gen_range(0..10u8)).collect()
    }
}

/// Top-1 class of each image of a `[n, 1, 1, classes]` logit/probability
/// tensor.
///
/// Ties break **first-index-wins** (the numpy/framework `argmax`
/// convention), so an exact and an approximate run that produce the same
/// tied logits report the same class — a last-wins tie-break would turn
/// identical outputs into spurious top-1 disagreement. Comparison uses
/// `f32::total_cmp`, under which every NaN payload with the sign bit
/// clear orders above +∞; a row of all such NaNs argmaxes to class 0.
///
/// # Panics
///
/// Panics if the tensor has spatial extent (`h * w != 1`): chunking a
/// spatial feature map into "class rows" would silently produce one
/// bogus class per pixel. Reduce (e.g. global-average-pool) first.
#[must_use]
pub fn argmax_classes(probs: &Tensor<f32>) -> Vec<u8> {
    let shape = probs.shape();
    assert!(
        shape.h * shape.w == 1,
        "argmax_classes expects [n, 1, 1, classes] logits, got spatial extent {}x{}",
        shape.h,
        shape.w
    );
    let c = shape.c;
    probs
        .as_slice()
        .chunks(c)
        .map(|row| {
            row.iter()
                .enumerate()
                // First-index-wins: only a strictly greater value
                // displaces the running best.
                .reduce(|best, cand| {
                    if cand.1.total_cmp(best.1).is_gt() {
                        cand
                    } else {
                        best
                    }
                })
                .map(|(i, _)| i as u8)
                .unwrap_or(0)
        })
        .collect()
}

/// Fraction of images where two logit tensors agree on the top-1 class —
/// the metric for "does the approximate multiplier change the
/// prediction".
///
/// Zero-image tensors report **vacuous agreement `1.0`**: an empty
/// evaluation batch carries no evidence of disagreement, and must not
/// zero out an accuracy aggregate (the old behaviour returned `0.0`,
/// which would poison any frontier point averaging over batches).
///
/// # Panics
///
/// Panics if the tensors have different shapes, or have spatial extent
/// (see [`argmax_classes`]).
#[must_use]
pub fn top1_agreement(a: &Tensor<f32>, b: &Tensor<f32>) -> f64 {
    assert_eq!(a.shape(), b.shape(), "shape mismatch");
    let ca = argmax_classes(a);
    let cb = argmax_classes(b);
    if ca.is_empty() {
        return 1.0;
    }
    let same = ca.iter().zip(&cb).filter(|(x, y)| x == y).count();
    same as f64 / ca.len() as f64
}

/// Fraction of positions where two class vectors (as produced by
/// [`argmax_classes`]) agree, with the same vacuous-agreement convention
/// as [`top1_agreement`]: empty inputs report `1.0`.
///
/// This is the accumulation-friendly form: a sweep can argmax each run
/// once and compare class vectors across many candidate runs without
/// retaining logit tensors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
#[must_use]
pub fn class_agreement(a: &[u8], b: &[u8]) -> f64 {
    assert_eq!(a.len(), b.len(), "class-vector length mismatch");
    if a.is_empty() {
        return 1.0;
    }
    let same = a.iter().zip(b).filter(|(x, y)| x == y).count();
    same as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_consistent() {
        assert_eq!(BATCHES * BATCH_SIZE, IMAGES);
    }

    #[test]
    fn batches_are_deterministic_and_distinct() {
        let d = SyntheticCifar10::new(1);
        let a = d.batch_sized(0, 4);
        let b = d.batch_sized(0, 4);
        assert_eq!(a, b);
        let c = d.batch_sized(1, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn sized_batch_is_prefix() {
        let d = SyntheticCifar10::new(3);
        let big = d.batch_sized(2, 8);
        let small = d.batch_sized(2, 3);
        assert_eq!(big.batch_slice(0, 3), small);
    }

    #[test]
    fn images_normalized() {
        let d = SyntheticCifar10::new(7);
        let b = d.batch_sized(0, 2);
        assert!(b.as_slice().iter().all(|&v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn labels_in_range() {
        let d = SyntheticCifar10::new(7);
        assert!(d.labels(0, 100).iter().all(|&l| l < 10));
    }

    #[test]
    fn argmax_and_agreement() {
        let a =
            Tensor::from_vec(Shape4::new(2, 1, 1, 3), vec![0.1, 0.8, 0.1, 0.6, 0.2, 0.2]).unwrap();
        let b =
            Tensor::from_vec(Shape4::new(2, 1, 1, 3), vec![0.2, 0.7, 0.1, 0.1, 0.8, 0.1]).unwrap();
        assert_eq!(argmax_classes(&a), vec![1, 0]);
        assert_eq!(top1_agreement(&a, &b), 0.5);
    }

    #[test]
    fn argmax_ties_break_first_index_wins() {
        // Regression: `max_by` keeps the *last* of equal elements, so the
        // old code reported class 2 for a [0.5, 0.5, 0.5] row. The fix
        // pins the numpy convention: the first maximal index wins.
        let tied = Tensor::from_vec(Shape4::new(1, 1, 1, 3), vec![0.5, 0.5, 0.5]).unwrap();
        assert_eq!(argmax_classes(&tied), vec![0]);
        let pair = Tensor::from_vec(Shape4::new(1, 1, 1, 4), vec![0.1, 0.7, 0.7, 0.2]).unwrap();
        assert_eq!(argmax_classes(&pair), vec![1]);
        // Two runs that tie the same way must agree — the whole point.
        assert_eq!(top1_agreement(&tied, &tied), 1.0);
    }

    #[test]
    fn argmax_handles_nan_and_negative_zero() {
        // total_cmp: positive-sign NaN orders above every number, so a
        // row with a NaN logit deterministically argmaxes to its first
        // NaN — never a panic, never a run-to-run flap.
        let nan = Tensor::from_vec(
            Shape4::new(2, 1, 1, 3),
            vec![0.9, f32::NAN, f32::NAN, f32::NAN, 0.9, 0.1],
        )
        .unwrap();
        assert_eq!(argmax_classes(&nan), vec![1, 0]);
        // An all-NaN row is class 0 by first-index-wins.
        let all_nan =
            Tensor::from_vec(Shape4::new(1, 1, 1, 3), vec![f32::NAN, f32::NAN, f32::NAN]).unwrap();
        assert_eq!(argmax_classes(&all_nan), vec![0]);
        // total_cmp orders -0.0 below +0.0; first-index still wins among
        // exact equals.
        let zeros = Tensor::from_vec(Shape4::new(1, 1, 1, 3), vec![-0.0, 0.0, 0.0]).unwrap();
        assert_eq!(argmax_classes(&zeros), vec![1]);
    }

    #[test]
    #[should_panic(expected = "spatial extent")]
    fn argmax_rejects_spatial_tensors() {
        // A [n, h, w, c] feature map must not be silently chunked into
        // h*w*n "class rows".
        let spatial = Tensor::from_vec(Shape4::new(1, 2, 2, 2), vec![0.0; 8]).unwrap();
        let _ = argmax_classes(&spatial);
    }

    #[test]
    fn empty_tensors_agree_vacuously() {
        // Regression: the `.max(1)` guard made zero-image tensors report
        // 0.0 "agreement", zeroing any frontier point that averaged an
        // empty eval batch in. Vacuous agreement is 1.0.
        let empty = Tensor::from_vec(Shape4::new(0, 1, 1, 10), vec![]).unwrap();
        assert!(argmax_classes(&empty).is_empty());
        assert_eq!(top1_agreement(&empty, &empty), 1.0);
        assert_eq!(class_agreement(&[], &[]), 1.0);
    }

    #[test]
    fn single_image_batch_agreement_is_zero_or_one() {
        let a = Tensor::from_vec(Shape4::new(1, 1, 1, 2), vec![0.9, 0.1]).unwrap();
        let b = Tensor::from_vec(Shape4::new(1, 1, 1, 2), vec![0.1, 0.9]).unwrap();
        assert_eq!(top1_agreement(&a, &a), 1.0);
        assert_eq!(top1_agreement(&a, &b), 0.0);
    }

    #[test]
    fn class_agreement_matches_top1_agreement() {
        let a =
            Tensor::from_vec(Shape4::new(2, 1, 1, 3), vec![0.1, 0.8, 0.1, 0.6, 0.2, 0.2]).unwrap();
        let b =
            Tensor::from_vec(Shape4::new(2, 1, 1, 3), vec![0.2, 0.7, 0.1, 0.1, 0.8, 0.1]).unwrap();
        assert_eq!(
            class_agreement(&argmax_classes(&a), &argmax_classes(&b)),
            top1_agreement(&a, &b)
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// `batch_sized(i, k)` is the first `k` images of any larger
            /// request with the same index and seed — the invariant that
            /// lets quick sweeps share inputs with full sweeps.
            #[test]
            fn batch_prefixes_deterministic(
                seed in 0u64..1000,
                index in 0usize..BATCHES,
                small in 0usize..6,
                extra in 0usize..6,
            ) {
                let d = SyntheticCifar10::new(seed);
                let big = d.batch_sized(index, small + extra);
                let small_batch = d.batch_sized(index, small);
                prop_assert_eq!(big.batch_slice(0, small), small_batch.clone());
                // Re-generation is bit-identical.
                prop_assert_eq!(d.batch_sized(index, small), small_batch);
            }

            /// Labels share the same prefix property and stay in range.
            #[test]
            fn label_prefixes_deterministic(
                seed in 0u64..1000,
                index in 0usize..BATCHES,
                small in 0usize..50,
                extra in 0usize..50,
            ) {
                let d = SyntheticCifar10::new(seed);
                let big = d.labels(index, small + extra);
                let small_labels = d.labels(index, small);
                prop_assert_eq!(&big[..small], &small_labels[..]);
                prop_assert_eq!(d.labels(index, small), small_labels);
                prop_assert!(big.iter().all(|&l| l < 10));
            }

            /// Agreement is symmetric, bounded, and 1.0 on identical
            /// inputs for every batch size including zero.
            #[test]
            fn agreement_bounds(
                n in 0usize..5,
                vals in proptest::collection::vec(-1.0f32..1.0, 0..50),
            ) {
                let c = 10;
                let mut data = vec![0.0f32; n * c];
                for (i, v) in vals.iter().enumerate() {
                    if i < data.len() {
                        data[i] = *v;
                    }
                }
                let t = Tensor::from_vec(Shape4::new(n, 1, 1, c), data.clone()).unwrap();
                let mut other = data;
                if let Some(x) = other.first_mut() {
                    *x += 2.0;
                }
                let u = Tensor::from_vec(Shape4::new(n, 1, 1, c), other).unwrap();
                prop_assert_eq!(top1_agreement(&t, &t), 1.0);
                let ab = top1_agreement(&t, &u);
                prop_assert_eq!(ab, top1_agreement(&u, &t));
                prop_assert!((0.0..=1.0).contains(&ab));
            }
        }
    }
}
