use std::fmt;

/// Errors from graph construction and execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// A layer received the wrong number of inputs.
    InputArity {
        /// The layer's name.
        layer: String,
        /// Inputs expected.
        expected: usize,
        /// Inputs received.
        got: usize,
    },
    /// A shape error bubbled up from the tensor layer.
    Tensor(axtensor::TensorError),
    /// A node referenced an id that does not exist (yet).
    UnknownNode(usize),
    /// A graph was built without an output node.
    NoOutput,
    /// A depth not of the form `6n + 2` was requested for a CIFAR ResNet.
    BadResNetDepth(usize),
    /// A layer-specific invariant was violated.
    Layer {
        /// The layer's name.
        layer: String,
        /// Description of the violation.
        message: String,
    },
    /// A segmented forward pass was given a segment table that does not
    /// partition the input's batch axis.
    SegmentMismatch {
        /// Images in the fused input batch.
        images: usize,
        /// Images the segment table covers.
        covered: usize,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::InputArity {
                layer,
                expected,
                got,
            } => write!(f, "layer '{layer}' expects {expected} inputs, got {got}"),
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            NnError::NoOutput => write!(f, "graph has no output node"),
            NnError::BadResNetDepth(d) => {
                write!(f, "CIFAR ResNet depth must be 6n+2, got {d}")
            }
            NnError::Layer { layer, message } => write!(f, "layer '{layer}': {message}"),
            NnError::SegmentMismatch { images, covered } => write!(
                f,
                "segment table covers {covered} images but the fused batch holds {images}"
            ),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<axtensor::TensorError> for NnError {
    fn from(e: axtensor::TensorError) -> Self {
        NnError::Tensor(e)
    }
}
