//! The operator interface every graph node implements.

use crate::layers::Conv2D;
use crate::NnError;
use axtensor::{SegmentTable, Shape4, Tensor};
use std::fmt;

/// A neural-network operator.
///
/// Layers are stateless at execution time (weights are owned by the layer,
/// activations flow through `forward`). Multi-input operators (residual
/// `Add`, the approximate convolution with its range scalars) receive
/// their inputs in the order the graph edges were declared.
pub trait Layer: fmt::Debug + Send + Sync {
    /// Operator type name (`"Conv2D"`, `"AxConv2D"`, `"ReLU"`, ...).
    fn op_name(&self) -> &str;

    /// Number of inputs the operator consumes.
    fn arity(&self) -> usize {
        1
    }

    /// Infer the output shape from the input shapes.
    ///
    /// # Errors
    ///
    /// Implementations return an error when arity or shapes are invalid.
    fn output_shape(&self, inputs: &[Shape4]) -> Result<Shape4, NnError>;

    /// Execute the operator.
    ///
    /// # Errors
    ///
    /// Implementations return an error when arity or shapes are invalid.
    fn forward(&self, inputs: &[&Tensor<f32>]) -> Result<Tensor<f32>, NnError>;

    /// Execute the operator on a *fused* batch in which `segments` marks
    /// contiguous per-request spans along the batch axis.
    ///
    /// The contract: the output must be **bit-identical** to running
    /// `forward` on each segment alone and concatenating the results
    /// along the batch axis. The default delegates to [`Layer::forward`],
    /// which is correct for every operator whose per-image output depends
    /// only on that image's data (element-wise ops, pooling, folded
    /// batch-norm, softmax, residual adds, plain convolutions). Operators
    /// that reduce or calibrate *across* the batch — the `Min`/`Max`
    /// range observers, and any layer resolving quantization coefficients
    /// from its input — must override this to keep each segment's view
    /// exactly what it would have seen solo.
    ///
    /// # Errors
    ///
    /// As [`Layer::forward`].
    fn forward_segmented(
        &self,
        inputs: &[&Tensor<f32>],
        segments: &SegmentTable,
    ) -> Result<Tensor<f32>, NnError> {
        let _ = segments;
        self.forward(inputs)
    }

    /// Multiply-accumulate operations performed for the given input
    /// shapes; 0 for non-arithmetic layers.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference failures.
    fn mac_count(&self, _inputs: &[Shape4]) -> Result<u64, NnError> {
        Ok(0)
    }

    /// Downcast hook used by the graph-rewrite pass: a standard 2D
    /// convolution exposes itself so it can be replaced by an approximate
    /// variant.
    fn as_conv2d(&self) -> Option<&Conv2D> {
        None
    }
}

/// Check an input slice length against the layer's arity.
///
/// # Errors
///
/// Returns [`NnError::InputArity`] on mismatch.
pub fn check_arity<T>(layer: &str, inputs: &[T], expected: usize) -> Result<(), NnError> {
    if inputs.len() == expected {
        Ok(())
    } else {
        Err(NnError::InputArity {
            layer: layer.to_owned(),
            expected,
            got: inputs.len(),
        })
    }
}
