//! The CIFAR-10 ResNet-(6n+2) family of Table I.
//!
//! He et al.'s CIFAR-10 residual networks: a 3×3 stem convolution with 16
//! filters, three stages of `n` residual blocks with {16, 32, 64} channels
//! (spatial resolution halving at stage transitions via stride-2
//! convolutions and parameter-free option-A shortcuts), global average
//! pooling and a 10-way dense classifier. Depth `6n + 2` gives the
//! ResNet-8 … ResNet-62 models of the paper; the number of 2D convolution
//! layers is `L = 6n + 1`, exactly the `L` column of Table I.
//!
//! Weights are synthetic but deterministic (He-style initialization from a
//! seed): the paper's measurements are weight-independent ("the content of
//! the LUT table ... does not have any impact on the execution time"), and
//! accuracy experiments only compare exact vs. approximate execution of
//! the *same* network.

use crate::graph::Graph;
use crate::layers::{BatchNorm, Conv2D, Dense, GlobalAvgPool, ReLU, ShortcutA, Softmax};
use crate::{NnError, NodeId};
use axtensor::{rng, ConvGeometry, FilterShape, Shape4};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The CIFAR-10 input shape (one image).
#[must_use]
pub fn cifar_input_shape(batch: usize) -> Shape4 {
    Shape4::new(batch, 32, 32, 3)
}

/// The ten depths evaluated in Table I: ResNet-8 … ResNet-62.
pub const TABLE1_DEPTHS: [usize; 10] = [8, 14, 20, 26, 32, 38, 44, 50, 56, 62];

/// Configuration of a CIFAR-10 ResNet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResNetConfig {
    n: usize,
}

impl ResNetConfig {
    /// `n` residual blocks per stage (depth `6n + 2`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "at least one block per stage");
        ResNetConfig { n }
    }

    /// Construct from a depth of the form `6n + 2` (8, 14, 20, …).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadResNetDepth`] otherwise.
    pub fn with_depth(depth: usize) -> Result<Self, NnError> {
        if depth < 8 || !(depth - 2).is_multiple_of(6) {
            return Err(NnError::BadResNetDepth(depth));
        }
        Ok(ResNetConfig { n: (depth - 2) / 6 })
    }

    /// Blocks per stage.
    #[must_use]
    pub fn blocks_per_stage(&self) -> usize {
        self.n
    }

    /// Network depth (`6n + 2`).
    #[must_use]
    pub fn depth(&self) -> usize {
        6 * self.n + 2
    }

    /// Number of 2D convolution layers (`6n + 1`) — Table I's `L`.
    #[must_use]
    pub fn conv_layers(&self) -> usize {
        6 * self.n + 1
    }

    /// Build the graph with deterministic weights derived from `seed`.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction failures (which would indicate a bug
    /// in this builder rather than bad input).
    pub fn build(&self, seed: u64) -> Result<Graph, NnError> {
        let mut b = Builder {
            graph: Graph::new(),
            seed,
            counter: 0,
        };
        let mut x = b.graph.input();
        // Stem.
        x = b.conv_bn_relu("stem", x, 3, 16, 1)?;
        // Stages.
        let widths = [16usize, 32, 64];
        let mut in_ch = 16usize;
        for (stage, &width) in widths.iter().enumerate() {
            for block in 0..self.n {
                let stride = if stage > 0 && block == 0 { 2 } else { 1 };
                x = b.residual_block(
                    &format!("stage{}_block{}", stage + 1, block + 1),
                    x,
                    in_ch,
                    width,
                    stride,
                )?;
                in_ch = width;
            }
        }
        // Head.
        let pool = b
            .graph
            .add("avgpool", Arc::new(GlobalAvgPool::new()), &[x])?;
        let dense = b.dense("fc", pool, 64, 10)?;
        let softmax = b.graph.add("softmax", Arc::new(Softmax::new()), &[dense])?;
        b.graph.set_output(softmax)?;
        Ok(b.graph)
    }

    /// Per-image MAC count of this configuration.
    ///
    /// # Errors
    ///
    /// Propagates build/shape failures.
    pub fn mac_count(&self) -> Result<u64, NnError> {
        self.build(0)?.mac_count(cifar_input_shape(1))
    }
}

struct Builder {
    graph: Graph,
    seed: u64,
    counter: u64,
}

impl Builder {
    fn next_seed(&mut self) -> u64 {
        self.counter += 1;
        // Distinct, deterministic per-layer stream.
        self.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.counter)
    }

    fn conv(
        &mut self,
        name: &str,
        input: NodeId,
        c_in: usize,
        c_out: usize,
        stride: usize,
    ) -> Result<NodeId, NnError> {
        let filter = rng::he_filter(FilterShape::new(3, 3, c_in, c_out), self.next_seed());
        let layer = Conv2D::new(filter, ConvGeometry::default().with_stride(stride));
        self.graph.add(name, Arc::new(layer), &[input])
    }

    fn batch_norm(&mut self, name: &str, input: NodeId, c: usize) -> Result<NodeId, NnError> {
        let mut rng = StdRng::seed_from_u64(self.next_seed());
        let scale: Vec<f32> = (0..c).map(|_| rng.gen_range(0.8..1.2)).collect();
        let shift: Vec<f32> = (0..c).map(|_| rng.gen_range(-0.1..0.1)).collect();
        self.graph
            .add(name, Arc::new(BatchNorm::new(scale, shift)), &[input])
    }

    fn conv_bn_relu(
        &mut self,
        prefix: &str,
        input: NodeId,
        c_in: usize,
        c_out: usize,
        stride: usize,
    ) -> Result<NodeId, NnError> {
        let c = self.conv(&format!("{prefix}/conv"), input, c_in, c_out, stride)?;
        let bn = self.batch_norm(&format!("{prefix}/bn"), c, c_out)?;
        self.graph
            .add(format!("{prefix}/relu"), Arc::new(ReLU::new()), &[bn])
    }

    fn residual_block(
        &mut self,
        prefix: &str,
        input: NodeId,
        c_in: usize,
        c_out: usize,
        stride: usize,
    ) -> Result<NodeId, NnError> {
        let main1 = self.conv_bn_relu(&format!("{prefix}/a"), input, c_in, c_out, stride)?;
        let conv2 = self.conv(&format!("{prefix}/b/conv"), main1, c_out, c_out, 1)?;
        let main2 = self.batch_norm(&format!("{prefix}/b/bn"), conv2, c_out)?;
        let shortcut = if stride != 1 || c_in != c_out {
            self.graph.add(
                format!("{prefix}/shortcut"),
                Arc::new(ShortcutA::new(stride, c_out)),
                &[input],
            )?
        } else {
            input
        };
        let add = self.graph.add(
            format!("{prefix}/add"),
            Arc::new(crate::layers::Add::new()),
            &[main2, shortcut],
        )?;
        self.graph
            .add(format!("{prefix}/relu"), Arc::new(ReLU::new()), &[add])
    }

    fn dense(
        &mut self,
        name: &str,
        input: NodeId,
        in_features: usize,
        out_features: usize,
    ) -> Result<NodeId, NnError> {
        let mut rng = StdRng::seed_from_u64(self.next_seed());
        let bound = (6.0 / in_features as f32).sqrt();
        let weights: Vec<f32> = (0..in_features * out_features)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        let bias = vec![0.0; out_features];
        self.graph.add(
            name,
            Arc::new(Dense::new(in_features, out_features, weights, bias)),
            &[input],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axtensor::Tensor;

    #[test]
    fn depth_parsing() {
        assert_eq!(ResNetConfig::with_depth(8).unwrap().blocks_per_stage(), 1);
        assert_eq!(ResNetConfig::with_depth(62).unwrap().blocks_per_stage(), 10);
        assert!(ResNetConfig::with_depth(9).is_err());
        assert!(ResNetConfig::with_depth(2).is_err());
    }

    #[test]
    fn conv_layer_count_matches_table1_l_column() {
        // Table I: ResNet-8 -> L=7, ResNet-62 -> L=61.
        for (depth, l) in [(8usize, 7usize), (14, 13), (20, 19), (62, 61)] {
            let cfg = ResNetConfig::with_depth(depth).unwrap();
            assert_eq!(cfg.conv_layers(), l);
            let g = cfg.build(1).unwrap();
            assert_eq!(g.conv_layer_count(), l, "depth {depth}");
        }
    }

    #[test]
    fn resnet8_forward_produces_distribution() {
        let g = ResNetConfig::with_depth(8).unwrap().build(7).unwrap();
        let input = axtensor::rng::uniform(cifar_input_shape(2), 3, -1.0, 1.0);
        let out = g.forward(&input).unwrap();
        assert_eq!(out.shape(), Shape4::new(2, 1, 1, 10));
        for row in out.as_slice().chunks(10) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&p| p.is_finite() && p >= 0.0));
        }
    }

    #[test]
    fn mac_count_increment_is_14m_per_n() {
        // The paper's # MACs column grows by ~14.2e6 per added n
        // (six 3x3 convolutions at 2.36e6 MACs each).
        let m1 = ResNetConfig::new(1).mac_count().unwrap();
        let m2 = ResNetConfig::new(2).mac_count().unwrap();
        let inc = m2 - m1;
        assert!((13_500_000..15_000_000).contains(&inc), "increment = {inc}");
    }

    #[test]
    fn mac_counts_grow_linearly_across_family() {
        let counts: Vec<u64> = TABLE1_DEPTHS
            .iter()
            .map(|&d| ResNetConfig::with_depth(d).unwrap().mac_count().unwrap())
            .collect();
        let inc0 = counts[1] - counts[0];
        for w in counts.windows(2) {
            let inc = w[1] - w[0];
            assert_eq!(inc, inc0, "constant slope");
        }
    }

    #[test]
    fn deterministic_weights() {
        let cfg = ResNetConfig::with_depth(8).unwrap();
        let a = cfg.build(5).unwrap();
        let b = cfg.build(5).unwrap();
        let input = axtensor::rng::uniform(cifar_input_shape(1), 9, -1.0, 1.0);
        let oa = a.forward(&input).unwrap();
        let ob = b.forward(&input).unwrap();
        assert_eq!(oa, ob);
        let c = cfg.build(6).unwrap();
        let oc = c.forward(&input).unwrap();
        assert_ne!(oa, oc);
    }

    #[test]
    fn activations_stay_finite_in_deep_network() {
        let g = ResNetConfig::with_depth(32).unwrap().build(11).unwrap();
        let input = axtensor::rng::uniform(cifar_input_shape(1), 13, -1.0, 1.0);
        let out: Tensor<f32> = g.forward(&input).unwrap();
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }
}
