//! Neural-network substrate: layers, graphs, rewriting, ResNets, data.
//!
//! TFApprox plugs its approximate convolution into TensorFlow by *graph
//! rewriting*: "all convolutional layers are identified and replaced by
//! corresponding approximate variants. During this process, the minimum
//! and maximum operators are inserted into the computational path and
//! connected to the approximate layers" (Fig. 1). This crate is the
//! framework side of that story:
//!
//! - [`Layer`]: the operator interface (multi-input forward, shape
//!   inference, MAC counting),
//! - [`layers`]: `Conv2D`, `ReLU`, folded `BatchNorm`, residual `Add`,
//!   pooling, `Dense`, `Softmax`, `Min`/`Max` observers, and the
//!   parameter-free ResNet shortcut,
//! - [`Graph`]: a DAG of named nodes with topological execution and the
//!   [`Graph::rewrite_convs`] transform (the paper's design flow, step 2),
//! - [`resnet`]: the CIFAR-10 ResNet-(6n+2) family of Table I with
//!   deterministic weights and MAC accounting,
//! - [`dataset`]: a synthetic CIFAR-10-shaped dataset (10 000 × 32×32×3,
//!   evaluated "in 10 batches consisting of 1000 images each").
//!
//! # Example
//!
//! ```
//! use axnn::resnet::ResNetConfig;
//!
//! # fn main() -> Result<(), axnn::NnError> {
//! let graph = ResNetConfig::with_depth(8)?.build(42)?;
//! assert_eq!(graph.conv_layer_count(), 7); // the paper's L for ResNet-8
//! # Ok(())
//! # }
//! ```

pub mod dataset;
pub mod graph;
pub mod layer;
pub mod layers;
pub mod models;
pub mod resnet;

mod error;

pub use error::NnError;
pub use graph::{Graph, NodeId};
pub use layer::Layer;
