//! Additional network families: VGG-style and LeNet-style CIFAR models.
//!
//! The paper evaluates on ResNets because depth is easy to sweep; a
//! credible emulator must also handle other topologies. These builders
//! provide a plain (non-residual) VGG-style stack with max pooling and a
//! small LeNet — both consume 32×32×3 inputs and emit 10-way
//! distributions, so every experiment harness works on them unchanged.

use crate::graph::Graph;
use crate::layers::{BatchNorm, Conv2D, Dense, GlobalAvgPool, MaxPool2D, ReLU, Softmax};
use crate::{NnError, NodeId};
use axtensor::{rng, ConvGeometry, FilterShape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Configuration of a VGG-style plain convolutional network.
#[derive(Debug, Clone)]
pub struct VggConfig {
    /// Channel widths per stage; each stage is `convs_per_stage`
    /// conv+BN+ReLU blocks followed by a 2×2 max pool.
    pub stage_widths: Vec<usize>,
    /// Convolutions per stage.
    pub convs_per_stage: usize,
}

impl VggConfig {
    /// The scaled-down CIFAR VGG used in the examples: three stages of
    /// {32, 64, 128} channels, two convs each (a "VGG-8").
    #[must_use]
    pub fn vgg8() -> Self {
        VggConfig {
            stage_widths: vec![32, 64, 128],
            convs_per_stage: 2,
        }
    }

    /// Number of convolution layers.
    #[must_use]
    pub fn conv_layers(&self) -> usize {
        self.stage_widths.len() * self.convs_per_stage
    }

    /// Build the graph with deterministic weights.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction failures.
    pub fn build(&self, seed: u64) -> Result<Graph, NnError> {
        let mut b = ModelBuilder::new(seed);
        let mut x = b.graph.input();
        let mut c_in = 3usize;
        for (stage, &width) in self.stage_widths.iter().enumerate() {
            for conv in 0..self.convs_per_stage {
                x = b.conv_bn_relu(
                    &format!("stage{}_conv{}", stage + 1, conv + 1),
                    x,
                    c_in,
                    width,
                )?;
                c_in = width;
            }
            x = b.graph.add(
                format!("stage{}_pool", stage + 1),
                Arc::new(MaxPool2D::halving()),
                &[x],
            )?;
        }
        let pool = b.graph.add("gap", Arc::new(GlobalAvgPool::new()), &[x])?;
        let last = *self.stage_widths.last().expect("non-empty stages");
        let dense = b.dense("fc", pool, last, 10)?;
        let out = b.graph.add("softmax", Arc::new(Softmax::new()), &[dense])?;
        b.graph.set_output(out)?;
        Ok(b.graph)
    }
}

/// A LeNet-style small CNN for 32×32×3 inputs: two 5×5 conv+pool stages
/// and a dense classifier.
///
/// # Errors
///
/// Propagates graph-construction failures.
pub fn lenet(seed: u64) -> Result<Graph, NnError> {
    let mut b = ModelBuilder::new(seed);
    let x = b.graph.input();
    let c1 = b.conv5("conv1", x, 3, 6)?;
    let r1 = b.graph.add("relu1", Arc::new(ReLU::new()), &[c1])?;
    let p1 = b
        .graph
        .add("pool1", Arc::new(MaxPool2D::halving()), &[r1])?;
    let c2 = b.conv5("conv2", p1, 6, 16)?;
    let r2 = b.graph.add("relu2", Arc::new(ReLU::new()), &[c2])?;
    let p2 = b
        .graph
        .add("pool2", Arc::new(MaxPool2D::halving()), &[r2])?;
    // 32 -> (SAME conv) 32 -> pool 16 -> conv 16 -> pool 8: 8*8*16 feats.
    let d1 = b.dense("fc1", p2, 8 * 8 * 16, 84)?;
    let r3 = b.graph.add("relu3", Arc::new(ReLU::new()), &[d1])?;
    let d2 = b.dense("fc2", r3, 84, 10)?;
    let out = b.graph.add("softmax", Arc::new(Softmax::new()), &[d2])?;
    b.graph.set_output(out)?;
    Ok(b.graph)
}

struct ModelBuilder {
    graph: Graph,
    seed: u64,
    counter: u64,
}

impl ModelBuilder {
    fn new(seed: u64) -> Self {
        ModelBuilder {
            graph: Graph::new(),
            seed,
            counter: 0,
        }
    }

    fn next_seed(&mut self) -> u64 {
        self.counter += 1;
        self.seed
            .wrapping_mul(0xD134_2543_DE82_EF95)
            .wrapping_add(self.counter)
    }

    fn conv_bn_relu(
        &mut self,
        prefix: &str,
        input: NodeId,
        c_in: usize,
        c_out: usize,
    ) -> Result<NodeId, NnError> {
        let filter = rng::he_filter(FilterShape::new(3, 3, c_in, c_out), self.next_seed());
        let conv = self.graph.add(
            format!("{prefix}/conv"),
            Arc::new(Conv2D::new(filter, ConvGeometry::default())),
            &[input],
        )?;
        let mut r = StdRng::seed_from_u64(self.next_seed());
        let scale: Vec<f32> = (0..c_out).map(|_| r.gen_range(0.8..1.2)).collect();
        let shift: Vec<f32> = (0..c_out).map(|_| r.gen_range(-0.1..0.1)).collect();
        let bn = self.graph.add(
            format!("{prefix}/bn"),
            Arc::new(BatchNorm::new(scale, shift)),
            &[conv],
        )?;
        self.graph
            .add(format!("{prefix}/relu"), Arc::new(ReLU::new()), &[bn])
    }

    fn conv5(
        &mut self,
        name: &str,
        input: NodeId,
        c_in: usize,
        c_out: usize,
    ) -> Result<NodeId, NnError> {
        let filter = rng::he_filter(FilterShape::new(5, 5, c_in, c_out), self.next_seed());
        self.graph.add(
            name,
            Arc::new(Conv2D::new(filter, ConvGeometry::default())),
            &[input],
        )
    }

    fn dense(
        &mut self,
        name: &str,
        input: NodeId,
        in_features: usize,
        out_features: usize,
    ) -> Result<NodeId, NnError> {
        let mut r = StdRng::seed_from_u64(self.next_seed());
        let bound = (6.0 / in_features as f32).sqrt();
        let weights: Vec<f32> = (0..in_features * out_features)
            .map(|_| r.gen_range(-bound..bound))
            .collect();
        self.graph.add(
            name,
            Arc::new(Dense::new(
                in_features,
                out_features,
                weights,
                vec![0.0; out_features],
            )),
            &[input],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resnet::cifar_input_shape;
    use axtensor::Shape4;

    #[test]
    fn vgg8_builds_and_runs() {
        let cfg = VggConfig::vgg8();
        assert_eq!(cfg.conv_layers(), 6);
        let g = cfg.build(1).unwrap();
        assert_eq!(g.conv_layer_count(), 6);
        let input = axtensor::rng::uniform(cifar_input_shape(2), 2, -1.0, 1.0);
        let out = g.forward(&input).unwrap();
        assert_eq!(out.shape(), Shape4::new(2, 1, 1, 10));
        for row in out.as_slice().chunks(10) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn lenet_builds_and_runs() {
        let g = lenet(3).unwrap();
        assert_eq!(g.conv_layer_count(), 2);
        let input = axtensor::rng::uniform(cifar_input_shape(1), 4, -1.0, 1.0);
        let out = g.forward(&input).unwrap();
        assert_eq!(out.shape(), Shape4::new(1, 1, 1, 10));
    }

    #[test]
    fn vgg_mac_count_positive_and_deterministic() {
        let cfg = VggConfig::vgg8();
        let a = cfg
            .build(7)
            .unwrap()
            .mac_count(cifar_input_shape(1))
            .unwrap();
        let b = cfg
            .build(9)
            .unwrap()
            .mac_count(cifar_input_shape(1))
            .unwrap();
        assert_eq!(a, b, "MACs are architecture-determined");
        assert!(a > 10_000_000);
    }
}
