//! Residual addition and the min/max observer operators of Fig. 1.

use crate::layer::{check_arity, Layer};
use crate::NnError;
use axtensor::{ops, Shape4, Tensor};

/// Element-wise residual addition of two tensors.
#[derive(Debug, Clone, Copy, Default)]
pub struct Add;

impl Add {
    /// Create an addition layer.
    #[must_use]
    pub fn new() -> Self {
        Add
    }
}

impl Layer for Add {
    fn op_name(&self) -> &str {
        "Add"
    }

    fn arity(&self) -> usize {
        2
    }

    fn output_shape(&self, inputs: &[Shape4]) -> Result<Shape4, NnError> {
        check_arity(self.op_name(), inputs, 2)?;
        if inputs[0] != inputs[1] {
            return Err(NnError::Tensor(axtensor::TensorError::ShapeMismatch {
                a: inputs[0],
                b: inputs[1],
            }));
        }
        Ok(inputs[0])
    }

    fn forward(&self, inputs: &[&Tensor<f32>]) -> Result<Tensor<f32>, NnError> {
        check_arity(self.op_name(), inputs, 2)?;
        Ok(ops::add(inputs[0], inputs[1])?)
    }
}

/// The `Min` observer the graph transform inserts before each approximate
/// layer: reduces its input to a `[1,1,1,1]` scalar tensor, evaluated once
/// per batch.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinOf;

impl MinOf {
    /// Create a min observer.
    #[must_use]
    pub fn new() -> Self {
        MinOf
    }
}

impl Layer for MinOf {
    fn op_name(&self) -> &str {
        "Min"
    }

    fn output_shape(&self, inputs: &[Shape4]) -> Result<Shape4, NnError> {
        check_arity(self.op_name(), inputs, 1)?;
        Ok(Shape4::new(1, 1, 1, 1))
    }

    fn forward(&self, inputs: &[&Tensor<f32>]) -> Result<Tensor<f32>, NnError> {
        check_arity(self.op_name(), inputs, 1)?;
        let (lo, _) = ops::min_max(inputs[0]);
        Ok(Tensor::from_vec(Shape4::new(1, 1, 1, 1), vec![lo])?)
    }
}

/// The `Max` observer, the counterpart of [`MinOf`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxOf;

impl MaxOf {
    /// Create a max observer.
    #[must_use]
    pub fn new() -> Self {
        MaxOf
    }
}

impl Layer for MaxOf {
    fn op_name(&self) -> &str {
        "Max"
    }

    fn output_shape(&self, inputs: &[Shape4]) -> Result<Shape4, NnError> {
        check_arity(self.op_name(), inputs, 1)?;
        Ok(Shape4::new(1, 1, 1, 1))
    }

    fn forward(&self, inputs: &[&Tensor<f32>]) -> Result<Tensor<f32>, NnError> {
        check_arity(self.op_name(), inputs, 1)?;
        let (_, hi) = ops::min_max(inputs[0]);
        Ok(Tensor::from_vec(Shape4::new(1, 1, 1, 1), vec![hi])?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_two_tensors() {
        let a = Tensor::from_vec(Shape4::new(1, 1, 2, 1), vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(Shape4::new(1, 1, 2, 1), vec![0.5, -2.0]).unwrap();
        let out = Add::new().forward(&[&a, &b]).unwrap();
        assert_eq!(out.as_slice(), &[1.5, 0.0]);
    }

    #[test]
    fn add_rejects_mismatched_shapes() {
        let a = Tensor::<f32>::zeros(Shape4::new(1, 1, 2, 1));
        let b = Tensor::<f32>::zeros(Shape4::new(1, 1, 3, 1));
        assert!(Add::new().forward(&[&a, &b]).is_err());
    }

    #[test]
    fn observers_reduce_to_scalars() {
        let t = Tensor::from_vec(Shape4::new(1, 1, 3, 1), vec![-4.0, 2.0, 9.0]).unwrap();
        let lo = MinOf::new().forward(&[&t]).unwrap();
        let hi = MaxOf::new().forward(&[&t]).unwrap();
        assert_eq!(lo.shape(), Shape4::new(1, 1, 1, 1));
        assert_eq!(lo.as_slice(), &[-4.0]);
        assert_eq!(hi.as_slice(), &[9.0]);
    }
}
