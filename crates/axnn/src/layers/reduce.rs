//! Residual addition and the min/max observer operators of Fig. 1.

use crate::layer::{check_arity, Layer};
use crate::NnError;
use axtensor::{ops, SegmentTable, Shape4, Tensor};

/// Reduce each segment of a fused batch with `pick` over the solo
/// `(min, max)` semantics of [`ops::min_max_slice`], producing one
/// scalar per segment as an `[S, 1, 1, 1]` tensor.
///
/// An NHWC batch is contiguous per image, so a segment's elements are
/// one contiguous slice — each segment sees exactly the values (and the
/// empty-tensor / NaN semantics) a solo observer over that request
/// would see, which is the bit-identity anchor of batch fusion.
fn observe_segments(
    input: &Tensor<f32>,
    segments: &SegmentTable,
    pick: impl Fn((f32, f32)) -> f32,
) -> Result<Tensor<f32>, NnError> {
    let shape = input.shape();
    if segments.total() != shape.n {
        return Err(NnError::SegmentMismatch {
            images: shape.n,
            covered: segments.total(),
        });
    }
    let per = shape.h * shape.w * shape.c;
    let data = input.as_slice();
    let values: Vec<f32> = segments
        .iter()
        .map(|(start, end)| pick(ops::min_max_slice(&data[start * per..end * per])))
        .collect();
    Ok(Tensor::from_vec(
        Shape4::new(segments.len(), 1, 1, 1),
        values,
    )?)
}

/// Element-wise residual addition of two tensors.
#[derive(Debug, Clone, Copy, Default)]
pub struct Add;

impl Add {
    /// Create an addition layer.
    #[must_use]
    pub fn new() -> Self {
        Add
    }
}

impl Layer for Add {
    fn op_name(&self) -> &str {
        "Add"
    }

    fn arity(&self) -> usize {
        2
    }

    fn output_shape(&self, inputs: &[Shape4]) -> Result<Shape4, NnError> {
        check_arity(self.op_name(), inputs, 2)?;
        if inputs[0] != inputs[1] {
            return Err(NnError::Tensor(axtensor::TensorError::ShapeMismatch {
                a: inputs[0],
                b: inputs[1],
            }));
        }
        Ok(inputs[0])
    }

    fn forward(&self, inputs: &[&Tensor<f32>]) -> Result<Tensor<f32>, NnError> {
        check_arity(self.op_name(), inputs, 2)?;
        Ok(ops::add(inputs[0], inputs[1])?)
    }
}

/// The `Min` observer the graph transform inserts before each approximate
/// layer: reduces its input to a `[1,1,1,1]` scalar tensor, evaluated once
/// per batch.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinOf;

impl MinOf {
    /// Create a min observer.
    #[must_use]
    pub fn new() -> Self {
        MinOf
    }
}

impl Layer for MinOf {
    fn op_name(&self) -> &str {
        "Min"
    }

    fn output_shape(&self, inputs: &[Shape4]) -> Result<Shape4, NnError> {
        check_arity(self.op_name(), inputs, 1)?;
        Ok(Shape4::new(1, 1, 1, 1))
    }

    fn forward(&self, inputs: &[&Tensor<f32>]) -> Result<Tensor<f32>, NnError> {
        check_arity(self.op_name(), inputs, 1)?;
        let (lo, _) = ops::min_max(inputs[0]);
        Ok(Tensor::from_vec(Shape4::new(1, 1, 1, 1), vec![lo])?)
    }

    /// One minimum per segment, as an `[S, 1, 1, 1]` tensor — each
    /// segment observed exactly as a solo batch would be.
    fn forward_segmented(
        &self,
        inputs: &[&Tensor<f32>],
        segments: &SegmentTable,
    ) -> Result<Tensor<f32>, NnError> {
        check_arity(self.op_name(), inputs, 1)?;
        observe_segments(inputs[0], segments, |(lo, _)| lo)
    }
}

/// The `Max` observer, the counterpart of [`MinOf`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxOf;

impl MaxOf {
    /// Create a max observer.
    #[must_use]
    pub fn new() -> Self {
        MaxOf
    }
}

impl Layer for MaxOf {
    fn op_name(&self) -> &str {
        "Max"
    }

    fn output_shape(&self, inputs: &[Shape4]) -> Result<Shape4, NnError> {
        check_arity(self.op_name(), inputs, 1)?;
        Ok(Shape4::new(1, 1, 1, 1))
    }

    fn forward(&self, inputs: &[&Tensor<f32>]) -> Result<Tensor<f32>, NnError> {
        check_arity(self.op_name(), inputs, 1)?;
        let (_, hi) = ops::min_max(inputs[0]);
        Ok(Tensor::from_vec(Shape4::new(1, 1, 1, 1), vec![hi])?)
    }

    /// One maximum per segment, as an `[S, 1, 1, 1]` tensor.
    fn forward_segmented(
        &self,
        inputs: &[&Tensor<f32>],
        segments: &SegmentTable,
    ) -> Result<Tensor<f32>, NnError> {
        check_arity(self.op_name(), inputs, 1)?;
        observe_segments(inputs[0], segments, |(_, hi)| hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_two_tensors() {
        let a = Tensor::from_vec(Shape4::new(1, 1, 2, 1), vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(Shape4::new(1, 1, 2, 1), vec![0.5, -2.0]).unwrap();
        let out = Add::new().forward(&[&a, &b]).unwrap();
        assert_eq!(out.as_slice(), &[1.5, 0.0]);
    }

    #[test]
    fn add_rejects_mismatched_shapes() {
        let a = Tensor::<f32>::zeros(Shape4::new(1, 1, 2, 1));
        let b = Tensor::<f32>::zeros(Shape4::new(1, 1, 3, 1));
        assert!(Add::new().forward(&[&a, &b]).is_err());
    }

    #[test]
    fn observers_reduce_to_scalars() {
        let t = Tensor::from_vec(Shape4::new(1, 1, 3, 1), vec![-4.0, 2.0, 9.0]).unwrap();
        let lo = MinOf::new().forward(&[&t]).unwrap();
        let hi = MaxOf::new().forward(&[&t]).unwrap();
        assert_eq!(lo.shape(), Shape4::new(1, 1, 1, 1));
        assert_eq!(lo.as_slice(), &[-4.0]);
        assert_eq!(hi.as_slice(), &[9.0]);
    }

    #[test]
    fn segmented_observers_match_solo_per_segment() {
        // 4 images of 1×2×1; segments 2/0/2 — each segment's scalar must
        // equal a solo observation of that segment, including (0, 0) for
        // the empty one.
        let t = Tensor::from_vec(
            Shape4::new(4, 1, 2, 1),
            vec![1.0, -3.0, 2.5, 0.5, -7.0, 4.0, 0.0, 6.0],
        )
        .unwrap();
        let segs = SegmentTable::from_counts(&[2, 0, 2]);
        let lo = MinOf::new().forward_segmented(&[&t], &segs).unwrap();
        let hi = MaxOf::new().forward_segmented(&[&t], &segs).unwrap();
        assert_eq!(lo.shape(), Shape4::new(3, 1, 1, 1));
        assert_eq!(lo.as_slice(), &[-3.0, 0.0, -7.0]);
        assert_eq!(hi.as_slice(), &[2.5, 0.0, 6.0]);
        // Cross-check against solo forward over each segment slice.
        for (i, (start, end)) in segs.iter().enumerate() {
            if start == end {
                continue;
            }
            let part = t.batch_slice(start, end - start);
            assert_eq!(
                MinOf::new().forward(&[&part]).unwrap().as_slice()[0],
                lo.as_slice()[i]
            );
            assert_eq!(
                MaxOf::new().forward(&[&part]).unwrap().as_slice()[0],
                hi.as_slice()[i]
            );
        }
    }

    #[test]
    fn segmented_observers_propagate_nan_only_within_the_segment() {
        let t = Tensor::from_vec(Shape4::new(2, 1, 1, 1), vec![f32::NAN, 5.0]).unwrap();
        let segs = SegmentTable::from_counts(&[1, 1]);
        let lo = MinOf::new().forward_segmented(&[&t], &segs).unwrap();
        assert!(lo.as_slice()[0].is_nan());
        assert_eq!(lo.as_slice()[1], 5.0);
    }

    #[test]
    fn segmented_observer_rejects_mismatched_table() {
        let t = Tensor::<f32>::zeros(Shape4::new(3, 1, 1, 1));
        let err = MinOf::new()
            .forward_segmented(&[&t], &SegmentTable::from_counts(&[2]))
            .unwrap_err();
        assert!(matches!(err, NnError::SegmentMismatch { .. }));
    }
}
