//! Fully connected layer.

use crate::layer::{check_arity, Layer};
use crate::NnError;
use axtensor::{Shape4, Tensor};

/// Dense (fully connected) layer over flattened `[n, 1, 1, c]` features.
#[derive(Debug, Clone)]
pub struct Dense {
    /// Row-major `[in, out]` weights.
    weights: Vec<f32>,
    bias: Vec<f32>,
    in_features: usize,
    out_features: usize,
}

impl Dense {
    /// Create from row-major `[in, out]` weights and a bias of length
    /// `out`.
    ///
    /// # Panics
    ///
    /// Panics if the buffer sizes are inconsistent.
    #[must_use]
    pub fn new(in_features: usize, out_features: usize, weights: Vec<f32>, bias: Vec<f32>) -> Self {
        assert_eq!(weights.len(), in_features * out_features);
        assert_eq!(bias.len(), out_features);
        Dense {
            weights,
            bias,
            in_features,
            out_features,
        }
    }

    /// Input feature count.
    #[must_use]
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    #[must_use]
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Row-major `[in, out]` weights.
    #[must_use]
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Per-output bias.
    #[must_use]
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }
}

impl Layer for Dense {
    fn op_name(&self) -> &str {
        "Dense"
    }

    fn output_shape(&self, inputs: &[Shape4]) -> Result<Shape4, NnError> {
        check_arity(self.op_name(), inputs, 1)?;
        let s = inputs[0];
        if s.h * s.w * s.c != self.in_features {
            return Err(NnError::Layer {
                layer: self.op_name().to_owned(),
                message: format!(
                    "input features {} != layer in_features {}",
                    s.h * s.w * s.c,
                    self.in_features
                ),
            });
        }
        Ok(Shape4::new(s.n, 1, 1, self.out_features))
    }

    fn forward(&self, inputs: &[&Tensor<f32>]) -> Result<Tensor<f32>, NnError> {
        let out_shape = self.output_shape(&[inputs[0].shape()])?;
        let x = inputs[0];
        let n = x.shape().n;
        let mut out = Tensor::<f32>::zeros(out_shape);
        let src = x.as_slice();
        for b in 0..n {
            let row = &src[b * self.in_features..(b + 1) * self.in_features];
            for o in 0..self.out_features {
                let mut acc = self.bias[o];
                for (i, &v) in row.iter().enumerate() {
                    acc += v * self.weights[i * self.out_features + o];
                }
                *out.at_mut(b, 0, 0, o) = acc;
            }
        }
        Ok(out)
    }

    fn mac_count(&self, inputs: &[Shape4]) -> Result<u64, NnError> {
        check_arity(self.op_name(), inputs, 1)?;
        Ok((inputs[0].n * self.in_features * self.out_features) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_weights() {
        let d = Dense::new(2, 2, vec![1.0, 0.0, 0.0, 1.0], vec![0.0, 0.0]);
        let x = Tensor::from_vec(Shape4::new(1, 1, 1, 2), vec![3.0, -1.0]).unwrap();
        let out = d.forward(&[&x]).unwrap();
        assert_eq!(out.as_slice(), &[3.0, -1.0]);
    }

    #[test]
    fn bias_and_mixing() {
        let d = Dense::new(2, 1, vec![2.0, -1.0], vec![0.5]);
        let x = Tensor::from_vec(Shape4::new(1, 1, 1, 2), vec![1.0, 3.0]).unwrap();
        let out = d.forward(&[&x]).unwrap();
        assert_eq!(out.as_slice(), &[2.0 - 3.0 + 0.5]);
    }

    #[test]
    fn feature_mismatch_rejected() {
        let d = Dense::new(4, 2, vec![0.0; 8], vec![0.0; 2]);
        let x = Tensor::<f32>::zeros(Shape4::new(1, 1, 1, 3));
        assert!(d.forward(&[&x]).is_err());
    }

    #[test]
    fn mac_count_scales_with_batch() {
        let d = Dense::new(64, 10, vec![0.0; 640], vec![0.0; 10]);
        assert_eq!(d.mac_count(&[Shape4::new(5, 1, 1, 64)]).unwrap(), 3200);
    }
}
