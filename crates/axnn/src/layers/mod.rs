//! The layer zoo.

mod activation;
mod conv;
mod dense;
mod maxpool;
mod norm;
mod pool;
mod reduce;
mod shortcut;

pub use activation::{ReLU, Softmax};
pub use conv::Conv2D;
pub use dense::Dense;
pub use maxpool::MaxPool2D;
pub use norm::BatchNorm;
pub use pool::GlobalAvgPool;
pub use reduce::{Add, MaxOf, MinOf};
pub use shortcut::ShortcutA;
