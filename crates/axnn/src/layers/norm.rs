//! Inference-time (folded) batch normalization.

use crate::layer::{check_arity, Layer};
use crate::NnError;
use axtensor::{Shape4, Tensor};

/// Batch normalization folded into a per-channel affine transform
/// `y = scale[c] · x + shift[c]` — the form it takes in a frozen
/// inference graph.
#[derive(Debug, Clone)]
pub struct BatchNorm {
    scale: Vec<f32>,
    shift: Vec<f32>,
}

impl BatchNorm {
    /// Create from per-channel scale and shift.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    #[must_use]
    pub fn new(scale: Vec<f32>, shift: Vec<f32>) -> Self {
        assert_eq!(scale.len(), shift.len(), "scale/shift length mismatch");
        BatchNorm { scale, shift }
    }

    /// Identity normalization over `c` channels.
    #[must_use]
    pub fn identity(c: usize) -> Self {
        BatchNorm {
            scale: vec![1.0; c],
            shift: vec![0.0; c],
        }
    }

    /// Number of channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.scale.len()
    }
}

impl Layer for BatchNorm {
    fn op_name(&self) -> &str {
        "BatchNorm"
    }

    fn output_shape(&self, inputs: &[Shape4]) -> Result<Shape4, NnError> {
        check_arity(self.op_name(), inputs, 1)?;
        if inputs[0].c != self.channels() {
            return Err(NnError::Layer {
                layer: self.op_name().to_owned(),
                message: format!(
                    "input has {} channels, layer has {}",
                    inputs[0].c,
                    self.channels()
                ),
            });
        }
        Ok(inputs[0])
    }

    fn forward(&self, inputs: &[&Tensor<f32>]) -> Result<Tensor<f32>, NnError> {
        self.output_shape(&[inputs[0].shape()])?;
        let c = self.channels();
        let mut out = inputs[0].clone();
        for (i, v) in out.as_mut_slice().iter_mut().enumerate() {
            let ch = i % c;
            *v = self.scale[ch] * *v + self.shift[ch];
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_channel_affine() {
        let t = Tensor::from_vec(Shape4::new(1, 1, 2, 2), vec![1.0, 1.0, 2.0, 2.0]).unwrap();
        let bn = BatchNorm::new(vec![2.0, -1.0], vec![0.5, 0.0]);
        let out = bn.forward(&[&t]).unwrap();
        assert_eq!(out.as_slice(), &[2.5, -1.0, 4.5, -2.0]);
    }

    #[test]
    fn identity_is_noop() {
        let t = Tensor::from_vec(Shape4::new(1, 1, 2, 2), vec![1.0, -2.0, 3.0, -4.0]).unwrap();
        let out = BatchNorm::identity(2).forward(&[&t]).unwrap();
        assert_eq!(out, t);
    }

    #[test]
    fn channel_mismatch_rejected() {
        let t = Tensor::<f32>::zeros(Shape4::new(1, 1, 1, 3));
        let bn = BatchNorm::identity(2);
        assert!(bn.forward(&[&t]).is_err());
    }
}
