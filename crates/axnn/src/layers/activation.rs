//! Element-wise activations.

use crate::layer::{check_arity, Layer};
use crate::NnError;
use axtensor::{ops, Shape4, Tensor};

/// Rectified linear unit.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReLU;

impl ReLU {
    /// Create a ReLU layer.
    #[must_use]
    pub fn new() -> Self {
        ReLU
    }
}

impl Layer for ReLU {
    fn op_name(&self) -> &str {
        "ReLU"
    }

    fn output_shape(&self, inputs: &[Shape4]) -> Result<Shape4, NnError> {
        check_arity(self.op_name(), inputs, 1)?;
        Ok(inputs[0])
    }

    fn forward(&self, inputs: &[&Tensor<f32>]) -> Result<Tensor<f32>, NnError> {
        check_arity(self.op_name(), inputs, 1)?;
        Ok(ops::relu(inputs[0]))
    }
}

/// Channel-wise softmax over the last dimension.
#[derive(Debug, Clone, Copy, Default)]
pub struct Softmax;

impl Softmax {
    /// Create a softmax layer.
    #[must_use]
    pub fn new() -> Self {
        Softmax
    }
}

impl Layer for Softmax {
    fn op_name(&self) -> &str {
        "Softmax"
    }

    fn output_shape(&self, inputs: &[Shape4]) -> Result<Shape4, NnError> {
        check_arity(self.op_name(), inputs, 1)?;
        Ok(inputs[0])
    }

    fn forward(&self, inputs: &[&Tensor<f32>]) -> Result<Tensor<f32>, NnError> {
        check_arity(self.op_name(), inputs, 1)?;
        let x = inputs[0];
        let c = x.shape().c;
        let mut out = x.clone();
        for row in out.as_mut_slice().chunks_mut(c) {
            let peak = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
            let mut sum = 0f32;
            for v in row.iter_mut() {
                *v = (*v - peak).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axtensor::Shape4;

    #[test]
    fn relu_preserves_shape_and_clamps() {
        let t = Tensor::from_vec(Shape4::new(1, 1, 2, 2), vec![-1.0, 2.0, -3.0, 4.0]).unwrap();
        let out = ReLU::new().forward(&[&t]).unwrap();
        assert_eq!(out.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t =
            Tensor::from_vec(Shape4::new(2, 1, 1, 3), vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let out = Softmax::new().forward(&[&t]).unwrap();
        for row in out.as_slice().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(row.windows(2).all(|w| w[0] < w[1])); // monotone inputs
        }
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let t = Tensor::from_vec(Shape4::new(1, 1, 1, 2), vec![1000.0, 1001.0]).unwrap();
        let out = Softmax::new().forward(&[&t]).unwrap();
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }
}
