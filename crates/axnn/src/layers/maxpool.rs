//! Spatial max pooling.

use crate::layer::{check_arity, Layer};
use crate::NnError;
use axtensor::{Shape4, Tensor};

/// Max pooling over non-overlapping (or strided) spatial windows.
#[derive(Debug, Clone, Copy)]
pub struct MaxPool2D {
    kernel: usize,
    stride: usize,
}

impl MaxPool2D {
    /// A `kernel × kernel` max pool with the given stride.
    ///
    /// # Panics
    ///
    /// Panics if kernel or stride is 0.
    #[must_use]
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0 && stride > 0, "degenerate pooling window");
        MaxPool2D { kernel, stride }
    }

    /// The classic 2×2 stride-2 pool.
    #[must_use]
    pub fn halving() -> Self {
        MaxPool2D::new(2, 2)
    }
}

impl Layer for MaxPool2D {
    fn op_name(&self) -> &str {
        "MaxPool2D"
    }

    fn output_shape(&self, inputs: &[Shape4]) -> Result<Shape4, NnError> {
        check_arity(self.op_name(), inputs, 1)?;
        let s = inputs[0];
        if s.h < self.kernel || s.w < self.kernel {
            return Err(NnError::Layer {
                layer: self.op_name().to_owned(),
                message: format!("input {}x{} smaller than window {}", s.h, s.w, self.kernel),
            });
        }
        Ok(Shape4::new(
            s.n,
            (s.h - self.kernel) / self.stride + 1,
            (s.w - self.kernel) / self.stride + 1,
            s.c,
        ))
    }

    fn forward(&self, inputs: &[&Tensor<f32>]) -> Result<Tensor<f32>, NnError> {
        let out_shape = self.output_shape(&[inputs[0].shape()])?;
        let x = inputs[0];
        let mut out = Tensor::<f32>::zeros(out_shape);
        for n in 0..out_shape.n {
            for oy in 0..out_shape.h {
                for ox in 0..out_shape.w {
                    for c in 0..out_shape.c {
                        let mut best = f32::NEG_INFINITY;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                best = best.max(x.at(
                                    n,
                                    oy * self.stride + ky,
                                    ox * self.stride + kx,
                                    c,
                                ));
                            }
                        }
                        *out.at_mut(n, oy, ox, c) = best;
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halving_pool_takes_window_max() {
        let t = Tensor::from_fn(Shape4::new(1, 4, 4, 1), |_, h, w, _| (h * 4 + w) as f32);
        let out = MaxPool2D::halving().forward(&[&t]).unwrap();
        assert_eq!(out.shape(), Shape4::new(1, 2, 2, 1));
        assert_eq!(out.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn channels_pooled_independently() {
        let t = Tensor::from_fn(Shape4::new(1, 2, 2, 2), |_, h, w, c| {
            if c == 0 {
                (h + w) as f32
            } else {
                -(h as f32)
            }
        });
        let out = MaxPool2D::halving().forward(&[&t]).unwrap();
        assert_eq!(out.as_slice(), &[2.0, 0.0]);
    }

    #[test]
    fn undersized_input_rejected() {
        let t = Tensor::<f32>::zeros(Shape4::new(1, 1, 1, 1));
        assert!(MaxPool2D::halving().forward(&[&t]).is_err());
    }

    #[test]
    fn overlapping_windows() {
        let t = Tensor::from_fn(Shape4::new(1, 3, 3, 1), |_, h, w, _| (h * 3 + w) as f32);
        let out = MaxPool2D::new(2, 1).forward(&[&t]).unwrap();
        assert_eq!(out.shape(), Shape4::new(1, 2, 2, 1));
        assert_eq!(out.as_slice(), &[4.0, 5.0, 7.0, 8.0]);
    }
}
