//! Pooling layers.

use crate::layer::{check_arity, Layer};
use crate::NnError;
use axtensor::{Shape4, Tensor};

/// Global average pooling: `[n, h, w, c] → [n, 1, 1, c]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalAvgPool;

impl GlobalAvgPool {
    /// Create a global average pooling layer.
    #[must_use]
    pub fn new() -> Self {
        GlobalAvgPool
    }
}

impl Layer for GlobalAvgPool {
    fn op_name(&self) -> &str {
        "GlobalAvgPool"
    }

    fn output_shape(&self, inputs: &[Shape4]) -> Result<Shape4, NnError> {
        check_arity(self.op_name(), inputs, 1)?;
        Ok(Shape4::new(inputs[0].n, 1, 1, inputs[0].c))
    }

    fn forward(&self, inputs: &[&Tensor<f32>]) -> Result<Tensor<f32>, NnError> {
        check_arity(self.op_name(), inputs, 1)?;
        let x = inputs[0];
        let s = x.shape();
        let area = (s.h * s.w) as f32;
        let mut out = Tensor::<f32>::zeros(Shape4::new(s.n, 1, 1, s.c));
        for n in 0..s.n {
            for h in 0..s.h {
                for w in 0..s.w {
                    for c in 0..s.c {
                        *out.at_mut(n, 0, 0, c) += x.at(n, h, w, c);
                    }
                }
            }
        }
        for v in out.as_mut_slice() {
            *v /= area;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_spatially_per_channel() {
        let t = Tensor::from_fn(Shape4::new(1, 2, 2, 2), |_, h, w, c| {
            if c == 0 {
                (h * 2 + w) as f32 // 0,1,2,3 -> mean 1.5
            } else {
                4.0
            }
        });
        let out = GlobalAvgPool::new().forward(&[&t]).unwrap();
        assert_eq!(out.shape(), Shape4::new(1, 1, 1, 2));
        assert_eq!(out.as_slice(), &[1.5, 4.0]);
    }

    #[test]
    fn batch_entries_independent() {
        let t = Tensor::from_fn(Shape4::new(2, 2, 2, 1), |n, _, _, _| n as f32);
        let out = GlobalAvgPool::new().forward(&[&t]).unwrap();
        assert_eq!(out.as_slice(), &[0.0, 1.0]);
    }
}
