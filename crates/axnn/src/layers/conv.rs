//! The standard (accurate) 2D convolution.

use crate::layer::{check_arity, Layer};
use crate::NnError;
use axtensor::{ops, ConvGeometry, Filter, Shape4, Tensor};

/// Accurate `Conv2D`: f32 GEMM-based convolution, the baseline the paper's
/// `AxConv2D` replaces.
#[derive(Debug, Clone)]
pub struct Conv2D {
    filter: Filter,
    geometry: ConvGeometry,
    bias: Option<Vec<f32>>,
}

impl Conv2D {
    /// Create a convolution from a filter bank and geometry.
    #[must_use]
    pub fn new(filter: Filter, geometry: ConvGeometry) -> Self {
        Conv2D {
            filter,
            geometry,
            bias: None,
        }
    }

    /// Attach a per-output-channel bias.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len()` differs from the filter's output channels.
    #[must_use]
    pub fn with_bias(mut self, bias: Vec<f32>) -> Self {
        assert_eq!(
            bias.len(),
            self.filter.shape().c_out,
            "bias length must equal output channels"
        );
        self.bias = Some(bias);
        self
    }

    /// The filter bank.
    #[must_use]
    pub fn filter(&self) -> &Filter {
        &self.filter
    }

    /// The convolution geometry.
    #[must_use]
    pub fn geometry(&self) -> ConvGeometry {
        self.geometry
    }

    /// The bias, if any.
    #[must_use]
    pub fn bias(&self) -> Option<&[f32]> {
        self.bias.as_deref()
    }

    fn apply_bias(&self, mut out: Tensor<f32>) -> Tensor<f32> {
        if let Some(bias) = &self.bias {
            let c = out.shape().c;
            for (i, v) in out.as_mut_slice().iter_mut().enumerate() {
                *v += bias[i % c];
            }
        }
        out
    }
}

impl Layer for Conv2D {
    fn op_name(&self) -> &str {
        "Conv2D"
    }

    fn output_shape(&self, inputs: &[Shape4]) -> Result<Shape4, NnError> {
        check_arity(self.op_name(), inputs, 1)?;
        Ok(self.geometry.output_shape(inputs[0], self.filter.shape())?)
    }

    fn forward(&self, inputs: &[&Tensor<f32>]) -> Result<Tensor<f32>, NnError> {
        check_arity(self.op_name(), inputs, 1)?;
        let out = ops::conv2d_gemm(inputs[0], &self.filter, self.geometry)?;
        Ok(self.apply_bias(out))
    }

    fn mac_count(&self, inputs: &[Shape4]) -> Result<u64, NnError> {
        check_arity(self.op_name(), inputs, 1)?;
        Ok(self.geometry.mac_count(inputs[0], self.filter.shape())?)
    }

    fn as_conv2d(&self) -> Option<&Conv2D> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axtensor::{rng, FilterShape};

    #[test]
    fn forward_matches_direct_reference() {
        let input = rng::uniform(Shape4::new(1, 8, 8, 3), 1, -1.0, 1.0);
        let filter = rng::uniform_filter(FilterShape::new(3, 3, 3, 4), 2, -0.5, 0.5);
        let conv = Conv2D::new(filter.clone(), ConvGeometry::default());
        let out = conv.forward(&[&input]).unwrap();
        let reference = ops::conv2d_direct(&input, &filter, ConvGeometry::default()).unwrap();
        assert!(out.max_abs_diff(&reference).unwrap() < 1e-4);
    }

    #[test]
    fn bias_added_per_channel() {
        let input = Tensor::<f32>::full(Shape4::new(1, 2, 2, 1), 0.0);
        let filter = rng::uniform_filter(FilterShape::new(1, 1, 1, 2), 3, -0.5, 0.5);
        let conv = Conv2D::new(filter, ConvGeometry::default()).with_bias(vec![1.0, -2.0]);
        let out = conv.forward(&[&input]).unwrap();
        for i in 0..4 {
            assert_eq!(out.as_slice()[2 * i], 1.0);
            assert_eq!(out.as_slice()[2 * i + 1], -2.0);
        }
    }

    #[test]
    fn mac_count_delegates_to_geometry() {
        let filter = rng::uniform_filter(FilterShape::new(3, 3, 16, 16), 4, -0.1, 0.1);
        let conv = Conv2D::new(filter, ConvGeometry::default());
        let macs = conv.mac_count(&[Shape4::new(1, 32, 32, 16)]).unwrap();
        assert_eq!(macs, 32 * 32 * 16 * 9 * 16);
    }

    #[test]
    fn arity_enforced() {
        let filter = rng::uniform_filter(FilterShape::new(1, 1, 1, 1), 5, -1.0, 1.0);
        let conv = Conv2D::new(filter, ConvGeometry::default());
        assert!(conv.forward(&[]).is_err());
    }

    #[test]
    fn exposes_itself_to_rewrite() {
        let filter = rng::uniform_filter(FilterShape::new(1, 1, 1, 1), 5, -1.0, 1.0);
        let conv = Conv2D::new(filter, ConvGeometry::default());
        assert!(conv.as_conv2d().is_some());
    }
}
