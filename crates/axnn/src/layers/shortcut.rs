//! The parameter-free ResNet shortcut (He et al., "option A").
//!
//! When a residual block changes the spatial resolution and channel count,
//! the identity path must match: option A subsamples spatially (stride)
//! and zero-pads the new channels, adding **no** parameters and **no**
//! convolution layers — which is why a CIFAR ResNet-(6n+2) has exactly
//! `6n + 1` convolution layers, matching the `L` column of Table I.

use crate::layer::{check_arity, Layer};
use crate::NnError;
use axtensor::{Shape4, Tensor};

/// Identity shortcut with optional spatial stride and channel zero-padding.
#[derive(Debug, Clone, Copy)]
pub struct ShortcutA {
    stride: usize,
    out_channels: usize,
}

impl ShortcutA {
    /// Create a shortcut that subsamples by `stride` and pads channels up
    /// to `out_channels`.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is 0.
    #[must_use]
    pub fn new(stride: usize, out_channels: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        ShortcutA {
            stride,
            out_channels,
        }
    }
}

impl Layer for ShortcutA {
    fn op_name(&self) -> &str {
        "ShortcutA"
    }

    fn output_shape(&self, inputs: &[Shape4]) -> Result<Shape4, NnError> {
        check_arity(self.op_name(), inputs, 1)?;
        let s = inputs[0];
        if self.out_channels < s.c {
            return Err(NnError::Layer {
                layer: self.op_name().to_owned(),
                message: format!(
                    "cannot shrink channels: input {} > output {}",
                    s.c, self.out_channels
                ),
            });
        }
        Ok(Shape4::new(
            s.n,
            s.h.div_ceil(self.stride),
            s.w.div_ceil(self.stride),
            self.out_channels,
        ))
    }

    fn forward(&self, inputs: &[&Tensor<f32>]) -> Result<Tensor<f32>, NnError> {
        let out_shape = self.output_shape(&[inputs[0].shape()])?;
        let x = inputs[0];
        let s = x.shape();
        let mut out = Tensor::<f32>::zeros(out_shape);
        for n in 0..out_shape.n {
            for h in 0..out_shape.h {
                for w in 0..out_shape.w {
                    for c in 0..s.c {
                        *out.at_mut(n, h, w, c) = x.at(n, h * self.stride, w * self.stride, c);
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_when_unit() {
        let t = Tensor::from_fn(Shape4::new(1, 2, 2, 2), |_, h, w, c| (h + w + c) as f32);
        let out = ShortcutA::new(1, 2).forward(&[&t]).unwrap();
        assert_eq!(out, t);
    }

    #[test]
    fn stride_subsamples() {
        let t = Tensor::from_fn(Shape4::new(1, 4, 4, 1), |_, h, w, _| (h * 4 + w) as f32);
        let out = ShortcutA::new(2, 1).forward(&[&t]).unwrap();
        assert_eq!(out.shape(), Shape4::new(1, 2, 2, 1));
        assert_eq!(out.as_slice(), &[0.0, 2.0, 8.0, 10.0]);
    }

    #[test]
    fn channel_padding_zeros() {
        let t = Tensor::<f32>::full(Shape4::new(1, 1, 1, 2), 3.0);
        let out = ShortcutA::new(1, 4).forward(&[&t]).unwrap();
        assert_eq!(out.as_slice(), &[3.0, 3.0, 0.0, 0.0]);
    }

    #[test]
    fn shrinking_channels_rejected() {
        let t = Tensor::<f32>::zeros(Shape4::new(1, 1, 1, 4));
        assert!(ShortcutA::new(1, 2).forward(&[&t]).is_err());
    }
}
