//! The netlist → LUT compilation pipeline.

use crate::CompileError;
use axcircuit::cost::{self, HardwareCost};
use axcircuit::equiv::{self, Equivalence};
use axcircuit::truth::TruthTable;
use axcircuit::{CircuitError, Netlist};
use axmult::{AxMultiplier, ErrorMetrics, MulLut, MultError, Signedness};

/// Number of LUT entries for an 8×8 multiplier (2¹⁶ operand pairs).
const N_ENTRIES: usize = 1 << 16;
/// Bit-parallel sweeps needed to cover the full space (64 pairs per sweep).
const N_SWEEPS: usize = N_ENTRIES / 64;

/// Something that can run a batch of independent jobs to completion.
///
/// The compiler shards the 2¹⁶-entry sweep into independent jobs; how they
/// run is the caller's business. [`SerialExecutor`] runs them inline;
/// `tfapprox` implements this trait for its persistent `WorkerPool`, so
/// compilation rides the same threads that serve inference.
pub trait Executor {
    /// Run every job to completion before returning.
    fn run_jobs<'env>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>);
}

/// Runs jobs inline on the calling thread. The zero-dependency default.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialExecutor;

impl Executor for SerialExecutor {
    fn run_jobs<'env>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        for job in jobs {
            job();
        }
    }
}

/// Fill `entries` with output words for the stitched indices
/// `base0 .. base0 + entries.len()`, 64 per bit-parallel sweep.
///
/// Input bit `k` of the lane carrying index `i` is bit `k` of `i` — the
/// same packing as `TruthTable::from_netlist`, so shards concatenate into
/// the exact table the unsharded path produces.
fn fill_range(nl: &Netlist, base0: usize, entries: &mut [u32]) -> Result<(), CircuitError> {
    let n_bits = nl.n_inputs() as usize;
    let mut lanes = vec![0u64; n_bits];
    let mut off = 0usize;
    while off < entries.len() {
        let base = base0 + off;
        let lanes_used = 64usize.min(entries.len() - off);
        for (k, lane) in lanes.iter_mut().enumerate() {
            let mut v = 0u64;
            for l in 0..lanes_used {
                if ((base + l) >> k) & 1 == 1 {
                    v |= 1 << l;
                }
            }
            *lane = v;
        }
        let out = nl.eval_lanes(&lanes)?;
        for l in 0..lanes_used {
            let mut word = 0u32;
            for (bit, &ow) in out.iter().enumerate() {
                if (ow >> l) & 1 == 1 {
                    word |= 1 << bit;
                }
            }
            entries[off + l] = word;
        }
        off += lanes_used;
    }
    Ok(())
}

/// How a compiled multiplier came to be: sizes, sharding, verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileReport {
    /// Gate count of the source netlist.
    pub gates: usize,
    /// Logic depth of the source netlist.
    pub depth: u32,
    /// Bit-parallel sweeps evaluated (1024 for the full 2¹⁶ space).
    pub sweeps: usize,
    /// Shards the sweep was split into.
    pub shards: usize,
    /// Whether the sharded result was diffed against the single-threaded
    /// golden sweep (always true for an admitted multiplier).
    pub lut_verified: bool,
    /// Whether an `equiv::check` against a reference netlist also ran.
    pub equiv_verified: bool,
}

/// A netlist staged for compilation into an [`AxMultiplier`].
///
/// ```
/// use axcompile::{CompileRequest, SerialExecutor};
/// use axmult::Signedness;
///
/// # fn main() -> Result<(), axcompile::CompileError> {
/// let nl = axcircuit::approx::truncated_unsigned(8, 4)?;
/// let compiled = CompileRequest::new(&nl, "doc_trunc4_example", Signedness::Unsigned)
///     .run(&SerialExecutor)?;
/// assert_eq!(compiled.multiplier().lut().product(16, 16), 256);
/// assert!(!compiled.metrics().is_exact());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CompileRequest<'a> {
    netlist: &'a Netlist,
    name: String,
    description: Option<String>,
    signedness: Signedness,
    shards: usize,
    reference: Option<&'a Netlist>,
}

impl<'a> CompileRequest<'a> {
    /// Stage `netlist` for compilation under `name`.
    #[must_use]
    pub fn new(netlist: &'a Netlist, name: impl Into<String>, signedness: Signedness) -> Self {
        CompileRequest {
            netlist,
            name: name.into(),
            description: None,
            signedness,
            shards: 8,
            reference: None,
        }
    }

    /// Human description for the catalog entry. Defaults to a summary of
    /// the netlist (gate count and depth).
    #[must_use]
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = Some(description.into());
        self
    }

    /// Number of shards to split the 1024-sweep evaluation into (clamped
    /// to `1..=1024`). Default 8.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Additionally require exhaustive equivalence to `reference` (via
    /// [`axcircuit::equiv::check`]) before admission. Use this to pin a
    /// hand-written netlist against a generator-built one.
    #[must_use]
    pub fn verify_against(mut self, reference: &'a Netlist) -> Self {
        self.reference = Some(reference);
        self
    }

    /// Compile: exhaustively evaluate all 2¹⁶ operand pairs (sharded over
    /// `exec`), verify against the single-threaded golden sweep (and the
    /// reference netlist, if any), attach hardware cost and error metrics.
    ///
    /// # Errors
    ///
    /// - [`CompileError::Shape`] unless the netlist declares exactly two
    ///   8-bit operands and `1..=32` outputs.
    /// - [`CompileError::NotEquivalent`] if a reference was supplied and
    ///   the netlist disagrees with it anywhere.
    /// - [`CompileError::Mismatch`] if the sharded sweep disagrees with
    ///   the golden sweep (a compiler bug, never bad input).
    /// - [`CompileError::Circuit`] / [`CompileError::Mult`] for bubbled-up
    ///   evaluation and LUT-conversion failures.
    pub fn run(self, exec: &impl Executor) -> Result<CompiledMultiplier, CompileError> {
        let nl = self.netlist;
        if nl.operand_widths() != [8, 8] || nl.outputs().is_empty() || nl.outputs().len() > 32 {
            return Err(CompileError::Shape {
                widths: nl.operand_widths().to_vec(),
                outputs: nl.outputs().len(),
            });
        }
        if let Some(reference) = self.reference {
            match equiv::check(nl, reference)? {
                Equivalence::Equal => {}
                Equivalence::Differs { input, left, right } => {
                    return Err(CompileError::NotEquivalent { input, left, right });
                }
            }
        }

        // Sharded exhaustive sweep: each shard owns a contiguous,
        // sweep-aligned slice of the stitched index space.
        let shards = self.shards.clamp(1, N_SWEEPS);
        let sweeps_per_shard = N_SWEEPS.div_ceil(shards);
        let chunk = sweeps_per_shard * 64;
        let mut entries = vec![0u32; N_ENTRIES];
        let n_jobs = N_ENTRIES.div_ceil(chunk);
        let mut shard_errors: Vec<Option<CircuitError>> = vec![None; n_jobs];
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = entries
            .chunks_mut(chunk)
            .zip(shard_errors.iter_mut())
            .enumerate()
            .map(|(i, (slice, slot))| {
                let base0 = i * chunk;
                Box::new(move || {
                    if let Err(e) = fill_range(nl, base0, slice) {
                        *slot = Some(e);
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        exec.run_jobs(jobs);
        if let Some(e) = shard_errors.into_iter().flatten().next() {
            return Err(e.into());
        }

        // Golden diff: the unsharded reference path must agree entry for
        // entry before the LUT is admitted.
        let golden = TruthTable::from_netlist(nl)?;
        if let Some(index) = (0..N_ENTRIES).find(|&i| entries[i] != golden.entries()[i]) {
            return Err(CompileError::Mismatch {
                index,
                got: entries[index],
                expected: golden.entries()[index],
            });
        }

        let tt = TruthTable::from_parts(entries, 8, 8, golden.width_out())?;
        let lut = MulLut::from_truth_table(&tt, self.signedness)?;
        let cost: HardwareCost = cost::evaluate(nl);
        let metrics = ErrorMetrics::of_lut(&lut);
        let description = self.description.unwrap_or_else(|| {
            format!(
                "compiled {} netlist: {} gates, depth {}",
                self.signedness,
                nl.n_gates(),
                nl.depth()
            )
        });
        let report = CompileReport {
            gates: nl.n_gates(),
            depth: nl.depth(),
            sweeps: N_SWEEPS,
            shards: n_jobs,
            lut_verified: true,
            equiv_verified: self.reference.is_some(),
        };
        Ok(CompiledMultiplier {
            multiplier: AxMultiplier::new(self.name, description, lut, Some(cost)),
            metrics,
            report,
        })
    }
}

/// A catalog-grade multiplier produced by [`CompileRequest::run`].
#[derive(Debug, Clone)]
pub struct CompiledMultiplier {
    multiplier: AxMultiplier,
    metrics: ErrorMetrics,
    report: CompileReport,
}

impl CompiledMultiplier {
    /// The compiled catalog entry (name, description, LUT, hardware cost).
    #[must_use]
    pub fn multiplier(&self) -> &AxMultiplier {
        &self.multiplier
    }

    /// Consume into the catalog entry.
    #[must_use]
    pub fn into_multiplier(self) -> AxMultiplier {
        self.multiplier
    }

    /// Full-input-space error metrics of the compiled LUT.
    #[must_use]
    pub fn metrics(&self) -> &ErrorMetrics {
        &self.metrics
    }

    /// How the compilation went: sizes, sharding, verification.
    #[must_use]
    pub fn report(&self) -> &CompileReport {
        &self.report
    }

    /// Register the compiled multiplier in the process-wide
    /// [`axmult::registry`], making it resolvable by name everywhere a
    /// catalog name is accepted.
    ///
    /// # Errors
    ///
    /// Returns [`MultError::DuplicateMultiplier`] if the name is taken.
    pub fn register(&self) -> Result<(), MultError> {
        axmult::registry::register(self.multiplier.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axcircuit::approx;
    use axcircuit::builder::MultiplierSpec;

    fn compile_serial(nl: &Netlist, name: &str) -> Result<CompiledMultiplier, CompileError> {
        CompileRequest::new(nl, name, Signedness::Unsigned).run(&SerialExecutor)
    }

    #[test]
    fn compiled_exact_matches_exact_lut() {
        let nl = approx::exact_unsigned(8).unwrap();
        let compiled = compile_serial(&nl, "cmp_test_exact").unwrap();
        assert_eq!(
            *compiled.multiplier().lut(),
            MulLut::exact(Signedness::Unsigned)
        );
        assert!(compiled.metrics().is_exact());
        let report = compiled.report();
        assert_eq!(report.sweeps, 1024);
        assert!(report.lut_verified);
        assert!(!report.equiv_verified);
        assert_eq!(report.gates, nl.n_gates());
    }

    #[test]
    fn compiled_signed_exact_matches_exact_lut() {
        let nl = approx::exact_signed(8).unwrap();
        let compiled = CompileRequest::new(&nl, "cmp_test_sexact", Signedness::Signed)
            .run(&SerialExecutor)
            .unwrap();
        assert_eq!(
            *compiled.multiplier().lut(),
            MulLut::exact(Signedness::Signed)
        );
    }

    #[test]
    fn sharding_is_invisible_in_the_result() {
        let nl = approx::broken_array_unsigned(8, 6, 1).unwrap();
        let one = CompileRequest::new(&nl, "cmp_test_s1", Signedness::Unsigned)
            .with_shards(1)
            .run(&SerialExecutor)
            .unwrap();
        for shards in [3usize, 8, 64, 1024, 5000] {
            let many = CompileRequest::new(&nl, "cmp_test_sn", Signedness::Unsigned)
                .with_shards(shards)
                .run(&SerialExecutor)
                .unwrap();
            assert_eq!(
                many.multiplier().lut(),
                one.multiplier().lut(),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn non_8x8_shapes_rejected() {
        let nl = MultiplierSpec::unsigned(4, 4).build().unwrap();
        let err = compile_serial(&nl, "cmp_test_4x4").unwrap_err();
        assert!(matches!(err, CompileError::Shape { ref widths, .. } if widths == &[4, 4]));
        // No outputs declared is also a shape error, not a panic.
        let empty = Netlist::with_operands(&[8, 8]);
        let err = compile_serial(&empty, "cmp_test_empty").unwrap_err();
        assert!(matches!(err, CompileError::Shape { outputs: 0, .. }));
    }

    #[test]
    fn equiv_verification_accepts_equivalent_reference() {
        let nl = approx::exact_unsigned(8).unwrap();
        let reference = MultiplierSpec::unsigned(8, 8).build().unwrap();
        let compiled = CompileRequest::new(&nl, "cmp_test_eq", Signedness::Unsigned)
            .verify_against(&reference)
            .run(&SerialExecutor)
            .unwrap();
        assert!(compiled.report().equiv_verified);
    }

    #[test]
    fn equiv_verification_rejects_nonequivalent_reference() {
        let nl = approx::truncated_unsigned(8, 4).unwrap();
        let reference = approx::exact_unsigned(8).unwrap();
        let err = CompileRequest::new(&nl, "cmp_test_neq", Signedness::Unsigned)
            .verify_against(&reference)
            .run(&SerialExecutor)
            .unwrap_err();
        match err {
            CompileError::NotEquivalent { input, left, right } => {
                // The witness must be real: re-evaluate both netlists there.
                let a = input & 0xFF;
                let b = (input >> 8) & 0xFF;
                assert_eq!(nl.eval_words(&[a, b]).unwrap(), left);
                assert_eq!(reference.eval_words(&[a, b]).unwrap(), right);
                assert_ne!(left, right);
            }
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
    }

    #[test]
    fn compiled_cost_matches_cost_model() {
        let nl = approx::truncated_unsigned(8, 2).unwrap();
        let compiled = compile_serial(&nl, "cmp_test_cost").unwrap();
        assert_eq!(compiled.multiplier().cost().unwrap(), cost::evaluate(&nl));
    }

    #[test]
    fn register_makes_name_resolvable() {
        let nl = approx::truncated_unsigned(8, 5).unwrap();
        let compiled = compile_serial(&nl, "cmp_test_registered_trunc5").unwrap();
        compiled.register().unwrap();
        let resolved = axmult::catalog::by_name("cmp_test_registered_trunc5").unwrap();
        assert_eq!(resolved.lut(), compiled.multiplier().lut());
        // Double registration of the same name is a typed error.
        assert!(matches!(
            compiled.register().unwrap_err(),
            MultError::DuplicateMultiplier { .. }
        ));
        axmult::registry::unregister("cmp_test_registered_trunc5");
    }

    #[test]
    fn parsed_text_netlist_compiles() {
        // End-to-end within the crate: text → netlist → LUT.
        let text = axcircuit::text::format(&approx::truncated_unsigned(8, 3).unwrap(), "t3");
        let nl = axcircuit::text::parse(&text).unwrap();
        let compiled = compile_serial(&nl, "cmp_test_text").unwrap();
        let direct = compile_serial(
            &approx::truncated_unsigned(8, 3).unwrap(),
            "cmp_test_direct",
        )
        .unwrap();
        assert_eq!(compiled.multiplier().lut(), direct.multiplier().lut());
    }

    #[test]
    fn default_description_mentions_the_netlist() {
        let nl = approx::exact_unsigned(8).unwrap();
        let compiled = compile_serial(&nl, "cmp_test_desc").unwrap();
        let desc = compiled.multiplier().description().to_string();
        assert!(desc.contains("gates"), "{desc}");
        let custom = CompileRequest::new(&nl, "cmp_test_desc2", Signedness::Unsigned)
            .with_description("hand written")
            .run(&SerialExecutor)
            .unwrap();
        assert_eq!(custom.multiplier().description(), "hand written");
    }
}
