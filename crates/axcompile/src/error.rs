use std::fmt;

use axcircuit::CircuitError;
use axmult::MultError;

/// Errors produced while compiling a netlist into a multiplier.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompileError {
    /// The netlist is not an 8×8 two-operand multiplier.
    Shape {
        /// The operand widths the netlist declares.
        widths: Vec<u32>,
        /// Number of output bits.
        outputs: usize,
    },
    /// The sharded evaluation disagreed with the single-threaded golden
    /// sweep — a compiler bug, never bad user input. The LUT is rejected
    /// rather than admitted corrupt.
    Mismatch {
        /// Stitched operand index `(b << 8) | a` of the first difference.
        index: usize,
        /// Entry the sharded evaluation produced.
        got: u32,
        /// Entry the golden sweep produced.
        expected: u32,
    },
    /// The netlist is not equivalent to the reference netlist supplied via
    /// `CompileRequest::verify_against`.
    NotEquivalent {
        /// Packed input index (operand 0 in the low bits) of the first
        /// disagreement.
        input: u64,
        /// Output word of the compiled netlist at that input.
        left: u64,
        /// Output word of the reference netlist at that input.
        right: u64,
    },
    /// A circuit-level error (evaluation, truth-table shape) bubbled up.
    Circuit(CircuitError),
    /// A multiplier-level error (LUT conversion, registration) bubbled up.
    Mult(MultError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Shape { widths, outputs } => {
                let w: Vec<String> = widths.iter().map(u32::to_string).collect();
                write!(
                    f,
                    "netlist is not an 8x8 multiplier: operand widths [{}], {outputs} outputs \
                     (need exactly two 8-bit operands and 1..=32 outputs)",
                    w.join(", ")
                )
            }
            CompileError::Mismatch {
                index,
                got,
                expected,
            } => write!(
                f,
                "sharded evaluation differs from the golden sweep at index {index}: \
                 got {got}, expected {expected} (compiler bug — LUT rejected)"
            ),
            CompileError::NotEquivalent { input, left, right } => write!(
                f,
                "netlist is not equivalent to the reference: at packed input {input} \
                 the netlist outputs {left} but the reference outputs {right}"
            ),
            CompileError::Circuit(e) => write!(f, "circuit error: {e}"),
            CompileError::Mult(e) => write!(f, "multiplier error: {e}"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Circuit(e) => Some(e),
            CompileError::Mult(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for CompileError {
    fn from(e: CircuitError) -> Self {
        CompileError::Circuit(e)
    }
}

impl From<MultError> for CompileError {
    fn from(e: MultError) -> Self {
        CompileError::Mult(e)
    }
}
