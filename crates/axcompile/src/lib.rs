//! Circuit-to-LUT compiler: bring-your-own approximate multipliers.
//!
//! The TFApprox paper's premise is emulating *arbitrary* approximate
//! multipliers inside DNN inference — not just a fixed catalog. This crate
//! is the bridge from a gate-level design to a servable multiplier:
//!
//! 1. **Input**: an [`axcircuit::Netlist`] — built with
//!    [`axcircuit::builder`]/[`axcircuit::approx`], or parsed from the
//!    textual format in [`axcircuit::text`].
//! 2. **Exhaustive evaluation**: all 2¹⁶ operand pairs through the
//!    bit-parallel evaluator (64 pairs per sweep, 1024 sweeps), sharded
//!    over an [`Executor`] — serial by default, `tfapprox`'s `WorkerPool`
//!    in the full stack.
//! 3. **Verification**: the sharded table is diffed entry-for-entry
//!    against the single-threaded golden sweep, and optionally checked
//!    equivalent to a reference netlist via [`axcircuit::equiv`].
//! 4. **Characterization**: unit-gate hardware cost
//!    ([`axcircuit::cost::evaluate`]) and full-space error metrics
//!    ([`axmult::ErrorMetrics::of_lut`]) attached.
//! 5. **Admission**: the result is a catalog-grade [`axmult::AxMultiplier`]
//!    that [`CompiledMultiplier::register`] drops into the process-wide
//!    [`axmult::registry`], after which sessions and serving resolve it by
//!    name exactly like a built-in.
//!
//! ```
//! use axcompile::{CompileRequest, SerialExecutor};
//! use axmult::Signedness;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let netlist = axcircuit::approx::broken_array_unsigned(8, 8, 0)?;
//! let compiled = CompileRequest::new(&netlist, "my_bam_v8", Signedness::Unsigned)
//!     .run(&SerialExecutor)?;
//! // Bit-identical to the built-in compiled from the same generator.
//! let builtin = axmult::catalog::by_name("mul8u_bam_v8h0")?;
//! assert_eq!(compiled.multiplier().lut(), builtin.lut());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod compiler;
mod error;

pub use compiler::{CompileReport, CompileRequest, CompiledMultiplier, Executor, SerialExecutor};
pub use error::CompileError;
