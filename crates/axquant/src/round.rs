//! Rounding modes applied during quantization.

use serde::{Deserialize, Serialize};

/// How a real quotient is rounded to an integer during quantization.
///
/// The paper lists the "requested round mode" among the extra inputs of the
/// approximate convolutional layer; hardware quantizers commonly implement
/// one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum RoundMode {
    /// Round half to even (IEEE default; TensorFlow's choice).
    #[default]
    NearestEven,
    /// Round half away from zero (classic `round()`).
    NearestAway,
    /// Round toward negative infinity.
    Floor,
    /// Round toward positive infinity.
    Ceil,
    /// Round toward zero (truncation).
    TowardZero,
}

impl RoundMode {
    /// Round a real value to an integer under this mode.
    #[must_use]
    pub fn round(self, x: f32) -> i32 {
        match self {
            RoundMode::NearestEven => {
                // f32 -> round-half-even.
                let r = x.round();
                if (x - x.trunc()).abs() == 0.5 {
                    // Exactly halfway: pick the even neighbour.
                    let down = x.floor();
                    let up = x.ceil();
                    if (down as i64) % 2 == 0 {
                        down as i32
                    } else {
                        up as i32
                    }
                } else {
                    r as i32
                }
            }
            RoundMode::NearestAway => x.round() as i32,
            RoundMode::Floor => x.floor() as i32,
            RoundMode::Ceil => x.ceil() as i32,
            RoundMode::TowardZero => x.trunc() as i32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_even_ties() {
        let m = RoundMode::NearestEven;
        assert_eq!(m.round(0.5), 0);
        assert_eq!(m.round(1.5), 2);
        assert_eq!(m.round(2.5), 2);
        assert_eq!(m.round(-0.5), 0);
        assert_eq!(m.round(-1.5), -2);
        assert_eq!(m.round(1.2), 1);
        assert_eq!(m.round(1.8), 2);
    }

    #[test]
    fn nearest_away_ties() {
        let m = RoundMode::NearestAway;
        assert_eq!(m.round(0.5), 1);
        assert_eq!(m.round(-0.5), -1);
        assert_eq!(m.round(2.5), 3);
    }

    #[test]
    fn floor_ceil_trunc() {
        assert_eq!(RoundMode::Floor.round(1.9), 1);
        assert_eq!(RoundMode::Floor.round(-1.1), -2);
        assert_eq!(RoundMode::Ceil.round(1.1), 2);
        assert_eq!(RoundMode::Ceil.round(-1.9), -1);
        assert_eq!(RoundMode::TowardZero.round(1.9), 1);
        assert_eq!(RoundMode::TowardZero.round(-1.9), -1);
    }

    #[test]
    fn integers_unchanged_under_all_modes() {
        for m in [
            RoundMode::NearestEven,
            RoundMode::NearestAway,
            RoundMode::Floor,
            RoundMode::Ceil,
            RoundMode::TowardZero,
        ] {
            for v in [-3f32, -1.0, 0.0, 2.0, 7.0] {
                assert_eq!(m.round(v), v as i32, "{m:?} on {v}");
            }
        }
    }
}
