//! Per-channel (per-output-filter) quantization.
//!
//! TensorFlow quantizes convolution filters either with one `(α, β)` pair
//! for the whole bank (*per-tensor*) or with one pair per output channel
//! (*per-channel*), which tightens each filter's range and reduces
//! quantization error at no runtime cost: the Eq. 4 correction already
//! operates column-wise (`Sf` is per output channel), so only the scale
//! and zero-point used per column change.

use crate::{QuantParams, QuantRange, RoundMode};
use serde::{Deserialize, Serialize};

/// Filter-side quantization: one parameter set, or one per output channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FilterQuantization {
    /// A single `(α₂, β₂)` for the whole filter bank.
    PerTensor(QuantParams),
    /// One `(α₂ᶜ, β₂ᶜ)` per output channel.
    PerChannel(Vec<QuantParams>),
}

impl FilterQuantization {
    /// Build per-channel parameters from per-channel `(min, max)` ranges.
    #[must_use]
    pub fn from_channel_ranges(ranges: &[(f32, f32)], range: QuantRange, round: RoundMode) -> Self {
        FilterQuantization::PerChannel(
            ranges
                .iter()
                .map(|&(lo, hi)| QuantParams::from_range(lo, hi, range, round))
                .collect(),
        )
    }

    /// The parameters used for output channel `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range for a per-channel set.
    #[must_use]
    pub fn for_channel(&self, c: usize) -> QuantParams {
        match self {
            FilterQuantization::PerTensor(q) => *q,
            FilterQuantization::PerChannel(qs) => qs[c],
        }
    }

    /// Number of channels this quantization covers (`None` = any).
    #[must_use]
    pub fn channels(&self) -> Option<usize> {
        match self {
            FilterQuantization::PerTensor(_) => None,
            FilterQuantization::PerChannel(qs) => Some(qs.len()),
        }
    }

    /// Whether this is the per-channel variant.
    #[must_use]
    pub fn is_per_channel(&self) -> bool {
        matches!(self, FilterQuantization::PerChannel(_))
    }

    /// Resolve to one `QuantParams` per output channel — the form the
    /// prepared-execution engine consumes (a per-tensor set is broadcast
    /// to every channel).
    ///
    /// # Panics
    ///
    /// Panics if a per-channel set's length differs from `c_out`.
    #[must_use]
    pub fn resolve(&self, c_out: usize) -> Vec<QuantParams> {
        match self {
            FilterQuantization::PerTensor(q) => vec![*q; c_out],
            FilterQuantization::PerChannel(qs) => {
                assert_eq!(
                    qs.len(),
                    c_out,
                    "per-channel quantization covers {} channels, filter has {c_out}",
                    qs.len()
                );
                qs.clone()
            }
        }
    }
}

impl From<QuantParams> for FilterQuantization {
    fn from(q: QuantParams) -> Self {
        FilterQuantization::PerTensor(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_tensor_is_uniform() {
        let q = QuantParams::from_range(-1.0, 1.0, QuantRange::i8(), RoundMode::NearestEven);
        let fq: FilterQuantization = q.into();
        assert_eq!(fq.for_channel(0), q);
        assert_eq!(fq.for_channel(99), q);
        assert_eq!(fq.channels(), None);
        assert!(!fq.is_per_channel());
    }

    #[test]
    fn per_channel_tracks_ranges() {
        let fq = FilterQuantization::from_channel_ranges(
            &[(-1.0, 1.0), (-0.1, 0.1)],
            QuantRange::i8(),
            RoundMode::NearestEven,
        );
        assert_eq!(fq.channels(), Some(2));
        assert!(fq.is_per_channel());
        // Tighter range -> smaller scale -> finer resolution.
        assert!(fq.for_channel(1).scale() < fq.for_channel(0).scale());
    }

    #[test]
    fn resolve_broadcasts_per_tensor() {
        let q = QuantParams::from_range(-1.0, 1.0, QuantRange::i8(), RoundMode::NearestEven);
        let fq: FilterQuantization = q.into();
        assert_eq!(fq.resolve(3), vec![q, q, q]);
        let pc = FilterQuantization::from_channel_ranges(
            &[(-1.0, 1.0), (-0.1, 0.1)],
            QuantRange::i8(),
            RoundMode::NearestEven,
        );
        let resolved = pc.resolve(2);
        assert_eq!(resolved.len(), 2);
        assert_eq!(resolved[0], pc.for_channel(0));
    }

    #[test]
    #[should_panic(expected = "per-channel quantization covers")]
    fn resolve_checks_channel_count() {
        let pc = FilterQuantization::from_channel_ranges(
            &[(-1.0, 1.0)],
            QuantRange::i8(),
            RoundMode::NearestEven,
        );
        let _ = pc.resolve(4);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn per_channel_bounds_checked() {
        let fq = FilterQuantization::from_channel_ranges(
            &[(-1.0, 1.0)],
            QuantRange::i8(),
            RoundMode::NearestEven,
        );
        let _ = fq.for_channel(5);
    }
}
