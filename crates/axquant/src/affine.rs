//! The `(scale, zero_point)` pair and its computation from a value range.

use crate::RoundMode;
use serde::{Deserialize, Serialize};

/// The integer range quantized values live in.
///
/// The paper: "expected range of the quantized values (\[-128, 127\] for
/// signed, \[0, 255\] for unsigned multipliers)".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuantRange {
    qmin: i32,
    qmax: i32,
}

impl QuantRange {
    /// Signed 8-bit range `[-128, 127]`.
    #[must_use]
    pub fn i8() -> Self {
        QuantRange {
            qmin: -128,
            qmax: 127,
        }
    }

    /// Unsigned 8-bit range `[0, 255]`.
    #[must_use]
    pub fn u8() -> Self {
        QuantRange { qmin: 0, qmax: 255 }
    }

    /// An arbitrary custom range (e.g. for reduced-width studies).
    ///
    /// # Panics
    ///
    /// Panics unless `qmin < qmax` and the range contains 0.
    #[must_use]
    pub fn custom(qmin: i32, qmax: i32) -> Self {
        assert!(qmin < qmax, "empty quantized range");
        assert!(
            qmin <= 0 && 0 <= qmax,
            "range must contain 0 for an exact zero-point"
        );
        QuantRange { qmin, qmax }
    }

    /// Smallest representable integer.
    #[must_use]
    pub fn qmin(&self) -> i32 {
        self.qmin
    }

    /// Largest representable integer.
    #[must_use]
    pub fn qmax(&self) -> i32 {
        self.qmax
    }

    /// Number of quantization steps (`qmax − qmin`).
    #[must_use]
    pub fn steps(&self) -> i32 {
        self.qmax - self.qmin
    }
}

impl Default for QuantRange {
    fn default() -> Self {
        QuantRange::i8()
    }
}

/// Affine quantization parameters: `r = scale · (i − zero_point)`.
///
/// Constructed from a real value range via [`QuantParams::from_range`] —
/// the paper's `ComputeCoeffs(range)` — which guarantees real 0 maps to an
/// exact integer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    scale: f32,
    zero_point: i32,
    range: QuantRange,
    round: RoundMode,
}

impl QuantParams {
    /// Compute `(α, β)` from the observed real range `[min, max]`
    /// (Algorithm 1's `ComputeCoeffs`).
    ///
    /// The range is first widened to include 0 (so zero is exactly
    /// representable); a degenerate range collapses to scale 1. The
    /// zero-point is the integer nearest to `qmin − min/α`, clamped into
    /// the quantized range.
    #[must_use]
    pub fn from_range(min: f32, max: f32, range: QuantRange, round: RoundMode) -> Self {
        // Widen to include zero.
        let min = min.min(0.0);
        let max = max.max(0.0);
        let span = max - min;
        let scale = if span > 0.0 {
            span / range.steps() as f32
        } else {
            1.0
        };
        // Choose β so that real min maps near qmin; then 0 maps to β exactly.
        let zp_real = range.qmin() as f32 - min / scale;
        let zero_point = (zp_real.round() as i32).clamp(range.qmin(), range.qmax());
        QuantParams {
            scale,
            zero_point,
            range,
            round,
        }
    }

    /// Construct directly from known `(α, β)` (e.g. loaded from a model).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not strictly positive or the zero-point lies
    /// outside the quantized range.
    #[must_use]
    pub fn from_parts(scale: f32, zero_point: i32, range: QuantRange, round: RoundMode) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        assert!(
            (range.qmin()..=range.qmax()).contains(&zero_point),
            "zero-point outside quantized range"
        );
        QuantParams {
            scale,
            zero_point,
            range,
            round,
        }
    }

    /// The scale `α`.
    #[must_use]
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The zero-point `β`.
    #[must_use]
    pub fn zero_point(&self) -> i32 {
        self.zero_point
    }

    /// The quantized integer range.
    #[must_use]
    pub fn range(&self) -> QuantRange {
        self.range
    }

    /// The rounding mode used by [`QuantParams::quantize`].
    #[must_use]
    pub fn round_mode(&self) -> RoundMode {
        self.round
    }

    /// Quantize a real value: `i = clamp(round(r/α) + β)`.
    #[inline]
    #[must_use]
    pub fn quantize(&self, r: f32) -> i32 {
        let q = self.round.round(r / self.scale) + self.zero_point;
        q.clamp(self.range.qmin(), self.range.qmax())
    }

    /// Dequantize an integer: `r = α · (i − β)` (Eq. 1).
    #[inline]
    #[must_use]
    pub fn dequantize(&self, i: i32) -> f32 {
        self.scale * (i - self.zero_point) as f32
    }

    /// Resolve one `(α, β)` pair per segment from per-segment bounds —
    /// the segmented form of `ComputeCoeffs`, paired with
    /// [`crate::range::segment_bounds`]. Each pair is exactly
    /// [`QuantParams::from_range`] of that segment's bounds, so a fused
    /// batch quantizes every segment precisely as a solo run would.
    ///
    /// Bounds must be finite (an all-empty segment's `(0.0, 0.0)` is
    /// fine); callers validate NaN ranges *before* resolving params, as
    /// the solo path does.
    #[must_use]
    pub fn for_segments(
        bounds: &[(f32, f32)],
        range: QuantRange,
        round: RoundMode,
    ) -> Vec<QuantParams> {
        bounds
            .iter()
            .map(|&(lo, hi)| QuantParams::from_range(lo, hi, range, round))
            .collect()
    }

    /// Quantize a slice into logical integer values.
    #[must_use]
    pub fn quantize_slice(&self, xs: &[f32]) -> Vec<i32> {
        xs.iter().map(|&x| self.quantize(x)).collect()
    }

    /// Quantize a slice directly to 8-bit byte patterns (two's-complement
    /// for signed ranges) — the format the LUT-indexed GEMM consumes.
    #[must_use]
    pub fn quantize_slice_to_bytes(&self, xs: &[f32]) -> Vec<u8> {
        xs.iter()
            .map(|&x| (self.quantize(x) & 0xFF) as u8)
            .collect()
    }
}

impl Default for QuantParams {
    fn default() -> Self {
        QuantParams::from_range(-1.0, 1.0, QuantRange::default(), RoundMode::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_exactly_representable() {
        for (lo, hi) in [(-1.0f32, 1.0f32), (0.1, 2.0), (-5.0, -0.2), (0.0, 0.0)] {
            for range in [QuantRange::i8(), QuantRange::u8()] {
                let p = QuantParams::from_range(lo, hi, range, RoundMode::NearestEven);
                let q0 = p.quantize(0.0);
                assert_eq!(p.dequantize(q0), 0.0, "range [{lo}, {hi}] {range:?}");
            }
        }
    }

    #[test]
    fn roundtrip_error_bounded_by_scale() {
        let p = QuantParams::from_range(-3.0, 5.0, QuantRange::i8(), RoundMode::NearestEven);
        for i in 0..=100 {
            let r = -3.0 + 8.0 * (i as f32) / 100.0;
            let back = p.dequantize(p.quantize(r));
            assert!(
                (back - r).abs() <= 0.5 * p.scale() + 1e-6,
                "r={r} back={back} scale={}",
                p.scale()
            );
        }
    }

    #[test]
    fn extremes_map_inside_range() {
        let p = QuantParams::from_range(-1.0, 1.0, QuantRange::i8(), RoundMode::NearestEven);
        assert!(p.quantize(-1.0) >= -128);
        assert!(p.quantize(1.0) <= 127);
        // Out-of-range reals clamp.
        assert_eq!(p.quantize(1e6), 127);
        assert_eq!(p.quantize(-1e6), -128);
    }

    #[test]
    fn unsigned_range_for_nonnegative_data() {
        let p = QuantParams::from_range(0.0, 4.0, QuantRange::u8(), RoundMode::NearestEven);
        assert_eq!(p.zero_point(), 0);
        assert_eq!(p.quantize(4.0), 255);
        // 2 / (4/255) ≈ 127.5; either neighbour is acceptable in f32.
        let mid = p.quantize(2.0);
        assert!(mid == 127 || mid == 128, "got {mid}");
    }

    #[test]
    fn degenerate_range_uses_unit_scale() {
        let p = QuantParams::from_range(0.0, 0.0, QuantRange::i8(), RoundMode::NearestEven);
        assert_eq!(p.scale(), 1.0);
        assert_eq!(p.quantize(0.0), p.zero_point());
    }

    #[test]
    fn range_not_containing_zero_is_widened() {
        // All-positive data still gets an exact zero.
        let p = QuantParams::from_range(2.0, 6.0, QuantRange::i8(), RoundMode::NearestEven);
        assert_eq!(p.dequantize(p.quantize(0.0)), 0.0);
        // And the top of the range is still representable reasonably.
        let back = p.dequantize(p.quantize(6.0));
        assert!((back - 6.0).abs() <= p.scale());
    }

    #[test]
    fn bytes_encoding_two_complement() {
        let p = QuantParams::from_range(-1.0, 1.0, QuantRange::i8(), RoundMode::NearestEven);
        let bytes = p.quantize_slice_to_bytes(&[-1.0, 0.0, 1.0]);
        assert_eq!(bytes.len(), 3);
        assert_eq!(bytes[1], (p.zero_point() & 0xFF) as u8);
        assert_eq!(bytes[0] as i8 as i32, p.quantize(-1.0));
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn from_parts_validates_scale() {
        let _ = QuantParams::from_parts(0.0, 0, QuantRange::i8(), RoundMode::NearestEven);
    }

    #[test]
    #[should_panic(expected = "range must contain 0")]
    fn custom_range_must_contain_zero() {
        let _ = QuantRange::custom(1, 10);
    }

    #[test]
    fn custom_range_steps() {
        let r = QuantRange::custom(-8, 7);
        assert_eq!(r.steps(), 15);
    }

    #[test]
    fn for_segments_is_from_range_per_segment() {
        let bounds = [(-1.0f32, 3.0f32), (0.0, 0.0), (-5.0, -0.2)];
        let ps = QuantParams::for_segments(&bounds, QuantRange::i8(), RoundMode::NearestEven);
        assert_eq!(ps.len(), bounds.len());
        for (p, &(lo, hi)) in ps.iter().zip(&bounds) {
            assert_eq!(
                *p,
                QuantParams::from_range(lo, hi, QuantRange::i8(), RoundMode::NearestEven)
            );
        }
    }
}
