//! Affine quantization for integer-arithmetic-only inference.
//!
//! Implements the quantization scheme the paper adopts from Jacob et al.
//! (Eq. 1): a real `r` maps to an integer `i` such that
//!
//! ```text
//! r = α · (i − β)
//! ```
//!
//! where `α` (*scale*) is a positive real and `β` (*zero-point*) an integer
//! of the same type as `i`, chosen so that real 0 is **exactly**
//! representable — critical because zero padding and many computations
//! produce exact zeros that must not inject quantization error.
//!
//! Provided here:
//!
//! - [`QuantParams`]: the `(α, β)` pair plus the quantized integer range,
//!   with `quantize` / `dequantize`,
//! - [`QuantRange`]: `[-128, 127]` (signed) or `[0, 255]` (unsigned), the
//!   "expected range of the quantized values" the paper passes to its
//!   approximate layer,
//! - [`RoundMode`]: the "requested round mode for the rounding applied
//!   during the quantization",
//! - [`RangeTracker`]: the min/max observers inserted into the graph
//!   (Fig. 1) and evaluated once per batch.
//!
//! # Example
//!
//! ```
//! use axquant::{QuantParams, QuantRange, RoundMode};
//!
//! let p = QuantParams::from_range(-1.0, 3.0, QuantRange::i8(), RoundMode::NearestEven);
//! assert_eq!(p.quantize(0.0), p.zero_point()); // exact zero
//! let r = p.dequantize(p.quantize(2.5));
//! assert!((r - 2.5).abs() < p.scale());
//! ```

pub mod affine;
pub mod perchannel;
pub mod range;
pub mod round;

pub use affine::{QuantParams, QuantRange};
pub use perchannel::FilterQuantization;
#[allow(deprecated)]
pub use range::EmaRangeTracker;
pub use range::{segment_bounds, RangeTracker};
pub use round::RoundMode;
