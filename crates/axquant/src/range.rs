//! Min/max range observers.
//!
//! The paper's graph transform (Fig. 1) inserts `Min` and `Max` operators
//! in front of every approximate layer; "the minimum and maximum values of
//! the input tensors are determined once per a batch". `RangeTracker` is
//! that observer.

use serde::{Deserialize, Serialize};

/// Running min/max over observed values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangeTracker {
    min: f32,
    max: f32,
    count: u64,
}

impl RangeTracker {
    /// An empty tracker (no observations yet).
    #[must_use]
    pub fn new() -> Self {
        RangeTracker {
            min: f32::INFINITY,
            max: f32::NEG_INFINITY,
            count: 0,
        }
    }

    /// Observe one value.
    #[inline]
    pub fn observe(&mut self, v: f32) {
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.count += 1;
    }

    /// Observe every value of a slice.
    pub fn observe_slice(&mut self, xs: &[f32]) {
        for &x in xs {
            self.observe(x);
        }
    }

    /// Merge another tracker into this one.
    pub fn merge(&mut self, other: &RangeTracker) {
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
    }

    /// Number of observed values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The observed `(min, max)`, or `(0, 0)` if nothing was observed.
    #[must_use]
    pub fn bounds(&self) -> (f32, f32) {
        if self.count == 0 {
            (0.0, 0.0)
        } else {
            (self.min, self.max)
        }
    }
}

impl Default for RangeTracker {
    fn default() -> Self {
        RangeTracker::new()
    }
}

/// Per-segment `(min, max)` bounds over a fused activation buffer, in one
/// pass — the segmented form of the Fig. 1 observers.
///
/// `counts` gives each segment's length in *units* (batch images), and
/// `elems_per_unit` the number of consecutive `f32` elements one unit
/// occupies (`H × W × C` for an NHWC batch; pass 1 to segment a flat
/// slice). Segments are consecutive: segment `i` covers the
/// `counts[i] × elems_per_unit` elements following segment `i − 1`.
///
/// The per-segment semantics are **exactly** those of a solo observer
/// (`axtensor::ops::min_max`): an empty segment reports `(0.0, 0.0)` and
/// a segment containing any NaN reports `(NaN, NaN)` — NaN propagates so
/// the quantization layer can reject it instead of deriving garbage
/// coefficients, which plain `f32::min`/`f32::max` (and
/// [`RangeTracker`]) would silently swallow. This is what makes a fused
/// forward pass bit-identical to solo inference: each segment resolves
/// the same `(α, β)` it would have resolved alone.
///
/// # Panics
///
/// Panics if `data` is shorter than the segments require.
#[must_use]
pub fn segment_bounds(data: &[f32], counts: &[usize], elems_per_unit: usize) -> Vec<(f32, f32)> {
    let total: usize = counts.iter().map(|c| c * elems_per_unit).sum();
    assert!(
        data.len() >= total,
        "segment_bounds: {} elements for segments spanning {total}",
        data.len()
    );
    let mut out = Vec::with_capacity(counts.len());
    let mut cursor = 0usize;
    for &count in counts {
        let len = count * elems_per_unit;
        let seg = &data[cursor..cursor + len];
        cursor += len;
        out.push(match seg.split_first() {
            None => (0.0, 0.0),
            Some((&first, rest)) => {
                let mut lo = first;
                let mut hi = first;
                let mut saw_nan = first.is_nan();
                for &v in rest {
                    saw_nan |= v.is_nan();
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                if saw_nan {
                    (f32::NAN, f32::NAN)
                } else {
                    (lo, hi)
                }
            }
        });
    }
    out
}

/// Exponential-moving-average range tracker for *training-time*
/// calibration.
///
/// The paper's transformed graph "is suitable for the inference as well as
/// training because the minimum and maximum values of the input tensors
/// are determined once per a batch". During training, frameworks smooth
/// those per-batch observations with an EMA so the deployed quantization
/// range is stable; this tracker implements that smoothing.
///
/// Deprecated: nothing on the inference/serving path consumes EMA-smoothed
/// ranges — per-batch (now per-segment) observation is what keeps served
/// outputs bit-identical to solo inference, and no training loop exists in
/// this repository to feed the smoothing. The type is kept (hidden) so
/// downstream calibration experiments don't break, with its behavior
/// pinned by tests, but it is not part of the documented API.
#[deprecated(
    since = "0.7.0",
    note = "unused on the inference path; per-segment observation (see \
            `segment_bounds`) is the supported range resolution"
)]
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmaRangeTracker {
    momentum: f32,
    min: Option<f32>,
    max: Option<f32>,
}

#[allow(deprecated)]
impl EmaRangeTracker {
    /// Create with the given momentum (the weight of the *old* estimate;
    /// TensorFlow's default is 0.99).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= momentum < 1.0`.
    #[must_use]
    pub fn new(momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum in [0, 1)");
        EmaRangeTracker {
            momentum,
            min: None,
            max: None,
        }
    }

    /// Fold in one batch's observed `(min, max)`.
    pub fn observe_batch(&mut self, min: f32, max: f32) {
        let m = self.momentum;
        self.min = Some(match self.min {
            Some(old) => m * old + (1.0 - m) * min,
            None => min,
        });
        self.max = Some(match self.max {
            Some(old) => m * old + (1.0 - m) * max,
            None => max,
        });
    }

    /// The smoothed `(min, max)`, or `(0, 0)` before any observation.
    #[must_use]
    pub fn bounds(&self) -> (f32, f32) {
        (self.min.unwrap_or(0.0), self.max.unwrap_or(0.0))
    }
}

/// Behavior pin for the deprecated [`EmaRangeTracker`]: deprecation hides
/// it from the documented API but must not change what it computes.
#[cfg(test)]
#[allow(deprecated)]
mod ema_tests {
    use super::*;

    #[test]
    fn first_batch_initializes() {
        let mut t = EmaRangeTracker::new(0.9);
        t.observe_batch(-2.0, 3.0);
        assert_eq!(t.bounds(), (-2.0, 3.0));
    }

    #[test]
    fn smoothing_dampens_outliers() {
        let mut t = EmaRangeTracker::new(0.9);
        t.observe_batch(-1.0, 1.0);
        t.observe_batch(-100.0, 100.0); // outlier batch
        let (lo, hi) = t.bounds();
        assert!(lo > -15.0 && hi < 15.0, "outlier dominated: ({lo}, {hi})");
    }

    #[test]
    fn converges_to_stationary_range() {
        let mut t = EmaRangeTracker::new(0.5);
        for _ in 0..30 {
            t.observe_batch(-4.0, 4.0);
        }
        let (lo, hi) = t.bounds();
        assert!((lo + 4.0).abs() < 1e-3);
        assert!((hi - 4.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn momentum_validated() {
        let _ = EmaRangeTracker::new(1.0);
    }

    #[test]
    fn deprecated_type_arithmetic_is_pinned_exactly() {
        // The deprecation must not change a single bit of the smoothing:
        // m·old + (1−m)·new in f32, min and max independently.
        let mut t = EmaRangeTracker::new(0.75);
        t.observe_batch(-2.0, 2.0);
        t.observe_batch(-4.0, 6.0);
        let (lo, hi) = t.bounds();
        assert_eq!(lo, 0.75f32 * -2.0 + 0.25f32 * -4.0);
        assert_eq!(hi, 0.75f32 * 2.0 + 0.25f32 * 6.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tracker_reports_zero_bounds() {
        assert_eq!(RangeTracker::new().bounds(), (0.0, 0.0));
    }

    #[test]
    fn observe_updates_bounds() {
        let mut t = RangeTracker::new();
        t.observe_slice(&[1.0, -3.0, 2.5]);
        assert_eq!(t.bounds(), (-3.0, 2.5));
        assert_eq!(t.count(), 3);
    }

    #[test]
    fn merge_combines() {
        let mut a = RangeTracker::new();
        a.observe_slice(&[0.0, 1.0]);
        let mut b = RangeTracker::new();
        b.observe_slice(&[-5.0, 0.5]);
        a.merge(&b);
        assert_eq!(a.bounds(), (-5.0, 1.0));
        assert_eq!(a.count(), 4);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RangeTracker::new();
        a.observe_slice(&[2.0, 3.0]);
        let before = a.bounds();
        a.merge(&RangeTracker::new());
        assert_eq!(a.bounds(), before);
    }

    #[test]
    fn segment_bounds_matches_solo_observation_per_segment() {
        // 3 segments of 2/0/1 units, 2 elements per unit.
        let data = [1.0f32, -3.0, 2.5, 0.5, -7.0, 4.0];
        let bounds = segment_bounds(&data, &[2, 0, 1], 2);
        assert_eq!(bounds, vec![(-3.0, 2.5), (0.0, 0.0), (-7.0, 4.0)]);
    }

    #[test]
    fn segment_bounds_single_segment_covers_everything() {
        let data = [0.25f32, -1.5, 9.0];
        assert_eq!(segment_bounds(&data, &[3], 1), vec![(-1.5, 9.0)]);
        assert_eq!(segment_bounds(&data, &[1], 3), vec![(-1.5, 9.0)]);
    }

    #[test]
    fn segment_bounds_propagates_nan_per_segment_only() {
        let data = [1.0f32, f32::NAN, 2.0, 3.0];
        let bounds = segment_bounds(&data, &[2, 2], 1);
        assert!(bounds[0].0.is_nan() && bounds[0].1.is_nan());
        assert_eq!(bounds[1], (2.0, 3.0));
    }

    #[test]
    fn segment_bounds_empty_everything() {
        assert!(segment_bounds(&[], &[], 4).is_empty());
        assert_eq!(segment_bounds(&[], &[0, 0], 4), vec![(0.0, 0.0); 2]);
    }

    #[test]
    #[should_panic(expected = "segment_bounds")]
    fn segment_bounds_rejects_short_data() {
        let _ = segment_bounds(&[1.0], &[2], 1);
    }
}
