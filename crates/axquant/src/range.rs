//! Min/max range observers.
//!
//! The paper's graph transform (Fig. 1) inserts `Min` and `Max` operators
//! in front of every approximate layer; "the minimum and maximum values of
//! the input tensors are determined once per a batch". `RangeTracker` is
//! that observer.

use serde::{Deserialize, Serialize};

/// Running min/max over observed values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangeTracker {
    min: f32,
    max: f32,
    count: u64,
}

impl RangeTracker {
    /// An empty tracker (no observations yet).
    #[must_use]
    pub fn new() -> Self {
        RangeTracker {
            min: f32::INFINITY,
            max: f32::NEG_INFINITY,
            count: 0,
        }
    }

    /// Observe one value.
    #[inline]
    pub fn observe(&mut self, v: f32) {
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.count += 1;
    }

    /// Observe every value of a slice.
    pub fn observe_slice(&mut self, xs: &[f32]) {
        for &x in xs {
            self.observe(x);
        }
    }

    /// Merge another tracker into this one.
    pub fn merge(&mut self, other: &RangeTracker) {
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
    }

    /// Number of observed values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The observed `(min, max)`, or `(0, 0)` if nothing was observed.
    #[must_use]
    pub fn bounds(&self) -> (f32, f32) {
        if self.count == 0 {
            (0.0, 0.0)
        } else {
            (self.min, self.max)
        }
    }
}

impl Default for RangeTracker {
    fn default() -> Self {
        RangeTracker::new()
    }
}

/// Exponential-moving-average range tracker for *training-time*
/// calibration.
///
/// The paper's transformed graph "is suitable for the inference as well as
/// training because the minimum and maximum values of the input tensors
/// are determined once per a batch". During training, frameworks smooth
/// those per-batch observations with an EMA so the deployed quantization
/// range is stable; this tracker implements that smoothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmaRangeTracker {
    momentum: f32,
    min: Option<f32>,
    max: Option<f32>,
}

impl EmaRangeTracker {
    /// Create with the given momentum (the weight of the *old* estimate;
    /// TensorFlow's default is 0.99).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= momentum < 1.0`.
    #[must_use]
    pub fn new(momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum in [0, 1)");
        EmaRangeTracker {
            momentum,
            min: None,
            max: None,
        }
    }

    /// Fold in one batch's observed `(min, max)`.
    pub fn observe_batch(&mut self, min: f32, max: f32) {
        let m = self.momentum;
        self.min = Some(match self.min {
            Some(old) => m * old + (1.0 - m) * min,
            None => min,
        });
        self.max = Some(match self.max {
            Some(old) => m * old + (1.0 - m) * max,
            None => max,
        });
    }

    /// The smoothed `(min, max)`, or `(0, 0)` before any observation.
    #[must_use]
    pub fn bounds(&self) -> (f32, f32) {
        (self.min.unwrap_or(0.0), self.max.unwrap_or(0.0))
    }
}

#[cfg(test)]
mod ema_tests {
    use super::*;

    #[test]
    fn first_batch_initializes() {
        let mut t = EmaRangeTracker::new(0.9);
        t.observe_batch(-2.0, 3.0);
        assert_eq!(t.bounds(), (-2.0, 3.0));
    }

    #[test]
    fn smoothing_dampens_outliers() {
        let mut t = EmaRangeTracker::new(0.9);
        t.observe_batch(-1.0, 1.0);
        t.observe_batch(-100.0, 100.0); // outlier batch
        let (lo, hi) = t.bounds();
        assert!(lo > -15.0 && hi < 15.0, "outlier dominated: ({lo}, {hi})");
    }

    #[test]
    fn converges_to_stationary_range() {
        let mut t = EmaRangeTracker::new(0.5);
        for _ in 0..30 {
            t.observe_batch(-4.0, 4.0);
        }
        let (lo, hi) = t.bounds();
        assert!((lo + 4.0).abs() < 1e-3);
        assert!((hi - 4.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn momentum_validated() {
        let _ = EmaRangeTracker::new(1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tracker_reports_zero_bounds() {
        assert_eq!(RangeTracker::new().bounds(), (0.0, 0.0));
    }

    #[test]
    fn observe_updates_bounds() {
        let mut t = RangeTracker::new();
        t.observe_slice(&[1.0, -3.0, 2.5]);
        assert_eq!(t.bounds(), (-3.0, 2.5));
        assert_eq!(t.count(), 3);
    }

    #[test]
    fn merge_combines() {
        let mut a = RangeTracker::new();
        a.observe_slice(&[0.0, 1.0]);
        let mut b = RangeTracker::new();
        b.observe_slice(&[-5.0, 0.5]);
        a.merge(&b);
        assert_eq!(a.bounds(), (-5.0, 1.0));
        assert_eq!(a.count(), 4);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RangeTracker::new();
        a.observe_slice(&[2.0, 3.0]);
        let before = a.bounds();
        a.merge(&RangeTracker::new());
        assert_eq!(a.bounds(), before);
    }
}
