//! Bench-smoke: the conv-engine, serve, and pareto harnesses run end to
//! end in quick mode and their JSON reports are well-formed and
//! structurally complete.

use tfapprox_bench::{conv_engine, json, pareto, serve_bench};

#[test]
fn quick_suite_emits_well_formed_json() {
    let reports = conv_engine::run_suite(true);
    // One exact case plus the approximate-LUT rerun of the primary case.
    assert_eq!(reports.len(), 2);
    let kernels = tfapprox::available_kernels();
    for report in &reports {
        // CpuDirect + one CpuGemm sample per (kernel arm, thread count)
        // point + GpuSim.
        assert_eq!(
            report.samples.len(),
            2 + kernels.len() * conv_engine::THREAD_SWEEP.len(),
            "one sample per backend/kernel/thread point"
        );
        for sample in &report.samples {
            assert!(sample.threads >= 1);
            assert!(sample.mean_s > 0.0, "{:?} measured nothing", sample.backend);
            assert!(
                sample.first_call_quant_s > 0.0,
                "{:?} first call must include the plan build",
                sample.backend
            );
            let fraction_sum: f64 = sample.phase_fractions.iter().sum();
            assert!(
                (fraction_sum - 1.0).abs() < 1e-6,
                "{:?} phase fractions sum to {fraction_sum}",
                sample.backend
            );
        }
        for kernel in &kernels {
            let gemm_threads: Vec<usize> = report
                .samples
                .iter()
                .filter(|s| s.backend == tfapprox::Backend::CpuGemm && s.kernel == kernel.name())
                .map(|s| s.threads)
                .collect();
            assert_eq!(
                gemm_threads,
                conv_engine::THREAD_SWEEP.to_vec(),
                "kernel {kernel} must be swept over every thread count"
            );
        }
        for s in &report.samples {
            match s.backend {
                tfapprox::Backend::CpuGemm => {
                    assert!(kernels.iter().any(|k| k.name() == s.kernel))
                }
                _ => assert_eq!(s.kernel, "none", "{:?} never enters the GEMM", s.backend),
            }
        }
        assert!(report.macs > 0);
        assert!(report.speedup_gemm_vs_direct().is_finite());
        // Hosts without SIMD arms report NaN, with them a real ratio.
        assert_eq!(
            report.speedup_best_simd_vs_scalar().is_finite(),
            kernels.len() > 1
        );
    }
    // The primary case carries the tile sweep; its points all measured.
    assert!(!reports[0].tile_sweep.is_empty());
    assert!(reports[0].tile_sweep.iter().all(|t| t.mean_s > 0.0));
    assert!(reports[1].tile_sweep.is_empty());

    let doc = conv_engine::report_json(&reports, true);
    json::validate(&doc).expect("BENCH_conv.json must be well-formed JSON");
    for needle in [
        "\"schema\": \"tfapprox-bench-conv/2\"",
        "\"kernel\": \"scalar-tiled\"",
        "\"kernel\": \"none\"",
        "\"speedup_best_simd_vs_scalar\"",
        "\"mode\": \"quick\"",
        "\"cpu-direct\"",
        "\"cpu-gemm\"",
        "\"gpu-sim\"",
        "\"threads\": 4",
        "\"tile_sweep\"",
        "\"kc\"",
        "\"speedup_cpu_gemm_vs_cpu_direct\"",
        "\"steady_quantization_s\"",
        "\"phase_fractions\"",
    ] {
        assert!(doc.contains(needle), "missing {needle} in report");
    }
}

#[test]
fn quick_serve_suite_emits_well_formed_json() {
    let report = serve_bench::run_suite(true);
    assert_eq!(
        report.samples.len(),
        serve_bench::CLIENT_SWEEP.len() * serve_bench::BUDGET_SWEEP.len() * 2,
        "one fused + one unfused sample per (clients, budget) point"
    );
    assert!(report.serial.images_per_second > 0.0);
    for s in &report.samples {
        assert_eq!(s.requests_shed, 0, "sweep queue must be deep enough");
        assert!(s.requests > 0 && s.images == s.requests * serve_bench::IMAGES_PER_REQUEST as u64);
        assert!(s.batches >= 1 && s.batches <= s.requests);
        assert!(s.images_per_second > 0.0);
        assert!(s.mean_occupancy >= 1.0);
        if s.max_batch_images == 1 {
            // Budget 1 forces one batch per request (the single-request
            // serving baseline the batched points are compared to) — so
            // nothing can fuse there either.
            assert_eq!(s.batches, s.requests);
            assert!((s.mean_occupancy - 1.0).abs() < 1e-9);
            assert_eq!(s.fused_batches, 0);
        }
        if !s.fused {
            assert_eq!(s.fused_batches, 0, "fusion off must never fuse");
        }
        assert!(s.fused_batches <= s.batches);
    }
    // Every sweep point must appear as an A/B pair: fused and unfused.
    for &clients in &serve_bench::CLIENT_SWEEP {
        for &budget in &serve_bench::BUDGET_SWEEP {
            for fused in [true, false] {
                assert!(
                    report.samples.iter().any(|s| s.clients == clients
                        && s.max_batch_images == budget
                        && s.fused == fused),
                    "missing (clients {clients}, budget {budget}, fused {fused}) sample"
                );
            }
        }
    }
    // Coalescing must actually happen somewhere in the sweep: at least
    // one batched point with occupancy above 1.
    assert!(
        report
            .samples
            .iter()
            .any(|s| s.max_batch_images > 1 && s.mean_occupancy > 1.0),
        "no point in the sweep ever coalesced"
    );
    // A coalesced fused point must actually have fused: every
    // multi-request micro-batch of this single-shape sweep is eligible.
    for s in &report.samples {
        if s.fused && s.batches < s.requests {
            assert!(
                s.fused_batches >= 1,
                "point (clients {}, budget {}) coalesced but never fused",
                s.clients,
                s.max_batch_images
            );
        }
    }

    // The multi-tenant sweep: one sample per (tenants, clients) point,
    // with a populated latency tail and zero shed everywhere.
    assert_eq!(
        report.tenant_samples.len(),
        serve_bench::TENANT_SWEEP.len() * serve_bench::CLIENT_SWEEP.len(),
        "one sample per (tenants, clients) point"
    );
    for t in &report.tenant_samples {
        assert!(serve_bench::TENANT_SWEEP.contains(&t.tenants));
        assert_eq!(t.requests_shed, 0, "sweep queue must be deep enough");
        assert!(t.requests > 0 && t.images == t.requests * serve_bench::IMAGES_PER_REQUEST as u64);
        assert!(t.batches >= 1 && t.batches <= t.requests);
        assert!(t.images_per_second > 0.0);
        assert!(t.p50_s > 0.0, "latency histogram must populate");
        assert!(t.p50_s <= t.p95_s && t.p95_s <= t.p99_s);
        // Tenants beyond the anchor were admitted -> compile-on-miss.
        assert!(t.registry_misses >= (t.tenants - 1) as u64);
        assert_eq!(t.registry_evictions, 0, "capacity covers every tenant");
    }
    assert!(
        report.tenant_samples.iter().any(|t| t.tenants >= 2),
        "the sweep must include a multi-tenant case"
    );

    let doc = serve_bench::report_json(&report, true);
    json::validate(&doc).expect("BENCH_serve.json must be well-formed JSON");
    for needle in [
        "\"schema\": \"tfapprox-bench-serve/3\"",
        "\"mode\": \"quick\"",
        "\"serial\"",
        "\"cases\"",
        "\"tenant_cases\"",
        "\"tenants\"",
        "\"max_batch_images\"",
        "\"fused\": true",
        "\"fused\": false",
        "\"fused_batches\"",
        "\"mean_occupancy\"",
        "\"requests_shed\"",
        "\"images_per_second\"",
        "\"p50_s\"",
        "\"p95_s\"",
        "\"p99_s\"",
        "\"registry_misses\"",
        "\"speedup_vs_single_request\"",
    ] {
        assert!(doc.contains(needle), "missing {needle} in report");
    }
}

#[test]
fn quick_pareto_suite_emits_well_formed_json() {
    let report = pareto::run_suite(true, None).expect("quick pareto sweep");
    // Every quick-subset multiplier appears under every accumulator.
    assert_eq!(
        report.points.len(),
        pareto::QUICK_MULTIPLIERS.len() * pareto::ACCUMULATORS.len()
    );
    for &name in &pareto::QUICK_MULTIPLIERS {
        for (label, _) in pareto::ACCUMULATORS {
            assert!(
                report
                    .points
                    .iter()
                    .any(|p| p.multiplier == name && p.accumulator == label),
                "missing ({name}, {label}) point"
            );
        }
    }
    // The acceptance invariants: agreements in range, exact multipliers
    // at 1.0 by construction, no flagged point dominated.
    pareto::check_invariants(&report).expect("pareto invariants");
    for p in &report.points {
        assert_eq!(p.images, pareto::QUICK_IMAGES);
        assert!(p.wall_s > 0.0, "{} measured nothing", p.multiplier);
        assert_eq!(
            p.disagreements == 0,
            p.agreement == 1.0,
            "{}/{}: disagreements {} vs agreement {}",
            p.multiplier,
            p.accumulator,
            p.disagreements,
            p.agreement
        );
        // Anchors are same-signedness exact multipliers.
        match p.signedness {
            axmult::Signedness::Signed => assert_eq!(p.anchor, "mul8s_exact"),
            axmult::Signedness::Unsigned => assert_eq!(p.anchor, "mul8u_exact"),
        }
        if p.multiplier == pareto::COMPILED_NAME {
            assert_eq!(p.source, "compiled");
            assert!(p.cost.is_some(), "compiled entries carry a cost column");
        } else {
            assert_eq!(p.source, "builtin");
        }
    }
    // The sweep genuinely exercises approximation: some point must
    // disagree with its anchor.
    assert!(
        report.points.iter().any(|p| p.agreement < 1.0),
        "no approximate point ever disagreed"
    );
    // At least one point sits on the accuracy/power frontier.
    assert!(report.points.iter().any(|p| p.pareto_frontier));

    let doc = pareto::report_json(&report, true);
    json::validate(&doc).expect("BENCH_pareto.json must be well-formed JSON");
    for needle in [
        "\"schema\": \"tfapprox-bench-pareto/1\"",
        "\"mode\": \"quick\"",
        "\"anchor_policy\"",
        "\"accumulators\": [\"exact\", \"saturating-12\", \"wrapping-16\"]",
        "\"points\"",
        "\"multiplier\": \"mul8s_exact\"",
        "\"multiplier\": \"mul8u_trunc3\"",
        "\"source\": \"compiled\"",
        "\"accumulator\": \"wrapping-16\"",
        "\"agreement\": 1.0",
        "\"disagreements\"",
        "\"mae\"",
        "\"wce\"",
        "\"power\"",
        "\"pdp\"",
        "\"pareto_frontier\": true",
    ] {
        assert!(doc.contains(needle), "missing {needle} in report");
    }
}

#[test]
fn session_report_json_is_well_formed() {
    // The session API's `EmulationReport::to_json` emits a document the
    // same strict validator accepts, so session runs can append to a
    // `BENCH_*.json` trajectory exactly like the conv bench does.
    use tfapprox::prelude::*;
    let graph = axnn::resnet::ResNetConfig::with_depth(8)
        .expect("cfg")
        .build(1)
        .expect("graph");
    let mult = axmult::catalog::by_name("mul8s_exact").expect("catalog");
    let session = Session::builder()
        .backend(Backend::GpuSim)
        .multiplier(&mult)
        .compile(&graph)
        .expect("compile");
    let batch = axnn::dataset::SyntheticCifar10::new(3).batch_sized(0, 2);
    let (_, report) = session
        .infer_batches(std::slice::from_ref(&batch))
        .expect("run");
    let doc = report.to_json();
    json::validate(&doc).expect("session report must be well-formed JSON");
    assert!(doc.contains("\"schema\": \"tfapprox-session-report/2\""));
    assert!(doc.contains("\"images_per_second\""));
    // The modeled-GPU backend never enters the host GEMM, so the report
    // pins its kernel to the "none" sentinel rather than a host arm.
    assert!(doc.contains("\"kernel\": \"none\""));
    assert!((report.images_per_second() - 2.0 / report.total()).abs() < 1e-9);

    // The host-GEMM backend names its active kernel arm in the report.
    let session = Session::builder()
        .backend(Backend::CpuGemm)
        .multiplier(&mult)
        .compile(&graph)
        .expect("compile");
    let (_, report) = session
        .infer_batches(std::slice::from_ref(&batch))
        .expect("run");
    assert_eq!(report.kernel, session.kernel().name());
    assert!(report
        .to_json()
        .contains(&format!("\"kernel\": \"{}\"", session.kernel().name())));
}

#[test]
fn prepared_engine_first_call_pays_more_quantization() {
    // Steady-state quantization is input-only; the first call adds the
    // one-off plan build. On the modeled GPU backend both numbers are
    // deterministic, so the comparison is exact.
    let reports = conv_engine::run_suite(true);
    let gpu = reports[0]
        .samples
        .iter()
        .find(|s| s.backend == tfapprox::Backend::GpuSim)
        .expect("gpu sample");
    assert!(
        gpu.steady_quant_s < gpu.first_call_quant_s,
        "steady {} !< first {}",
        gpu.steady_quant_s,
        gpu.first_call_quant_s
    );
}
