//! The prepared-execution engine benchmark: all three backends on
//! ResNet-scale conv shapes, steady state (cached plan), plus the
//! `BENCH_conv.json` trajectory emission.
//!
//! Run with `cargo bench -p tfapprox-bench --bench conv_engine`.
//! `BENCH_CONV_QUICK=1` shrinks the suite for CI smoke runs;
//! `BENCH_CONV_OUT` overrides the output path (default:
//! `BENCH_conv.json` at the workspace root).

use axmult::{MulLut, Signedness};
use axtensor::{rng, ConvGeometry};
use criterion::{black_box, criterion_group, Criterion};
use std::sync::Arc;
use tfapprox::{AxConv2D, Backend, EmuContext};
use tfapprox_bench::conv_engine;

fn quick_mode() -> bool {
    std::env::var("BENCH_CONV_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Criterion view of the steady-state convolve across backends, on the
/// suite's primary case (plan pre-built so criterion times pure reuse).
fn bench_prepared_convolve(c: &mut Criterion) {
    let case = &conv_engine::cases(quick_mode())[0];
    let input = rng::uniform(case.input, 11, -1.0, 1.0);
    let filter = rng::uniform_filter(case.filter, 13, -0.5, 0.5);
    let lut = MulLut::exact(Signedness::Signed);

    let mut group = c.benchmark_group(format!("conv_engine/{}", case.name));
    group.sample_size(case.iters.max(2));
    for (label, backend) in [
        ("cpu_direct", Backend::CpuDirect),
        ("cpu_gemm", Backend::CpuGemm),
        ("gpu_sim_functional", Backend::GpuSim),
    ] {
        let ctx = Arc::new(EmuContext::new(backend).with_chunk_size(4).unwrap());
        let layer = AxConv2D::new(filter.clone(), ConvGeometry::default(), lut.clone(), ctx);
        layer.prepare().expect("prepare");
        group.bench_function(label, |b| {
            b.iter(|| black_box(layer.convolve(&input).expect("convolve")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prepared_convolve);

fn main() {
    benches();
    let quick = quick_mode();
    let reports = conv_engine::run_suite(quick);
    for report in &reports {
        println!(
            "bench: conv_engine/{}/{} speedup cpu-gemm vs cpu-direct: {:.1}x, best simd vs scalar: {:.2}x",
            report.case.name,
            report.multiplier,
            report.speedup_gemm_vs_direct(),
            report.speedup_best_simd_vs_scalar()
        );
    }
    let path = conv_engine::default_output_path();
    conv_engine::write_report(&path, &reports, quick).expect("write BENCH_conv.json");
    println!("bench: wrote {}", path.display());
}
