//! Benchmark of the quantizing image-to-columns phase (Algorithm 1,
//! phase (i)) across kernel geometries and patch-sum strategies.

use axquant::{QuantParams, QuantRange, RoundMode};
use axtensor::{rng, ConvGeometry, FilterShape, Shape4};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gpusim::kernels::im2col::{im2col_quant, PatchSumStrategy};

fn bench_im2col(c: &mut Criterion) {
    let input = rng::uniform(Shape4::new(4, 32, 32, 16), 7, -1.0, 1.0);
    let q = QuantParams::from_range(-1.0, 1.0, QuantRange::i8(), RoundMode::NearestEven);

    let mut group = c.benchmark_group("im2col_quant");
    group.sample_size(20);
    for (label, filter, stride) in [
        ("3x3_s1", FilterShape::new(3, 3, 16, 16), 1usize),
        ("3x3_s2", FilterShape::new(3, 3, 16, 32), 2),
        ("5x5_s1", FilterShape::new(5, 5, 16, 16), 1),
    ] {
        let geom = ConvGeometry::default().with_stride(stride);
        group.bench_function(format!("prefix_scan_{label}"), |b| {
            b.iter(|| {
                black_box(
                    im2col_quant(&input, filter, geom, q, PatchSumStrategy::PrefixScan)
                        .expect("im2col"),
                )
            });
        });
        group.bench_function(format!("per_patch_{label}"), |b| {
            b.iter(|| {
                black_box(
                    im2col_quant(&input, filter, geom, q, PatchSumStrategy::PerPatchThread)
                        .expect("im2col"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_im2col);
criterion_main!(benches);
