//! End-to-end benchmark of the `AxConv2D` operator across backends —
//! the measured counterpart to Table I's per-layer story: the direct
//! nested-loop emulation vs. the GEMM formulation vs. the accurate f32
//! convolution.

use axmult::{MulLut, Signedness};
use axtensor::{ops, rng, ConvGeometry, FilterShape, Shape4};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use tfapprox::{AxConv2D, Backend, EmuContext};

fn bench_axconv2d(c: &mut Criterion) {
    let input = rng::uniform(Shape4::new(2, 32, 32, 16), 5, -1.0, 1.0);
    let filter = rng::uniform_filter(FilterShape::new(3, 3, 16, 16), 6, -0.5, 0.5);
    let lut = MulLut::exact(Signedness::Signed);

    let mut group = c.benchmark_group("axconv2d");
    group.sample_size(10);
    group.bench_function("accurate_f32", |b| {
        b.iter(|| {
            black_box(ops::conv2d_gemm(&input, &filter, ConvGeometry::default()).expect("conv"))
        });
    });
    for (label, backend) in [
        ("cpu_direct", Backend::CpuDirect),
        ("cpu_gemm", Backend::CpuGemm),
        ("gpu_sim_functional", Backend::GpuSim),
    ] {
        let ctx = Arc::new(EmuContext::new(backend));
        let layer = AxConv2D::new(filter.clone(), ConvGeometry::default(), lut.clone(), ctx);
        group.bench_function(label, |b| {
            b.iter(|| black_box(layer.convolve(&input).expect("convolve")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_axconv2d);
criterion_main!(benches);
