//! Chunk-size sweep for Algorithm 1's `SplitData`: the paper splits the
//! batch "into chunks of a constant size to decouple memory usage from
//! convolution parameters". This bench shows throughput as a function of
//! the chunk size (too small: per-chunk overhead; larger: flat, while
//! memory grows).

use axmult::{MulLut, Signedness};
use axtensor::{rng, ConvGeometry, FilterShape, Shape4};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use tfapprox::{AxConv2D, Backend, EmuContext};

fn bench_chunking(c: &mut Criterion) {
    let input = rng::uniform(Shape4::new(16, 32, 32, 8), 9, -1.0, 1.0);
    let filter = rng::uniform_filter(FilterShape::new(3, 3, 8, 8), 10, -0.5, 0.5);
    let lut = MulLut::exact(Signedness::Signed);

    let mut group = c.benchmark_group("chunk_size");
    group.sample_size(10);
    for chunk in [1usize, 2, 4, 8, 16] {
        let ctx = Arc::new(
            EmuContext::new(Backend::CpuGemm)
                .with_chunk_size(chunk)
                .unwrap(),
        );
        let layer = AxConv2D::new(filter.clone(), ConvGeometry::default(), lut.clone(), ctx);
        group.bench_with_input(BenchmarkId::from_parameter(chunk), &chunk, |b, _| {
            b.iter(|| black_box(layer.convolve(&input).expect("convolve")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chunking);
criterion_main!(benches);
