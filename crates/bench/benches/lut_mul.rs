//! Micro-benchmark of the emulated multiplication primitives: native `u8`
//! multiply vs. LUT fetch (the paper's emulation step) vs. gate-level
//! netlist evaluation (what the LUT replaces — the reason naive emulation
//! is 2–3 orders of magnitude slow).

use axcircuit::builder::MultiplierSpec;
use axmult::{MulLut, Signedness};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_multiply_paths(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let pairs: Vec<(u8, u8)> = (0..4096).map(|_| (rng.gen(), rng.gen())).collect();
    let lut = MulLut::exact(Signedness::Unsigned);
    let netlist = MultiplierSpec::unsigned(8, 8).build().expect("netlist");

    let mut group = c.benchmark_group("mul8_emulation");
    group.bench_function("native_mul", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &(x, y) in &pairs {
                acc = acc.wrapping_add(u32::from(x) * u32::from(y));
            }
            black_box(acc)
        });
    });
    group.bench_function("lut_fetch", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &(x, y) in &pairs {
                acc = acc.wrapping_add(u32::from(lut.fetch(x, y)));
            }
            black_box(acc)
        });
    });
    group.bench_function("netlist_eval", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(x, y) in &pairs[..64] {
                acc = acc.wrapping_add(
                    netlist
                        .eval_words(&[u64::from(x), u64::from(y)])
                        .expect("eval"),
                );
            }
            black_box(acc)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_multiply_paths);
criterion_main!(benches);
