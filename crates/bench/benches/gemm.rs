//! Benchmark of the ApproxGEMM phase (Algorithm 1, phase (ii)): the tiled
//! LUT-based matrix multiplication with the Eq. 4 dequantization
//! correction, against the plain f32 reference GEMM.

use axmult::{MulLut, Signedness};
use axquant::{QuantParams, QuantRange, RoundMode};
use axtensor::{ops, Matrix};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gpusim::kernels::gemm::{approx_gemm, GemmQuant};
use gpusim::{DeviceConfig, TextureCache};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_gemm(c: &mut Criterion) {
    let (rows, k, cols) = (256usize, 144usize, 32usize);
    let mut rng = StdRng::seed_from_u64(3);
    let quant = GemmQuant {
        input: QuantParams::from_range(-1.0, 1.0, QuantRange::i8(), RoundMode::NearestEven),
        filter: QuantParams::from_range(-0.5, 0.5, QuantRange::i8(), RoundMode::NearestEven).into(),
    };
    let mut mp_bytes = vec![0u8; rows * k];
    let mut sp = vec![0i64; rows];
    for r in 0..rows {
        for kk in 0..k {
            let q = quant.input.quantize(rng.gen_range(-1.0..1.0));
            mp_bytes[r * k + kk] = (q & 0xFF) as u8;
            sp[r] += i64::from(q);
        }
    }
    let mp = Matrix::from_vec(rows, k, mp_bytes).expect("mp");
    let filter_f32: Vec<f32> = (0..k * cols).map(|_| rng.gen_range(-0.5..0.5)).collect();
    let filter = Matrix::from_vec(k, cols, filter_f32).expect("filter");
    let lut = MulLut::exact(Signedness::Signed);
    let dev = DeviceConfig::gtx1080();

    let mut group = c.benchmark_group("gemm");
    group.sample_size(20);
    group.bench_function("approx_lut_gemm", |b| {
        let mut cache = TextureCache::new(dev.tex_cache_bytes, dev.tex_cache_line, 4);
        b.iter(|| {
            black_box(approx_gemm(&mp, &sp, &filter, &quant, &lut, &mut cache).expect("gemm"))
        });
    });
    group.bench_function("f32_reference_gemm", |b| {
        let a_f32: Vec<f32> = mp.as_slice().iter().map(|&v| f32::from(v as i8)).collect();
        let a = Matrix::from_vec(rows, k, a_f32).expect("a");
        b.iter(|| black_box(ops::matmul(&a, &filter).expect("matmul")));
    });
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
